#!/bin/bash
# Final bench sweep. DRS_SMX=4 keeps the drain tail <6% at this ray count
# (results are per-SMX-invariant; see EXPERIMENTS.md).
# DRS_JOBS controls how many simulations each bench runs concurrently
# (default: all hardware threads); results are identical for any value.
#
# Usage: run_benches.sh [--json [DIR]] [--compare BASELINE_DIR]
#   --json        additionally write machine-readable BENCH_<name>.json
#                 reports (default DIR: bench_reports). bench_micro uses
#                 Google benchmark's own --benchmark_out JSON instead of
#                 the shared schema. Validate with
#                 tests/check_bench_schema.py DIR/BENCH_*.json
#   --compare     after the sweep, diff the fresh reports against an
#                 earlier report directory with tools/bench_compare.py
#                 and exit non-zero on any metric regression. Implies
#                 --json. The committed BENCH_baseline/ snapshot works as
#                 a reference when run at its recorded scale (see
#                 BENCH_baseline/README.md).
#
# Fails fast: the first bench that exits non-zero (or a failing schema
# validation, or a regression against --compare) aborts the whole sweep
# with that exit code.
set -euo pipefail
cd "$(dirname "$0")"

export DRS_RAYS=${DRS_RAYS:-150000} DRS_SMX=${DRS_SMX:-4}
export DRS_JOBS=${DRS_JOBS:-$(nproc 2>/dev/null || echo 1)}

json_dir=""
compare_dir=""
while [ $# -gt 0 ]; do
  case "$1" in
    --json)
      json_dir="bench_reports"
      if [ $# -gt 1 ] && [ "${2#--}" = "$2" ]; then
        json_dir=$2; shift
      fi
      ;;
    --compare)
      if [ $# -lt 2 ]; then
        echo "error: --compare needs a baseline report directory" >&2
        exit 2
      fi
      compare_dir=$2; shift
      ;;
    *)
      echo "error: unknown argument $1" >&2
      exit 2
      ;;
  esac
  shift
done

# Comparing needs fresh reports to compare.
if [ -n "$compare_dir" ] && [ -z "$json_dir" ]; then
  json_dir="bench_reports"
fi
[ -z "$json_dir" ] || mkdir -p "$json_dir"

# Enumerate the sweep from the bench sources, not from whatever happens
# to sit in the build directory: a bench that failed to build (or was
# never configured) must abort the sweep, not be skipped silently.
benches=()
for src in bench/bench_*.cc; do
  benches+=("$(basename "$src" .cc)")
done
if [ "${#benches[@]}" -eq 0 ]; then
  echo "error: no bench sources found under bench/" >&2
  exit 1
fi
missing=0
for name in "${benches[@]}"; do
  if [ ! -x "build/bench/$name" ]; then
    echo "error: bench binary build/bench/$name is missing or not" \
         "executable (build it: cmake --build build --target $name)" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ] || exit 1

for name in "${benches[@]}"; do
  b="build/bench/$name"
  echo; echo "######## $name ########"; echo
  if [ "$name" = "bench_micro" ]; then
    if [ -n "$json_dir" ]; then
      "$b" --benchmark_min_time=0.2 \
           --benchmark_out="$json_dir/BENCH_micro.json" \
           --benchmark_out_format=json
    else
      "$b" --benchmark_min_time=0.2
    fi
  else
    if [ -n "$json_dir" ]; then
      "$b" --jobs "$DRS_JOBS" --json "$json_dir/BENCH_${name#bench_}.json"
    else
      "$b" --jobs "$DRS_JOBS"
    fi
  fi
done

if [ -n "$json_dir" ]; then
  echo; echo "JSON reports written to $json_dir/"
  if command -v python3 >/dev/null 2>&1; then
    python3 tests/check_bench_schema.py "$json_dir"/BENCH_*.json
  fi
fi

if [ -n "$compare_dir" ]; then
  echo; echo "######## bench_compare vs $compare_dir ########"; echo
  python3 tools/bench_compare.py "$compare_dir" "$json_dir"
fi
