#!/bin/bash
# Final bench sweep. DRS_SMX=4 keeps the drain tail <6% at this ray count
# (results are per-SMX-invariant; see EXPERIMENTS.md).
# DRS_JOBS controls how many simulations each bench runs concurrently
# (default: all hardware threads); results are identical for any value.
export DRS_RAYS=${DRS_RAYS:-150000} DRS_SMX=${DRS_SMX:-4}
export DRS_JOBS=${DRS_JOBS:-$(nproc 2>/dev/null || echo 1)}
for b in build/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *.cmake) continue;; esac
  echo; echo "######## $(basename $b) ########"; echo
  if [ "$(basename $b)" = "bench_micro" ]; then
    "$b" --benchmark_min_time=0.2
  else
    "$b" --jobs "$DRS_JOBS"
  fi
done
