#!/bin/bash
# Final bench sweep. DRS_SMX=4 keeps the drain tail <6% at this ray count
# (results are per-SMX-invariant; see EXPERIMENTS.md).
export DRS_RAYS=${DRS_RAYS:-150000} DRS_SMX=${DRS_SMX:-4}
for b in build/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *.cmake) continue;; esac
  echo; echo "######## $(basename $b) ########"; echo
  if [ "$(basename $b)" = "bench_micro" ]; then
    "$b" --benchmark_min_time=0.2
  else
    "$b"
  fi
done
