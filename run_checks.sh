#!/bin/bash
# Correctness gate for the invariant-checking subsystem (src/check).
#
# 1. Builds the tree under -DDRS_SANITIZE=address, =thread and
#    =undefined and runs the `check`-labelled suites (plus the registry
#    and fuzz-smoke legs) under each sanitizer with DRS_CHECK=1:
#    test_check plus fuzz_smoke, the seeded randomized lockstep
#    cross-check (fixed master seed 0x5eed -> deterministic configs,
#    every seed printed for --replay).
# 2. Kill-mid-sweep resume smoke, in every sanitizer build: a bench run
#    is crash-injected after two journal appends (DRS_CRASH_AFTER -> exit
#    70), resumed with --resume, and the merged report must be identical
#    to an uninterrupted run (wall-clock and resume bookkeeping aside).
# 3. Runs one bench twice in the regular build -- DRS_CHECK=0 vs
#    DRS_CHECK=1 -- and verifies both JSON reports validate against the
#    schema (tests/check_bench_schema.py) and are identical except for
#    wall-clock fields: invariant checking must be a pure observer.
# 4. Profiler smoke: the same bench under DRS_SAMPLE + DRS_TRACE must
#    emit a Chrome trace that passes tests/check_trace.py, a report that
#    drs_profile can render, and bench_compare.py must pass a
#    self-compare of that report and flag a perturbed copy.
# 5. Fleet chaos leg (regular build + asan; NOT tsan -- fork() under
#    thread-sanitizer interceptors is unreliable): ctest -L fleet runs
#    the multi-process fleet suites plus tests/check_fleet_chaos.sh,
#    which SIGKILLs workers at random points, crash-injects the
#    coordinator, resumes, and requires the recovered report to be
#    bit-identical to a clean single-process run -- with the event log,
#    trace stitching and --progress ticker on, cross-checked against
#    summary.fleet.
# 6. Telemetry smoke (regular build): a fleet bench under DRS_LOG +
#    DRS_TRACE; the event log must analyze cleanly (drs_events), the
#    trace shards must merge (drs_tracecat) into a document that passes
#    tests/check_trace.py, and logging must be a pure observer (report
#    identical to a telemetry-off run, wall-clock aside).
#
# Usage: run_checks.sh [--skip-sanitizers]

set -euo pipefail
cd "$(dirname "$0")"

JOBS=${DRS_JOBS:-$(nproc 2>/dev/null || echo 2)}
skip_san=0
[ "${1:-}" = "--skip-sanitizers" ] && skip_san=1

# Kill a sweep mid-run (crash injection after 2 journal appends), resume
# it from the journal, and require the merged report to match a clean
# uninterrupted run. $1 = build dir whose bench binary to use.
resume_smoke() {
  local bench="$1/bench/bench_fig2_aila_breakdown"
  local tmp
  tmp=$(mktemp -d)
  echo "-- kill-mid-sweep resume smoke ($bench)"
  local rc=0
  DRS_RAYS=2048 DRS_SCALE=0.05 DRS_SMX=2 DRS_CRASH_AFTER=2 \
      "$bench" --jobs 2 --journal "$tmp/journal.jsonl" \
      >"$tmp/crashed.log" 2>&1 || rc=$?
  if [ "$rc" -ne 70 ]; then
    echo "FAIL: expected crash-injected exit code 70, got $rc"
    cat "$tmp/crashed.log"
    rm -rf "$tmp"
    return 1
  fi
  DRS_RAYS=2048 DRS_SCALE=0.05 DRS_SMX=2 \
      "$bench" --jobs 2 --journal "$tmp/journal.jsonl" --resume \
      --json "$tmp/BENCH_resumed.json" >/dev/null
  DRS_RAYS=2048 DRS_SCALE=0.05 DRS_SMX=2 \
      "$bench" --jobs 2 --json "$tmp/BENCH_clean.json" >/dev/null
  python3 tests/check_bench_schema.py "$tmp"/BENCH_*.json
  python3 - "$tmp/BENCH_clean.json" "$tmp/BENCH_resumed.json" <<'PYEOF'
import json
import sys


def strip(node, drop=("wall_seconds", "sweep")):
    """Drop wall-clock + resume bookkeeping; the rest must match."""
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items() if k not in drop}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


clean, resumed = (strip(json.load(open(p))) for p in sys.argv[1:3])
if clean != resumed:
    sys.exit("FAIL: resumed sweep differs from an uninterrupted run")
print("ok   resumed report identical to an uninterrupted run")
PYEOF
  rm -rf "$tmp"
}

if [ "$skip_san" -eq 0 ]; then
  for san in address thread undefined; do
    dir="build-${san:0:1}san" # build-asan / build-tsan / build-usan
    echo; echo "######## sanitizer: $san ($dir) ########"; echo
    cmake -B "$dir" -S . -DDRS_SANITIZE="$san" >/dev/null
    cmake --build "$dir" -j"$JOBS"
    (cd "$dir" &&
     DRS_CHECK=1 ctest -L 'check|fuzz-smoke|fault|resume|registry|obs' \
         --output-on-failure -j"$JOBS")
    resume_smoke "$dir"
    # Fleet suites fork real worker processes: sound under asan, not
    # under tsan interceptors, and redundant under usan -- asan only.
    if [ "$san" = address ]; then
      (cd "$dir" && ctest -L fleet --output-on-failure -j"$JOBS")
    fi
  done
fi

echo; echo "######## regular build: registry fuzz smoke ########"; echo
# The fuzzer draws its architecture from the plugin registry, so this leg
# exercises the whole lineup (hardware + software reorderers) even when
# the sanitizer builds are skipped. More configs than the ctest smoke:
# the regular build is fast.
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" --target fuzz_sim
build/tools/fuzz_sim --configs 75 --seed 0x5eed --jobs "$JOBS"

echo; echo "######## fleet: chaos recovery must be bit-identical ########"; echo
# ctest -L fleet covers the protocol/supervision suites AND the
# fleet_chaos harness (kill-mid-sweep -> --resume -> bit-identity with
# zero jobs lost or double-reported, verified by drs_journal --expect).
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest -L fleet --output-on-failure -j"$JOBS")

echo; echo "######## bench JSON: DRS_CHECK must be a pure observer ########"
echo
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" --target bench_fig2_aila_breakdown
resume_smoke build
json_dir=$(mktemp -d)
trap 'rm -rf "$json_dir"' EXIT
export DRS_RAYS=${DRS_RAYS:-20000} DRS_SCALE=${DRS_SCALE:-0.1} \
       DRS_SMX=${DRS_SMX:-2}
DRS_CHECK=0 build/bench/bench_fig2_aila_breakdown --jobs 2 \
    --json "$json_dir/BENCH_unchecked.json"
DRS_CHECK=1 build/bench/bench_fig2_aila_breakdown --jobs 2 \
    --json "$json_dir/BENCH_checked.json"
python3 tests/check_bench_schema.py "$json_dir"/BENCH_*.json
python3 - "$json_dir/BENCH_unchecked.json" "$json_dir/BENCH_checked.json" \
    <<'EOF'
import json
import sys


def strip(node):
    """Drop wall-clock fields; everything else must be bit-identical."""
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items() if k != "wall_seconds"}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


unchecked, checked = (strip(json.load(open(p))) for p in sys.argv[1:3])
if unchecked != checked:
    sys.exit("FAIL: DRS_CHECK=1 changed the bench report "
             "(beyond wall-clock fields)")
print("ok   bench report unchanged by DRS_CHECK=1")
EOF

echo; echo "######## telemetry: event log + stitched fleet trace smoke ########"
echo
cmake --build build -j"$JOBS" --target drs_events drs_tracecat
telemetry_dir=$(mktemp -d)
DRS_LOG="$telemetry_dir/events.jsonl" DRS_LOG_LEVEL=debug DRS_LOG_RATE=0 \
    DRS_TRACE="$telemetry_dir/trace" \
    build/bench/bench_fig2_aila_breakdown --jobs 2 --fleet 2 --progress \
    --json "$telemetry_dir/BENCH_logged.json" >/dev/null 2>&1
build/tools/drs_events "$telemetry_dir/events.jsonl" >/dev/null
dispatches=$(build/tools/drs_events --count fleet.dispatch \
    "$telemetry_dir/events.jsonl")
if [ "$dispatches" -lt 1 ]; then
  echo "FAIL: fleet run logged no fleet.dispatch events"
  exit 1
fi
build/tools/drs_tracecat -o "$telemetry_dir/merged.json" \
    "$telemetry_dir"/trace.w*.j* "$telemetry_dir/trace.coord"
python3 tests/check_trace.py "$telemetry_dir/merged.json"
build/bench/bench_fig2_aila_breakdown --jobs 2 --fleet 2 \
    --json "$telemetry_dir/BENCH_quiet.json" >/dev/null
python3 tests/check_bench_schema.py "$telemetry_dir"/BENCH_*.json
python3 - "$telemetry_dir/BENCH_quiet.json" \
    "$telemetry_dir/BENCH_logged.json" <<'EOF'
import json
import sys


def strip(node):
    """Drop wall-clock + supervision telemetry (resource usage and
    timing are wall-clock facts); simulation results must be
    bit-identical."""
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if k not in ("wall_seconds", "fleet")}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


quiet, logged = (json.load(open(p)) for p in sys.argv[1:3])
for document in (quiet, logged):
    document.pop("options", None)  # --progress / DRS_TRACE provenance
quiet, logged = strip(quiet), strip(logged)
if quiet != logged:
    sys.exit("FAIL: DRS_LOG/DRS_TRACE/--progress changed the bench report")
print("ok   bench report unchanged by the telemetry pipeline")
EOF
rm -rf "$telemetry_dir"

echo; echo "######## profiler: trace + attribution + comparator smoke ########"
echo
cmake --build build -j"$JOBS" --target drs_profile
mkdir -p "$json_dir/profiled"
DRS_SAMPLE=500 DRS_TRACE="$json_dir/trace.json" \
    build/bench/bench_fig2_aila_breakdown --jobs 1 \
    --json "$json_dir/profiled/BENCH_fig2_aila_breakdown.json"
python3 tests/check_trace.py "$json_dir/trace.json"
python3 tests/check_bench_schema.py \
    "$json_dir/profiled/BENCH_fig2_aila_breakdown.json"
build/tools/drs_profile \
    "$json_dir/profiled/BENCH_fig2_aila_breakdown.json" >/dev/null
echo "ok   drs_profile renders the sampled report"
bash tests/check_compare.sh python3 tools/bench_compare.py tests/fixtures

echo; echo "run_checks.sh: all checks passed"
