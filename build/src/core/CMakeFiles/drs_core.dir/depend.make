# Empty dependencies file for drs_core.
# This may be replaced when dependencies are built.
