
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/drs_control.cc" "src/core/CMakeFiles/drs_core.dir/drs_control.cc.o" "gcc" "src/core/CMakeFiles/drs_core.dir/drs_control.cc.o.d"
  "/root/repo/src/core/hw_cost.cc" "src/core/CMakeFiles/drs_core.dir/hw_cost.cc.o" "gcc" "src/core/CMakeFiles/drs_core.dir/hw_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/drs_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
