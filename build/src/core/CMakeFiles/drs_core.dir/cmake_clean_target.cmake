file(REMOVE_RECURSE
  "libdrs_core.a"
)
