file(REMOVE_RECURSE
  "CMakeFiles/drs_core.dir/drs_control.cc.o"
  "CMakeFiles/drs_core.dir/drs_control.cc.o.d"
  "CMakeFiles/drs_core.dir/hw_cost.cc.o"
  "CMakeFiles/drs_core.dir/hw_cost.cc.o.d"
  "libdrs_core.a"
  "libdrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
