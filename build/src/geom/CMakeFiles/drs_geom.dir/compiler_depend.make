# Empty compiler generated dependencies file for drs_geom.
# This may be replaced when dependencies are built.
