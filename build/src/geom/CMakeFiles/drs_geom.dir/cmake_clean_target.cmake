file(REMOVE_RECURSE
  "libdrs_geom.a"
)
