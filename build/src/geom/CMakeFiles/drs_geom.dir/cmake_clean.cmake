file(REMOVE_RECURSE
  "CMakeFiles/drs_geom.dir/aabb.cc.o"
  "CMakeFiles/drs_geom.dir/aabb.cc.o.d"
  "CMakeFiles/drs_geom.dir/sampler.cc.o"
  "CMakeFiles/drs_geom.dir/sampler.cc.o.d"
  "CMakeFiles/drs_geom.dir/triangle.cc.o"
  "CMakeFiles/drs_geom.dir/triangle.cc.o.d"
  "libdrs_geom.a"
  "libdrs_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
