file(REMOVE_RECURSE
  "libdrs_baselines.a"
)
