# Empty compiler generated dependencies file for drs_baselines.
# This may be replaced when dependencies are built.
