file(REMOVE_RECURSE
  "CMakeFiles/drs_baselines.dir/dmk_control.cc.o"
  "CMakeFiles/drs_baselines.dir/dmk_control.cc.o.d"
  "CMakeFiles/drs_baselines.dir/tbc_smx.cc.o"
  "CMakeFiles/drs_baselines.dir/tbc_smx.cc.o.d"
  "libdrs_baselines.a"
  "libdrs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
