file(REMOVE_RECURSE
  "libdrs_kernels.a"
)
