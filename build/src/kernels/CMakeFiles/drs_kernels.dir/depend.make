# Empty dependencies file for drs_kernels.
# This may be replaced when dependencies are built.
