file(REMOVE_RECURSE
  "CMakeFiles/drs_kernels.dir/aila_kernel.cc.o"
  "CMakeFiles/drs_kernels.dir/aila_kernel.cc.o.d"
  "CMakeFiles/drs_kernels.dir/drs_kernel.cc.o"
  "CMakeFiles/drs_kernels.dir/drs_kernel.cc.o.d"
  "CMakeFiles/drs_kernels.dir/generic_kernel.cc.o"
  "CMakeFiles/drs_kernels.dir/generic_kernel.cc.o.d"
  "CMakeFiles/drs_kernels.dir/trav_workspace.cc.o"
  "CMakeFiles/drs_kernels.dir/trav_workspace.cc.o.d"
  "libdrs_kernels.a"
  "libdrs_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
