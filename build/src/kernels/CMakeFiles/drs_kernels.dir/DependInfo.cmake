
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/aila_kernel.cc" "src/kernels/CMakeFiles/drs_kernels.dir/aila_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/drs_kernels.dir/aila_kernel.cc.o.d"
  "/root/repo/src/kernels/drs_kernel.cc" "src/kernels/CMakeFiles/drs_kernels.dir/drs_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/drs_kernels.dir/drs_kernel.cc.o.d"
  "/root/repo/src/kernels/generic_kernel.cc" "src/kernels/CMakeFiles/drs_kernels.dir/generic_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/drs_kernels.dir/generic_kernel.cc.o.d"
  "/root/repo/src/kernels/trav_workspace.cc" "src/kernels/CMakeFiles/drs_kernels.dir/trav_workspace.cc.o" "gcc" "src/kernels/CMakeFiles/drs_kernels.dir/trav_workspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/drs_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/drs_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/drs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
