# Empty dependencies file for drs_bvh.
# This may be replaced when dependencies are built.
