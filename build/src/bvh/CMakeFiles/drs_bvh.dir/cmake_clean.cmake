file(REMOVE_RECURSE
  "CMakeFiles/drs_bvh.dir/builder.cc.o"
  "CMakeFiles/drs_bvh.dir/builder.cc.o.d"
  "CMakeFiles/drs_bvh.dir/bvh.cc.o"
  "CMakeFiles/drs_bvh.dir/bvh.cc.o.d"
  "CMakeFiles/drs_bvh.dir/traverse.cc.o"
  "CMakeFiles/drs_bvh.dir/traverse.cc.o.d"
  "libdrs_bvh.a"
  "libdrs_bvh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_bvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
