file(REMOVE_RECURSE
  "libdrs_bvh.a"
)
