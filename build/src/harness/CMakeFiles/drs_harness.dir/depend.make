# Empty dependencies file for drs_harness.
# This may be replaced when dependencies are built.
