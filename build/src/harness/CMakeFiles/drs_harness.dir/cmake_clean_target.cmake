file(REMOVE_RECURSE
  "libdrs_harness.a"
)
