file(REMOVE_RECURSE
  "CMakeFiles/drs_harness.dir/harness.cc.o"
  "CMakeFiles/drs_harness.dir/harness.cc.o.d"
  "libdrs_harness.a"
  "libdrs_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
