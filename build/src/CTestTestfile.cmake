# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geom")
subdirs("stats")
subdirs("scene")
subdirs("bvh")
subdirs("render")
subdirs("simt")
subdirs("kernels")
subdirs("core")
subdirs("baselines")
subdirs("harness")
