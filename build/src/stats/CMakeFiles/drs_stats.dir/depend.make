# Empty dependencies file for drs_stats.
# This may be replaced when dependencies are built.
