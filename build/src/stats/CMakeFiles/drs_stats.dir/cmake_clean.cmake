file(REMOVE_RECURSE
  "CMakeFiles/drs_stats.dir/histogram.cc.o"
  "CMakeFiles/drs_stats.dir/histogram.cc.o.d"
  "CMakeFiles/drs_stats.dir/table.cc.o"
  "CMakeFiles/drs_stats.dir/table.cc.o.d"
  "libdrs_stats.a"
  "libdrs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
