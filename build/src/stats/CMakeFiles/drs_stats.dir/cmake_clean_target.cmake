file(REMOVE_RECURSE
  "libdrs_stats.a"
)
