# Empty compiler generated dependencies file for drs_render.
# This may be replaced when dependencies are built.
