file(REMOVE_RECURSE
  "libdrs_render.a"
)
