file(REMOVE_RECURSE
  "CMakeFiles/drs_render.dir/image.cc.o"
  "CMakeFiles/drs_render.dir/image.cc.o.d"
  "CMakeFiles/drs_render.dir/path_tracer.cc.o"
  "CMakeFiles/drs_render.dir/path_tracer.cc.o.d"
  "CMakeFiles/drs_render.dir/ray_trace.cc.o"
  "CMakeFiles/drs_render.dir/ray_trace.cc.o.d"
  "libdrs_render.a"
  "libdrs_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
