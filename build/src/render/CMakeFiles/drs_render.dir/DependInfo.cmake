
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/image.cc" "src/render/CMakeFiles/drs_render.dir/image.cc.o" "gcc" "src/render/CMakeFiles/drs_render.dir/image.cc.o.d"
  "/root/repo/src/render/path_tracer.cc" "src/render/CMakeFiles/drs_render.dir/path_tracer.cc.o" "gcc" "src/render/CMakeFiles/drs_render.dir/path_tracer.cc.o.d"
  "/root/repo/src/render/ray_trace.cc" "src/render/CMakeFiles/drs_render.dir/ray_trace.cc.o" "gcc" "src/render/CMakeFiles/drs_render.dir/ray_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/drs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/drs_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/drs_bvh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
