# Empty dependencies file for drs_scene.
# This may be replaced when dependencies are built.
