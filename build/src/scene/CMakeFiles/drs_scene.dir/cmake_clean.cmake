file(REMOVE_RECURSE
  "CMakeFiles/drs_scene.dir/camera.cc.o"
  "CMakeFiles/drs_scene.dir/camera.cc.o.d"
  "CMakeFiles/drs_scene.dir/mesh.cc.o"
  "CMakeFiles/drs_scene.dir/mesh.cc.o.d"
  "CMakeFiles/drs_scene.dir/scene.cc.o"
  "CMakeFiles/drs_scene.dir/scene.cc.o.d"
  "CMakeFiles/drs_scene.dir/scenes.cc.o"
  "CMakeFiles/drs_scene.dir/scenes.cc.o.d"
  "libdrs_scene.a"
  "libdrs_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
