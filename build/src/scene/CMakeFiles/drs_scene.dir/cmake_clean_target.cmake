file(REMOVE_RECURSE
  "libdrs_scene.a"
)
