
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/camera.cc" "src/scene/CMakeFiles/drs_scene.dir/camera.cc.o" "gcc" "src/scene/CMakeFiles/drs_scene.dir/camera.cc.o.d"
  "/root/repo/src/scene/mesh.cc" "src/scene/CMakeFiles/drs_scene.dir/mesh.cc.o" "gcc" "src/scene/CMakeFiles/drs_scene.dir/mesh.cc.o.d"
  "/root/repo/src/scene/scene.cc" "src/scene/CMakeFiles/drs_scene.dir/scene.cc.o" "gcc" "src/scene/CMakeFiles/drs_scene.dir/scene.cc.o.d"
  "/root/repo/src/scene/scenes.cc" "src/scene/CMakeFiles/drs_scene.dir/scenes.cc.o" "gcc" "src/scene/CMakeFiles/drs_scene.dir/scenes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/drs_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
