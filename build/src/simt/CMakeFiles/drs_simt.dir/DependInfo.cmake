
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/cache.cc" "src/simt/CMakeFiles/drs_simt.dir/cache.cc.o" "gcc" "src/simt/CMakeFiles/drs_simt.dir/cache.cc.o.d"
  "/root/repo/src/simt/gpu.cc" "src/simt/CMakeFiles/drs_simt.dir/gpu.cc.o" "gcc" "src/simt/CMakeFiles/drs_simt.dir/gpu.cc.o.d"
  "/root/repo/src/simt/kernel_ir.cc" "src/simt/CMakeFiles/drs_simt.dir/kernel_ir.cc.o" "gcc" "src/simt/CMakeFiles/drs_simt.dir/kernel_ir.cc.o.d"
  "/root/repo/src/simt/memory.cc" "src/simt/CMakeFiles/drs_simt.dir/memory.cc.o" "gcc" "src/simt/CMakeFiles/drs_simt.dir/memory.cc.o.d"
  "/root/repo/src/simt/smx.cc" "src/simt/CMakeFiles/drs_simt.dir/smx.cc.o" "gcc" "src/simt/CMakeFiles/drs_simt.dir/smx.cc.o.d"
  "/root/repo/src/simt/warp.cc" "src/simt/CMakeFiles/drs_simt.dir/warp.cc.o" "gcc" "src/simt/CMakeFiles/drs_simt.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/drs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
