# Empty dependencies file for drs_simt.
# This may be replaced when dependencies are built.
