file(REMOVE_RECURSE
  "CMakeFiles/drs_simt.dir/cache.cc.o"
  "CMakeFiles/drs_simt.dir/cache.cc.o.d"
  "CMakeFiles/drs_simt.dir/gpu.cc.o"
  "CMakeFiles/drs_simt.dir/gpu.cc.o.d"
  "CMakeFiles/drs_simt.dir/kernel_ir.cc.o"
  "CMakeFiles/drs_simt.dir/kernel_ir.cc.o.d"
  "CMakeFiles/drs_simt.dir/memory.cc.o"
  "CMakeFiles/drs_simt.dir/memory.cc.o.d"
  "CMakeFiles/drs_simt.dir/smx.cc.o"
  "CMakeFiles/drs_simt.dir/smx.cc.o.d"
  "CMakeFiles/drs_simt.dir/warp.cc.o"
  "CMakeFiles/drs_simt.dir/warp.cc.o.d"
  "libdrs_simt.a"
  "libdrs_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drs_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
