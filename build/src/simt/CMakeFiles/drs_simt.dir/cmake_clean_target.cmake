file(REMOVE_RECURSE
  "libdrs_simt.a"
)
