# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bvh[1]_include.cmake")
include("/root/repo/build/tests/test_drs_control[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_scene_render[1]_include.cmake")
include("/root/repo/build/tests/test_simt_exec[1]_include.cmake")
include("/root/repo/build/tests/test_simt_ir[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
