file(REMOVE_RECURSE
  "CMakeFiles/test_scene_render.dir/test_scene_render.cc.o"
  "CMakeFiles/test_scene_render.dir/test_scene_render.cc.o.d"
  "test_scene_render"
  "test_scene_render.pdb"
  "test_scene_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
