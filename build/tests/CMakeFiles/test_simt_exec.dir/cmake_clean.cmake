file(REMOVE_RECURSE
  "CMakeFiles/test_simt_exec.dir/test_simt_exec.cc.o"
  "CMakeFiles/test_simt_exec.dir/test_simt_exec.cc.o.d"
  "test_simt_exec"
  "test_simt_exec.pdb"
  "test_simt_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
