# Empty dependencies file for test_simt_exec.
# This may be replaced when dependencies are built.
