file(REMOVE_RECURSE
  "CMakeFiles/test_simt_ir.dir/test_simt_ir.cc.o"
  "CMakeFiles/test_simt_ir.dir/test_simt_ir.cc.o.d"
  "test_simt_ir"
  "test_simt_ir.pdb"
  "test_simt_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
