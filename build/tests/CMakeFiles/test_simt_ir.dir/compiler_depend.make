# Empty compiler generated dependencies file for test_simt_ir.
# This may be replaced when dependencies are built.
