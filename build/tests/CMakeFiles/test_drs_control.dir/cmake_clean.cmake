file(REMOVE_RECURSE
  "CMakeFiles/test_drs_control.dir/test_drs_control.cc.o"
  "CMakeFiles/test_drs_control.dir/test_drs_control.cc.o.d"
  "test_drs_control"
  "test_drs_control.pdb"
  "test_drs_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drs_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
