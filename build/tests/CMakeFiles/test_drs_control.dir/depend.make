# Empty dependencies file for test_drs_control.
# This may be replaced when dependencies are built.
