# Empty compiler generated dependencies file for futurework_generic.
# This may be replaced when dependencies are built.
