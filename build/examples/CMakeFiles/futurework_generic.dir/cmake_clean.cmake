file(REMOVE_RECURSE
  "CMakeFiles/futurework_generic.dir/futurework_generic.cpp.o"
  "CMakeFiles/futurework_generic.dir/futurework_generic.cpp.o.d"
  "futurework_generic"
  "futurework_generic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
