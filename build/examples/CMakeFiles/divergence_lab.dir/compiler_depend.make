# Empty compiler generated dependencies file for divergence_lab.
# This may be replaced when dependencies are built.
