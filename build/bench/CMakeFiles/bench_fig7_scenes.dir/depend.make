# Empty dependencies file for bench_fig7_scenes.
# This may be replaced when dependencies are built.
