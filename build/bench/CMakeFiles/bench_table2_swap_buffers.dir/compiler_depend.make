# Empty compiler generated dependencies file for bench_table2_swap_buffers.
# This may be replaced when dependencies are built.
