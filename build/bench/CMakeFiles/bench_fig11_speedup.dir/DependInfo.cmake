
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_speedup.cc" "bench/CMakeFiles/bench_fig11_speedup.dir/bench_fig11_speedup.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_speedup.dir/bench_fig11_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/drs_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/drs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/drs_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/drs_render.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/drs_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/drs_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/drs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/drs_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
