# Empty compiler generated dependencies file for bench_fig2_aila_breakdown.
# This may be replaced when dependencies are built.
