# Empty compiler generated dependencies file for bench_fig10_simd_breakdown.
# This may be replaced when dependencies are built.
