# Empty dependencies file for bench_fig9_rdctrl_stalls.
# This may be replaced when dependencies are built.
