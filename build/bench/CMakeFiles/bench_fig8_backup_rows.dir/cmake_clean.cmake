file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_backup_rows.dir/bench_fig8_backup_rows.cc.o"
  "CMakeFiles/bench_fig8_backup_rows.dir/bench_fig8_backup_rows.cc.o.d"
  "bench_fig8_backup_rows"
  "bench_fig8_backup_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_backup_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
