# Empty dependencies file for bench_fig8_backup_rows.
# This may be replaced when dependencies are built.
