file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_overhead.dir/bench_hw_overhead.cc.o"
  "CMakeFiles/bench_hw_overhead.dir/bench_hw_overhead.cc.o.d"
  "bench_hw_overhead"
  "bench_hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
