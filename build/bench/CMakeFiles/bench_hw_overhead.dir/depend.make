# Empty dependencies file for bench_hw_overhead.
# This may be replaced when dependencies are built.
