#pragma once

/**
 * @file
 * Fixed-width text table and CSV emitters used by the benchmark harness to
 * print paper-style tables and figure series.
 */

#include <ostream>
#include <string>
#include <vector>

namespace drs::stats {

/**
 * A simple table: a header row plus data rows, rendered with aligned
 * columns or as CSV. Cells are strings; helpers format numbers.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; it is padded/truncated to the header width. */
    void addRow(std::vector<std::string> row);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return header_.size(); }
    const std::vector<std::string> &row(std::size_t i) const { return rows_.at(i); }
    const std::vector<std::string> &header() const { return header_; }

    /** Render with aligned fixed-width columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no quoting; cells must not contain commas). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p v with @p digits digits after the decimal point. */
std::string formatDouble(double v, int digits = 2);

/** Format @p v as a percentage (e.g. 0.4106 -> "41.06%"). */
std::string formatPercent(double v, int digits = 2);

} // namespace drs::stats
