#include "stats/histogram.h"

#include <cassert>

namespace drs::stats {

void
ActiveThreadHistogram::recordInstruction(int active, bool spawn_related)
{
    assert(active >= 0 && active <= kWarpSize);
    ++instructions_;
    activeThreads_ += static_cast<std::uint64_t>(active);
    exact_[active] += 1;
    if (spawn_related) {
        ++spawnInstructions_;
        return;
    }
    if (active > 0) {
        int bucket = (active - 1) / 8;
        buckets_[bucket] += 1;
    }
}

double
ActiveThreadHistogram::simdEfficiency() const
{
    if (instructions_ == 0)
        return 0.0;
    return static_cast<double>(activeThreads_) /
           (static_cast<double>(instructions_) * kWarpSize);
}

double
ActiveThreadHistogram::bucketFraction(int b) const
{
    assert(b >= 0 && b < kNumBuckets);
    if (instructions_ == 0)
        return 0.0;
    return static_cast<double>(buckets_[b]) / static_cast<double>(instructions_);
}

double
ActiveThreadHistogram::spawnFraction() const
{
    if (instructions_ == 0)
        return 0.0;
    return static_cast<double>(spawnInstructions_) /
           static_cast<double>(instructions_);
}

void
ActiveThreadHistogram::merge(const ActiveThreadHistogram &other)
{
    instructions_ += other.instructions_;
    spawnInstructions_ += other.spawnInstructions_;
    activeThreads_ += other.activeThreads_;
    for (int i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    for (int i = 0; i <= kWarpSize; ++i)
        exact_[i] += other.exact_[i];
}

void
ActiveThreadHistogram::reset()
{
    *this = ActiveThreadHistogram{};
}

std::string
ActiveThreadHistogram::bucketLabel(int b)
{
    switch (b) {
      case 0: return "W1:8";
      case 1: return "W9:16";
      case 2: return "W17:24";
      case 3: return "W25:32";
      default: return "W?";
    }
}

} // namespace drs::stats
