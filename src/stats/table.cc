#include "stats/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace drs::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::addRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
formatDouble(double v, int digits)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(digits) << v;
    return ss.str();
}

std::string
formatPercent(double v, int digits)
{
    return formatDouble(v * 100.0, digits) + "%";
}

} // namespace drs::stats
