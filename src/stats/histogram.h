#pragma once

/**
 * @file
 * Counters and the active-thread histogram used to report SIMD efficiency
 * the way the paper does (categories Wm:n = fraction of issued warp
 * instructions with m..n active threads).
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace drs::stats {

/** A saturating 64-bit event counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Histogram of active-thread counts per issued warp instruction.
 *
 * Bucketed into the paper's four categories (W1:8, W9:16, W17:24, W25:32)
 * plus exact per-count tallies for finer analysis. Instructions tagged as
 * "spawn-related" (the DMK's SI category) are tracked separately so the
 * Figure 10 breakdown can single them out.
 */
class ActiveThreadHistogram
{
  public:
    static constexpr int kWarpSize = 32;
    static constexpr int kNumBuckets = 4;

    /** Record one issued warp instruction with @p active threads enabled. */
    void recordInstruction(int active, bool spawn_related = false);

    /** Number of warp instructions issued (including spawn-related). */
    std::uint64_t instructions() const { return instructions_; }

    /** Number of spawn-related warp instructions issued. */
    std::uint64_t spawnInstructions() const { return spawnInstructions_; }

    /** Sum of active threads over all issued instructions. */
    std::uint64_t activeThreads() const { return activeThreads_; }

    /**
     * SIMD efficiency: sum(active threads) / (instructions * 32).
     * Returns 0 when no instructions were issued.
     */
    double simdEfficiency() const;

    /**
     * Fraction of issued instructions in bucket @p b, where bucket 0 is
     * W1:8, 1 is W9:16, 2 is W17:24 and 3 is W25:32. Excludes
     * spawn-related instructions (reported via spawnFraction()).
     */
    double bucketFraction(int b) const;

    /** Fraction of issued instructions that are spawn-related (SI). */
    double spawnFraction() const;

    /** Exact tally for instructions with exactly @p active threads. */
    std::uint64_t exactCount(int active) const { return exact_.at(active); }

    /** Raw tally of bucket @p b (see bucketFraction for the numbering). */
    std::uint64_t bucketCount(int b) const
    {
        return buckets_.at(static_cast<std::size_t>(b));
    }

    /**
     * Rebuild a histogram from previously exported raw tallies (the
     * sweep journal's lossless SimStats round trip). The inverse of
     * reading instructions()/spawnInstructions()/activeThreads()/
     * bucketCount()/exactCount().
     */
    void restore(std::uint64_t instructions, std::uint64_t spawn_instructions,
                 std::uint64_t active_threads,
                 const std::array<std::uint64_t, kNumBuckets> &buckets,
                 const std::array<std::uint64_t, kWarpSize + 1> &exact)
    {
        instructions_ = instructions;
        spawnInstructions_ = spawn_instructions;
        activeThreads_ = active_threads;
        buckets_ = buckets;
        exact_ = exact;
    }

    /** Merge another histogram into this one. */
    void merge(const ActiveThreadHistogram &other);

    void reset();

    /** Human-readable bucket label, e.g. "W1:8". */
    static std::string bucketLabel(int b);

    /** Exact counter equality (determinism regression tests). */
    bool operator==(const ActiveThreadHistogram &) const = default;

  private:
    std::uint64_t instructions_ = 0;
    std::uint64_t spawnInstructions_ = 0;
    std::uint64_t activeThreads_ = 0;
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::array<std::uint64_t, kWarpSize + 1> exact_{};
};

/** Simple running mean of a stream of values. */
class RunningMean
{
  public:
    void add(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    std::uint64_t count() const { return count_; }
    void reset() { sum_ = 0.0; count_ = 0; }

    void merge(const RunningMean &o)
    {
        sum_ += o.sum_;
        count_ += o.count_;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

} // namespace drs::stats
