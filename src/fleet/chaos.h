#pragma once

/**
 * @file
 * Chaos harness for the fleet: seeded, deterministic worker-killing.
 * The point of a supervised multi-process sweep is that worker death is
 * a routine event; this module makes death routine on demand so the
 * recovery path is exercised constantly, with the acceptance bar that
 * chaos never changes merged results — only wall-clock.
 *
 * Two injection styles:
 *
 *  - Random kills (DRS_FLEET_CHAOS=<seed>): on each job dispatch the
 *    worker rolls mixSeed(seed, job, dispatch) against killRate and, on
 *    a hit, arms a detached thread that SIGKILLs the worker process
 *    after a seeded random delay — mid-simulation at an arbitrary
 *    cycle, mid-result-write, or while idle, whatever the timing lands
 *    on. Rolls only fire while dispatch <= maxKillDispatches, so every
 *    job is guaranteed to eventually run on a dispatch with no kill
 *    scheduled and the fleet always converges to the clean-run results.
 *
 *  - Targeted hooks (tests): killJobEveryDispatch SIGKILLs the worker
 *    synchronously on every claim of one job (drives quarantine);
 *    hangJobFirstDispatch wedges the worker — heartbeats stop, the
 *    claim never completes — on the first dispatch of one job (drives
 *    the heartbeat-timeout re-dispatch path); hangEveryClaim wedges
 *    every worker on any claim (drives the cancelled-fleet orphan
 *    reaping path).
 *
 * The decision is a pure function of (seed, job, dispatch): which
 * dispatches die is reproducible run to run, while the wall-clock kill
 * point still lands at an effectively random simulated cycle.
 */

#include <cstddef>
#include <cstdint>

namespace drs::fleet {

struct ChaosConfig
{
    /** Master seed; 0 disables random kills (targeted hooks still work). */
    std::uint64_t seed = 0;
    /** Kill probability per (job, dispatch) roll. */
    double killRate = 0.5;
    /**
     * Random kills only roll while dispatch <= this, so re-dispatches
     * eventually run kill-free and the sweep converges.
     */
    int maxKillDispatches = 2;
    /** Upper bound on the armed kill delay (microseconds). */
    std::uint32_t maxKillDelayMicros = 20'000;

    /** Test hook: SIGKILL on every dispatch of this job (-1 = off). */
    int killJobEveryDispatch = -1;
    /** Test hook: wedge on the first dispatch of this job (-1 = off). */
    int hangJobFirstDispatch = -1;
    /** Test hook: wedge on every claim (cancelled-fleet orphan tests). */
    bool hangEveryClaim = false;

    bool enabled() const
    {
        return seed != 0 || killJobEveryDispatch >= 0 ||
               hangJobFirstDispatch >= 0 || hangEveryClaim;
    }

    /**
     * DRS_FLEET_CHAOS (seed, decimal or 0x-hex; 0/unset = off),
     * DRS_FLEET_CHAOS_RATE (kill probability in [0, 1]),
     * DRS_FLEET_CHAOS_KILLS (max kill dispatches). Malformed values
     * warn on stderr and are ignored, like every other DRS_* knob.
     */
    static ChaosConfig fromEnvironment();
};

/** What one claimed dispatch should do to its worker. */
struct ChaosPlan
{
    /** SIGKILL the worker process. */
    bool kill = false;
    /** Delay before the kill fires (0 = synchronous, before the job). */
    std::uint32_t delayMicros = 0;
    /** Wedge: stop heartbeats and never finish the claim. */
    bool hang = false;

    bool armed() const { return kill || hang; }
};

/** Deterministic plan for one (job, dispatch) claim. */
ChaosPlan chaosPlanFor(const ChaosConfig &config, std::size_t job,
                       int dispatch);

} // namespace drs::fleet
