#include "fleet/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace drs::fleet {

bool
validMsgType(std::uint32_t raw)
{
    return raw >= static_cast<std::uint32_t>(MsgType::Hello) &&
           raw <= static_cast<std::uint32_t>(MsgType::Telemetry);
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
    case MsgType::Hello:
        return "hello";
    case MsgType::Claim:
        return "claim";
    case MsgType::Heartbeat:
        return "heartbeat";
    case MsgType::Result:
        return "result";
    case MsgType::Shutdown:
        return "shutdown";
    case MsgType::Telemetry:
        return "telemetry";
    }
    return "unknown";
}

namespace {

void
putU32(std::string &out, std::uint32_t value)
{
    char bytes[4];
    std::memcpy(bytes, &value, sizeof value);
    out.append(bytes, sizeof value);
}

std::uint32_t
getU32(const char *data)
{
    std::uint32_t value;
    std::memcpy(&value, data, sizeof value);
    return value;
}

constexpr std::size_t kHeaderBytes = 12;

} // namespace

std::string
encodeFrame(MsgType type, std::string_view payload)
{
    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    putU32(out, kFrameMagic);
    putU32(out, static_cast<std::uint32_t>(type));
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    return out;
}

void
FrameParser::feed(const char *data, std::size_t size)
{
    if (!corrupt_)
        buffer_.append(data, size);
}

std::optional<Frame>
FrameParser::next()
{
    if (corrupt_ || buffer_.size() < kHeaderBytes)
        return std::nullopt;
    const std::uint32_t magic = getU32(buffer_.data());
    const std::uint32_t raw_type = getU32(buffer_.data() + 4);
    const std::uint32_t length = getU32(buffer_.data() + 8);
    if (magic != kFrameMagic) {
        corrupt_ = true;
        corruptReason_ = "bad frame magic";
        return std::nullopt;
    }
    if (!validMsgType(raw_type)) {
        corrupt_ = true;
        corruptReason_ =
            "unknown message type " + std::to_string(raw_type);
        return std::nullopt;
    }
    if (length > kMaxPayloadBytes) {
        corrupt_ = true;
        corruptReason_ =
            "oversized payload (" + std::to_string(length) + " bytes)";
        return std::nullopt;
    }
    if (buffer_.size() < kHeaderBytes + length)
        return std::nullopt;
    Frame frame;
    frame.type = static_cast<MsgType>(raw_type);
    frame.payload = buffer_.substr(kHeaderBytes, length);
    buffer_.erase(0, kHeaderBytes + length);
    return frame;
}

bool
writeAll(int fd, std::string_view data)
{
    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, MsgType type, std::string_view payload)
{
    return writeAll(fd, encodeFrame(type, payload));
}

} // namespace drs::fleet
