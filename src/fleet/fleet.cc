#include "fleet/fleet.h"

#include "exec/cancel.h"
#include "fault/fault.h"
#include "fleet/protocol.h"
#include "obs/log.h"
#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace drs::fleet {

namespace {

using Clock = std::chrono::steady_clock;
using harness::SweepJob;
using harness::SweepResult;

/** Salt for the re-dispatch backoff jitter draw (distinct from the
 * retry jitter inside SweepRunner and from the chaos rolls). */
constexpr std::uint64_t kRedispatchJitterSalt = 0x666c65656a697400ULL;

Clock::duration
secondsToDuration(double seconds)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
}

/** Deterministic jitter factor in [0.5, 1.0) for one re-dispatch. */
double
redispatchJitter(std::uint64_t seed, std::size_t job, int dispatch)
{
    const std::uint64_t mixed =
        fault::mixSeed(seed ^ kRedispatchJitterSalt, job, dispatch);
    const double unit = static_cast<double>(mixed >> 11) * 0x1.0p-53;
    return 0.5 + 0.5 * unit;
}

bool
parseEnvInt(const char *name, long long min, long long max, long long *out)
{
    const char *text = std::getenv(name);
    if (!text)
        return false;
    char *end = nullptr;
    errno = 0;
    const long long value = std::strtoll(text, &end, 0);
    if (errno != 0 || end == text || *end != '\0' || value < min ||
        value > max) {
        std::fprintf(stderr, "fleet: ignoring malformed %s=%s\n", name, text);
        return false;
    }
    *out = value;
    return true;
}

bool
parseEnvSeconds(const char *name, double *out)
{
    const char *text = std::getenv(name);
    if (!text)
        return false;
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' || value < 0.0) {
        std::fprintf(stderr, "fleet: ignoring malformed %s=%s\n", name, text);
        return false;
    }
    *out = value;
    return true;
}

// --------------------------------------------------------------------
// Signal plumbing. The coordinator's handlers only set a flag that the
// supervision loop polls; the worker's handlers trip a process-wide
// CancelToken that every in-flight simulation attempt is chained under
// (SweepOptions::cancel), so a SIGTERM aborts the current job at its
// next cancellation poll instead of waiting out the simulation.
// --------------------------------------------------------------------

volatile std::sig_atomic_t g_stopRequested = 0;

void
coordinatorStopHandler(int)
{
    g_stopRequested = 1;
}

exec::CancelToken g_workerCancel;

void
workerStopHandler(int)
{
    g_workerCancel.requestCancel();
}

// --------------------------------------------------------------------
// Worker process
// --------------------------------------------------------------------

/**
 * Body of one worker process; never returns. The worker inherits the
 * full jobs vector through fork(), so a claim only names a grid index —
 * and runs it with SweepRunner::runJob(job, index), which is the whole
 * bit-identity argument: the worker derives exactly the fault seeds the
 * single-process sweep would.
 */
[[noreturn]] void
workerMain(int readFd, int writeFd, int workerId, int generation,
           const harness::ExperimentScale &scale,
           harness::SweepOptions sweep, const ChaosConfig &chaos,
           const std::vector<SweepJob> &jobs, double heartbeatSeconds)
{
#ifdef __linux__
    // Die with the coordinator, even when it is SIGKILLed (or chaos
    // _Exit()s it): no orphaned simulators, ever.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1)
        ::_exit(0); // coordinator died between fork and prctl
#endif
    struct sigaction stop {};
    stop.sa_handler = workerStopHandler;
    ::sigemptyset(&stop.sa_mask);
    stop.sa_flags = 0; // no SA_RESTART: blocked reads return EINTR
    ::sigaction(SIGTERM, &stop, nullptr);
    ::sigaction(SIGINT, &stop, nullptr);
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigemptyset(&ignore.sa_mask);
    ::sigaction(SIGPIPE, &ignore, nullptr);

    // The coordinator is the only journal writer; the worker reports
    // results over the pipe and keeps every other robustness knob
    // (faults, watchdog, timeouts, retry) exactly as configured.
    sweep.journalPath.clear();
    sweep.resume = false;
    sweep.crashAfter = 0;
    sweep.cancel = &g_workerCancel;
    sweep.progress = nullptr; // only the coordinator reports progress
    harness::SweepRunner runner(scale, 1, sweep);

    std::mutex writeMutex; // heartbeat thread vs. result writes
    std::atomic<long long> beatJob{-1};
    std::atomic<bool> wedged{false};
    std::atomic<std::uint64_t> beatLagMicros{0}; // worst loop overrun

    {
        obs::Json hello = obs::Json::object();
        hello["worker"] = obs::Json(workerId);
        hello["generation"] = obs::Json(generation);
        hello["pid"] = obs::Json(static_cast<long long>(::getpid()));
        std::lock_guard<std::mutex> lock(writeMutex);
        if (!writeFrame(writeFd, MsgType::Hello, hello.dump()))
            ::_exit(0);
    }

    // Beat from the first instant, independent of scene builds and
    // simulation: heartbeat silence means "wedged", never "busy". The
    // loop also measures its own overrun past the nominal period — a
    // proxy for scheduler starvation on an overloaded host — which the
    // Telemetry frames report as heartbeat_lag_us.
    std::thread([writeFd, heartbeatSeconds, &writeMutex, &beatJob, &wedged,
                 &beatLagMicros] {
        const double periodSeconds =
            heartbeatSeconds > 0 ? heartbeatSeconds : 0.25;
        const auto period = secondsToDuration(periodSeconds);
        auto lastWake = Clock::now();
        for (;;) {
            if (wedged.load(std::memory_order_acquire))
                return; // chaos hang: go silent so the deadline trips
            {
                obs::Json beat = obs::Json::object();
                beat["job"] =
                    obs::Json(beatJob.load(std::memory_order_acquire));
                std::lock_guard<std::mutex> lock(writeMutex);
                if (!writeFrame(writeFd, MsgType::Heartbeat, beat.dump()))
                    return;
            }
            std::this_thread::sleep_for(period);
            const auto now = Clock::now();
            const double lag =
                std::chrono::duration<double>(now - lastWake).count() -
                periodSeconds;
            lastWake = now;
            if (lag > 0) {
                const auto lagMicros =
                    static_cast<std::uint64_t>(lag * 1e6);
                std::uint64_t prev =
                    beatLagMicros.load(std::memory_order_relaxed);
                while (lagMicros > prev &&
                       !beatLagMicros.compare_exchange_weak(
                           prev, lagMicros, std::memory_order_relaxed)) {
                }
            }
        }
    }).detach();

    FrameParser parser;
    char buffer[4096];
    for (;;) {
        if (g_workerCancel.cancelled())
            ::_exit(0);
        const ssize_t n = ::read(readFd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR)
                continue; // SIGTERM lands here; loop re-checks the token
            ::_exit(0);
        }
        if (n == 0)
            ::_exit(0); // coordinator closed its end
        parser.feed(buffer, static_cast<std::size_t>(n));
        while (auto frame = parser.next()) {
            if (frame->type == MsgType::Shutdown)
                ::_exit(0);
            if (frame->type != MsgType::Claim)
                continue;
            std::string parseError;
            const auto claim = obs::Json::parse(frame->payload, &parseError);
            const obs::Json *jobField = claim ? claim->find("job") : nullptr;
            const obs::Json *dispatchField =
                claim ? claim->find("dispatch") : nullptr;
            if (!jobField || !dispatchField)
                ::_exit(64);
            const std::size_t index =
                static_cast<std::size_t>(jobField->asUint());
            const int dispatch = static_cast<int>(dispatchField->asUint());
            if (index >= jobs.size())
                ::_exit(64);

            {
                obs::Json data = obs::Json::object();
                data["worker"] = obs::Json(workerId);
                data["job"] =
                    obs::Json(static_cast<unsigned long long>(index));
                data["dispatch"] = obs::Json(dispatch);
                obs::logEvent(obs::LogLevel::Debug, "fleet", "claim",
                              std::move(data));
            }

            const ChaosPlan plan = chaosPlanFor(chaos, index, dispatch);
            if (plan.hang) {
                obs::Json data = obs::Json::object();
                data["worker"] = obs::Json(workerId);
                data["job"] =
                    obs::Json(static_cast<unsigned long long>(index));
                obs::logEvent(obs::LogLevel::Warn, "chaos", "hang",
                              std::move(data));
                wedged.store(true, std::memory_order_release);
                for (;;)
                    ::pause();
            }
            if (plan.kill) {
                obs::Json data = obs::Json::object();
                data["worker"] = obs::Json(workerId);
                data["job"] =
                    obs::Json(static_cast<unsigned long long>(index));
                data["delay_us"] =
                    obs::Json(static_cast<unsigned long long>(
                        plan.delayMicros));
                obs::logEvent(obs::LogLevel::Warn, "chaos", "kill",
                              std::move(data));
                if (plan.delayMicros == 0) {
                    ::kill(::getpid(), SIGKILL);
                } else {
                    // Delayed kill on a detached thread: it lands at an
                    // arbitrary simulated cycle of the job below (or
                    // right in the middle of the result write).
                    const std::uint32_t delay = plan.delayMicros;
                    std::thread([delay] {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(delay));
                        ::kill(::getpid(), SIGKILL);
                    }).detach();
                }
            }

            beatJob.store(static_cast<long long>(index),
                          std::memory_order_release);
            // Per-claim trace shard: every (worker, job) pair writes its
            // own file, so a worker's later jobs never overwrite earlier
            // shards and tools/drs_tracecat can stitch them all. Pure
            // observer — the path never feeds back into the simulation.
            SweepJob job = jobs[index];
            if (job.config.trace.enabled && !job.config.trace.path.empty())
                job.config.trace.path += ".w" + std::to_string(workerId) +
                                         ".j" + std::to_string(index);
            SweepResult result;
            try {
                result = runner.runJob(job, index);
            } catch (const std::exception &e) {
                // runJob handles its own failures; this is a backstop
                // (e.g. bad_alloc while preparing the scene).
                result.failed = true;
                result.error = e.what();
            }
            beatJob.store(-1, std::memory_order_release);
            if (g_workerCancel.cancelled())
                ::_exit(0); // never report a cancellation as an outcome
            const obs::Json record = harness::sweepResultToJson(
                index, harness::SweepRunner::jobKey(jobs[index]), result);
            {
                std::lock_guard<std::mutex> lock(writeMutex);
                if (!writeFrame(writeFd, MsgType::Result, record.dump()))
                    ::_exit(0);
            }
            // Resource digest for the job just reported. getrusage gives
            // cumulative per-process values; the coordinator keeps each
            // worker's latest sample (see handleTelemetry). Sent after
            // the Result on purpose: losing the digest to a kill must
            // never lose the result.
            struct rusage usage
            {
            };
            ::getrusage(RUSAGE_SELF, &usage);
            obs::Json digest = obs::Json::object();
            digest["worker"] = obs::Json(workerId);
            digest["job"] = obs::Json(static_cast<unsigned long long>(index));
            digest["seconds"] = obs::Json(result.seconds);
            digest["cycles"] = obs::Json(
                static_cast<unsigned long long>(result.stats.cycles));
            digest["rays"] = obs::Json(
                static_cast<unsigned long long>(result.stats.raysTraced));
            digest["peak_rss_kb"] = obs::Json(
                static_cast<unsigned long long>(usage.ru_maxrss));
            digest["user_cpu_s"] =
                obs::Json(static_cast<double>(usage.ru_utime.tv_sec) +
                          static_cast<double>(usage.ru_utime.tv_usec) * 1e-6);
            digest["sys_cpu_s"] =
                obs::Json(static_cast<double>(usage.ru_stime.tv_sec) +
                          static_cast<double>(usage.ru_stime.tv_usec) * 1e-6);
            digest["heartbeat_lag_us"] =
                obs::Json(static_cast<unsigned long long>(
                    beatLagMicros.load(std::memory_order_relaxed)));
            {
                std::lock_guard<std::mutex> lock(writeMutex);
                if (!writeFrame(writeFd, MsgType::Telemetry, digest.dump()))
                    ::_exit(0);
            }
        }
        if (parser.corrupt())
            ::_exit(64);
    }
}

// --------------------------------------------------------------------
// Coordinator
// --------------------------------------------------------------------

enum class JobState : unsigned char {
    Pending,     ///< waiting for a worker (readyAt gates re-dispatch)
    Inflight,    ///< claimed by a live worker
    Done,        ///< result recorded (run, replayed, or failed in-worker)
    Quarantined, ///< killed too many workers; recorded failed
    Degraded,    ///< fleet exhausted before it could run; recorded failed
    Cancelled,   ///< run stopped by SIGTERM/SIGINT or a cancel token
};

bool
terminal(JobState state)
{
    return state != JobState::Pending && state != JobState::Inflight;
}

struct JobSlot
{
    JobState state = JobState::Pending;
    int dispatches = 0; ///< claims sent (1-based dispatch counter)
    int deaths = 0;     ///< workers that died holding this job
    Clock::time_point readyAt{}; ///< earliest next dispatch
};

struct WorkerState
{
    pid_t pid = -1;
    int toFd = -1;   ///< coordinator -> worker (claims, shutdown)
    int fromFd = -1; ///< worker -> coordinator (hello, beats, results)
    int id = 0;
    int generation = 0; ///< 0 = initial crew, N = Nth replacement
    FrameParser parser;
    bool alive = false;
    bool ready = false;  ///< Hello received
    long long job = -1;  ///< inflight grid index, -1 = idle
    Clock::time_point lastBeat{};
    /** Latest cumulative CPU sample from a Telemetry frame. */
    double userCpuSeconds = 0.0;
    double sysCpuSeconds = 0.0;
    /** Trace-relative dispatch time of the open claim (microseconds). */
    std::uint64_t claimTsMicros = 0;
    int claimDispatch = 0; ///< dispatch counter of the open claim; 0 = none
};

/** All mutable state of one FleetCoordinator::run, single-threaded. */
struct FleetRun
{
    const harness::ExperimentScale &scale;
    const harness::SweepOptions &sweep;
    const FleetOptions &options;
    FleetSummary &summary;
    const std::vector<SweepJob> &jobs;
    std::vector<SweepResult> &results;

    std::vector<JobSlot> slots;
    std::vector<WorkerState> workers;
    harness::SweepJournal journal;
    int nextWorkerId = 0;
    int generationCounter = 0;
    bool readyHookFired = false;
    bool spawnBroken = false;

    // Cross-process trace stitching: job-lifecycle spans and supervision
    // instants on the coordinator's own timeline (pid 0, tid = worker
    // id), written to "<tracePath>.coord" after the run.
    struct CoordSpan
    {
        std::string name;
        int tid = 0;
        std::uint64_t ts = 0;
        std::uint64_t dur = 1;
    };
    struct CoordInstant
    {
        std::string name;
        int tid = 0;
        std::uint64_t ts = 0;
    };
    std::vector<CoordSpan> traceSpans;
    std::vector<CoordInstant> traceInstants;
    const std::uint64_t traceEpochMicros = obs::logNowMicros();

    // Live progress: EWMA over inter-completion wall deltas drives the
    // ETA; emits are throttled except on completions/terminal events.
    Clock::time_point runStart = Clock::now();
    Clock::time_point lastProgressEmit{};
    Clock::time_point lastCompletion{};
    double ewmaJobInterval = -1.0;

    FleetRun(const harness::ExperimentScale &scale_,
             const harness::SweepOptions &sweep_,
             const FleetOptions &options_, FleetSummary &summary_,
             const std::vector<SweepJob> &jobs_,
             std::vector<SweepResult> &results_)
        : scale(scale_), sweep(sweep_), options(options_), summary(summary_),
          jobs(jobs_), results(results_), slots(jobs_.size())
    {
    }

    bool tracing() const { return !options.tracePath.empty(); }

    std::uint64_t traceNow() const
    {
        return obs::logNowMicros() - traceEpochMicros;
    }

    void traceInstant(std::string name, int tid)
    {
        if (tracing())
            traceInstants.push_back({std::move(name), tid, traceNow()});
    }

    /** Close the span of @p worker's open claim (job done or lost). */
    void closeJobSpan(WorkerState &worker, const char *suffix)
    {
        if (worker.claimDispatch == 0)
            return;
        if (tracing() && worker.job >= 0) {
            CoordSpan span;
            span.name = "job " + std::to_string(worker.job) + " d" +
                        std::to_string(worker.claimDispatch) + suffix;
            span.tid = worker.id;
            span.ts = worker.claimTsMicros;
            span.dur = std::max<std::uint64_t>(
                1, traceNow() - worker.claimTsMicros);
            traceSpans.push_back(std::move(span));
        }
        worker.claimDispatch = 0;
        worker.claimTsMicros = 0;
    }

    void noteCompletion()
    {
        const auto now = Clock::now();
        const double delta = std::chrono::duration<double>(
                                 now - (lastCompletion.time_since_epoch()
                                                .count() != 0
                                            ? lastCompletion
                                            : runStart))
                                 .count();
        ewmaJobInterval = ewmaJobInterval < 0
                              ? delta
                              : 0.7 * ewmaJobInterval + 0.3 * delta;
        lastCompletion = now;
        emitProgress(true);
    }

    void emitProgress(bool force)
    {
        if (!options.onProgress)
            return;
        const auto now = Clock::now();
        if (!force && lastProgressEmit.time_since_epoch().count() != 0 &&
            now - lastProgressEmit < std::chrono::milliseconds(200))
            return;
        lastProgressEmit = now;
        FleetProgress progress;
        progress.jobsTotal = jobs.size();
        for (std::size_t j = 0; j < slots.size(); ++j) {
            switch (slots[j].state) {
            case JobState::Inflight:
                ++progress.jobsInflight;
                break;
            case JobState::Done:
                ++progress.jobsDone;
                if (results[j].failed)
                    ++progress.jobsFailed;
                break;
            case JobState::Quarantined:
            case JobState::Degraded:
            case JobState::Cancelled:
                ++progress.jobsDone;
                ++progress.jobsFailed;
                break;
            case JobState::Pending:
                break;
            }
        }
        progress.workersAlive = aliveCount();
        for (const WorkerState &worker : workers)
            progress.workersRunning +=
                (worker.alive && worker.job >= 0) ? 1 : 0;
        progress.workerDeaths = summary.workerDeaths;
        progress.degraded = summary.degradedJobs;
        progress.elapsedSeconds =
            std::chrono::duration<double>(now - runStart).count();
        const std::size_t remaining =
            progress.jobsTotal - progress.jobsDone;
        if (ewmaJobInterval >= 0 && remaining > 0)
            progress.etaSeconds =
                ewmaJobInterval * static_cast<double>(remaining);
        else if (remaining == 0)
            progress.etaSeconds = 0.0;
        options.onProgress(progress);
    }

    int aliveCount() const
    {
        int n = 0;
        for (const WorkerState &w : workers)
            n += w.alive ? 1 : 0;
        return n;
    }

    std::size_t remainingJobs() const
    {
        std::size_t n = 0;
        for (const JobSlot &slot : slots)
            n += terminal(slot.state) ? 0 : 1;
        return n;
    }

    bool allTerminal() const { return remainingJobs() == 0; }

    bool stopRequested() const
    {
        return g_stopRequested != 0 ||
               (sweep.cancel != nullptr && sweep.cancel->cancelled());
    }

    bool fleetExhausted() const
    {
        return aliveCount() == 0 &&
               (spawnBroken || summary.respawned >= options.maxRespawns);
    }

    bool spawnWorker(bool replacement)
    {
        int toPipe[2];
        int fromPipe[2];
        if (::pipe(toPipe) != 0) {
            spawnFailed("pipe", std::strerror(errno));
            return false;
        }
        if (::pipe(fromPipe) != 0) {
            spawnFailed("pipe", std::strerror(errno));
            ::close(toPipe[0]);
            ::close(toPipe[1]);
            return false;
        }
        const int id = nextWorkerId++;
        const int generation = replacement ? ++generationCounter : 0;
        const pid_t pid = ::fork();
        if (pid < 0) {
            spawnFailed("fork", std::strerror(errno));
            ::close(toPipe[0]);
            ::close(toPipe[1]);
            ::close(fromPipe[0]);
            ::close(fromPipe[1]);
            return false;
        }
        if (pid == 0) {
            // Child: keep only our two pipe ends. Holding another
            // worker's fds would mask its EOF; holding the journal fd
            // would let a child write where only the coordinator may.
            ::close(toPipe[1]);
            ::close(fromPipe[0]);
            journal.close();
            for (WorkerState &other : workers)
                if (other.alive) {
                    ::close(other.toFd);
                    ::close(other.fromFd);
                }
            workerMain(toPipe[0], fromPipe[1], id, generation, scale, sweep,
                       options.chaos, jobs, options.heartbeatSeconds);
        }
        ::close(toPipe[0]);
        ::close(fromPipe[1]);
        WorkerState worker;
        worker.pid = pid;
        worker.toFd = toPipe[1];
        worker.fromFd = fromPipe[0];
        worker.id = id;
        worker.generation = generation;
        worker.alive = true;
        worker.lastBeat = Clock::now();
        workers.push_back(std::move(worker));
        ++summary.spawned;
        {
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(id);
            data["pid"] = obs::Json(static_cast<long long>(pid));
            data["generation"] = obs::Json(generation);
            obs::logEvent(obs::LogLevel::Info, "fleet", "spawn",
                          std::move(data));
        }
        if (replacement) {
            ++summary.respawned;
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(id);
            data["pid"] = obs::Json(static_cast<long long>(pid));
            data["generation"] = obs::Json(generation);
            data["respawns_used"] = obs::Json(summary.respawned);
            data["respawn_budget"] = obs::Json(options.maxRespawns);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "respawn",
                          std::move(data));
            traceInstant("respawn w" + std::to_string(id), id);
        }
        return true;
    }

    void spawnFailed(const char *stage, const char *error)
    {
        obs::Json data = obs::Json::object();
        data["stage"] = obs::Json(stage);
        data["error"] = obs::Json(error);
        obs::logEvent(obs::LogLevel::Error, "fleet", "spawn_failed",
                      std::move(data));
    }

    void journalRecord(std::size_t index)
    {
        if (!journal.isOpen())
            return;
        const obs::Json entry = harness::sweepResultToJson(
            index, harness::SweepRunner::jobKey(jobs[index]), results[index]);
        std::string error;
        if (!journal.append(entry, &error)) {
            obs::Json data = obs::Json::object();
            data["error"] = obs::Json(error);
            obs::logEvent(obs::LogLevel::Error, "fleet",
                          "journal_append_failed", std::move(data));
        }
        if (sweep.crashAfter > 0 && journal.appends() >= sweep.crashAfter) {
            obs::Json data = obs::Json::object();
            data["appends"] = obs::Json(journal.appends());
            data["crash_after"] = obs::Json(sweep.crashAfter);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "crash_injection",
                          std::move(data));
            // Workers die with us via PR_SET_PDEATHSIG — the point is to
            // simulate a coordinator crash, not a graceful stop.
            std::_Exit(70);
        }
    }

    void maybeFireReadyHook()
    {
        if (readyHookFired || !options.onFleetReady)
            return;
        int ready = 0;
        for (const WorkerState &w : workers)
            ready += (w.alive && w.ready) ? 1 : 0;
        if (ready < options.workers)
            return;
        readyHookFired = true;
        options.onFleetReady();
    }

    void handleResult(WorkerState &worker, const std::string &payload)
    {
        std::string parseError;
        const auto parsed = obs::Json::parse(payload, &parseError);
        std::uint64_t index = 0;
        std::string key;
        SweepResult result;
        std::string reason = parsed ? harness::sweepResultFromJson(
                                          *parsed, &index, &key, &result)
                                    : ("bad JSON: " + parseError);
        if (reason.empty() && index >= jobs.size())
            reason = "job index out of range";
        if (reason.empty() &&
            key != harness::SweepRunner::jobKey(jobs[index]))
            reason = "job key mismatch";
        if (!reason.empty()) {
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(worker.id);
            data["reason"] = obs::Json(reason);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "bad_result",
                          std::move(data));
            ::kill(worker.pid, SIGKILL);
            return;
        }
        if (worker.job == static_cast<long long>(index)) {
            closeJobSpan(worker, "");
            worker.job = -1; // idle again
        }
        JobSlot &slot = slots[index];
        if (terminal(slot.state))
            return; // late duplicate: journal keeps exactly one record
        slot.state = JobState::Done;
        results[index] = std::move(result);
        {
            obs::Json data = obs::Json::object();
            data["job"] = obs::Json(static_cast<unsigned long long>(index));
            data["worker"] = obs::Json(worker.id);
            data["failed"] = obs::Json(results[index].failed);
            obs::logEvent(obs::LogLevel::Debug, "fleet", "job_done",
                          std::move(data));
        }
        journalRecord(index);
        noteCompletion();
    }

    /**
     * Fold one worker resource digest into the run's telemetry. CPU
     * seconds are cumulative per process, so only the worker's latest
     * sample is kept (summed across workers when the run finishes);
     * everything else is per-job and accumulates directly. Malformed
     * digests are logged and dropped — telemetry is advisory and must
     * never kill a worker that just delivered a good Result.
     */
    void handleTelemetry(WorkerState &worker, const std::string &payload)
    {
        std::string parseError;
        const auto parsed = obs::Json::parse(payload, &parseError);
        if (!parsed || !parsed->isObject()) {
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(worker.id);
            data["error"] = obs::Json(parseError);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "bad_telemetry",
                          std::move(data));
            return;
        }
        const auto asUint = [&](const char *key) -> std::uint64_t {
            const obs::Json *field = parsed->find(key);
            return field ? field->asUint() : 0;
        };
        const auto asDouble = [&](const char *key) -> double {
            const obs::Json *field = parsed->find(key);
            return field ? field->asDouble() : 0.0;
        };
        FleetTelemetry &telemetry = summary.telemetry;
        ++telemetry.frames;
        ++telemetry.jobsReported;
        telemetry.cycles += asUint("cycles");
        telemetry.raysTraced += asUint("rays");
        telemetry.jobSeconds += asDouble("seconds");
        telemetry.peakRssKb =
            std::max(telemetry.peakRssKb, asUint("peak_rss_kb"));
        telemetry.maxHeartbeatLagMicros = std::max(
            telemetry.maxHeartbeatLagMicros, asUint("heartbeat_lag_us"));
        worker.userCpuSeconds = asDouble("user_cpu_s");
        worker.sysCpuSeconds = asDouble("sys_cpu_s");
    }

    /** Sum per-worker CPU samples into the telemetry (end of run). */
    void finalizeTelemetry()
    {
        for (const WorkerState &worker : workers) {
            summary.telemetry.userCpuSeconds += worker.userCpuSeconds;
            summary.telemetry.sysCpuSeconds += worker.sysCpuSeconds;
        }
    }

    void processFrames(WorkerState &worker)
    {
        while (auto frame = worker.parser.next()) {
            switch (frame->type) {
            case MsgType::Hello:
                worker.ready = true;
                worker.lastBeat = Clock::now();
                maybeFireReadyHook();
                break;
            case MsgType::Heartbeat:
                worker.lastBeat = Clock::now();
                break;
            case MsgType::Result:
                handleResult(worker, frame->payload);
                break;
            case MsgType::Telemetry:
                handleTelemetry(worker, frame->payload);
                break;
            default:
                break; // Claim/Shutdown never flow worker -> coordinator
            }
        }
        if (worker.parser.corrupt() && worker.alive) {
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(worker.id);
            data["reason"] = obs::Json(worker.parser.corruptReason());
            obs::logEvent(obs::LogLevel::Warn, "fleet", "stream_corrupt",
                          std::move(data));
            ::kill(worker.pid, SIGKILL);
        }
    }

    /**
     * Read everything a dead worker left in its pipe and process the
     * complete frames: a result sent moments before the kill still
     * counts, and because this runs before the re-dispatch decision a
     * completed job is never dispatched twice (no double-reports).
     * Safe to loop: the writer end is closed, so read() cannot block.
     */
    void drainWorker(WorkerState &worker)
    {
        char buffer[4096];
        for (;;) {
            const ssize_t n = ::read(worker.fromFd, buffer, sizeof buffer);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (n == 0)
                break;
            worker.parser.feed(buffer, static_cast<std::size_t>(n));
        }
        processFrames(worker);
    }

    void handleDeath(WorkerState &worker, int status, bool expected)
    {
        drainWorker(worker);
        ::close(worker.toFd);
        ::close(worker.fromFd);
        worker.toFd = worker.fromFd = -1;
        worker.alive = false;
        closeJobSpan(worker, " (lost)");
        const long long job = worker.job;
        worker.job = -1;
        if (expected)
            return;
        ++summary.workerDeaths;
        {
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(worker.id);
            data["pid"] = obs::Json(static_cast<long long>(worker.pid));
            if (WIFSIGNALED(status))
                data["signal"] = obs::Json(WTERMSIG(status));
            else
                data["status"] = obs::Json(
                    WIFEXITED(status) ? WEXITSTATUS(status) : -1);
            if (job >= 0)
                data["job"] =
                    obs::Json(static_cast<unsigned long long>(job));
            obs::logEvent(obs::LogLevel::Warn, "fleet", "worker_death",
                          std::move(data));
        }
        traceInstant("worker_death w" + std::to_string(worker.id),
                     worker.id);
        if (job < 0)
            return;
        JobSlot &slot = slots[static_cast<std::size_t>(job)];
        if (slot.state != JobState::Inflight)
            return; // its result was drained above — nothing to redo
        ++slot.deaths;
        if (slot.deaths >= options.quarantineDeaths) {
            quarantine(static_cast<std::size_t>(job), slot);
            return;
        }
        // Seeded exponential backoff with jitter before the next try:
        // deterministic per sweep, but concurrent casualties spread out.
        slot.state = JobState::Pending;
        const double jitter = redispatchJitter(
            sweep.fault.seed, static_cast<std::size_t>(job), slot.dispatches);
        const double delay =
            options.backoffSeconds * std::ldexp(1.0, slot.deaths - 1) * jitter;
        slot.readyAt = Clock::now() + secondsToDuration(delay);
        ++summary.redispatched;
        {
            obs::Json data = obs::Json::object();
            data["job"] = obs::Json(static_cast<unsigned long long>(job));
            data["deaths"] = obs::Json(slot.deaths);
            data["delay_s"] = obs::Json(delay);
            obs::logEvent(obs::LogLevel::Info, "fleet", "redispatch",
                          std::move(data));
        }
        traceInstant("redispatch job" + std::to_string(job), worker.id);
    }

    void quarantine(std::size_t index, JobSlot &slot)
    {
        slot.state = JobState::Quarantined;
        SweepResult &result = results[index];
        result.ran = false;
        result.failed = true;
        result.attempts = slot.dispatches;
        result.error = "quarantined: job killed " +
                       std::to_string(slot.deaths) + " workers in " +
                       std::to_string(slot.dispatches) + " dispatches";
        ++summary.quarantined;
        {
            obs::Json data = obs::Json::object();
            data["job"] = obs::Json(static_cast<unsigned long long>(index));
            data["key"] =
                obs::Json(harness::SweepRunner::jobKey(jobs[index]));
            data["error"] = obs::Json(result.error);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "quarantine",
                          std::move(data));
        }
        traceInstant("quarantine job" + std::to_string(index), 0);
        journalRecord(index);
        noteCompletion();
    }

    void reapWorkers(bool expected)
    {
        for (WorkerState &worker : workers) {
            if (!worker.alive)
                continue;
            int status = 0;
            const pid_t pid = ::waitpid(worker.pid, &status, WNOHANG);
            if (pid == worker.pid)
                handleDeath(worker, status, expected);
        }
    }

    void checkHeartbeats()
    {
        if (options.heartbeatTimeoutSeconds <= 0)
            return;
        const auto now = Clock::now();
        const auto deadline = secondsToDuration(options.heartbeatTimeoutSeconds);
        for (WorkerState &worker : workers) {
            if (!worker.alive || now - worker.lastBeat < deadline)
                continue;
            {
                obs::Json data = obs::Json::object();
                data["worker"] = obs::Json(worker.id);
                data["pid"] = obs::Json(static_cast<long long>(worker.pid));
                data["silent_s"] = obs::Json(
                    std::chrono::duration<double>(now - worker.lastBeat)
                        .count());
                data["deadline_s"] =
                    obs::Json(options.heartbeatTimeoutSeconds);
                obs::logEvent(obs::LogLevel::Warn, "fleet",
                              "heartbeat_kill", std::move(data));
            }
            traceInstant("heartbeat_kill w" + std::to_string(worker.id),
                         worker.id);
            ++summary.heartbeatKills;
            ::kill(worker.pid, SIGKILL);
            worker.lastBeat = now; // one kill per deadline, then the reap
        }
    }

    void dispatchJobs()
    {
        const auto now = Clock::now();
        for (WorkerState &worker : workers) {
            if (!worker.alive || !worker.ready || worker.job >= 0)
                continue;
            std::size_t pick = jobs.size();
            for (std::size_t j = 0; j < slots.size(); ++j)
                if (slots[j].state == JobState::Pending &&
                    slots[j].readyAt <= now) {
                    pick = j;
                    break;
                }
            if (pick == jobs.size())
                return; // nothing ready yet (backoff or all claimed)
            JobSlot &slot = slots[pick];
            ++slot.dispatches;
            obs::Json claim = obs::Json::object();
            claim["job"] = obs::Json(static_cast<unsigned long long>(pick));
            claim["dispatch"] = obs::Json(slot.dispatches);
            if (!writeFrame(worker.toFd, MsgType::Claim, claim.dump())) {
                // Pipe gone: the worker is dying. Undo and let the reap
                // re-dispatch cleanly.
                --slot.dispatches;
                ::kill(worker.pid, SIGKILL);
                continue;
            }
            slot.state = JobState::Inflight;
            worker.job = static_cast<long long>(pick);
            worker.lastBeat = now;
            worker.claimTsMicros = traceNow();
            worker.claimDispatch = slot.dispatches;
            obs::Json data = obs::Json::object();
            data["job"] = obs::Json(static_cast<unsigned long long>(pick));
            data["dispatch"] = obs::Json(slot.dispatches);
            data["worker"] = obs::Json(worker.id);
            obs::logEvent(obs::LogLevel::Debug, "fleet", "dispatch",
                          std::move(data));
        }
    }

    void maybeRespawn()
    {
        while (!spawnBroken && aliveCount() < options.workers &&
               summary.respawned < options.maxRespawns &&
               remainingJobs() > static_cast<std::size_t>(aliveCount())) {
            if (!spawnWorker(true)) {
                spawnBroken = true;
                break;
            }
        }
    }

    void pollWorkers(int timeoutMs)
    {
        std::vector<struct pollfd> fds;
        std::vector<std::size_t> index;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            struct pollfd p;
            p.fd = workers[i].fromFd;
            p.events = POLLIN;
            p.revents = 0;
            fds.push_back(p);
            index.push_back(i);
        }
        if (fds.empty()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(timeoutMs));
            return;
        }
        const int n = ::poll(fds.data(), fds.size(), timeoutMs);
        if (n <= 0)
            return; // timeout or EINTR (stop flag checked by the loop)
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerState &worker = workers[index[k]];
            char buffer[8192];
            const ssize_t got =
                ::read(worker.fromFd, buffer, sizeof buffer);
            if (got > 0) {
                worker.parser.feed(buffer, static_cast<std::size_t>(got));
                processFrames(worker);
            }
            // got <= 0: EOF or error — the worker died; waitpid sees it.
        }
    }

    /**
     * Stop every worker and reap every pid. Three rungs: a Shutdown
     * frame (drain and exit), SIGTERM on @p force (cancel token aborts
     * the in-flight attempt), and after the grace period SIGKILL plus a
     * blocking waitpid — the coordinator never returns with a child
     * still breathing.
     */
    void shutdownAll(bool force)
    {
        {
            obs::Json data = obs::Json::object();
            data["force"] = obs::Json(force);
            data["alive"] = obs::Json(aliveCount());
            obs::logEvent(obs::LogLevel::Info, "fleet", "shutdown",
                          std::move(data));
        }
        for (WorkerState &worker : workers) {
            if (!worker.alive)
                continue;
            writeFrame(worker.toFd, MsgType::Shutdown, "{}");
            if (force)
                ::kill(worker.pid, SIGTERM);
        }
        const auto deadline =
            Clock::now() + secondsToDuration(options.shutdownGraceSeconds);
        while (aliveCount() > 0 && Clock::now() < deadline) {
            reapWorkers(true);
            if (aliveCount() == 0)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        for (WorkerState &worker : workers) {
            if (!worker.alive)
                continue;
            obs::Json data = obs::Json::object();
            data["worker"] = obs::Json(worker.id);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "shutdown_ignored",
                          std::move(data));
            ::kill(worker.pid, SIGKILL);
        }
        for (WorkerState &worker : workers) {
            if (!worker.alive)
                continue;
            int status = 0;
            while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
            }
            handleDeath(worker, status, /*expected=*/true);
        }
    }

    void cancelFleet()
    {
        summary.cancelled = true;
        {
            obs::Json data = obs::Json::object();
            data["remaining"] = obs::Json(
                static_cast<unsigned long long>(remainingJobs()));
            data["workers"] = obs::Json(aliveCount());
            obs::logEvent(obs::LogLevel::Warn, "fleet", "cancelled",
                          std::move(data));
        }
        shutdownAll(/*force=*/true);
        for (std::size_t j = 0; j < slots.size(); ++j) {
            if (terminal(slots[j].state))
                continue;
            slots[j].state = JobState::Cancelled;
            results[j].ran = false;
            results[j].failed = true;
            results[j].error = "fleet cancelled";
            // Not journaled: a resumed run should execute these jobs.
        }
        emitProgress(true);
    }

    void degradeRemaining()
    {
        for (std::size_t j = 0; j < slots.size(); ++j) {
            if (terminal(slots[j].state))
                continue;
            slots[j].state = JobState::Degraded;
            results[j].ran = false;
            results[j].failed = true;
            results[j].attempts = slots[j].dispatches;
            results[j].error =
                "degraded: fleet exhausted (respawn budget spent) before "
                "this job could run";
            ++summary.degradedJobs;
            // Not journaled: the job never ran; --resume retries it.
        }
        {
            obs::Json data = obs::Json::object();
            data["jobs"] = obs::Json(summary.degradedJobs);
            data["spawned"] = obs::Json(summary.spawned);
            data["respawn_budget"] = obs::Json(options.maxRespawns);
            obs::logEvent(obs::LogLevel::Warn, "fleet", "degraded",
                          std::move(data));
        }
        emitProgress(true);
    }

    /**
     * Write the coordinator's job-lifecycle spans and supervision
     * instants as a standalone Chrome trace document (pid 0, one thread
     * per worker id). tools/drs_tracecat merges it with the workers'
     * per-claim shards into the stitched fleet trace.
     */
    void writeCoordinatorTrace(const std::string &path)
    {
        obs::Json events = obs::Json::array();
        {
            obs::Json meta = obs::Json::object();
            meta["ph"] = obs::Json("M");
            meta["pid"] = obs::Json(0);
            meta["name"] = obs::Json("process_name");
            obs::Json args = obs::Json::object();
            args["name"] = obs::Json("fleet coordinator");
            meta["args"] = std::move(args);
            events.push(std::move(meta));
        }
        std::vector<int> tids;
        for (const CoordSpan &span : traceSpans)
            tids.push_back(span.tid);
        for (const CoordInstant &instant : traceInstants)
            tids.push_back(instant.tid);
        std::sort(tids.begin(), tids.end());
        tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
        for (int tid : tids) {
            obs::Json meta = obs::Json::object();
            meta["ph"] = obs::Json("M");
            meta["pid"] = obs::Json(0);
            meta["tid"] = obs::Json(tid);
            meta["name"] = obs::Json("thread_name");
            obs::Json args = obs::Json::object();
            args["name"] = obs::Json("worker " + std::to_string(tid));
            meta["args"] = std::move(args);
            events.push(std::move(meta));
        }
        for (const CoordSpan &span : traceSpans) {
            obs::Json event = obs::Json::object();
            event["ph"] = obs::Json("X");
            event["cat"] = obs::Json("fleet");
            event["pid"] = obs::Json(0);
            event["tid"] = obs::Json(span.tid);
            event["ts"] = obs::Json(
                static_cast<unsigned long long>(span.ts));
            event["dur"] = obs::Json(
                static_cast<unsigned long long>(span.dur));
            event["name"] = obs::Json(span.name);
            events.push(std::move(event));
        }
        for (const CoordInstant &instant : traceInstants) {
            obs::Json event = obs::Json::object();
            event["ph"] = obs::Json("i");
            event["s"] = obs::Json("p");
            event["cat"] = obs::Json("fleet");
            event["pid"] = obs::Json(0);
            event["tid"] = obs::Json(instant.tid);
            event["ts"] = obs::Json(
                static_cast<unsigned long long>(instant.ts));
            event["name"] = obs::Json(instant.name);
            events.push(std::move(event));
        }
        obs::Json document = obs::Json::object();
        document["traceEvents"] = std::move(events);
        obs::Json other = obs::Json::object();
        other["dropped_events"] = obs::Json(0);
        document["otherData"] = std::move(other);
        std::ofstream out(path, std::ios::trunc);
        out << document.dump(2) << "\n";
        if (!out) {
            obs::Json data = obs::Json::object();
            data["path"] = obs::Json(path);
            obs::logEvent(obs::LogLevel::Error, "fleet",
                          "trace_write_failed", std::move(data));
        }
    }
};

} // namespace

FleetOptions
FleetOptions::fromEnvironment()
{
    FleetOptions options;
    long long value = 0;
    if (parseEnvInt("DRS_FLEET", 1, 1024, &value))
        options.workers = static_cast<int>(value);
    parseEnvSeconds("DRS_FLEET_HEARTBEAT", &options.heartbeatSeconds);
    parseEnvSeconds("DRS_FLEET_HEARTBEAT_TIMEOUT",
                    &options.heartbeatTimeoutSeconds);
    if (parseEnvInt("DRS_FLEET_RESPAWNS", 0, 1'000'000, &value))
        options.maxRespawns = static_cast<int>(value);
    if (parseEnvInt("DRS_FLEET_QUARANTINE", 1, 1'000'000, &value))
        options.quarantineDeaths = static_cast<int>(value);
    parseEnvSeconds("DRS_FLEET_BACKOFF", &options.backoffSeconds);
    const obs::TraceConfig trace = obs::TraceConfig::fromEnvironment();
    if (trace.enabled)
        options.tracePath = trace.path;
    options.chaos = ChaosConfig::fromEnvironment();
    return options;
}

obs::Json
fleetSummaryJson(const FleetSummary &summary)
{
    obs::Json out = obs::Json::object();
    out["workers"] = obs::Json(summary.workers);
    out["spawned"] = obs::Json(summary.spawned);
    out["respawned"] = obs::Json(summary.respawned);
    out["worker_deaths"] = obs::Json(summary.workerDeaths);
    out["heartbeat_kills"] = obs::Json(summary.heartbeatKills);
    out["redispatched"] = obs::Json(summary.redispatched);
    out["quarantined"] = obs::Json(summary.quarantined);
    out["degraded_jobs"] = obs::Json(summary.degradedJobs);
    out["cancelled"] = obs::Json(summary.cancelled);
    obs::Json telemetry = obs::Json::object();
    telemetry["frames"] = obs::Json(
        static_cast<unsigned long long>(summary.telemetry.frames));
    telemetry["jobs_reported"] = obs::Json(
        static_cast<unsigned long long>(summary.telemetry.jobsReported));
    telemetry["cycles"] = obs::Json(
        static_cast<unsigned long long>(summary.telemetry.cycles));
    telemetry["rays_traced"] = obs::Json(
        static_cast<unsigned long long>(summary.telemetry.raysTraced));
    telemetry["job_seconds"] = obs::Json(summary.telemetry.jobSeconds);
    telemetry["user_cpu_seconds"] =
        obs::Json(summary.telemetry.userCpuSeconds);
    telemetry["sys_cpu_seconds"] =
        obs::Json(summary.telemetry.sysCpuSeconds);
    telemetry["peak_rss_kb"] = obs::Json(
        static_cast<unsigned long long>(summary.telemetry.peakRssKb));
    telemetry["max_heartbeat_lag_us"] =
        obs::Json(static_cast<unsigned long long>(
            summary.telemetry.maxHeartbeatLagMicros));
    out["telemetry"] = std::move(telemetry);
    return out;
}

FleetCoordinator::FleetCoordinator(const harness::ExperimentScale &scale,
                                   const harness::SweepOptions &sweep,
                                   const FleetOptions &options)
    : scale_(scale), sweep_(sweep), options_(options)
{
    options_.workers = std::max(options_.workers, 1);
    options_.quarantineDeaths = std::max(options_.quarantineDeaths, 1);
    options_.maxRespawns = std::max(options_.maxRespawns, 0);
    if (options_.heartbeatSeconds <= 0)
        options_.heartbeatSeconds = 0.25;
}

std::vector<harness::SweepResult>
FleetCoordinator::run(std::vector<harness::SweepJob> jobs)
{
    summary_ = FleetSummary{};
    summary_.workers = options_.workers;
    std::vector<SweepResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const auto start = Clock::now();
    FleetRun run(scale_, sweep_, options_, summary_, jobs, results);

    std::vector<char> done(jobs.size(), 0);
    if (sweep_.resume && !sweep_.journalPath.empty())
        done = harness::replaySweepJournal(sweep_.journalPath, jobs, results);
    std::size_t replayed = 0;
    for (std::size_t i = 0; i < done.size(); ++i)
        if (done[i]) {
            run.slots[i].state = JobState::Done;
            ++replayed;
        }

    if (!run.allTerminal()) {
        if (!sweep_.journalPath.empty()) {
            std::string error;
            if (!run.journal.open(sweep_.journalPath, !sweep_.resume,
                                  &error)) {
                obs::Json data = obs::Json::object();
                data["error"] = obs::Json(error);
                obs::logEvent(obs::LogLevel::Warn, "fleet",
                              "journal_open_failed", std::move(data));
            }
        }

        // Coordinator signal dispositions for the duration of the run:
        // SIGTERM/SIGINT become a cooperative stop (fanned out to the
        // workers), SIGPIPE must not kill us mid-write to a dead child.
        g_stopRequested = 0;
        struct sigaction stop {};
        stop.sa_handler = coordinatorStopHandler;
        ::sigemptyset(&stop.sa_mask);
        stop.sa_flags = 0; // no SA_RESTART: poll() returns EINTR
        struct sigaction ignore {};
        ignore.sa_handler = SIG_IGN;
        ::sigemptyset(&ignore.sa_mask);
        struct sigaction oldTerm {}, oldInt {}, oldPipe {};
        ::sigaction(SIGTERM, &stop, &oldTerm);
        ::sigaction(SIGINT, &stop, &oldInt);
        ::sigaction(SIGPIPE, &ignore, &oldPipe);

        for (int i = 0; i < options_.workers && !run.spawnBroken; ++i)
            if (!run.spawnWorker(false))
                run.spawnBroken = true;

        while (!run.allTerminal()) {
            if (run.stopRequested()) {
                run.cancelFleet();
                break;
            }
            if (run.fleetExhausted()) {
                run.degradeRemaining();
                break;
            }
            run.pollWorkers(50);
            run.reapWorkers(false);
            run.checkHeartbeats();
            run.maybeRespawn();
            run.dispatchJobs();
            run.emitProgress(false);
        }
        if (!summary_.cancelled)
            run.shutdownAll(false);
        run.journal.close();
        run.emitProgress(true);

        ::sigaction(SIGTERM, &oldTerm, nullptr);
        ::sigaction(SIGINT, &oldInt, nullptr);
        ::sigaction(SIGPIPE, &oldPipe, nullptr);
    }

    run.finalizeTelemetry();
    if (!options_.tracePath.empty())
        run.writeCoordinatorTrace(options_.tracePath + ".coord");

    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::printf("[fleet] %zu jobs (%zu replayed) across %d workers "
                "(%d spawned, %d respawned) in %.2fs  deaths=%d "
                "hb_kills=%d redispatched=%d quarantined=%d degraded=%d%s\n",
                jobs.size(), replayed, options_.workers, summary_.spawned,
                summary_.respawned, wall, summary_.workerDeaths,
                summary_.heartbeatKills, summary_.redispatched,
                summary_.quarantined, summary_.degradedJobs,
                summary_.cancelled ? "  [cancelled]" : "");
    return results;
}

} // namespace drs::fleet
