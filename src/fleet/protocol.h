#pragma once

/**
 * @file
 * Length-prefixed pipe protocol between the fleet coordinator and its
 * forked worker processes. Frames are:
 *
 *     uint32 magic ("DRSF")  |  uint32 type  |  uint32 payload length
 *     payload bytes (UTF-8 JSON, possibly empty)
 *
 * all little-endian host order (coordinator and workers share one
 * machine — workers are fork()ed from the coordinator). The parser is
 * incremental: feed() whatever read() returned, next() yields complete
 * frames, and a torn tail (a worker SIGKILLed mid-write) simply never
 * completes — the coordinator discards it with the dead worker. A bad
 * magic or an absurd length marks the stream corrupt, which the
 * coordinator treats like a worker death.
 *
 * Message payloads (see fleet.h for the state machine):
 *   Hello      worker -> coordinator   {"worker", "generation", "pid"}
 *   Claim      coordinator -> worker   {"job", "dispatch"}
 *   Heartbeat  worker -> coordinator   {"job"} (-1 = idle)
 *   Result     worker -> coordinator   harness::sweepResultToJson record
 *   Shutdown   coordinator -> worker   {} (drain and exit 0)
 *   Telemetry  worker -> coordinator   {"worker", "job", "seconds",
 *              "cycles", "rays", "peak_rss_kb", "user_cpu_s",
 *              "sys_cpu_s", "heartbeat_lag_us"} — per-job resource
 *              digest sent right after the matching Result frame
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace drs::fleet {

/** Frame magic: "DRSF" in little-endian byte order. */
inline constexpr std::uint32_t kFrameMagic = 0x46535244u;

/** Upper bound on one payload; larger lengths mark the stream corrupt. */
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

enum class MsgType : std::uint32_t {
    Hello = 1,
    Claim = 2,
    Heartbeat = 3,
    Result = 4,
    Shutdown = 5,
    Telemetry = 6,
};

/** A frame type is one of the six protocol messages. */
bool validMsgType(std::uint32_t raw);

/** Printable name for diagnostics ("hello", "claim", ...). */
const char *msgTypeName(MsgType type);

struct Frame
{
    MsgType type = MsgType::Hello;
    std::string payload;
};

/** Serialize one frame (header + payload) into a byte string. */
std::string encodeFrame(MsgType type, std::string_view payload);

/**
 * Incremental frame decoder for one pipe direction. Not thread-safe;
 * one parser per stream.
 */
class FrameParser
{
  public:
    /** Buffer @p size bytes read from the stream. */
    void feed(const char *data, std::size_t size);

    /**
     * Next complete frame, or std::nullopt when more bytes are needed
     * (or the stream is corrupt — check corrupt()).
     */
    std::optional<Frame> next();

    /**
     * True once a malformed header was seen (bad magic, unknown type or
     * oversized length). A corrupt stream yields no further frames; the
     * peer must be torn down.
     */
    bool corrupt() const { return corrupt_; }

    /** Human-readable reason once corrupt() is true. */
    const std::string &corruptReason() const { return corruptReason_; }

    /** Buffered bytes not yet consumed by a complete frame. */
    std::size_t buffered() const { return buffer_.size(); }

  private:
    std::string buffer_;
    bool corrupt_ = false;
    std::string corruptReason_;
};

/**
 * Write @p data fully to @p fd, retrying on EINTR and partial writes.
 * @return false on any other error (EPIPE when the peer died — callers
 * must have SIGPIPE ignored, which the coordinator and workers arrange).
 */
bool writeAll(int fd, std::string_view data);

/** encodeFrame + writeAll in one call. */
bool writeFrame(int fd, MsgType type, std::string_view payload);

} // namespace drs::fleet
