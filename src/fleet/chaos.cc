#include "fleet/chaos.h"

#include "fault/fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace drs::fleet {

namespace {

/** Salt so chaos rolls never correlate with fault-injection seeds. */
constexpr std::uint64_t kChaosRollSalt = 0x6368616f736b696cULL;
/** Salt for the independent kill-delay draw. */
constexpr std::uint64_t kChaosDelaySalt = 0x6368616f73646c79ULL;

/** Uniform double in [0, 1) from the top 53 bits of a mixed seed. */
double
unitDraw(std::uint64_t seed, std::size_t job, int dispatch)
{
    const std::uint64_t mixed = fault::mixSeed(seed, job, dispatch);
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

bool
parseUint64(const char *text, std::uint64_t *out)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = value;
    return true;
}

bool
parseDouble(const char *text, double *out)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = value;
    return true;
}

} // namespace

ChaosConfig
ChaosConfig::fromEnvironment()
{
    ChaosConfig config;
    if (const char *text = std::getenv("DRS_FLEET_CHAOS")) {
        std::uint64_t seed = 0;
        if (parseUint64(text, &seed))
            config.seed = seed;
        else
            std::fprintf(stderr,
                         "fleet: ignoring malformed DRS_FLEET_CHAOS=%s\n",
                         text);
    }
    if (const char *text = std::getenv("DRS_FLEET_CHAOS_RATE")) {
        double rate = 0.0;
        if (parseDouble(text, &rate) && rate >= 0.0 && rate <= 1.0)
            config.killRate = rate;
        else
            std::fprintf(
                stderr,
                "fleet: ignoring malformed DRS_FLEET_CHAOS_RATE=%s\n",
                text);
    }
    if (const char *text = std::getenv("DRS_FLEET_CHAOS_KILLS")) {
        std::uint64_t kills = 0;
        if (parseUint64(text, &kills) && kills <= 1'000'000)
            config.maxKillDispatches = static_cast<int>(kills);
        else
            std::fprintf(
                stderr,
                "fleet: ignoring malformed DRS_FLEET_CHAOS_KILLS=%s\n",
                text);
    }
    return config;
}

ChaosPlan
chaosPlanFor(const ChaosConfig &config, std::size_t job, int dispatch)
{
    ChaosPlan plan;
    if (config.hangEveryClaim) {
        plan.hang = true;
        return plan;
    }
    if (config.killJobEveryDispatch >= 0 &&
        job == static_cast<std::size_t>(config.killJobEveryDispatch)) {
        plan.kill = true;
        return plan;
    }
    if (config.hangJobFirstDispatch >= 0 &&
        job == static_cast<std::size_t>(config.hangJobFirstDispatch) &&
        dispatch == 1) {
        plan.hang = true;
        return plan;
    }
    if (config.seed == 0 || dispatch > config.maxKillDispatches)
        return plan;
    const double roll =
        unitDraw(config.seed ^ kChaosRollSalt, job, dispatch);
    if (roll >= config.killRate)
        return plan;
    plan.kill = true;
    if (config.maxKillDelayMicros > 0) {
        const double delay =
            unitDraw(config.seed ^ kChaosDelaySalt, job, dispatch);
        plan.delayMicros = static_cast<std::uint32_t>(
            delay * static_cast<double>(config.maxKillDelayMicros));
    }
    return plan;
}

} // namespace drs::fleet
