#pragma once

/**
 * @file
 * Multi-process sweep fleet: a coordinator that shards a SweepJob grid
 * across fork()ed worker processes for true crash isolation. A worker
 * that segfaults, gets SIGKILLed by the chaos harness, or wedges past
 * its heartbeat deadline takes down only its own process — the
 * coordinator reaps it, re-dispatches the job it held (seeded
 * exponential backoff with jitter), respawns a replacement while the
 * respawn budget lasts, and quarantines any job that keeps killing
 * workers. When the budget is spent the fleet *shrinks* instead of
 * aborting; if every worker is gone the remaining jobs are reported as
 * degraded rather than lost.
 *
 * Determinism contract: a worker executes job N of the grid with
 * SweepRunner::runJob(job, N), so per-attempt fault seeds — and
 * therefore SimStats — are a pure function of the job's grid index.
 * The merged fleet results are bit-identical to a single-process
 * SweepRunner::run() over the same grid, no matter how many workers
 * died along the way. The chaos harness (tests/check_fleet_chaos.sh)
 * holds this bar under random SIGKILLs plus a coordinator crash.
 *
 * Durability: the coordinator is the only journal writer. It reuses the
 * sweep's append-only JSONL journal (one fsync'd record per finished
 * job, exactly once), so --resume works across coordinator crashes and
 * a journal written by the fleet is replayable by the single-process
 * runner and vice versa.
 *
 * Shutdown: SIGTERM/SIGINT set a stop flag; the coordinator fans the
 * cancellation out (Shutdown frames + SIGTERM, whose worker-side
 * handler trips a process-wide CancelToken chained under every
 * in-flight attempt), grants a grace period, SIGKILLs stragglers and
 * reaps everything — no orphans. Workers additionally arm
 * PR_SET_PDEATHSIG so a coordinator killed with SIGKILL cannot leak
 * children either.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/chaos.h"
#include "harness/sweep.h"
#include "obs/json.h"

namespace drs::fleet {

struct FleetProgress;

struct FleetOptions
{
    /** Worker processes to keep running (>= 1). */
    int workers = 2;
    /** Worker heartbeat period (seconds). */
    double heartbeatSeconds = 0.25;
    /**
     * Silence longer than this marks a worker wedged: it is SIGKILLed
     * and its job re-dispatched. Workers beat from the moment they
     * start (a dedicated thread, independent of scene builds and
     * simulation), so the deadline bounds wedge detection, not job
     * runtime.
     */
    double heartbeatTimeoutSeconds = 10.0;
    /**
     * Replacement workers the fleet may spawn over its lifetime, on top
     * of the initial crew. When spent, deaths shrink the fleet.
     */
    int maxRespawns = 8;
    /**
     * Worker deaths attributable to one job before it is quarantined
     * (recorded failed, never dispatched again). Guards the fleet
     * against a poison job that kills every process it touches.
     */
    int quarantineDeaths = 3;
    /**
     * Base re-dispatch backoff (seconds): a job whose worker died waits
     * backoff * 2^(deaths-1), scaled by a jitter factor in [0.5, 1.0]
     * seeded from (fault seed, job index, dispatch) — deterministic per
     * sweep, but re-dispatches of distinct jobs spread out.
     */
    double backoffSeconds = 0.05;
    /** Grace period between Shutdown/SIGTERM and SIGKILL (seconds). */
    double shutdownGraceSeconds = 5.0;
    /** Chaos injection (off by default). */
    ChaosConfig chaos{};
    /**
     * Base path for cross-process trace stitching (usually the DRS_TRACE
     * path). When set, the coordinator writes its job-lifecycle spans
     * (dispatch -> result, plus death/respawn/kill/redispatch/quarantine
     * instants) to "<tracePath>.coord"; workers write per-claim shards
     * to "<tracePath>.w<id>.j<index>". tools/drs_tracecat merges them.
     * Empty = no coordinator trace.
     */
    std::string tracePath;
    /**
     * Test hook: invoked once, in the coordinator, when every worker of
     * the initial crew has sent its Hello. The shutdown tests use it to
     * signal "fleet is live, kill it now" without racing the spawn.
     */
    std::function<void()> onFleetReady;
    /**
     * Live-progress callback, invoked from the supervision loop (single
     * thread) after every job completion and terminal supervision event,
     * throttled to a few Hz in between. Pure observer. The benches use
     * it to drive the --progress stderr ticker.
     */
    std::function<void(const FleetProgress &)> onProgress;

    /**
     * Populate from the environment: DRS_FLEET (workers),
     * DRS_FLEET_HEARTBEAT / DRS_FLEET_HEARTBEAT_TIMEOUT (seconds),
     * DRS_FLEET_RESPAWNS, DRS_FLEET_QUARANTINE (deaths),
     * DRS_FLEET_BACKOFF (seconds), DRS_TRACE (tracePath), plus
     * ChaosConfig::fromEnvironment. Malformed values warn on stderr and
     * keep the default.
     */
    static FleetOptions fromEnvironment();
};

/** One live-progress snapshot (FleetOptions::onProgress). */
struct FleetProgress
{
    std::size_t jobsTotal = 0;
    std::size_t jobsDone = 0;     ///< terminal jobs, incl. failures
    std::size_t jobsInflight = 0;
    std::size_t jobsFailed = 0;   ///< quarantined / degraded / cancelled
    int workersAlive = 0;
    int workersRunning = 0;       ///< alive workers holding a job
    int workerDeaths = 0;
    int degraded = 0;
    double elapsedSeconds = 0.0;
    /** EWMA-based remaining-time estimate; < 0 = unknown yet. */
    double etaSeconds = -1.0;
};

/**
 * Worker-side resource telemetry aggregated by the coordinator
 * (protocol Telemetry frames, one per finished job). CPU seconds and
 * peak RSS come from getrusage(RUSAGE_SELF) in the worker, so they are
 * per-process cumulative values: the coordinator keeps each worker's
 * latest sample and sums across workers at the end of the run.
 */
struct FleetTelemetry
{
    /** Telemetry frames received (a worker killed between its Result
     * and Telemetry writes loses the digest, so this may trail the
     * accepted-result count). */
    std::uint64_t frames = 0;
    /** Jobs covered by a received digest. */
    std::uint64_t jobsReported = 0;
    /** Simulated cycles summed over reported jobs. */
    std::uint64_t cycles = 0;
    /** Rays traced summed over reported jobs. */
    std::uint64_t raysTraced = 0;
    /** Simulation wall-clock summed over reported jobs (seconds). */
    double jobSeconds = 0.0;
    /** User CPU seconds summed across workers (latest sample each). */
    double userCpuSeconds = 0.0;
    /** System CPU seconds summed across workers (latest sample each). */
    double sysCpuSeconds = 0.0;
    /** Max peak RSS over all workers (KiB, ru_maxrss). */
    std::uint64_t peakRssKb = 0;
    /** Worst observed heartbeat-loop overrun (microseconds). */
    std::uint64_t maxHeartbeatLagMicros = 0;
};

/** Supervision counters for one FleetCoordinator::run. */
struct FleetSummary
{
    /** Target fleet size (FleetOptions::workers). */
    int workers = 0;
    /** Worker processes forked, including replacements. */
    int spawned = 0;
    /** Replacement workers forked after a death. */
    int respawned = 0;
    /** Worker processes that exited without being asked to. */
    int workerDeaths = 0;
    /** Workers SIGKILLed for missing their heartbeat deadline. */
    int heartbeatKills = 0;
    /** Job re-dispatches after a worker death. */
    int redispatched = 0;
    /** Jobs quarantined for killing quarantineDeaths workers. */
    int quarantined = 0;
    /**
     * Jobs reported failed because the fleet ran out of workers (respawn
     * budget spent) before they could run. Non-zero marks the bench
     * report degraded.
     */
    int degradedJobs = 0;
    /** True when the run was stopped by SIGTERM/SIGINT or a token. */
    bool cancelled = false;
    /** Aggregated worker resource telemetry. */
    FleetTelemetry telemetry{};
};

/**
 * Summary as the bench reports' "summary.fleet" object (schema v4 adds
 * the nested "telemetry" section).
 */
obs::Json fleetSummaryJson(const FleetSummary &summary);

/**
 * Coordinator endpoint of the fleet. Owns the worker processes, the
 * pipe protocol (fleet/protocol.h), the supervision loop and the job
 * journal. Not reentrant: one run() at a time, and run() installs
 * SIGTERM/SIGINT/SIGPIPE dispositions for its duration (restored on
 * return).
 */
class FleetCoordinator
{
  public:
    /**
     * @param scale  experiment scale forwarded to every worker's runner
     * @param sweep  robustness policy. fault / watchdog / timeouts /
     *               retry knobs apply inside each worker exactly as in
     *               a single-process sweep (that is the bit-identity
     *               contract); journalPath / resume / crashAfter are
     *               honoured by the coordinator, which is the only
     *               journal writer; cancel (if set) stops the fleet.
     * @param options fleet supervision policy
     */
    FleetCoordinator(const harness::ExperimentScale &scale,
                     const harness::SweepOptions &sweep,
                     const FleetOptions &options);

    /**
     * Execute @p jobs across the fleet and return results in grid
     * order, exactly as SweepRunner::run() would. Jobs replayed from a
     * --resume journal are not re-run. Prints a one-line fleet summary
     * to stdout.
     */
    std::vector<harness::SweepResult> run(std::vector<harness::SweepJob> jobs);

    /** Counters of the last run(). */
    const FleetSummary &summary() const { return summary_; }

    const FleetOptions &options() const { return options_; }

  private:
    harness::ExperimentScale scale_;
    harness::SweepOptions sweep_;
    FleetOptions options_;
    FleetSummary summary_{};
};

} // namespace drs::fleet
