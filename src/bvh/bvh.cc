#include "bvh/bvh.h"

#include <stack>
#include <stdexcept>

namespace drs::bvh {

Bvh::Bvh(std::vector<Node> nodes, std::vector<std::int32_t> triangle_indices)
    : nodes_(std::move(nodes)), triangleIndices_(std::move(triangle_indices))
{
    // Validate leaf ranges so downstream traversal never reads out of
    // bounds; an invalid tree is a builder bug, so fail loudly.
    for (const auto &n : nodes_) {
        if (n.isLeaf()) {
            if (n.firstTriangle < 0 ||
                static_cast<std::size_t>(n.firstTriangle + n.triangleCount) >
                    triangleIndices_.size()) {
                throw std::out_of_range("BVH leaf range out of bounds");
            }
        } else if (!nodes_.empty()) {
            if (n.rightChild <= 0 ||
                static_cast<std::size_t>(n.rightChild) >= nodes_.size()) {
                throw std::out_of_range("BVH interior child out of bounds");
            }
        }
    }
}

TreeStats
Bvh::computeStats() const
{
    TreeStats stats;
    if (nodes_.empty())
        return stats;

    stats.nodeCount = nodes_.size();

    const double root_area = nodes_[0].bounds.surfaceArea();
    std::uint64_t leaf_tris = 0;

    struct Item { std::int32_t node; std::size_t depth; };
    std::stack<Item> work;
    work.push({0, 1});
    while (!work.empty()) {
        auto [idx, depth] = work.top();
        work.pop();
        const Node &n = nodes_[idx];
        stats.maxDepth = std::max(stats.maxDepth, depth);
        const double rel_area =
            root_area > 0.0 ? n.bounds.surfaceArea() / root_area : 0.0;
        if (n.isLeaf()) {
            ++stats.leafCount;
            leaf_tris += static_cast<std::uint64_t>(n.triangleCount);
            stats.maxLeafTriangles = std::max(
                stats.maxLeafTriangles,
                static_cast<std::size_t>(n.triangleCount));
            // SAH leaf term: area-weighted intersection cost.
            stats.sahCost += rel_area * n.triangleCount;
        } else {
            // SAH interior term: area-weighted traversal cost (1.0).
            stats.sahCost += rel_area;
            work.push({idx + 1, depth + 1});
            work.push({n.rightChild, depth + 1});
        }
    }
    stats.meanLeafTriangles =
        stats.leafCount ? static_cast<double>(leaf_tris) / stats.leafCount : 0;
    return stats;
}

} // namespace drs::bvh
