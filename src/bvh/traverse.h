#pragma once

/**
 * @file
 * CPU reference BVH traversal. The simulated kernels must produce exactly
 * the same hits as this traversal — integration tests enforce it — and the
 * path tracer uses it to shade between bounces.
 */

#include <cstdint>
#include <vector>

#include "bvh/bvh.h"
#include "geom/ray.h"
#include "geom/triangle.h"

namespace drs::bvh {

/** Traversal statistics for one ray (BVH quality analysis, Fig 7). */
struct TraversalStats
{
    std::uint32_t nodesVisited = 0;
    std::uint32_t leavesVisited = 0;
    std::uint32_t trianglesTested = 0;
};

/**
 * Find the closest intersection of @p ray with the triangles in @p bvh.
 *
 * @param bvh the hierarchy
 * @param triangles triangle array the hierarchy was built over
 * @param ray ray to trace (tMax bounds the search)
 * @param[out] stats optional traversal statistics accumulator
 * @return hit record; Hit::valid() is false on a miss
 */
geom::Hit intersect(const Bvh &bvh,
                    const std::vector<geom::Triangle> &triangles,
                    const geom::Ray &ray, TraversalStats *stats = nullptr);

/** True when any intersection exists (early-out occlusion query). */
bool intersectAny(const Bvh &bvh,
                  const std::vector<geom::Triangle> &triangles,
                  const geom::Ray &ray);

} // namespace drs::bvh
