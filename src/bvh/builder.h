#pragma once

/**
 * @file
 * Binned SAH BVH builder (Wald 2007 style). Produces the flattened
 * depth-first layout defined in bvh.h.
 */

#include <cstdint>
#include <vector>

#include "bvh/bvh.h"
#include "geom/triangle.h"

namespace drs::bvh {

/** Parameters controlling BVH construction. */
struct BuildConfig
{
    /** Number of SAH bins per axis. */
    int binCount = 16;
    /** Leaves are created when a range has at most this many triangles. */
    int maxLeafSize = 4;
    /** Relative cost of a triangle intersection vs. a node traversal. */
    float intersectCost = 1.0f;
    float traversalCost = 1.0f;
};

/**
 * Build a BVH over @p triangles.
 *
 * The triangle array itself is not reordered; the BVH references
 * triangles through its index array.
 */
Bvh build(const std::vector<geom::Triangle> &triangles,
          const BuildConfig &config = {});

} // namespace drs::bvh
