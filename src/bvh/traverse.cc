#include "bvh/traverse.h"

#include <array>

namespace drs::bvh {

using geom::Hit;
using geom::Ray;
using geom::Vec3;

namespace {

Vec3
inverseDirection(const Vec3 &d)
{
    // IEEE division yields +/-inf for zero components, which the slab
    // test handles correctly.
    return {1.0f / d.x, 1.0f / d.y, 1.0f / d.z};
}

} // namespace

Hit
intersect(const Bvh &bvh, const std::vector<geom::Triangle> &triangles,
          const Ray &ray, TraversalStats *stats)
{
    Hit hit;
    if (bvh.empty())
        return hit;

    Ray r = ray;
    const Vec3 inv_dir = inverseDirection(r.direction);

    std::array<std::int32_t, 128> stack;
    int sp = 0;
    std::int32_t current = 0;

    for (;;) {
        const Node &node = bvh.node(current);
        if (stats)
            ++stats->nodesVisited;

        float t_entry;
        if (node.bounds.intersect(r.origin, inv_dir, r.tMin, r.tMax,
                                  t_entry)) {
            if (node.isLeaf()) {
                if (stats)
                    ++stats->leavesVisited;
                for (std::int32_t i = 0; i < node.triangleCount; ++i) {
                    const std::int32_t tri =
                        bvh.triangleIndex(node.firstTriangle + i);
                    if (stats)
                        ++stats->trianglesTested;
                    float t, u, v;
                    if (triangles[tri].intersect(r, t, u, v)) {
                        hit.triangle = tri;
                        hit.t = t;
                        hit.u = u;
                        hit.v = v;
                        r.tMax = t;
                    }
                }
            } else {
                // Ordered traversal: visit the child on the ray's near
                // side first so tMax shrinks early.
                std::int32_t near_child = current + 1;
                std::int32_t far_child = node.rightChild;
                if (r.direction[node.splitAxis] < 0.0f)
                    std::swap(near_child, far_child);
                stack[sp++] = far_child;
                current = near_child;
                continue;
            }
        }

        if (sp == 0)
            break;
        current = stack[--sp];
    }
    return hit;
}

bool
intersectAny(const Bvh &bvh, const std::vector<geom::Triangle> &triangles,
             const Ray &ray)
{
    if (bvh.empty())
        return false;

    const Vec3 inv_dir = inverseDirection(ray.direction);
    std::array<std::int32_t, 128> stack;
    int sp = 0;
    std::int32_t current = 0;

    for (;;) {
        const Node &node = bvh.node(current);
        float t_entry;
        if (node.bounds.intersect(ray.origin, inv_dir, ray.tMin, ray.tMax,
                                  t_entry)) {
            if (node.isLeaf()) {
                for (std::int32_t i = 0; i < node.triangleCount; ++i) {
                    const std::int32_t tri =
                        bvh.triangleIndex(node.firstTriangle + i);
                    float t, u, v;
                    if (triangles[tri].intersect(ray, t, u, v))
                        return true;
                }
            } else {
                stack[sp++] = node.rightChild;
                current = current + 1;
                continue;
            }
        }
        if (sp == 0)
            return false;
        current = stack[--sp];
    }
}

} // namespace drs::bvh
