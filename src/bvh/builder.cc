#include "bvh/builder.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>

namespace drs::bvh {

using geom::Aabb;
using geom::Vec3;

namespace {

/** Per-triangle precomputed build data. */
struct Primitive
{
    Aabb bounds;
    Vec3 centroid;
    std::int32_t triangle;
};

struct Bin
{
    Aabb bounds;
    int count = 0;
};

/** Recursive builder state shared across the recursion. */
class Builder
{
  public:
    Builder(const std::vector<geom::Triangle> &triangles,
            const BuildConfig &config)
        : config_(config)
    {
        prims_.reserve(triangles.size());
        for (std::size_t i = 0; i < triangles.size(); ++i) {
            Primitive p;
            p.bounds = triangles[i].bounds();
            p.centroid = triangles[i].centroid();
            p.triangle = static_cast<std::int32_t>(i);
            prims_.push_back(p);
        }
    }

    Bvh run()
    {
        if (prims_.empty())
            return Bvh{};
        // Reserve a generous upper bound to avoid reallocation: a binary
        // tree over n leaves has < 2n nodes even with max_leaf_size = 1.
        nodes_.reserve(prims_.size() * 2 + 1);
        buildRange(0, prims_.size());

        std::vector<std::int32_t> indices;
        indices.reserve(prims_.size());
        for (const auto &p : prims_)
            indices.push_back(p.triangle);
        return Bvh(std::move(nodes_), std::move(indices));
    }

  private:
    /** Build the subtree over prims_[begin, end); returns its node index. */
    std::int32_t
    buildRange(std::size_t begin, std::size_t end)
    {
        const std::int32_t node_index = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();

        Aabb bounds;
        Aabb centroid_bounds;
        for (std::size_t i = begin; i < end; ++i) {
            bounds.extend(prims_[i].bounds);
            centroid_bounds.extend(prims_[i].centroid);
        }
        nodes_[node_index].bounds = bounds;

        const std::size_t count = end - begin;
        if (count <= static_cast<std::size_t>(config_.maxLeafSize)) {
            makeLeaf(node_index, begin, end);
            return node_index;
        }

        int axis = -1;
        std::size_t mid = 0;
        if (!findBestSplit(begin, end, bounds, centroid_bounds, axis, mid)) {
            // Splitting does not pay off (or all centroids coincide):
            // fall back to a leaf unless it would be degenerately large,
            // in which case split in the middle to bound leaf size.
            if (count <= 4 * static_cast<std::size_t>(config_.maxLeafSize)) {
                makeLeaf(node_index, begin, end);
                return node_index;
            }
            axis = geom::maxDimension(centroid_bounds.extent());
            mid = begin + count / 2;
            std::nth_element(prims_.begin() + begin, prims_.begin() + mid,
                             prims_.begin() + end,
                             [axis](const Primitive &a, const Primitive &b) {
                                 return a.centroid[axis] < b.centroid[axis];
                             });
        }

        nodes_[node_index].splitAxis = axis;
        buildRange(begin, mid); // left child lands at node_index + 1
        const std::int32_t right = buildRange(mid, end);
        nodes_[node_index].rightChild = right;
        return node_index;
    }

    void
    makeLeaf(std::int32_t node_index, std::size_t begin, std::size_t end)
    {
        Node &n = nodes_[node_index];
        n.firstTriangle = static_cast<std::int32_t>(begin);
        n.triangleCount = static_cast<std::int32_t>(end - begin);
        n.rightChild = -1;
    }

    /**
     * Binned SAH split search. On success, partitions prims_[begin, end)
     * around the split and reports the axis and partition point.
     *
     * @return false when no split improves on the leaf cost.
     */
    bool
    findBestSplit(std::size_t begin, std::size_t end, const Aabb &bounds,
                  const Aabb &centroid_bounds, int &best_axis,
                  std::size_t &best_mid)
    {
        const int nbins = config_.binCount;
        const std::size_t count = end - begin;
        const float leaf_cost = config_.intersectCost * count;

        float best_cost = std::numeric_limits<float>::max();
        int best_bin = -1;
        best_axis = -1;

        const Vec3 cext = centroid_bounds.extent();
        for (int axis = 0; axis < 3; ++axis) {
            if (cext[axis] <= 0.0f)
                continue;

            std::vector<Bin> bins(nbins);
            const float scale = nbins / cext[axis];
            const float offset = centroid_bounds.lo[axis];
            for (std::size_t i = begin; i < end; ++i) {
                int b = static_cast<int>((prims_[i].centroid[axis] - offset) *
                                         scale);
                b = std::clamp(b, 0, nbins - 1);
                bins[b].bounds.extend(prims_[i].bounds);
                bins[b].count += 1;
            }

            // Sweep from the right to accumulate suffix bounds/counts.
            std::vector<float> right_area(nbins);
            std::vector<int> right_count(nbins);
            Aabb acc;
            int acc_count = 0;
            for (int b = nbins - 1; b > 0; --b) {
                acc.extend(bins[b].bounds);
                acc_count += bins[b].count;
                right_area[b] = acc.surfaceArea();
                right_count[b] = acc_count;
            }

            // Sweep from the left evaluating each split plane.
            Aabb left;
            int left_count = 0;
            const float inv_area =
                bounds.surfaceArea() > 0 ? 1.0f / bounds.surfaceArea() : 0.0f;
            for (int b = 0; b < nbins - 1; ++b) {
                left.extend(bins[b].bounds);
                left_count += bins[b].count;
                if (left_count == 0 ||
                    right_count[b + 1] == static_cast<int>(count) ||
                    right_count[b + 1] == 0 || left_count == static_cast<int>(count))
                    continue;
                const float cost =
                    config_.traversalCost +
                    config_.intersectCost * inv_area *
                        (left.surfaceArea() * left_count +
                         right_area[b + 1] * right_count[b + 1]);
                if (cost < best_cost) {
                    best_cost = cost;
                    best_axis = axis;
                    best_bin = b;
                }
            }
        }

        if (best_axis < 0 || best_cost >= leaf_cost)
            return false;

        // Partition primitives by bin index on the winning axis.
        const float scale = nbins / cext[best_axis];
        const float offset = centroid_bounds.lo[best_axis];
        auto it = std::partition(
            prims_.begin() + begin, prims_.begin() + end,
            [&](const Primitive &p) {
                int b = static_cast<int>((p.centroid[best_axis] - offset) *
                                         scale);
                b = std::clamp(b, 0, nbins - 1);
                return b <= best_bin;
            });
        best_mid = static_cast<std::size_t>(it - prims_.begin());
        if (best_mid == begin || best_mid == end)
            return false; // numeric edge case: degenerate partition
        return true;
    }

    const BuildConfig config_;
    std::vector<Primitive> prims_;
    std::vector<Node> nodes_;
};

} // namespace

Bvh
build(const std::vector<geom::Triangle> &triangles, const BuildConfig &config)
{
    Builder builder(triangles, config);
    return builder.run();
}

} // namespace drs::bvh
