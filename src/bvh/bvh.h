#pragma once

/**
 * @file
 * Flattened bounding volume hierarchy. Nodes are laid out in depth-first
 * order in a contiguous array — the layout the simulated kernels fetch
 * through the L1 texture cache, matching the paper's setup ("the BVH
 * acceleration structure is used and accessed through the L1 texture
 * cache").
 */

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/triangle.h"

namespace drs::bvh {

/**
 * One flattened BVH node (2-wide tree).
 *
 * Interior nodes store the index of their right child (the left child is
 * adjacent at index + 1). Leaf nodes store a range into the reordered
 * triangle-index array.
 */
struct Node
{
    geom::Aabb bounds;
    /** Index of the right child for interior nodes; unused for leaves. */
    std::int32_t rightChild = -1;
    /** First triangle-index slot for leaves; -1 marks interior nodes. */
    std::int32_t firstTriangle = -1;
    /** Number of triangles in a leaf; 0 for interior nodes. */
    std::int32_t triangleCount = 0;
    /** Split axis of interior nodes (0/1/2), used for ordered traversal. */
    std::int32_t splitAxis = 0;

    bool isLeaf() const { return triangleCount > 0; }
};

/** Aggregate statistics about a built tree (used by tests and Fig 7). */
struct TreeStats
{
    std::size_t nodeCount = 0;
    std::size_t leafCount = 0;
    std::size_t maxDepth = 0;
    double meanLeafTriangles = 0.0;
    std::size_t maxLeafTriangles = 0;
    double sahCost = 0.0;
};

/**
 * An immutable flattened BVH over an externally owned triangle array.
 *
 * The BVH stores triangle *indices*; callers keep the triangle array and
 * index it through triangleIndex().
 */
class Bvh
{
  public:
    Bvh() = default;

    Bvh(std::vector<Node> nodes, std::vector<std::int32_t> triangle_indices);

    bool empty() const { return nodes_.empty(); }
    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(std::int32_t i) const { return nodes_.at(i); }
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Scene triangle id stored in leaf slot @p slot. */
    std::int32_t triangleIndex(std::int32_t slot) const
    {
        return triangleIndices_.at(slot);
    }

    const std::vector<std::int32_t> &triangleIndices() const
    {
        return triangleIndices_;
    }

    /** Root node bounds (empty box for an empty tree). */
    geom::Aabb bounds() const
    {
        return nodes_.empty() ? geom::Aabb{} : nodes_[0].bounds;
    }

    /** Compute tree statistics (walks the whole tree). */
    TreeStats computeStats() const;

  private:
    std::vector<Node> nodes_;
    std::vector<std::int32_t> triangleIndices_;
};

} // namespace drs::bvh
