#pragma once

/**
 * @file
 * Hash-based ray-path prediction (Demoullin et al., PAPERS.md): a table
 * maps a hash of the quantized ray origin/direction to the BVH leaf the
 * last similar ray terminated in. A predicted ray probes that leaf's
 * triangles directly before running the full traversal; the traversal
 * always runs, so a correct prediction only *shrinks* tMax (pruning the
 * interior work the prediction made redundant) and never changes which
 * triangle wins. Mispredictions cost one wasted probe and are counted.
 *
 * Everything is deterministic: the key is a pure function of ray and
 * scene bounds, the table is direct-mapped with last-writer-wins
 * replacement, and each SMX owns a private table so the result is a pure
 * function of that SMX's ray stripe.
 */

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/ray.h"

namespace drs::reorder {

/** Tuning knobs of the path predictor (RunConfig::pathpred). */
struct PredictorConfig
{
    /** log2 of the direct-mapped table size (12 = 4096 entries). */
    int tableBits = 12;
    /** Bits per axis of the origin quantization. Clamped to [1, 10]. */
    int originBits = 7;
    /**
     * Bits per axis of the direction quantization (on top of the sign
     * octant). Clamped to [0, 8].
     */
    int directionBits = 4;

    bool operator==(const PredictorConfig &) const = default;
};

/**
 * Prediction key of @p ray: Morton-interleaved quantized origin over
 * @p bounds combined with the quantized direction. Non-finite
 * coordinates quantize to cell 0 (same policy as the reorder keys).
 */
std::uint64_t pathPredKey(const geom::Ray &ray, const geom::Aabb &bounds,
                          const PredictorConfig &config);

/**
 * Direct-mapped predictor table: key -> last observed terminal leaf
 * node. Collisions evict (last writer wins); a tag mismatch is a miss.
 */
class PredictorTable
{
  public:
    explicit PredictorTable(const PredictorConfig &config);

    /** Predicted leaf node index for @p key, or -1 on miss. */
    std::int32_t lookup(std::uint64_t key) const;

    /** Record that a ray with @p key terminated in leaf node @p leaf. */
    void insert(std::uint64_t key, std::int32_t leaf);

    /** Number of table entries (a power of two). */
    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::int32_t leaf = -1; ///< -1 = never written
    };

    std::size_t index(std::uint64_t key) const;

    std::vector<Entry> entries_;
};

} // namespace drs::reorder
