#pragma once

/**
 * @file
 * Software ray-reordering primitives: the sort keys and permutation
 * machinery behind the "sort" and "cutcode" survey architectures
 * (harness/arch_reorder.cc).
 *
 * Two key schemes, matching the field's software competitors (Meister et
 * al.'s ray-reordering survey; Xiang et al.'s hierarchy-cut codes):
 *
 *  - Hash-grid keys: the ray origin is quantized onto a uniform grid
 *    over the scene bounds and Morton-interleaved; the direction octant
 *    occupies the low bits (Garanzha & Loop-style origin-major keys).
 *    Sorting a batch by this key groups rays that start near each other
 *    and travel the same way — the classic pre-bounce compaction sort.
 *
 *  - Hierarchy-cut codes: a cut of the scene BVH (a frontier of ~cutSize
 *    nodes covering the tree) is fixed per scene; a ray's code is the
 *    DFS rank of the cut node its origin descends into. Keys derived
 *    from the hierarchy respect the tree's actual spatial adaptivity
 *    (dense regions get fine codes, empty space coarse ones), which a
 *    uniform grid cannot.
 *
 * Everything here is deterministic: keys are pure functions of ray and
 * scene, the sort is stable, so the same batch always produces the same
 * permutation at any thread count.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "bvh/bvh.h"
#include "geom/aabb.h"
#include "geom/ray.h"

namespace drs::reorder {

/** Tuning knobs of the software reordering passes (RunConfig::reorder). */
struct ReorderConfig
{
    /**
     * Bits per axis of the hash-grid origin quantization (6 = a 64^3
     * grid, 18 Morton bits). Clamped to [1, 10].
     */
    int originBits = 6;
    /** Append the 3-bit direction octant to every key (both schemes). */
    bool directionOctant = true;
    /**
     * Target node count of the BVH cut for cut-code keys. Larger cuts
     * give finer codes (more, smaller buckets). Clamped to >= 1.
     */
    int cutSize = 256;

    bool operator==(const ReorderConfig &) const = default;
};

/** 3-bit octant of @p direction (sign bits of x/y/z). */
std::uint32_t directionOctant(const geom::Vec3 &direction);

/**
 * Origin-major hash-grid key of @p ray over @p bounds: Morton-interleaved
 * quantized origin in the high bits, direction octant (when enabled) in
 * the low three.
 */
std::uint64_t hashGridKey(const geom::Ray &ray, const geom::Aabb &bounds,
                          const ReorderConfig &config);

/**
 * A cut of a BVH: a frontier of nodes that together cover the whole
 * tree, grown from the root by repeatedly expanding the frontier node
 * with the largest surface area until @p target_size nodes (or no
 * expandable node remains). Codes are assigned in node-index order,
 * i.e. the flattened tree's depth-first order, so consecutive codes are
 * spatially adjacent subtrees.
 */
class BvhCut
{
  public:
    /** Build a cut of @p bvh with about @p target_size nodes. */
    BvhCut(const bvh::Bvh &bvh, int target_size);

    /** Number of nodes in the cut (0 for an empty tree). */
    int size() const { return size_; }

    /**
     * Code of the cut node @p point descends into from the root: at each
     * expanded interior node the child whose bounds contain the point is
     * chosen (both/neither: the child with the nearer bounds center,
     * ties to the left child). Returns 0 for an empty tree.
     */
    std::uint32_t code(const geom::Vec3 &point) const;

  private:
    const bvh::Bvh *bvh_ = nullptr;
    /** Cut code per node index; -1 = not a cut node. */
    std::vector<std::int32_t> codeByNode_;
    int size_ = 0;
};

/**
 * Cut-code key of @p ray: the origin's cut code in the high bits, the
 * direction octant (when enabled) in the low three.
 */
std::uint64_t cutCodeKey(const geom::Ray &ray, const BvhCut &cut,
                         const ReorderConfig &config);

/** What a reordering pass did to one batch (bench/counter material). */
struct ReorderStats
{
    /** Distinct key values in the batch. */
    std::uint64_t distinctKeys = 0;
    /** Sum over sorted positions p of |original_index(p) - p|. */
    std::uint64_t displacementSum = 0;
};

/**
 * Stable sorted order of @p keys: result[p] is the original index of the
 * ray that belongs at sorted position p. Equal keys keep their original
 * relative order, so the permutation is deterministic.
 */
std::vector<std::uint32_t> sortedOrder(std::span<const std::uint64_t> keys,
                                       ReorderStats *stats = nullptr);

} // namespace drs::reorder
