#include "reorder/predictor.h"

#include <algorithm>
#include <cmath>

namespace drs::reorder {

namespace {

/** Quantize @p value in [lo, hi] to [0, 2^bits); non-finite -> 0. */
std::uint32_t
quantizeCell(float value, float lo, float hi, int bits)
{
    if (!std::isfinite(value))
        return 0;
    const float extent = hi - lo;
    if (!(extent > 0.0f))
        return 0;
    const auto cells = static_cast<float>(1u << bits);
    float cell = std::floor((value - lo) / extent * cells);
    if (cell < 0.0f)
        cell = 0.0f;
    const float last = cells - 1.0f;
    if (cell > last)
        cell = last;
    return static_cast<std::uint32_t>(cell);
}

/** Spread the low 10 bits of @p v with two zero bits between each. */
std::uint64_t
spreadBits10(std::uint64_t v)
{
    v &= 0x3ffu;
    v = (v | (v << 16)) & 0x030000ffull;
    v = (v | (v << 8)) & 0x0300f00full;
    v = (v | (v << 4)) & 0x030c30c3ull;
    v = (v | (v << 2)) & 0x09249249ull;
    return v;
}

/** 64-bit finalizer (splitmix64) — spreads the key over the table. */
std::uint64_t
mix64(std::uint64_t v)
{
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
}

} // namespace

std::uint64_t
pathPredKey(const geom::Ray &ray, const geom::Aabb &bounds,
            const PredictorConfig &config)
{
    const int origin_bits = std::clamp(config.originBits, 1, 10);
    const std::uint64_t morton =
        (spreadBits10(quantizeCell(ray.origin.x, bounds.lo.x, bounds.hi.x,
                                   origin_bits))
         << 2) |
        (spreadBits10(quantizeCell(ray.origin.y, bounds.lo.y, bounds.hi.y,
                                   origin_bits))
         << 1) |
        spreadBits10(quantizeCell(ray.origin.z, bounds.lo.z, bounds.hi.z,
                                  origin_bits));

    const std::uint32_t octant = (ray.direction.x < 0.0f ? 1u : 0u) |
                                 (ray.direction.y < 0.0f ? 2u : 0u) |
                                 (ray.direction.z < 0.0f ? 4u : 0u);
    std::uint64_t key = (morton << 3) | octant;

    const int dir_bits = std::clamp(config.directionBits, 0, 8);
    if (dir_bits > 0) {
        // Directions are unit-length in practice; quantize each
        // component over [-1, 1] for angular resolution beyond the
        // octant.
        for (const float component :
             {ray.direction.x, ray.direction.y, ray.direction.z})
            key = (key << dir_bits) |
                  quantizeCell(component, -1.0f, 1.0f, dir_bits);
    }
    return key;
}

PredictorTable::PredictorTable(const PredictorConfig &config)
{
    const int bits = std::clamp(config.tableBits, 1, 24);
    entries_.assign(std::size_t{1} << bits, Entry{});
}

std::size_t
PredictorTable::index(std::uint64_t key) const
{
    return mix64(key) & (entries_.size() - 1);
}

std::int32_t
PredictorTable::lookup(std::uint64_t key) const
{
    const Entry &entry = entries_[index(key)];
    if (entry.leaf >= 0 && entry.tag == key)
        return entry.leaf;
    return -1;
}

void
PredictorTable::insert(std::uint64_t key, std::int32_t leaf)
{
    if (leaf < 0)
        return;
    entries_[index(key)] = Entry{key, leaf};
}

} // namespace drs::reorder
