#pragma once

/**
 * @file
 * The sort buffer behind the SER-style reorder point (NVIDIA's Shader
 * Execution Reordering, applied at the traversal->hit-shading boundary):
 * warps deposit rays that finished traversal, keyed by hit material plus
 * the BVH-cut code of the hit point; the control unit later pulls groups
 * of key-adjacent rays to refill warps for the shade block, so shading
 * runs with coherent neighbors regardless of deposit order.
 *
 * Deterministic by construction: buckets are an ordered map, pulls take
 * the smallest keys first and keep FIFO order inside a bucket, so the
 * dispatch sequence is a pure function of the deposit sequence.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace drs::reorder {

/** One ray parked at the shading boundary. */
struct ShadeEntry
{
    /** Sort key: (material+1) in the high 32 bits, cut code below. */
    std::uint64_t key = 0;
    /** Global ray id (workspace result index). */
    std::int32_t rayId = -1;
    /** Hit material id, or -1 for a miss (environment shading). */
    std::int32_t material = -1;
};

/** What one pull achieved versus FIFO dispatch (counter material). */
struct PullStats
{
    /** Distinct keys in the coherence-sorted group actually pulled. */
    std::uint64_t sortedDistinctKeys = 0;
    /** Distinct keys a FIFO dispatch of the same size would have had. */
    std::uint64_t depositDistinctKeys = 0;
};

/** Keyed deposit buffer with smallest-key-first, FIFO-in-bucket pulls. */
class ShadeQueue
{
  public:
    /** Deposit one ray at the shading boundary. */
    void push(const ShadeEntry &entry);

    /** Rays currently parked. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /**
     * Remove and return up to @p max_entries rays, coherent keys first.
     * @p stats (optional) reports the pulled group's key diversity next
     * to what dispatching in plain deposit order would have produced.
     */
    std::vector<ShadeEntry> pull(std::size_t max_entries,
                                 PullStats *stats = nullptr);

  private:
    std::map<std::uint64_t, std::deque<ShadeEntry>> buckets_;
    /** Keys in deposit order — the FIFO counterfactual for PullStats. */
    std::deque<std::uint64_t> depositOrder_;
    std::size_t size_ = 0;
};

} // namespace drs::reorder
