#include "reorder/shade_queue.h"

namespace drs::reorder {

void
ShadeQueue::push(const ShadeEntry &entry)
{
    buckets_[entry.key].push_back(entry);
    depositOrder_.push_back(entry.key);
    ++size_;
}

std::vector<ShadeEntry>
ShadeQueue::pull(std::size_t max_entries, PullStats *stats)
{
    std::vector<ShadeEntry> group;
    group.reserve(std::min(max_entries, size_));
    while (group.size() < max_entries && !buckets_.empty()) {
        auto bucket = buckets_.begin();
        std::deque<ShadeEntry> &entries = bucket->second;
        while (group.size() < max_entries && !entries.empty()) {
            group.push_back(entries.front());
            entries.pop_front();
        }
        if (entries.empty())
            buckets_.erase(bucket);
    }
    size_ -= group.size();

    if (stats != nullptr) {
        *stats = PullStats{};
        for (std::size_t i = 0; i < group.size(); ++i)
            if (i == 0 || group[i].key != group[i - 1].key)
                ++stats->sortedDistinctKeys;
        std::uint64_t previous = 0;
        for (std::size_t i = 0; i < group.size(); ++i) {
            const std::uint64_t key = depositOrder_[i];
            if (i == 0 || key != previous)
                ++stats->depositDistinctKeys;
            previous = key;
        }
    }
    depositOrder_.erase(depositOrder_.begin(),
                        depositOrder_.begin() +
                            static_cast<std::ptrdiff_t>(group.size()));
    return group;
}

} // namespace drs::reorder
