#include "reorder/reorder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace drs::reorder {

namespace {

/** Spread the low 10 bits of @p v so there are two zero bits between each. */
std::uint64_t
spreadBits10(std::uint64_t v)
{
    v &= 0x3ffu;
    v = (v | (v << 16)) & 0x030000ffull;
    v = (v | (v << 8)) & 0x0300f00full;
    v = (v | (v << 4)) & 0x030c30c3ull;
    v = (v | (v << 2)) & 0x09249249ull;
    return v;
}

int
clampedOriginBits(const ReorderConfig &config)
{
    return std::clamp(config.originBits, 1, 10);
}

/** Quantize @p value in [lo, hi] to [0, 2^bits). Degenerate axes map to 0. */
std::uint32_t
quantize(float value, float lo, float hi, int bits)
{
    // Non-finite coordinates (NaN/Inf ray origins reach this through the
    // fuzzer) would fall through both clamp comparisons below and make
    // the float->uint32_t cast undefined. Pin them to cell 0.
    if (!std::isfinite(value))
        return 0;
    const float extent = hi - lo;
    if (!(extent > 0.0f))
        return 0;
    const auto cells = static_cast<float>(1u << bits);
    float cell = std::floor((value - lo) / extent * cells);
    if (cell < 0.0f)
        cell = 0.0f;
    const float last = cells - 1.0f;
    if (cell > last)
        cell = last;
    return static_cast<std::uint32_t>(cell);
}

} // namespace

std::uint32_t
directionOctant(const geom::Vec3 &direction)
{
    return (direction.x < 0.0f ? 1u : 0u) | (direction.y < 0.0f ? 2u : 0u) |
           (direction.z < 0.0f ? 4u : 0u);
}

std::uint64_t
hashGridKey(const geom::Ray &ray, const geom::Aabb &bounds,
            const ReorderConfig &config)
{
    const int bits = clampedOriginBits(config);
    const std::uint32_t qx =
        quantize(ray.origin.x, bounds.lo.x, bounds.hi.x, bits);
    const std::uint32_t qy =
        quantize(ray.origin.y, bounds.lo.y, bounds.hi.y, bits);
    const std::uint32_t qz =
        quantize(ray.origin.z, bounds.lo.z, bounds.hi.z, bits);
    const std::uint64_t morton = (spreadBits10(qx) << 2) |
                                 (spreadBits10(qy) << 1) | spreadBits10(qz);
    if (!config.directionOctant)
        return morton;
    return (morton << 3) | directionOctant(ray.direction);
}

BvhCut::BvhCut(const bvh::Bvh &bvh, int target_size) : bvh_(&bvh)
{
    codeByNode_.assign(bvh.nodeCount(), -1);
    if (bvh.empty())
        return;
    const int target = std::max(target_size, 1);

    // Grow the frontier from the root, always splitting the node with
    // the largest surface area (ties to the smaller node index, so the
    // cut is a pure function of the tree). Leaves cannot be expanded.
    std::vector<std::int32_t> frontier{0};
    while (static_cast<int>(frontier.size()) < target) {
        std::size_t best = frontier.size();
        float best_area = -1.0f;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            const bvh::Node &node = bvh.node(frontier[i]);
            if (node.isLeaf())
                continue;
            const float area = node.bounds.surfaceArea();
            if (area > best_area) {
                best_area = area;
                best = i;
            }
        }
        if (best == frontier.size())
            break; // every frontier node is a leaf
        const std::int32_t index = frontier[best];
        const bvh::Node &node = bvh.node(index);
        frontier[best] = index + 1; // left child is adjacent
        frontier.push_back(node.rightChild);
    }

    // Codes in node-index (depth-first) order: adjacent codes are
    // spatially adjacent subtrees of the flattened layout.
    std::sort(frontier.begin(), frontier.end());
    for (std::size_t rank = 0; rank < frontier.size(); ++rank)
        codeByNode_[static_cast<std::size_t>(frontier[rank])] =
            static_cast<std::int32_t>(rank);
    size_ = static_cast<int>(frontier.size());
}

std::uint32_t
BvhCut::code(const geom::Vec3 &point) const
{
    if (size_ == 0)
        return 0;
    std::int32_t current = 0;
    while (codeByNode_[static_cast<std::size_t>(current)] < 0) {
        const bvh::Node &node = bvh_->node(current);
        const std::int32_t left = current + 1;
        const std::int32_t right = node.rightChild;
        const bool in_left = bvh_->node(left).bounds.contains(point);
        const bool in_right = bvh_->node(right).bounds.contains(point);
        if (in_left != in_right) {
            current = in_left ? left : right;
            continue;
        }
        // Both or neither contain the point: descend toward the nearer
        // bounds center (ties to the left child), which keeps the walk
        // total and deterministic.
        const geom::Vec3 to_left = bvh_->node(left).bounds.center() - point;
        const geom::Vec3 to_right = bvh_->node(right).bounds.center() - point;
        const float dist_left = to_left.x * to_left.x +
                                to_left.y * to_left.y + to_left.z * to_left.z;
        const float dist_right = to_right.x * to_right.x +
                                 to_right.y * to_right.y +
                                 to_right.z * to_right.z;
        current = dist_right < dist_left ? right : left;
    }
    return static_cast<std::uint32_t>(
        codeByNode_[static_cast<std::size_t>(current)]);
}

std::uint64_t
cutCodeKey(const geom::Ray &ray, const BvhCut &cut,
           const ReorderConfig &config)
{
    const std::uint64_t code = cut.code(ray.origin);
    if (!config.directionOctant)
        return code;
    return (code << 3) | directionOctant(ray.direction);
}

std::vector<std::uint32_t>
sortedOrder(std::span<const std::uint64_t> keys, ReorderStats *stats)
{
    std::vector<std::uint32_t> order(keys.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&keys](std::uint32_t a, std::uint32_t b) {
                         return keys[a] < keys[b];
                     });
    if (stats != nullptr) {
        stats->distinctKeys = 0;
        stats->displacementSum = 0;
        for (std::size_t p = 0; p < order.size(); ++p) {
            if (p == 0 || keys[order[p]] != keys[order[p - 1]])
                ++stats->distinctKeys;
            const auto original = static_cast<std::int64_t>(order[p]);
            const auto sorted = static_cast<std::int64_t>(p);
            stats->displacementSum += static_cast<std::uint64_t>(
                original > sorted ? original - sorted : sorted - original);
        }
    }
    return order;
}

} // namespace drs::reorder
