#include "kernels/aila_kernel.h"

#include <cassert>
#include <stdexcept>

namespace drs::kernels {

using simt::Block;
using simt::MemSpace;
using simt::Program;
using simt::ThreadStep;
using simt::TravState;

simt::Program
makeAilaProgram(const CostModel &cost)
{
    std::vector<Block> blocks(AilaBlocks::kCount);

    auto &fetch = blocks[AilaBlocks::kFetch];
    fetch.name = "FETCH";
    fetch.instructionCount = cost.fetchRay;
    fetch.successors = {AilaBlocks::kInnerHead, AilaBlocks::kExit};
    fetch.memSpace = MemSpace::Global;
    fetch.phase = obs::TravPhase::Fetch;

    auto &ihead = blocks[AilaBlocks::kInnerHead];
    ihead.name = "INNER_HEAD";
    ihead.instructionCount = cost.innerLoopHead;
    ihead.successors = {AilaBlocks::kInnerTest, AilaBlocks::kLeafHead};
    ihead.phase = obs::TravPhase::Inner;

    auto &itest = blocks[AilaBlocks::kInnerTest];
    itest.name = "INNER_TEST";
    itest.instructionCount = cost.innerTest;
    itest.successors = {AilaBlocks::kInnerHead};
    itest.memSpace = MemSpace::Texture;
    itest.phase = obs::TravPhase::Inner;

    auto &lhead = blocks[AilaBlocks::kLeafHead];
    lhead.name = "LEAF_HEAD";
    lhead.instructionCount = cost.leafLoopHead;
    lhead.successors = {AilaBlocks::kLeafTest, AilaBlocks::kDoneCheck};
    lhead.phase = obs::TravPhase::Leaf;

    auto &ltest = blocks[AilaBlocks::kLeafTest];
    ltest.name = "LEAF_TEST";
    ltest.instructionCount = cost.leafTest;
    ltest.successors = {AilaBlocks::kLeafHead};
    ltest.memSpace = MemSpace::Texture;
    ltest.phase = obs::TravPhase::Leaf;

    auto &done = blocks[AilaBlocks::kDoneCheck];
    done.name = "DONE_CHECK";
    done.instructionCount = cost.doneCheck;
    done.successors = {AilaBlocks::kInnerHead, AilaBlocks::kStore};
    done.phase = obs::TravPhase::Fetch;

    auto &store = blocks[AilaBlocks::kStore];
    store.name = "STORE";
    store.instructionCount = cost.storeResult;
    store.successors = {AilaBlocks::kFetch};
    store.memSpace = MemSpace::Global;
    store.phase = obs::TravPhase::Fetch;

    blocks[AilaBlocks::kExit].name = "EXIT";
    blocks[AilaBlocks::kExit].instructionCount = 1;

    return Program(std::move(blocks), AilaBlocks::kExit);
}

AilaKernel::AilaKernel(const bvh::Bvh &bvh,
                       const std::vector<geom::Triangle> &triangles,
                       std::span<const geom::Ray> rays,
                       std::size_t first_ray, const AilaConfig &config)
    : config_(config),
      program_(makeAilaProgram(config.cost)),
      workspace_(bvh, triangles, rays, first_ray, config.numWarps,
                 32, config.anyHit),
      postponedLeaf_(static_cast<std::size_t>(config.numWarps) * 32, -1)
{
}

ThreadStep
AilaKernel::execute(int block, int row, int lane)
{
    ThreadStep step;
    RaySlot &slot = workspace_.slot(row, lane);

    switch (block) {
      case AilaBlocks::kFetch: {
        const bool got = workspace_.fetchStep(row, lane);
        if (got) {
            step.nextBlock = AilaBlocks::kInnerHead;
            step.memAddress = workspace_.rayAddress(
                workspace_.slot(row, lane).rayId);
            step.memBytes = workspace_.addressMap().rayBytes;
        } else {
            step.nextBlock = AilaBlocks::kExit;
        }
        return step;
      }
      case AilaBlocks::kInnerHead: {
        if (slot.state == TravState::Inner) {
            step.nextBlock = AilaBlocks::kInnerTest;
        } else if (config_.speculativeTraversal &&
                   slot.state == TravState::Leaf &&
                   workspace_.deferLeaf(row, lane)) {
            // The leaf was postponed (pushed to the stack bottom); the
            // thread continues traversing inner nodes speculatively.
            step.nextBlock = AilaBlocks::kInnerTest;
        } else {
            step.nextBlock = AilaBlocks::kLeafHead;
        }
        return step;
      }
      case AilaBlocks::kInnerTest: {
        const std::int32_t node = slot.nodeIndex;
        // The child-select / push / pop tails are predicated in the
        // block's instruction count; the outcome only drives semantics.
        (void)workspace_.innerStep(row, lane);
        step.nextBlock = AilaBlocks::kInnerHead;
        step.memAddress = workspace_.nodeAddress(node);
        step.memBytes = workspace_.addressMap().nodeBytes;
        return step;
      }
      case AilaBlocks::kLeafHead:
        step.nextBlock = workspace_.leafHasWork(row, lane)
                             ? AilaBlocks::kLeafTest
                             : AilaBlocks::kDoneCheck;
        return step;
      case AilaBlocks::kLeafTest: {
        const std::int32_t cursor = slot.leafCursor;
        (void)workspace_.leafStep(row, lane); // hit update is predicated
        step.nextBlock = AilaBlocks::kLeafHead;
        step.memAddress = workspace_.triangleAddress(cursor);
        step.memBytes = workspace_.addressMap().triangleBytes;
        return step;
      }
      case AilaBlocks::kDoneCheck:
        // A terminated slot is back in the Fetch state.
        step.nextBlock = slot.state == TravState::Fetch
                             ? AilaBlocks::kStore
                             : AilaBlocks::kInnerHead;
        return step;
      case AilaBlocks::kStore: {
        step.nextBlock = AilaBlocks::kFetch;
        if (slot.lastRayId >= 0) {
            step.memAddress = workspace_.resultAddress(slot.lastRayId);
            step.memBytes = workspace_.addressMap().resultBytes;
        }
        return step;
      }
      default:
        throw std::logic_error("AilaKernel: unexpected block");
    }
}

} // namespace drs::kernels
