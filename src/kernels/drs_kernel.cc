#include "kernels/drs_kernel.h"

#include <stdexcept>

namespace drs::kernels {

using simt::Block;
using simt::MemSpace;
using simt::Program;
using simt::SpecialOp;
using simt::ThreadStep;
using simt::TravState;

simt::Program
makeDrsProgram(const CostModel &cost)
{
    std::vector<Block> blocks(DrsBlocks::kCount);

    auto &rdctrl = blocks[DrsBlocks::kRdctrl];
    rdctrl.name = "RDCTRL";
    rdctrl.instructionCount = cost.rdctrl;
    rdctrl.specialOp = SpecialOp::Rdctrl;
    rdctrl.successors = {DrsBlocks::kFetchBody, DrsBlocks::kInnerTest,
                         DrsBlocks::kLeafHead, DrsBlocks::kExit};

    auto &fetch = blocks[DrsBlocks::kFetchBody];
    fetch.name = "IF_FETCH";
    fetch.instructionCount = cost.fetchRay;
    fetch.successors = {DrsBlocks::kRdctrl};
    fetch.memSpace = MemSpace::Global;
    fetch.phase = obs::TravPhase::Fetch;

    auto &itest = blocks[DrsBlocks::kInnerTest];
    itest.name = "IF_INNER_TEST";
    itest.instructionCount = cost.innerTest;
    itest.successors = {DrsBlocks::kSetStateInner};
    itest.memSpace = MemSpace::Texture;
    itest.phase = obs::TravPhase::Inner;

    auto &seti = blocks[DrsBlocks::kSetStateInner];
    seti.name = "SET_STATE_I";
    seti.instructionCount = cost.setRayState;
    seti.successors = {DrsBlocks::kRdctrl};
    seti.phase = obs::TravPhase::Inner;

    auto &lhead = blocks[DrsBlocks::kLeafHead];
    lhead.name = "IF_LEAF_HEAD";
    lhead.instructionCount = cost.leafBodyHead;
    lhead.successors = {DrsBlocks::kLeafTest, DrsBlocks::kSetStateLeaf};
    lhead.phase = obs::TravPhase::Leaf;

    auto &ltest = blocks[DrsBlocks::kLeafTest];
    ltest.name = "LEAF_TEST";
    ltest.instructionCount = cost.leafTest;
    ltest.successors = {DrsBlocks::kLeafHead};
    ltest.memSpace = MemSpace::Texture;
    ltest.phase = obs::TravPhase::Leaf;

    auto &setl = blocks[DrsBlocks::kSetStateLeaf];
    setl.name = "SET_STATE_L";
    setl.instructionCount = cost.setRayState;
    setl.successors = {DrsBlocks::kRdctrl};
    setl.phase = obs::TravPhase::Leaf;

    blocks[DrsBlocks::kExit].name = "EXIT";
    blocks[DrsBlocks::kExit].instructionCount = 1;

    return Program(std::move(blocks), DrsBlocks::kExit);
}

DrsKernel::DrsKernel(const bvh::Bvh &bvh,
                     const std::vector<geom::Triangle> &triangles,
                     std::span<const geom::Ray> rays,
                     std::size_t first_ray, const DrsKernelConfig &config)
    : config_(config),
      program_(makeDrsProgram(config.cost)),
      workspace_(bvh, triangles, rays, first_ray, config.rowCount(),
                 32, config.anyHit)
{
}

int
DrsKernel::blockForState(TravState state) const
{
    switch (state) {
      case TravState::Fetch: return DrsBlocks::kFetchBody;
      case TravState::Inner: return DrsBlocks::kInnerTest;
      case TravState::Leaf: return DrsBlocks::kLeafHead;
    }
    throw std::logic_error("DrsKernel: bad traversal state");
}

ThreadStep
DrsKernel::execute(int block, int row, int lane)
{
    ThreadStep step;
    RaySlot &slot = workspace_.slot(row, lane);

    switch (block) {
      case DrsBlocks::kFetchBody: {
        const bool got = workspace_.fetchStep(row, lane);
        step.nextBlock = DrsBlocks::kRdctrl;
        if (got) {
            // reg_ray_state <- INNER happened inside fetchStep.
            step.memAddress = workspace_.rayAddress(
                workspace_.slot(row, lane).rayId);
            step.memBytes = workspace_.addressMap().rayBytes;
        }
        return step;
      }
      case DrsBlocks::kInnerTest: {
        const std::int32_t node = slot.nodeIndex;
        // Child-select / push / pop tails are predicated in the count.
        (void)workspace_.innerStep(row, lane);
        step.nextBlock = DrsBlocks::kSetStateInner;
        step.memAddress = workspace_.nodeAddress(node);
        step.memBytes = workspace_.addressMap().nodeBytes;
        return step;
      }
      case DrsBlocks::kSetStateInner:
      case DrsBlocks::kSetStateLeaf:
        // reg_ray_state was updated by the step functions; this block
        // models the register write itself.
        step.nextBlock = DrsBlocks::kRdctrl;
        return step;
      case DrsBlocks::kLeafHead:
        step.nextBlock = workspace_.leafHasWork(row, lane)
                             ? DrsBlocks::kLeafTest
                             : DrsBlocks::kSetStateLeaf;
        return step;
      case DrsBlocks::kLeafTest: {
        const std::int32_t cursor = slot.leafCursor;
        (void)workspace_.leafStep(row, lane); // hit update is predicated
        step.nextBlock = DrsBlocks::kLeafHead;
        step.memAddress = workspace_.triangleAddress(cursor);
        step.memBytes = workspace_.addressMap().triangleBytes;
        return step;
      }
      default:
        throw std::logic_error("DrsKernel: unexpected block");
    }
}

} // namespace drs::kernels
