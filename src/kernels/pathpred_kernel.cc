#include "kernels/pathpred_kernel.h"

#include <cmath>
#include <stdexcept>

namespace drs::kernels {

using simt::Block;
using simt::MemSpace;
using simt::Program;
using simt::ThreadStep;
using simt::TravState;

simt::Program
makePathPredProgram(const CostModel &cost)
{
    std::vector<Block> blocks(PathPredBlocks::kCount);

    auto &fetch = blocks[PathPredBlocks::kFetch];
    fetch.name = "FETCH";
    fetch.instructionCount = cost.fetchRay;
    fetch.successors = {PathPredBlocks::kPredict, PathPredBlocks::kExit};
    fetch.memSpace = MemSpace::Global;
    fetch.phase = obs::TravPhase::Fetch;

    auto &predict = blocks[PathPredBlocks::kPredict];
    predict.name = "PREDICT";
    predict.instructionCount = cost.predictLookup;
    predict.successors = {PathPredBlocks::kProbeHead,
                          PathPredBlocks::kInnerHead};
    predict.phase = obs::TravPhase::Fetch;

    auto &phead = blocks[PathPredBlocks::kProbeHead];
    phead.name = "PROBE_HEAD";
    phead.instructionCount = cost.leafLoopHead;
    phead.successors = {PathPredBlocks::kProbeTest,
                        PathPredBlocks::kInnerHead};
    phead.phase = obs::TravPhase::Leaf;

    auto &ptest = blocks[PathPredBlocks::kProbeTest];
    ptest.name = "PROBE_TEST";
    ptest.instructionCount = cost.leafTest;
    ptest.successors = {PathPredBlocks::kProbeHead};
    ptest.memSpace = MemSpace::Texture;
    ptest.phase = obs::TravPhase::Leaf;

    auto &ihead = blocks[PathPredBlocks::kInnerHead];
    ihead.name = "INNER_HEAD";
    ihead.instructionCount = cost.innerLoopHead;
    ihead.successors = {PathPredBlocks::kInnerTest,
                        PathPredBlocks::kLeafHead};
    ihead.phase = obs::TravPhase::Inner;

    auto &itest = blocks[PathPredBlocks::kInnerTest];
    itest.name = "INNER_TEST";
    itest.instructionCount = cost.innerTest;
    itest.successors = {PathPredBlocks::kInnerHead};
    itest.memSpace = MemSpace::Texture;
    itest.phase = obs::TravPhase::Inner;

    auto &lhead = blocks[PathPredBlocks::kLeafHead];
    lhead.name = "LEAF_HEAD";
    lhead.instructionCount = cost.leafLoopHead;
    lhead.successors = {PathPredBlocks::kLeafTest,
                        PathPredBlocks::kDoneCheck};
    lhead.phase = obs::TravPhase::Leaf;

    auto &ltest = blocks[PathPredBlocks::kLeafTest];
    ltest.name = "LEAF_TEST";
    ltest.instructionCount = cost.leafTest;
    ltest.successors = {PathPredBlocks::kLeafHead};
    ltest.memSpace = MemSpace::Texture;
    ltest.phase = obs::TravPhase::Leaf;

    auto &done = blocks[PathPredBlocks::kDoneCheck];
    done.name = "DONE_CHECK";
    done.instructionCount = cost.doneCheck;
    done.successors = {PathPredBlocks::kInnerHead, PathPredBlocks::kStore};
    done.phase = obs::TravPhase::Fetch;

    auto &store = blocks[PathPredBlocks::kStore];
    store.name = "STORE";
    store.instructionCount = cost.storeResult;
    store.successors = {PathPredBlocks::kFetch};
    store.memSpace = MemSpace::Global;
    store.phase = obs::TravPhase::Fetch;

    blocks[PathPredBlocks::kExit].name = "EXIT";
    blocks[PathPredBlocks::kExit].instructionCount = 1;

    return Program(std::move(blocks), PathPredBlocks::kExit);
}

PathPredKernel::PathPredKernel(const bvh::Bvh &bvh,
                               const std::vector<geom::Triangle> &triangles,
                               std::span<const geom::Ray> rays,
                               std::size_t first_ray,
                               const PathPredConfig &config)
    : config_(config),
      program_(makePathPredProgram(config.cost)),
      workspace_(bvh, triangles, rays, first_ray, config.numWarps, 32,
                 config.anyHit),
      bvh_(bvh),
      triangles_(triangles),
      bounds_(bvh.bounds()),
      table_(config.predictor),
      side_(static_cast<std::size_t>(config.numWarps) * 32)
{
}

void
PathPredKernel::onRayTerminated(SideState &side, std::int64_t ray_id)
{
    const std::size_t local =
        static_cast<std::size_t>(ray_id) - workspace_.firstRay();
    const geom::Hit &result = workspace_.results().at(local);
    if (side.predicted) {
        if (side.probeTriangle != geom::kNoHit &&
            result.triangle == side.probeTriangle)
            ++counts_.correct;
        else
            ++counts_.mispredicts;
    }
    if (!config_.anyHit && result.triangle != geom::kNoHit &&
        side.lastHitLeaf >= 0) {
        table_.insert(side.key, side.lastHitLeaf);
        ++counts_.inserts;
    }
    side = SideState{};
}

ThreadStep
PathPredKernel::execute(int block, int row, int lane)
{
    ThreadStep step;
    RaySlot &slot = workspace_.slot(row, lane);
    SideState &s = side(row, lane);

    switch (block) {
      case PathPredBlocks::kFetch: {
        const bool got = workspace_.fetchStep(row, lane);
        if (got) {
            step.nextBlock = PathPredBlocks::kPredict;
            step.memAddress = workspace_.rayAddress(
                workspace_.slot(row, lane).rayId);
            step.memBytes = workspace_.addressMap().rayBytes;
        } else {
            step.nextBlock = PathPredBlocks::kExit;
        }
        return step;
      }
      case PathPredBlocks::kPredict: {
        step.nextBlock = PathPredBlocks::kInnerHead;
        if (config_.anyHit)
            return step; // prediction disabled for shadow rays
        ++counts_.lookups;
        s = SideState{};
        s.key = reorder::pathPredKey(slot.ray, bounds_, config_.predictor);
        const std::int32_t leaf = table_.lookup(s.key);
        if (leaf >= 0) {
            ++counts_.tableHits;
            const bvh::Node &node = bvh_.node(leaf);
            s.predicted = true;
            s.probeCursor = node.firstTriangle;
            s.probeEnd = node.firstTriangle + node.triangleCount;
            step.nextBlock = PathPredBlocks::kProbeHead;
        }
        return step;
      }
      case PathPredBlocks::kProbeHead:
        step.nextBlock = s.probeCursor < s.probeEnd
                             ? PathPredBlocks::kProbeTest
                             : PathPredBlocks::kInnerHead;
        return step;
      case PathPredBlocks::kProbeTest: {
        const std::int32_t cursor = s.probeCursor;
        ++s.probeCursor;
        const std::int32_t tri = bvh_.triangleIndex(cursor);
        float t, u, v;
        // A genuine probe hit seeds the hit registers (the values are the
        // exact ones leafStep would compute for this triangle) and shrinks
        // tMax to just past the probe distance. Seeding matters: the slab
        // test's entry distance can overestimate by a few ulps, so the
        // pruned traversal is not guaranteed to re-visit this leaf — the
        // registers must already hold the hit. tMax' = nextafter(t) still
        // admits an equal-t triangle earlier in the baseline's leaf visit
        // order, which then overwrites the seed — so ties resolve to the
        // same triangle the baseline reports.
        if (triangles_[static_cast<std::size_t>(tri)].intersect(slot.ray, t,
                                                                u, v) &&
            t < s.probeT) {
            s.probeTriangle = tri;
            s.probeT = t;
            slot.hitTriangle = tri;
            slot.hitT = t;
            slot.hitU = u;
            slot.hitV = v;
            slot.ray.tMax = std::nextafter(t, geom::kRayInfinity);
        }
        step.nextBlock = PathPredBlocks::kProbeHead;
        step.memAddress = workspace_.triangleAddress(cursor);
        step.memBytes = workspace_.addressMap().triangleBytes;
        return step;
      }
      case PathPredBlocks::kInnerHead:
        step.nextBlock = slot.state == TravState::Inner
                             ? PathPredBlocks::kInnerTest
                             : PathPredBlocks::kLeafHead;
        return step;
      case PathPredBlocks::kInnerTest: {
        const std::int32_t node = slot.nodeIndex;
        const std::int64_t ray = slot.rayId;
        (void)workspace_.innerStep(row, lane);
        if (ray >= 0 && slot.state == TravState::Fetch)
            onRayTerminated(s, ray);
        step.nextBlock = PathPredBlocks::kInnerHead;
        step.memAddress = workspace_.nodeAddress(node);
        step.memBytes = workspace_.addressMap().nodeBytes;
        return step;
      }
      case PathPredBlocks::kLeafHead:
        step.nextBlock = workspace_.leafHasWork(row, lane)
                             ? PathPredBlocks::kLeafTest
                             : PathPredBlocks::kDoneCheck;
        return step;
      case PathPredBlocks::kLeafTest: {
        const std::int32_t cursor = slot.leafCursor;
        const std::int32_t leaf_node = slot.nodeIndex;
        const std::int64_t ray = slot.rayId;
        const bool hit = workspace_.leafStep(row, lane);
        if (hit)
            s.lastHitLeaf = leaf_node; // training: remember the hit's leaf
        if (ray >= 0 && slot.state == TravState::Fetch)
            onRayTerminated(s, ray);
        step.nextBlock = PathPredBlocks::kLeafHead;
        step.memAddress = workspace_.triangleAddress(cursor);
        step.memBytes = workspace_.addressMap().triangleBytes;
        return step;
      }
      case PathPredBlocks::kDoneCheck:
        step.nextBlock = slot.state == TravState::Fetch
                             ? PathPredBlocks::kStore
                             : PathPredBlocks::kInnerHead;
        return step;
      case PathPredBlocks::kStore: {
        step.nextBlock = PathPredBlocks::kFetch;
        if (slot.lastRayId >= 0) {
            step.memAddress = workspace_.resultAddress(slot.lastRayId);
            step.memBytes = workspace_.addressMap().resultBytes;
        }
        return step;
      }
      default:
        throw std::logic_error("PathPredKernel: unexpected block");
    }
}

} // namespace drs::kernels
