#pragma once

/**
 * @file
 * The paper's future work (Section 4.6), implemented: dynamic *state*
 * shuffling for a generic divergent workload that is not ray tracing.
 *
 * The workload is a two-phase task: phase A iterates a data-dependent
 * number of times (think: variable-depth search), then phase B iterates a
 * different data-dependent count (think: per-item finalization). Mapped
 * one task per thread, warps diverge exactly like ray traversal does.
 * Because the DRS control only interacts with the simt::RowWorkspace
 * interface, the very same hardware model shuffles these tasks: this file
 * supplies the workspace, the while-if kernel for DRS dispatch, and a
 * plain while-while baseline kernel.
 */

#include <cstdint>
#include <vector>

#include "geom/rng.h"
#include "simt/kernel.h"

namespace drs::kernels {

/** One synthetic two-phase task. */
struct GenericTask
{
    int phaseARemaining = 0;
    int phaseBRemaining = 0;
    std::int64_t taskId = -1;
    simt::TravState state = simt::TravState::Fetch;
};

/** Workload shape: per-phase trip-count distributions. */
struct GenericWorkloadConfig
{
    std::size_t taskCount = 4096;
    int phaseAMin = 4;
    int phaseAMax = 64; ///< wide spread = heavy divergence
    int phaseBMin = 1;
    int phaseBMax = 12;
    std::uint64_t seed = 99;
};

/**
 * Row-addressed task storage implementing simt::RowWorkspace, so the DRS
 * control can shuffle tasks exactly as it shuffles rays. State mapping:
 * Fetch = slot empty, Inner = phase A, Leaf = phase B.
 */
class GenericWorkspace : public simt::RowWorkspace
{
  public:
    GenericWorkspace(const GenericWorkloadConfig &config, int rows,
                     int lanes);

    int rowCount() const override { return rows_; }
    int laneCount() const override { return lanes_; }
    simt::TravState state(int row, int lane) const override;
    void moveRay(int src_row, int src_lane, int dst_row,
                 int dst_lane) override;
    void swapRays(int row_a, int lane_a, int row_b, int lane_b) override;
    bool poolEmpty() const override { return nextTask_ >= tasks_.size(); }
    std::size_t liveRays() const override;

    GenericTask &slot(int row, int lane);

    /** Fetch the next pool task into (row, lane); false when drained. */
    bool fetchStep(int row, int lane);

    /** One phase-A iteration; may transition the slot to phase B. */
    void phaseAStep(int row, int lane);

    /** One phase-B iteration; may terminate the task. */
    void phaseBStep(int row, int lane);

    std::uint64_t tasksCompleted() const { return completed_; }

    /** Total per-phase iterations executed (result checksum for tests). */
    std::uint64_t totalIterations() const { return iterations_; }

  private:
    int rows_;
    int lanes_;
    std::vector<GenericTask> tasks_; ///< input pool
    std::size_t nextTask_ = 0;
    std::vector<GenericTask> slots_;
    std::uint64_t completed_ = 0;
    std::uint64_t iterations_ = 0;
};

/** Block ids of both generic CFG flavours (exposed for tests). */
struct GenericBlocks
{
    // while-if (DRS) flavour
    static constexpr int kRdctrl = 0;
    static constexpr int kFetchBody = 1;
    static constexpr int kPhaseA = 2;
    static constexpr int kPhaseB = 3;
    static constexpr int kExit = 4;
    static constexpr int kCount = 5;

    // while-while (baseline) flavour
    static constexpr int kWwFetch = 0;
    static constexpr int kWwHeadA = 1;
    static constexpr int kWwBodyA = 2;
    static constexpr int kWwHeadB = 3;
    static constexpr int kWwBodyB = 4;
    static constexpr int kWwExit = 5;
    static constexpr int kWwCount = 6;
};

/** Kernel flavour selector. */
enum class GenericFlavour
{
    WhileWhile, ///< baseline: nested loops, IPDOM reconvergence
    WhileIf,    ///< DRS dispatch through rdctrl
};

/**
 * The generic divergent kernel bound to one SMX.
 *
 * WhileWhile runs without a controller (row = warp id); WhileIf requires
 * a WarpController (e.g. core::DrsControl over workspace()).
 */
class GenericKernel : public simt::Kernel
{
  public:
    GenericKernel(const GenericWorkloadConfig &config, GenericFlavour
                  flavour, int rows, int lanes = 32);

    const simt::Program &program() const override { return program_; }
    simt::ThreadStep execute(int block, int row, int lane) override;
    int blockForState(simt::TravState state) const override;
    simt::RowWorkspace &workspace() override { return workspace_; }
    std::uint64_t raysCompleted() const override
    {
        return workspace_.tasksCompleted();
    }

    GenericWorkspace &genericWorkspace() { return workspace_; }

  private:
    GenericFlavour flavour_;
    simt::Program program_;
    GenericWorkspace workspace_;
};

} // namespace drs::kernels
