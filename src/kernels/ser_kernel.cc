#include "kernels/ser_kernel.h"

#include <stdexcept>

namespace drs::kernels {

using simt::Block;
using simt::MemSpace;
using simt::Program;
using simt::ThreadStep;
using simt::TravState;

simt::Program
makeSerProgram(const CostModel &cost)
{
    // Blocks 0-7 are the while-if CFG with the exact names and
    // instruction counts of makeDrsProgram, so the lockstep check's
    // per-block visit comparison (blocks 2 and 5) applies unchanged.
    std::vector<Block> blocks(SerBlocks::kSerCount);

    auto &rdctrl = blocks[SerBlocks::kRdctrl];
    rdctrl.name = "RDCTRL";
    rdctrl.instructionCount = cost.rdctrl;
    rdctrl.specialOp = simt::SpecialOp::Rdctrl;
    rdctrl.successors = {SerBlocks::kFetchBody, SerBlocks::kInnerTest,
                         SerBlocks::kLeafHead, SerBlocks::kExit,
                         SerBlocks::kShade};

    auto &fetch = blocks[SerBlocks::kFetchBody];
    fetch.name = "IF_FETCH";
    fetch.instructionCount = cost.fetchRay;
    fetch.successors = {SerBlocks::kRdctrl};
    fetch.memSpace = MemSpace::Global;
    fetch.phase = obs::TravPhase::Fetch;

    auto &itest = blocks[SerBlocks::kInnerTest];
    itest.name = "IF_INNER_TEST";
    itest.instructionCount = cost.innerTest;
    itest.successors = {SerBlocks::kSetStateInner};
    itest.memSpace = MemSpace::Texture;
    itest.phase = obs::TravPhase::Inner;

    auto &seti = blocks[SerBlocks::kSetStateInner];
    seti.name = "SET_STATE_I";
    seti.instructionCount = cost.setRayState;
    seti.successors = {SerBlocks::kRdctrl};
    seti.phase = obs::TravPhase::Inner;

    auto &lhead = blocks[SerBlocks::kLeafHead];
    lhead.name = "IF_LEAF_HEAD";
    lhead.instructionCount = cost.leafBodyHead;
    lhead.successors = {SerBlocks::kLeafTest, SerBlocks::kSetStateLeaf};
    lhead.phase = obs::TravPhase::Leaf;

    auto &ltest = blocks[SerBlocks::kLeafTest];
    ltest.name = "LEAF_TEST";
    ltest.instructionCount = cost.leafTest;
    ltest.successors = {SerBlocks::kLeafHead};
    ltest.memSpace = MemSpace::Texture;
    ltest.phase = obs::TravPhase::Leaf;

    auto &setl = blocks[SerBlocks::kSetStateLeaf];
    setl.name = "SET_STATE_L";
    setl.instructionCount = cost.setRayState;
    setl.successors = {SerBlocks::kRdctrl};
    setl.phase = obs::TravPhase::Leaf;

    blocks[SerBlocks::kExit].name = "EXIT";
    blocks[SerBlocks::kExit].instructionCount = 1;

    auto &shade = blocks[SerBlocks::kShade];
    shade.name = "SHADE";
    shade.instructionCount = cost.shade;
    shade.successors = {SerBlocks::kRdctrl};
    shade.memSpace = MemSpace::Texture;
    shade.phase = obs::TravPhase::Fetch;

    return Program(std::move(blocks), SerBlocks::kExit);
}

SerKernel::SerKernel(const bvh::Bvh &bvh,
                     const std::vector<geom::Triangle> &triangles,
                     std::span<const geom::Ray> rays, std::size_t first_ray,
                     const SerKernelConfig &config)
    : config_(config),
      program_(makeSerProgram(config.cost)),
      workspace_(bvh, triangles, rays, first_ray, config.numWarps, 32,
                 /*any_hit=*/false),
      triangles_(triangles),
      rays_(rays),
      cut_(bvh, config.cutSize),
      shadeGroups_(static_cast<std::size_t>(config.numWarps))
{
}

int
SerKernel::blockForState(TravState state) const
{
    switch (state) {
      case TravState::Fetch: return SerBlocks::kFetchBody;
      case TravState::Inner: return SerBlocks::kInnerTest;
      case TravState::Leaf: return SerBlocks::kLeafHead;
    }
    throw std::logic_error("SerKernel: bad traversal state");
}

void
SerKernel::deposit(std::int64_t ray_id)
{
    const std::size_t local =
        static_cast<std::size_t>(ray_id) - workspace_.firstRay();
    const geom::Hit &result = workspace_.results().at(local);
    reorder::ShadeEntry entry;
    entry.rayId = static_cast<std::int32_t>(ray_id);
    if (result.triangle != geom::kNoHit) {
        entry.material =
            triangles_[static_cast<std::size_t>(result.triangle)].material;
        const geom::Vec3 point = rays_[local].at(result.t);
        entry.key =
            (static_cast<std::uint64_t>(entry.material + 1) << 32) |
            cut_.code(point);
    } else {
        // Misses shade the environment: one shared bucket, sorted last.
        entry.material = -1;
        entry.key = ~std::uint64_t{0};
    }
    queue_.push(entry);
}

std::size_t
SerKernel::fillShadeGroup(int row, std::size_t max_entries,
                          reorder::PullStats *stats)
{
    auto &group = shadeGroups_.at(static_cast<std::size_t>(row));
    group = queue_.pull(max_entries, stats);
    return group.size();
}

ThreadStep
SerKernel::execute(int block, int row, int lane)
{
    ThreadStep step;
    RaySlot &slot = workspace_.slot(row, lane);

    switch (block) {
      case SerBlocks::kFetchBody: {
        const bool got = workspace_.fetchStep(row, lane);
        step.nextBlock = SerBlocks::kRdctrl;
        if (got) {
            step.memAddress = workspace_.rayAddress(
                workspace_.slot(row, lane).rayId);
            step.memBytes = workspace_.addressMap().rayBytes;
        }
        return step;
      }
      case SerBlocks::kInnerTest: {
        const std::int32_t node = slot.nodeIndex;
        const std::int64_t ray = slot.rayId;
        (void)workspace_.innerStep(row, lane);
        if (ray >= 0 && slot.state == TravState::Fetch)
            deposit(ray); // the ray reached the shading boundary
        step.nextBlock = SerBlocks::kSetStateInner;
        step.memAddress = workspace_.nodeAddress(node);
        step.memBytes = workspace_.addressMap().nodeBytes;
        return step;
      }
      case SerBlocks::kSetStateInner:
      case SerBlocks::kSetStateLeaf:
        step.nextBlock = SerBlocks::kRdctrl;
        return step;
      case SerBlocks::kLeafHead:
        step.nextBlock = workspace_.leafHasWork(row, lane)
                             ? SerBlocks::kLeafTest
                             : SerBlocks::kSetStateLeaf;
        return step;
      case SerBlocks::kLeafTest: {
        const std::int32_t cursor = slot.leafCursor;
        const std::int64_t ray = slot.rayId;
        (void)workspace_.leafStep(row, lane);
        if (ray >= 0 && slot.state == TravState::Fetch)
            deposit(ray);
        step.nextBlock = SerBlocks::kLeafHead;
        step.memAddress = workspace_.triangleAddress(cursor);
        step.memBytes = workspace_.addressMap().triangleBytes;
        return step;
      }
      case SerBlocks::kShade: {
        const auto &group =
            shadeGroups_.at(static_cast<std::size_t>(row));
        step.nextBlock = SerBlocks::kRdctrl;
        if (lane < static_cast<int>(group.size())) {
            // Coherent groups hit the same material record, which is
            // where SER's benefit shows up in the cache model.
            step.memAddress =
                kMaterialBase +
                static_cast<std::uint64_t>(group[static_cast<std::size_t>(
                                                     lane)].material +
                                           1) *
                    kMaterialBytes;
            step.memBytes = kMaterialBytes;
        }
        return step;
      }
      default:
        throw std::logic_error("SerKernel: unexpected block");
    }
}

} // namespace drs::kernels
