#include "kernels/generic_kernel.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace drs::kernels {

using simt::Block;
using simt::Program;
using simt::SpecialOp;
using simt::ThreadStep;
using simt::TravState;

GenericWorkspace::GenericWorkspace(const GenericWorkloadConfig &config,
                                   int rows, int lanes)
    : rows_(rows), lanes_(lanes),
      slots_(static_cast<std::size_t>(rows) * lanes)
{
    geom::Pcg32 rng(config.seed);
    tasks_.reserve(config.taskCount);
    for (std::size_t i = 0; i < config.taskCount; ++i) {
        GenericTask task;
        task.taskId = static_cast<std::int64_t>(i);
        task.phaseARemaining = config.phaseAMin + static_cast<int>(
            rng.nextUInt(static_cast<std::uint32_t>(
                config.phaseAMax - config.phaseAMin + 1)));
        task.phaseBRemaining = config.phaseBMin + static_cast<int>(
            rng.nextUInt(static_cast<std::uint32_t>(
                config.phaseBMax - config.phaseBMin + 1)));
        tasks_.push_back(task);
    }
}

GenericTask &
GenericWorkspace::slot(int row, int lane)
{
    return slots_.at(static_cast<std::size_t>(row) * lanes_ + lane);
}

TravState
GenericWorkspace::state(int row, int lane) const
{
    return slots_.at(static_cast<std::size_t>(row) * lanes_ + lane).state;
}

void
GenericWorkspace::moveRay(int src_row, int src_lane, int dst_row,
                          int dst_lane)
{
    GenericTask &src = slot(src_row, src_lane);
    GenericTask &dst = slot(dst_row, dst_lane);
    assert(dst.state == TravState::Fetch);
    dst = src;
    src = GenericTask{};
}

void
GenericWorkspace::swapRays(int row_a, int lane_a, int row_b, int lane_b)
{
    std::swap(slot(row_a, lane_a), slot(row_b, lane_b));
}

std::size_t
GenericWorkspace::liveRays() const
{
    std::size_t n = 0;
    for (const auto &t : slots_)
        n += t.state != TravState::Fetch ? 1 : 0;
    return n;
}

bool
GenericWorkspace::fetchStep(int row, int lane)
{
    if (poolEmpty())
        return false;
    GenericTask &s = slot(row, lane);
    s = tasks_[nextTask_++];
    s.state = s.phaseARemaining > 0 ? TravState::Inner : TravState::Leaf;
    return true;
}

void
GenericWorkspace::phaseAStep(int row, int lane)
{
    GenericTask &s = slot(row, lane);
    assert(s.state == TravState::Inner);
    ++iterations_;
    if (--s.phaseARemaining <= 0)
        s.state = s.phaseBRemaining > 0 ? TravState::Leaf : TravState::Fetch;
}

void
GenericWorkspace::phaseBStep(int row, int lane)
{
    GenericTask &s = slot(row, lane);
    assert(s.state == TravState::Leaf);
    ++iterations_;
    if (--s.phaseBRemaining <= 0) {
        ++completed_;
        s = GenericTask{};
    }
}

namespace {

Program
makeWhileIfProgram()
{
    std::vector<Block> blocks(GenericBlocks::kCount);
    blocks[GenericBlocks::kRdctrl] = {"RDCTRL", 2,
                                      {GenericBlocks::kFetchBody,
                                       GenericBlocks::kPhaseA,
                                       GenericBlocks::kPhaseB,
                                       GenericBlocks::kExit},
                                      simt::MemSpace::None,
                                      SpecialOp::Rdctrl, false,
                                      obs::TravPhase::None};
    blocks[GenericBlocks::kFetchBody] = {"IF_FETCH", 12,
                                         {GenericBlocks::kRdctrl},
                                         simt::MemSpace::Global,
                                         SpecialOp::None, false,
                                         obs::TravPhase::Fetch};
    blocks[GenericBlocks::kPhaseA] = {"IF_PHASE_A", 40,
                                      {GenericBlocks::kRdctrl},
                                      simt::MemSpace::None,
                                      SpecialOp::None, false,
                                      obs::TravPhase::Inner};
    blocks[GenericBlocks::kPhaseB] = {"IF_PHASE_B", 28,
                                      {GenericBlocks::kRdctrl},
                                      simt::MemSpace::None,
                                      SpecialOp::None, false,
                                      obs::TravPhase::Leaf};
    blocks[GenericBlocks::kExit] = {"EXIT", 1, {}, simt::MemSpace::None,
                                    SpecialOp::None, false};
    return Program(std::move(blocks), GenericBlocks::kExit);
}

Program
makeWhileWhileProgram()
{
    std::vector<Block> blocks(GenericBlocks::kWwCount);
    blocks[GenericBlocks::kWwFetch] = {"FETCH", 12,
                                       {GenericBlocks::kWwHeadA,
                                        GenericBlocks::kWwExit},
                                       simt::MemSpace::Global,
                                       SpecialOp::None, false,
                                       obs::TravPhase::Fetch};
    blocks[GenericBlocks::kWwHeadA] = {"HEAD_A", 2,
                                       {GenericBlocks::kWwBodyA,
                                        GenericBlocks::kWwHeadB},
                                       simt::MemSpace::None,
                                       SpecialOp::None, false,
                                       obs::TravPhase::Inner};
    blocks[GenericBlocks::kWwBodyA] = {"BODY_A", 40,
                                       {GenericBlocks::kWwHeadA},
                                       simt::MemSpace::None,
                                       SpecialOp::None, false,
                                       obs::TravPhase::Inner};
    blocks[GenericBlocks::kWwHeadB] = {"HEAD_B", 2,
                                       {GenericBlocks::kWwBodyB,
                                        GenericBlocks::kWwFetch},
                                       simt::MemSpace::None,
                                       SpecialOp::None, false,
                                       obs::TravPhase::Leaf};
    blocks[GenericBlocks::kWwBodyB] = {"BODY_B", 28,
                                       {GenericBlocks::kWwHeadB},
                                       simt::MemSpace::None,
                                       SpecialOp::None, false,
                                       obs::TravPhase::Leaf};
    blocks[GenericBlocks::kWwExit] = {"EXIT", 1, {}, simt::MemSpace::None,
                                      SpecialOp::None, false};
    return Program(std::move(blocks), GenericBlocks::kWwExit);
}

} // namespace

GenericKernel::GenericKernel(const GenericWorkloadConfig &config,
                             GenericFlavour flavour, int rows, int lanes)
    : flavour_(flavour),
      program_(flavour == GenericFlavour::WhileIf ? makeWhileIfProgram()
                                                  : makeWhileWhileProgram()),
      workspace_(config, rows, lanes)
{
}

int
GenericKernel::blockForState(TravState state) const
{
    if (flavour_ != GenericFlavour::WhileIf)
        return -1;
    switch (state) {
      case TravState::Fetch: return GenericBlocks::kFetchBody;
      case TravState::Inner: return GenericBlocks::kPhaseA;
      case TravState::Leaf: return GenericBlocks::kPhaseB;
    }
    throw std::logic_error("GenericKernel: bad state");
}

ThreadStep
GenericKernel::execute(int block, int row, int lane)
{
    ThreadStep step;
    if (flavour_ == GenericFlavour::WhileIf) {
        switch (block) {
          case GenericBlocks::kFetchBody:
            (void)workspace_.fetchStep(row, lane);
            step.nextBlock = GenericBlocks::kRdctrl;
            if (workspace_.slot(row, lane).taskId >= 0) {
                step.memAddress = 0x9000'0000 +
                    static_cast<std::uint64_t>(
                        workspace_.slot(row, lane).taskId) * 16;
                step.memBytes = 16;
            }
            return step;
          case GenericBlocks::kPhaseA:
            workspace_.phaseAStep(row, lane);
            step.nextBlock = GenericBlocks::kRdctrl;
            return step;
          case GenericBlocks::kPhaseB:
            workspace_.phaseBStep(row, lane);
            step.nextBlock = GenericBlocks::kRdctrl;
            return step;
          default:
            throw std::logic_error("GenericKernel: unexpected block");
        }
    }

    GenericTask &slot = workspace_.slot(row, lane);
    switch (block) {
      case GenericBlocks::kWwFetch: {
        const bool got = workspace_.fetchStep(row, lane);
        step.nextBlock =
            got ? GenericBlocks::kWwHeadA : GenericBlocks::kWwExit;
        if (got) {
            step.memAddress = 0x9000'0000 +
                static_cast<std::uint64_t>(
                    workspace_.slot(row, lane).taskId) * 16;
            step.memBytes = 16;
        }
        return step;
      }
      case GenericBlocks::kWwHeadA:
        step.nextBlock = slot.state == simt::TravState::Inner
                             ? GenericBlocks::kWwBodyA
                             : GenericBlocks::kWwHeadB;
        return step;
      case GenericBlocks::kWwBodyA:
        workspace_.phaseAStep(row, lane);
        step.nextBlock = GenericBlocks::kWwHeadA;
        return step;
      case GenericBlocks::kWwHeadB:
        step.nextBlock = slot.state == simt::TravState::Leaf
                             ? GenericBlocks::kWwBodyB
                             : GenericBlocks::kWwFetch;
        return step;
      case GenericBlocks::kWwBodyB:
        workspace_.phaseBStep(row, lane);
        step.nextBlock = GenericBlocks::kWwHeadB;
        return step;
      default:
        throw std::logic_error("GenericKernel: unexpected block");
    }
}

} // namespace drs::kernels
