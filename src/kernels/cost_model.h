#pragma once

/**
 * @file
 * Instruction-count calibration of the traversal kernels. These weights
 * stand in for compiled SASS instruction counts: the absolute values set
 * the Mrays/s scale, the relative values set SIMD-efficiency shapes, and
 * both kernels share them so the Aila-vs-DRS comparison is apples to
 * apples. Derived from the structure of Aila's published kernels (two
 * child-AABB slab tests per inner step, one Möller–Trumbore test per leaf
 * step) at roughly one instruction per arithmetic operation.
 */

namespace drs::kernels {

/** Warp-instruction weights of kernel basic blocks. */
struct CostModel
{
    // Shared traversal arithmetic. Scaled to SASS reality: Aila's
    // unrolled two-child inner-loop iteration is ~60-80 instructions and
    // the paper notes the whole while-if loop body exceeds 300.
    int fetchRay = 40;        ///< load + init ray registers, pool pointer
    /**
     * One inner-node step: node fetch address math, two AABB slab tests,
     * and the predicated child-select / push-far / stack-pop tails (real
     * kernels use select/predication here, not branches).
     */
    int innerTest = 66;
    /** One triangle test: fetch + Möller-Trumbore + predicated hit update. */
    int leafTest = 60;
    int storeResult = 8;      ///< write the hit record

    // "while-while" (Aila) loop plumbing.
    int innerLoopHead = 4;    ///< inner-while condition
    int leafLoopHead = 3;     ///< leaf-while condition
    int doneCheck = 3;        ///< outer-while condition

    // "while-if" (Kernel 1 / DRS) plumbing.
    int rdctrl = 2;           ///< rdctrl + dispatch branch
    int setRayState = 2;      ///< write reg_ray_state
    int leafBodyHead = 3;     ///< triangle-loop condition inside the leaf if

    // Survey-lineup extensions (src/harness/arch_survey.cc).
    /**
     * Path-prediction table lookup (Demoullin et al.): hash of the
     * quantized origin/direction plus one tag compare.
     */
    int predictLookup = 14;
    /**
     * Hit-shading body at the SER reorder point: material fetch plus a
     * stand-in BRDF evaluation (the survey models shading coherence, not
     * shading arithmetic, so one moderate block suffices).
     */
    int shade = 36;

    // DMK micro-kernel spawn overhead (the SI category): dumping and
    // reloading the 17 ray variables through spawn memory, plus queue
    // bookkeeping.
    int spawnDump = 24;       ///< 17 stores + address/bookkeeping
    int spawnLoad = 24;       ///< 17 loads + address/bookkeeping

    /** Live ray variables moved by a shuffle (paper Section 4.2). */
    int rayVariables = 17;
};

/** The default calibration used by all experiments. */
inline const CostModel &
defaultCostModel()
{
    static const CostModel model{};
    return model;
}

} // namespace drs::kernels
