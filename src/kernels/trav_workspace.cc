#include "kernels/trav_workspace.h"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace drs::kernels {

using geom::Hit;
using geom::Ray;
using geom::Vec3;
using simt::TravState;

TravWorkspace::TravWorkspace(const bvh::Bvh &bvh,
                             const std::vector<geom::Triangle> &triangles,
                             std::span<const geom::Ray> rays,
                             std::size_t first_ray, int rows, int lanes,
                             bool any_hit)
    : bvh_(bvh),
      triangles_(triangles),
      rays_(rays),
      firstRay_(first_ray),
      rows_(rows),
      lanes_(lanes),
      slots_(static_cast<std::size_t>(rows) * lanes),
      results_(rays_.size()),
      anyHit_(any_hit)
{
    if (rows <= 0 || lanes <= 0)
        throw std::invalid_argument("workspace needs positive dimensions");
}

RaySlot &
TravWorkspace::slot(int row, int lane)
{
    return slots_.at(static_cast<std::size_t>(row) * lanes_ + lane);
}

const RaySlot &
TravWorkspace::slot(int row, int lane) const
{
    return slots_.at(static_cast<std::size_t>(row) * lanes_ + lane);
}

TravState
TravWorkspace::state(int row, int lane) const
{
    return slot(row, lane).state;
}

void
TravWorkspace::moveRay(int src_row, int src_lane, int dst_row, int dst_lane)
{
    RaySlot &src = slot(src_row, src_lane);
    RaySlot &dst = slot(dst_row, dst_lane);
    assert(dst.state == TravState::Fetch && "destination must be empty");
    dst = std::move(src);
    src = RaySlot{};
}

void
TravWorkspace::swapRays(int row_a, int lane_a, int row_b, int lane_b)
{
    std::swap(slot(row_a, lane_a), slot(row_b, lane_b));
}

void
TravWorkspace::corruptRay(int row, int lane, std::uint32_t bit)
{
    RaySlot &s = slot(row, lane);
    if (s.rayId < 0)
        return; // empty slot: the flip hits unused register space
    unsigned char bytes[sizeof(geom::Ray)];
    std::memcpy(bytes, &s.ray, sizeof(bytes));
    const std::uint32_t index = (bit / 8u) % sizeof(bytes);
    bytes[index] ^= static_cast<unsigned char>(1u << (bit % 8u));
    std::memcpy(&s.ray, bytes, sizeof(bytes));
    // invDir is intentionally left stale: real hardware would not
    // recompute a derived register either, and traversal tolerates the
    // inconsistency (it only steers which nodes the ray visits).
}

std::size_t
TravWorkspace::liveRays() const
{
    std::size_t n = 0;
    for (const auto &s : slots_)
        if (s.state != TravState::Fetch)
            ++n;
    return n;
}

bool
TravWorkspace::fetchStep(int row, int lane)
{
    if (poolEmpty())
        return false;

    const std::size_t index = nextRay_++;
    RaySlot &s = slot(row, lane);
    s = RaySlot{};
    s.ray = rays_[index];
    s.invDir = Vec3{1.0f / s.ray.direction.x, 1.0f / s.ray.direction.y,
                    1.0f / s.ray.direction.z};
    s.rayId = static_cast<std::int64_t>(firstRay_ + index);
    s.hitTriangle = geom::kNoHit;
    if (bvh_.empty()) {
        // Degenerate scene: the ray terminates immediately.
        s.state = TravState::Inner;
        s.nodeIndex = -1;
        return true;
    }
    enterNode(s, 0);
    // Kernel 1 line 5: after initialization the next state is always
    // INNER (the root is traversed first), even when the root is a leaf —
    // the inner step then forwards to the leaf phase.
    s.state = TravState::Inner;
    return true;
}

void
TravWorkspace::enterNode(RaySlot &s, std::int32_t node)
{
    const bvh::Node &n = bvh_.node(node);
    s.nodeIndex = node;
    if (n.isLeaf()) {
        s.state = TravState::Leaf;
        s.leafCursor = n.firstTriangle;
        s.leafEnd = n.firstTriangle + n.triangleCount;
    } else {
        s.state = TravState::Inner;
    }
}

void
TravWorkspace::popOrTerminate(RaySlot &s)
{
    if (s.stack.empty()) {
        // Traversal exhausted: the ray terminates.
        const std::int64_t local =
            s.rayId - static_cast<std::int64_t>(firstRay_);
        Hit &result = results_.at(static_cast<std::size_t>(local));
        result.triangle = s.hitTriangle;
        result.t = s.hitT;
        result.u = s.hitU;
        result.v = s.hitV;
        if (s.hitTriangle == geom::kNoHit)
            result.t = geom::kRayInfinity;
        ++raysCompleted_;
        const std::int64_t last = s.rayId;
        s = RaySlot{};
        s.lastRayId = last;
        return;
    }
    const std::int32_t node = s.stack.back();
    s.stack.pop_back();
    enterNode(s, node);
}

InnerOutcome
TravWorkspace::innerStep(int row, int lane)
{
    RaySlot &s = slot(row, lane);
    assert(s.state == TravState::Inner);

    if (s.nodeIndex < 0) {
        // Degenerate (empty BVH): terminate.
        popOrTerminate(s);
        return InnerOutcome::NoChildHit;
    }

    const bvh::Node &n = bvh_.node(s.nodeIndex);
    if (n.isLeaf()) {
        // Root-is-leaf corner case: forward to the leaf phase.
        enterNode(s, s.nodeIndex);
        return InnerOutcome::OneChildHit;
    }

    const std::int32_t left = s.nodeIndex + 1;
    const std::int32_t right = n.rightChild;
    float t_left = 0.0f;
    float t_right = 0.0f;
    const bool hit_left = bvh_.node(left).bounds.intersect(
        s.ray.origin, s.invDir, s.ray.tMin, s.ray.tMax, t_left);
    const bool hit_right = bvh_.node(right).bounds.intersect(
        s.ray.origin, s.invDir, s.ray.tMin, s.ray.tMax, t_right);

    if (hit_left && hit_right) {
        std::int32_t near = left;
        std::int32_t far = right;
        if (t_right < t_left)
            std::swap(near, far);
        s.stack.push_back(far);
        enterNode(s, near);
        return InnerOutcome::BothChildrenHit;
    }
    if (hit_left || hit_right) {
        enterNode(s, hit_left ? left : right);
        return InnerOutcome::OneChildHit;
    }
    popOrTerminate(s);
    return InnerOutcome::NoChildHit;
}

bool
TravWorkspace::leafHasWork(int row, int lane) const
{
    const RaySlot &s = slot(row, lane);
    return s.state == TravState::Leaf && s.leafCursor < s.leafEnd;
}

bool
TravWorkspace::deferLeaf(int row, int lane)
{
    RaySlot &s = slot(row, lane);
    assert(s.state == TravState::Leaf);
    if (s.stack.empty() || bvh_.node(s.stack.back()).isLeaf())
        return false;
    // The postponed leaf is processed last; ordering only affects tMax
    // pruning opportunities, never correctness.
    s.stack.insert(s.stack.begin(), s.nodeIndex);
    const std::int32_t next = s.stack.back();
    s.stack.pop_back();
    enterNode(s, next);
    return true;
}

bool
TravWorkspace::leafStep(int row, int lane)
{
    RaySlot &s = slot(row, lane);
    assert(s.state == TravState::Leaf);
    assert(s.leafCursor < s.leafEnd);

    const std::int32_t tri_index = bvh_.triangleIndex(s.leafCursor);
    ++s.leafCursor;

    float t, u, v;
    const bool hit =
        triangles_[static_cast<std::size_t>(tri_index)].intersect(s.ray, t, u,
                                                                  v);
    if (hit) {
        s.hitTriangle = tri_index;
        s.hitT = t;
        s.hitU = u;
        s.hitV = v;
        s.ray.tMax = t; // shrink the hit length register
        if (anyHit_) {
            // Shadow ray: any intersection answers the query.
            s.stack.clear();
            popOrTerminate(s);
            return true;
        }
    }

    if (s.leafCursor >= s.leafEnd)
        popOrTerminate(s);
    return hit;
}

void
TravWorkspace::storeResult(int row, int lane)
{
    RaySlot &s = slot(row, lane);
    // Force termination regardless of remaining stack (used by tests and
    // shadow-ray style early outs).
    s.stack.clear();
    popOrTerminate(s);
}

std::uint64_t
TravWorkspace::nodeAddress(std::int32_t node) const
{
    return addressMap_.nodeBase +
           static_cast<std::uint64_t>(node) * addressMap_.nodeBytes;
}

std::uint64_t
TravWorkspace::triangleAddress(std::int32_t slot_index) const
{
    return addressMap_.triangleBase +
           static_cast<std::uint64_t>(slot_index) * addressMap_.triangleBytes;
}

std::uint64_t
TravWorkspace::rayAddress(std::int64_t ray_id) const
{
    return addressMap_.rayBase +
           static_cast<std::uint64_t>(ray_id) * addressMap_.rayBytes;
}

std::uint64_t
TravWorkspace::resultAddress(std::int64_t ray_id) const
{
    return addressMap_.resultBase +
           static_cast<std::uint64_t>(ray_id) * addressMap_.resultBytes;
}

} // namespace drs::kernels
