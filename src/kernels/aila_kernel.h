#pragma once

/**
 * @file
 * Aila-style "while-while" ray traversal kernel (Aila & Laine 2009/2012),
 * the paper's software baseline: persistent threads with warp-wide ray
 * fetch, a nested inner-node loop and leaf loop, and IPDOM reconvergence
 * producing exactly the divergence pattern of Figure 1 — the warp's
 * completion time is set by its longest ray.
 *
 * An optional speculative-traversal mode (Aila & Laine's third
 * optimization) lets threads that found a leaf continue traversing inner
 * nodes speculatively instead of idling, postponing one found leaf.
 */

#include <memory>

#include "kernels/cost_model.h"
#include "kernels/trav_workspace.h"
#include "simt/kernel.h"

namespace drs::kernels {

/** Block ids of the while-while CFG (exposed for tests). */
struct AilaBlocks
{
    static constexpr int kFetch = 0;
    static constexpr int kInnerHead = 1;
    static constexpr int kInnerTest = 2;
    static constexpr int kLeafHead = 3;
    static constexpr int kLeafTest = 4;
    static constexpr int kDoneCheck = 5;
    static constexpr int kStore = 6;
    static constexpr int kExit = 7;
    static constexpr int kCount = 8;
};

/** Configuration of the Aila baseline kernel. */
struct AilaConfig
{
    /** Resident warps per SMX (paper: Aila's kernel spawns 48). */
    int numWarps = 48;
    /**
     * Enable speculative traversal: a thread whose traversal reached a
     * leaf keeps traversing inner nodes (postponing the leaf) while other
     * threads of the warp are still in the inner loop.
     */
    bool speculativeTraversal = false;
    /** Any-hit (shadow ray) traversal: stop at the first intersection. */
    bool anyHit = false;
    CostModel cost = defaultCostModel();
};

/** Build the while-while Program (shared by TBC, which runs this CFG). */
simt::Program makeAilaProgram(const CostModel &cost);

/**
 * The Aila baseline kernel bound to one SMX.
 *
 * Row i is permanently bound to warp i (no ray management hardware).
 */
class AilaKernel : public simt::Kernel
{
  public:
    /**
     * @param bvh scene hierarchy
     * @param triangles scene triangles
     * @param rays view of this SMX's ray stripe (caller keeps it alive)
     * @param first_ray global index of rays[0]
     * @param config kernel options
     */
    AilaKernel(const bvh::Bvh &bvh,
               const std::vector<geom::Triangle> &triangles,
               std::span<const geom::Ray> rays, std::size_t first_ray,
               const AilaConfig &config = {});

    const simt::Program &program() const override { return program_; }
    simt::ThreadStep execute(int block, int row, int lane) override;
    simt::RowWorkspace &workspace() override { return workspace_; }
    std::uint64_t raysCompleted() const override
    {
        return workspace_.raysCompleted();
    }

    /** Direct workspace access for tests. */
    TravWorkspace &travWorkspace() { return workspace_; }

  private:
    simt::ThreadStep executeSpeculative(int block, int row, int lane);

    AilaConfig config_;
    simt::Program program_;
    TravWorkspace workspace_;
    /** Per-slot postponed leaf for speculative traversal (node index). */
    std::vector<std::int32_t> postponedLeaf_;
};

} // namespace drs::kernels
