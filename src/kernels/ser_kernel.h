#pragma once

/**
 * @file
 * SER-style traversal kernel: the while-if CFG (identical traversal
 * blocks to Kernel 1) extended with a hit-shading block behind a reorder
 * point at the traversal->shading boundary, modeling NVIDIA's Shader
 * Execution Reordering in this simulator's terms. When a ray terminates,
 * the kernel deposits it into a shared per-SMX sort buffer keyed by hit
 * material + the BVH-cut code of the hit point; the SER control unit
 * (src/baselines/ser_control.h) later refills a warp with a group of
 * key-adjacent rays and dispatches the shade block for them, so shading
 * executes with coherent neighbors regardless of which warp traced each
 * ray. This is not a launch-order permutation: rays are regrouped *inside*
 * the kernel, between traversal and shading.
 *
 * Traversal semantics are untouched — hits are bitwise identical to the
 * Aila/DRS kernels and the while-if lockstep check applies unchanged; the
 * shade block only adds issue slots and (coherent) material fetches.
 */

#include "kernels/cost_model.h"
#include "kernels/drs_kernel.h"
#include "kernels/trav_workspace.h"
#include "reorder/reorder.h"
#include "reorder/shade_queue.h"
#include "simt/kernel.h"

namespace drs::kernels {

/** Block ids of the SER CFG: DrsBlocks plus the shade body. */
struct SerBlocks : DrsBlocks
{
    static constexpr int kShade = 8;
    static constexpr int kSerCount = 9;
};

/** Configuration of the SER kernel (RunConfig::ser feeds this). */
struct SerKernelConfig
{
    /** Resident warps per SMX; rows are bound 1:1 to warps. */
    int numWarps = 48;
    /** BVH-cut size for the hit-point part of the shade sort key. */
    int cutSize = 64;
    CostModel cost = defaultCostModel();
};

/** Build the while-if-plus-shade Program. */
simt::Program makeSerProgram(const CostModel &cost);

/**
 * The SER kernel bound to one SMX. Requires the SerControl as its
 * WarpController (it resolves rdctrl and dispatches shade groups).
 */
class SerKernel : public simt::Kernel
{
  public:
    /** Simulated material-record layout (shade-block memory traffic). */
    static constexpr std::uint64_t kMaterialBase = 0x9000'0000;
    static constexpr std::uint32_t kMaterialBytes = 64;

    SerKernel(const bvh::Bvh &bvh,
              const std::vector<geom::Triangle> &triangles,
              std::span<const geom::Ray> rays, std::size_t first_ray,
              const SerKernelConfig &config = {});

    const simt::Program &program() const override { return program_; }
    simt::ThreadStep execute(int block, int row, int lane) override;
    int blockForState(simt::TravState state) const override;
    simt::RowWorkspace &workspace() override { return workspace_; }
    std::uint64_t raysCompleted() const override
    {
        return workspace_.raysCompleted();
    }

    TravWorkspace &travWorkspace() { return workspace_; }

    /** The shared sort buffer at the shading boundary. */
    reorder::ShadeQueue &shadeQueue() { return queue_; }

    /**
     * Pull up to @p max_entries coherent rays from the queue into row
     * @p row's shade group (the control unit calls this when it diverts
     * a warp to the shade block). Returns the group size.
     */
    std::size_t fillShadeGroup(int row, std::size_t max_entries,
                               reorder::PullStats *stats);

    /** Current shade group of @p row (tests). */
    const std::vector<reorder::ShadeEntry> &shadeGroup(int row) const
    {
        return shadeGroups_.at(static_cast<std::size_t>(row));
    }

  private:
    /** Deposit a terminated ray into the sort buffer. */
    void deposit(std::int64_t ray_id);

    SerKernelConfig config_;
    simt::Program program_;
    TravWorkspace workspace_;
    const std::vector<geom::Triangle> &triangles_;
    std::span<const geom::Ray> rays_; ///< borrowed stripe (hit points)
    reorder::BvhCut cut_;
    reorder::ShadeQueue queue_;
    std::vector<std::vector<reorder::ShadeEntry>> shadeGroups_;
};

} // namespace drs::kernels
