#pragma once

/**
 * @file
 * Row-addressed traversal state: the "live ray variables in registers"
 * of the paper, organized into rows of 32 slots, plus the shared per-SMX
 * ray pool and the traversal step semantics both kernels reuse.
 *
 * Cost-model note: the paper states a ray's live state is 17 registers and
 * the shuffle hardware moves exactly those. Functionally this workspace
 * keeps a full traversal stack per slot for correctness (a production
 * kernel would use a short stack with restart or local-memory spill); the
 * swap *cost* model uses the paper's 17 variables (see CostModel).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "bvh/bvh.h"
#include "geom/ray.h"
#include "geom/triangle.h"
#include "simt/controller.h"

namespace drs::kernels {

/** Simulated memory layout constants (for cache address generation). */
struct AddressMap
{
    std::uint64_t nodeBase = 0x1000'0000;    ///< BVH nodes (texture space)
    std::uint32_t nodeBytes = 64;            ///< bytes per node record
    std::uint64_t triangleBase = 0x3000'0000; ///< triangles (texture space)
    std::uint32_t triangleBytes = 48;        ///< Woop-style record
    std::uint64_t rayBase = 0x5000'0000;     ///< input rays (global space)
    std::uint32_t rayBytes = 32;             ///< origin+dir+tmin+tmax
    std::uint64_t resultBase = 0x7000'0000;  ///< hit records (global space)
    std::uint32_t resultBytes = 16;
};

/** One ray slot: the live variables of a ray in the register file. */
struct RaySlot
{
    geom::Ray ray;
    geom::Vec3 invDir;
    std::int32_t nodeIndex = -1;     ///< current node (inner phase)
    std::int32_t leafCursor = 0;     ///< next triangle slot (leaf phase)
    std::int32_t leafEnd = 0;        ///< one past the last triangle slot
    std::int32_t hitTriangle = geom::kNoHit;
    float hitT = 0.0f;
    float hitU = 0.0f;
    float hitV = 0.0f;
    std::int64_t rayId = -1;         ///< global ray index; -1 = empty slot
    /** Id of the last ray this slot completed (result writeback). */
    std::int64_t lastRayId = -1;
    simt::TravState state = simt::TravState::Fetch;
    /** Traversal stack (see cost-model note in the file comment). */
    std::vector<std::int32_t> stack;
};

/** Result of one inner-node traversal step (selects the CFG sub-block). */
enum class InnerOutcome
{
    BothChildrenHit,
    OneChildHit,
    NoChildHit,
};

/**
 * Traversal state storage + semantics for one SMX.
 *
 * Implements simt::RowWorkspace so the DRS control can inspect states and
 * move rays between slots.
 */
class TravWorkspace : public simt::RowWorkspace
{
  public:
    /**
     * @param bvh hierarchy to traverse
     * @param triangles the scene triangles the hierarchy indexes
     * @param rays view of this SMX's stripe of the input batch; the
     *        caller keeps the underlying rays alive for the workspace's
     *        lifetime (no copy is made)
     * @param first_ray index of rays[0] within the global batch
     * @param rows number of logical rows
     * @param lanes slots per row (warp size)
     */
    TravWorkspace(const bvh::Bvh &bvh,
                  const std::vector<geom::Triangle> &triangles,
                  std::span<const geom::Ray> rays, std::size_t first_ray,
                  int rows, int lanes, bool any_hit = false);

    /**
     * Any-hit (shadow ray) mode: a ray terminates on its first
     * intersection instead of searching for the closest one. Occlusion
     * queries of a next-event-estimation path tracer use this.
     */
    bool anyHitMode() const { return anyHit_; }

    // RowWorkspace interface (used by the DRS control / DMK).
    int rowCount() const override { return rows_; }
    int laneCount() const override { return lanes_; }
    simt::TravState state(int row, int lane) const override;
    void moveRay(int src_row, int src_lane, int dst_row,
                 int dst_lane) override;
    void swapRays(int row_a, int lane_a, int row_b, int lane_b) override;
    bool poolEmpty() const override { return nextRay_ >= rays_.size(); }
    std::size_t liveRays() const override;
    /**
     * Fault-injection hook: flip one bit of the slot's geom::Ray payload
     * (origin/direction/tmin/tmax). Only those bytes are touched — the
     * traversal bookkeeping (node index, stack, rayId) stays intact, so
     * workspace invariants hold and the corruption shows up purely as a
     * ray that traverses (and possibly hits) the wrong geometry.
     */
    void corruptRay(int row, int lane, std::uint32_t bit) override;

    /** Direct slot access (kernels and tests). */
    RaySlot &slot(int row, int lane);
    const RaySlot &slot(int row, int lane) const;

    // --- traversal semantics (shared by both kernel flavours) ---

    /**
     * Fetch the next pool ray into (row, lane).
     * @return false when the pool is empty (slot left untouched).
     */
    bool fetchStep(int row, int lane);

    /** One inner-node step; slot must be in the Inner state. */
    InnerOutcome innerStep(int row, int lane);

    /**
     * One triangle test; slot must be in the Leaf state.
     * @return true when the triangle was hit (hit registers updated)
     */
    bool leafStep(int row, int lane);

    /** True when the slot's leaf phase has untested triangles. */
    bool leafHasWork(int row, int lane) const;

    /**
     * Speculative traversal: postpone the slot's current (fresh) leaf by
     * pushing it to the bottom of the traversal stack and resume inner
     * traversal from the stack top.
     *
     * @return false when speculation is not possible (empty stack or the
     *         stack top is itself a leaf); the slot is left unchanged.
     */
    bool deferLeaf(int row, int lane);

    /** Terminate the ray in (row, lane): record the result, mark Fetch. */
    void storeResult(int row, int lane);

    /** Simulated address helpers (for the kernels' memory instructions). */
    const AddressMap &addressMap() const { return addressMap_; }
    std::uint64_t nodeAddress(std::int32_t node) const;
    std::uint64_t triangleAddress(std::int32_t slot_index) const;
    std::uint64_t rayAddress(std::int64_t ray_id) const;
    std::uint64_t resultAddress(std::int64_t ray_id) const;

    /** Completed rays (traced to termination). */
    std::uint64_t raysCompleted() const { return raysCompleted_; }

    /** Hit results, indexed by position within this SMX's stripe. */
    const std::vector<geom::Hit> &results() const { return results_; }

    /** Global index of the stripe's first ray (results offset). */
    std::size_t firstRay() const { return firstRay_; }

    /** Rays not yet fetched from the pool. */
    std::size_t poolRemaining() const { return rays_.size() - nextRay_; }

  private:
    /** Advance to the node on top of the stack, or terminate the ray. */
    void popOrTerminate(RaySlot &slot);

    /** Enter node @p node: set Inner or Leaf phase accordingly. */
    void enterNode(RaySlot &slot, std::int32_t node);

    const bvh::Bvh &bvh_;
    const std::vector<geom::Triangle> &triangles_;
    const std::span<const geom::Ray> rays_; ///< borrowed input stripe
    std::size_t firstRay_;
    int rows_;
    int lanes_;
    std::size_t nextRay_ = 0;
    std::uint64_t raysCompleted_ = 0;
    std::vector<RaySlot> slots_;
    std::vector<geom::Hit> results_;
    AddressMap addressMap_;
    bool anyHit_ = false;
};

} // namespace drs::kernels
