#pragma once

/**
 * @file
 * Path-predicting "while-while" traversal kernel (Demoullin et al.'s
 * hash-based ray-path prediction, PAPERS.md): after fetching a ray, a
 * per-SMX predictor table maps a hash of the quantized origin/direction
 * to the leaf node a previous similar ray terminated in. On a table hit
 * the kernel probes that leaf's triangles directly; a valid probe hit
 * shrinks the ray's tMax (to just past the predicted distance) before
 * the normal while-while traversal runs, pruning the interior nodes the
 * prediction made redundant. The traversal always runs, so hits stay
 * bitwise identical to the Aila baseline: a correct prediction saves
 * inner-node work, a misprediction wastes one leaf probe and is counted.
 *
 * Correctness argument (pinned by the differential and DRS_CHECK
 * suites): a probe hit is a genuine intersection computed by the same
 * Triangle::intersect the traversal uses, so seeding the hit registers
 * with it writes exactly the values leafStep would. The traversal bound
 * becomes tMax' = nextafter(t_probe, +inf): any strictly closer hit
 * t_min < t_probe survives (its triangle passes the strict t < tMax
 * test whenever its leaf is visited, and its node cannot be pruned by
 * more than the slab test's ulp-level rounding before a closer hit
 * shrinks tMax further), an equal-t triangle earlier in the baseline's
 * visit order overwrites the seed (t_probe < tMax' is still strict), and
 * if rounding does prune the re-visit of the predicted leaf itself the
 * seeded registers already hold the correct closest hit. The visit order
 * of surviving nodes is a subsequence of the baseline's, so ties resolve
 * to the same triangle. Any-hit rays bypass prediction entirely (their
 * first-hit answer is visit-order dependent).
 */

#include "kernels/cost_model.h"
#include "kernels/trav_workspace.h"
#include "reorder/predictor.h"
#include "simt/kernel.h"

namespace drs::kernels {

/** Block ids of the predicting while-while CFG (exposed for tests). */
struct PathPredBlocks
{
    static constexpr int kFetch = 0;
    static constexpr int kPredict = 1;
    static constexpr int kProbeHead = 2;
    static constexpr int kProbeTest = 3;
    static constexpr int kInnerHead = 4;
    static constexpr int kInnerTest = 5;
    static constexpr int kLeafHead = 6;
    static constexpr int kLeafTest = 7;
    static constexpr int kDoneCheck = 8;
    static constexpr int kStore = 9;
    static constexpr int kExit = 10;
    static constexpr int kCount = 11;
};

/** Configuration of the path-prediction kernel (RunConfig::pathpred). */
struct PathPredConfig
{
    /** Resident warps per SMX (same budget as the Aila baseline). */
    int numWarps = 48;
    /** Predictor table geometry + key quantization. */
    reorder::PredictorConfig predictor{};
    /**
     * Any-hit (shadow ray) traversal. Prediction is disabled in this
     * mode — the first-hit answer depends on visit order, which a probe
     * would change — so the kernel degrades to plain while-while.
     */
    bool anyHit = false;
    CostModel cost = defaultCostModel();
};

/** Build the predicting while-while Program. */
simt::Program makePathPredProgram(const CostModel &cost);

/**
 * The path-prediction kernel bound to one SMX. Row i is permanently
 * bound to warp i (no ray-management hardware); the predictor table is
 * private to the SMX, so results are a pure function of its ray stripe.
 */
class PathPredKernel : public simt::Kernel
{
  public:
    /** Observability tallies, harvested by the plugin ("pathpred.*"). */
    struct Counts
    {
        std::uint64_t lookups = 0;    ///< predictor probes issued
        std::uint64_t tableHits = 0;  ///< tag matches (probe attempted)
        std::uint64_t mispredicts = 0; ///< probe missed the final hit
        std::uint64_t correct = 0;    ///< probe found the final triangle
        std::uint64_t inserts = 0;    ///< terminal-leaf table updates
    };

    PathPredKernel(const bvh::Bvh &bvh,
                   const std::vector<geom::Triangle> &triangles,
                   std::span<const geom::Ray> rays, std::size_t first_ray,
                   const PathPredConfig &config = {});

    const simt::Program &program() const override { return program_; }
    simt::ThreadStep execute(int block, int row, int lane) override;
    simt::RowWorkspace &workspace() override { return workspace_; }
    std::uint64_t raysCompleted() const override
    {
        return workspace_.raysCompleted();
    }

    /** Direct workspace access for tests and the hit harvest. */
    TravWorkspace &travWorkspace() { return workspace_; }

    const Counts &counts() const { return counts_; }

  private:
    /** Per-slot prediction side state (not part of the 17 ray registers). */
    struct SideState
    {
        std::uint64_t key = 0;             ///< prediction key of the ray
        bool predicted = false;            ///< a probe was attempted
        std::int32_t probeCursor = 0;      ///< next probe triangle slot
        std::int32_t probeEnd = 0;         ///< one past the last slot
        std::int32_t probeTriangle = geom::kNoHit;
        float probeT = geom::kRayInfinity; ///< best probe distance
        std::int32_t lastHitLeaf = -1;     ///< training: last hit's leaf
    };

    SideState &side(int row, int lane)
    {
        return side_[static_cast<std::size_t>(row) * 32 + lane];
    }

    /** Accounting + table training when the slot's ray terminates. */
    void onRayTerminated(SideState &side, std::int64_t ray_id);

    PathPredConfig config_;
    simt::Program program_;
    TravWorkspace workspace_;
    const bvh::Bvh &bvh_;
    const std::vector<geom::Triangle> &triangles_;
    geom::Aabb bounds_;
    reorder::PredictorTable table_;
    std::vector<SideState> side_;
    Counts counts_;
};

} // namespace drs::kernels
