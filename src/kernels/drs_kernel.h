#pragma once

/**
 * @file
 * Kernel 1 of the paper: the "while-if" traversal kernel for the DRS.
 * One loop whose control flow is steered by the rdctrl instruction; the
 * three if-bodies (fetch / traverse-one-inner-node / test-leaf-triangles)
 * each end by writing the slot's next traversal state to reg_ray_state.
 * All state-level divergence is eliminated by the hardware mapping warps
 * onto state-uniform rows; only the small intra-body branches (child-hit
 * cases, hit updates, leaf trip counts) remain divergent.
 */

#include "kernels/cost_model.h"
#include "kernels/trav_workspace.h"
#include "simt/kernel.h"

namespace drs::kernels {

/** Block ids of the while-if CFG (exposed for tests). */
struct DrsBlocks
{
    static constexpr int kRdctrl = 0;
    static constexpr int kFetchBody = 1;
    static constexpr int kInnerTest = 2;
    static constexpr int kSetStateInner = 3;
    static constexpr int kLeafHead = 4;
    static constexpr int kLeafTest = 5;
    static constexpr int kSetStateLeaf = 6;
    static constexpr int kExit = 7;
    static constexpr int kCount = 8;
};

/** Configuration of the DRS kernel. */
struct DrsKernelConfig
{
    /**
     * Resident warps per SMX. The paper: Kernel 1 spawns 60 warps, or 58
     * when one backup row is carved out of the main register file
     * instead of an extra register bank.
     */
    int numWarps = 58;
    /** Backup ray rows (M). */
    int backupRows = 1;
    /** Any-hit (shadow ray) traversal: stop at the first intersection. */
    bool anyHit = false;
    CostModel cost = defaultCostModel();

    /** Logical rows: N warps + M backup + 2 empty (paper Section 3.2.2). */
    int rowCount() const { return numWarps + backupRows + 2; }
};

/** Build the while-if Program. */
simt::Program makeDrsProgram(const CostModel &cost);

/**
 * Kernel 1 bound to one SMX. Requires a WarpController (the DRS control
 * or the DMK baseline) to resolve rdctrl.
 */
class DrsKernel : public simt::Kernel
{
  public:
    DrsKernel(const bvh::Bvh &bvh,
              const std::vector<geom::Triangle> &triangles,
              std::span<const geom::Ray> rays, std::size_t first_ray,
              const DrsKernelConfig &config = {});

    const simt::Program &program() const override { return program_; }
    simt::ThreadStep execute(int block, int row, int lane) override;
    int blockForState(simt::TravState state) const override;
    simt::RowWorkspace &workspace() override { return workspace_; }
    std::uint64_t raysCompleted() const override
    {
        return workspace_.raysCompleted();
    }

    TravWorkspace &travWorkspace() { return workspace_; }
    const DrsKernelConfig &config() const { return config_; }

  private:
    DrsKernelConfig config_;
    simt::Program program_;
    TravWorkspace workspace_;
};

} // namespace drs::kernels
