#include "core/hw_cost.h"

namespace drs::core {

DrsStorage
computeDrsStorage(const DrsConfig &config, int num_warps, int warp_size)
{
    DrsStorage s;

    // Paper: "For the six swap buffers, the storage overhead is
    // 6 x (warp_size - 1) x 32 bits = 744 bytes."
    s.swapBufferBytes =
        static_cast<std::uint64_t>(config.swapBuffers) *
        static_cast<std::uint64_t>(warp_size - 1) * 32 / 8;

    // Paper: "The storage requirement of the ray state table is
    // 61 x 32 x 20 bits = 488 bytes" for 58 warps + 1 backup + 2 empty.
    // The quoted arithmetic only holds for 2 bits per entry (exactly
    // enough for the three traversal states); we reproduce the 488-byte
    // result and treat the "20" as a typo in the paper.
    const std::uint64_t rows =
        static_cast<std::uint64_t>(num_warps + config.backupRows + 2);
    s.rayStateTableBytes = rows * static_cast<std::uint64_t>(warp_size) *
                           2 / 8;

    // Renaming table: N entries x (row id + rename info), ~2 x 8 bits.
    s.renamingTableBytes = static_cast<std::uint64_t>(num_warps) * 2;

    // Swap request table and miscellaneous control state; sized so the
    // total lands at the paper's "approximately 1.4 KB per SMX".
    s.controlStateBytes = 160;

    s.totalBytes = s.swapBufferBytes + s.rayStateTableBytes +
                   s.renamingTableBytes + s.controlStateBytes;
    return s;
}

BaselineStorage
computeBaselineStorage(int dmk_warps, int ray_variables)
{
    BaselineStorage s;
    // Paper: "the minimum capacity of on-chip spawn memory ... is
    // 54 x 32 x 17 x 32 bits = 114.75 KB" per SMX.
    s.dmkSpawnMemoryBytes = static_cast<std::uint64_t>(dmk_warps) * 32 *
                            static_cast<std::uint64_t>(ray_variables) * 32 /
                            8;
    // Paper: "thread IDs in the warp buffer which is 10 x 32 x 64 bits =
    // 2.5 KB (1024 max threads per block and 64 max warps per SMX)".
    s.tbcWarpBufferBytes = 10ULL * 32 * 64 / 8;
    return s;
}

DrsArea
estimateDrsArea(const DrsStorage &storage, int num_smx, double gpu_mm2)
{
    DrsArea a;
    // Synthesis anchor: the paper's default configuration (~1.4 KB)
    // occupies 0.042 mm^2 per core in TSMC 28 nm.
    constexpr double anchor_bytes = 1.4 * 1024.0;
    constexpr double anchor_mm2 = 0.042;
    a.mm2PerCore =
        anchor_mm2 * static_cast<double>(storage.totalBytes) / anchor_bytes;
    a.mm2PerGpu = a.mm2PerCore * num_smx;
    a.fractionOfGpu = a.mm2PerGpu / gpu_mm2;
    return a;
}

} // namespace drs::core
