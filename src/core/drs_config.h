#pragma once

/**
 * @file
 * DRS hardware configuration (paper Sections 3, 4.2, 4.3).
 */

namespace drs::core {

/** Configuration of the DRS control logic and swap engine. */
struct DrsConfig
{
    /**
     * Backup ray rows (M). The paper sweeps 1/2/4/8 (Figure 8) and
     * concludes one row, carved out of the main register file, suffices.
     */
    int backupRows = 1;

    /**
     * Whether backup rows live in an extra register bank. Without it, the
     * main register file makes room, reducing spawnable warps from 60 to
     * 58 (the paper's preferred configuration).
     */
    bool useExtraRegisterBank = false;

    /**
     * Total swap buffers, evenly divided between the three shuffle tasks
     * (fetch-collect, leaf-collect, inner-eject). Paper sweeps 6/9/12/18
     * (Table 2) and defaults to 6.
     */
    int swapBuffers = 6;

    /** Idealized shuffling: any ray move completes in one cycle. */
    bool idealized = false;

    /**
     * Minimum number of empty slots in a dispatched row before their
     * lanes receive FETCH as their per-thread trav_ctrl_val (batched
     * hole refill). Scattered holes below the threshold are gathered by
     * the fetch-collect shuffle row instead.
     */
    int fetchRefillThreshold = 4;

    /**
     * Dispatch tolerance: a row may be dispatched while holding up to
     * this many opposite-state rays; their lanes simply stay inactive
     * for the pass and are extracted by the swap engine in the
     * background. 0 reproduces the strict textual rule of the paper;
     * the small default keeps warp-issue throughput at the paper's
     * near-ideal level (see DESIGN.md). Ablated by the Figure 8 bench.
     */
    int dispatchMinorityTolerance = 7;

    /**
     * A warp whose own row is dispatchable but holds fewer live rays
     * than this target first looks for a fuller unbound row, releasing
     * its own row to the swap engine for topping up. Keeps dispatches
     * near-full (the paper's engine maintains full 32-ray rows), at the
     * cost of extra remaps.
     */
    int fullDispatchTarget = 26;

    /** Register file banks visible to the swap engine. */
    int registerBanks = 8;

    /** Live variables per ray moved by a shuffle (paper: 17). */
    int rayVariables = 17;

    /** Fixed per-operation setup cycles (request table allocation). */
    int opSetupCycles = 1;

    /** Swap buffers per shuffle task. */
    int buffersPerTask() const { return swapBuffers / 3; }

    /** Registers per SMX (Table 1). */
    int registersPerSmx = 65536;

    /** Registers used per thread by Kernel 1 (sets 60 spawnable warps). */
    int registersPerThread = 34;

    /**
     * Warps spawnable with this configuration (paper Section 4.2):
     * Kernel 1 spawns 60 warps; without an extra register bank the main
     * register file makes room for the M backup + 2 empty rows (17
     * registers x 32 lanes each), which costs warps — 58 for M = 1.
     */
    int spawnableWarps() const
    {
        const int regs_per_warp = registersPerThread * 32;
        if (useExtraRegisterBank)
            return registersPerSmx / regs_per_warp;
        const int row_regs = (backupRows + 2) * rayVariables * 32;
        return (registersPerSmx - row_regs) / regs_per_warp;
    }
};

} // namespace drs::core
