#pragma once

/**
 * @file
 * The DRS control logic (paper Section 3): ray state table, warp renaming
 * table, and the greedy ray-swap engine with its three designated rows
 * (fetch-state collecting, leaf-state collecting, inner-state ejecting).
 *
 * Attached to one SMX as its WarpController: it intercepts rdctrl issue,
 * maps warps onto state-uniform rows (possibly stalling them while
 * shuffling is in flight), and moves ray register data between rows
 * through the swap buffers, modeling register-bank contention with the
 * operand collectors.
 *
 * Dispatch rule: a row is dispatchable when its live rays all share one
 * traversal state. Empty (fetch-state) slots are tolerated — rdctrl is a
 * per-thread read, so hole lanes receive FETCH and refill in place when
 * enough of them accumulate; scattered holes are gathered by the
 * fetch-collect shuffle task, exactly the row's purpose in the paper.
 * Rows mixing inner- and leaf-state rays stall the warp until shuffling
 * separates them.
 */

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/drs_config.h"
#include "obs/counters.h"
#include "simt/controller.h"

namespace drs::simt {
class Smx;
}

namespace drs::core {

/** The three shuffle tasks of the greedy swap scheme. */
enum class ShuffleTask
{
    FetchCollect = 0,
    LeafCollect = 1,
    InnerEject = 2,
};

/**
 * Counters exposed for tests and benches. A value snapshot of the
 * control's obs counters ("drs.*" names), which are the source of truth.
 */
struct DrsControlStats
{
    std::uint64_t remaps = 0;          ///< warp-to-new-row mappings
    std::uint64_t stallsStarted = 0;   ///< rdctrl issues that had to wait
    std::uint64_t movesCompleted = 0;  ///< single-ray moves
    std::uint64_t exchangesCompleted = 0; ///< two-ray exchanges
    std::uint64_t idleCycles = 0;      ///< cycles with no shuffle work
};

/**
 * DRS control for one SMX.
 *
 * Lifecycle: construct with the kernel's RowWorkspace, attach() to the
 * Smx, then the Smx drives onRdctrl()/cycle().
 */
class DrsControl : public simt::WarpController
{
  public:
    /**
     * @param config hardware configuration
     * @param workspace the kernel's row-addressed ray state
     * @param num_warps resident warps (N); rows = N + M + 2
     */
    DrsControl(const DrsConfig &config, simt::RowWorkspace &workspace,
               int num_warps);

    void attach(simt::Smx &smx) override { smx_ = &smx; }
    simt::RdctrlResult onRdctrl(int warp) override;
    void cycle(int issued_instructions) override;
    obs::CounterSnapshot countersSnapshot() const override
    {
        return counters_.snapshot();
    }

    /**
     * Renaming-table and swap-engine invariants: warpRow_/rowOwner_ are
     * mutually consistent bijections on the bound pairs (row-ownership
     * exclusivity), in-flight operations only touch unbound rows with
     * in-range lanes and positive remaining work, and cached censuses of
     * unbound rows match the workspace. Throws std::logic_error.
     */
    void verifyInvariants() const override;

    /**
     * Arm swap-boundary fault injection: as each shuffle operation
     * completes, the injector may flip one bit of the destination slot's
     * ray payload — modeling a soft error in the swap buffers while ray
     * registers are in flight between rows. nullptr detaches.
     */
    void setFault(fault::FaultInjector *fault) override { fault_ = fault; }

    /** Row ownership + in-flight operations, for the watchdog dump. */
    void describeState(std::ostream &out) const override;

    /** Row currently renamed to @p warp, or -1 while stalled. */
    int warpRow(int warp) const { return warpRow_.at(warp); }

    DrsControlStats stats() const;

    /** Number of in-flight shuffle operations (tests). */
    int activeOperations() const;

  private:
    /** One in-flight ray move/exchange. */
    struct Operation
    {
        bool active = false;
        bool isExchange = false;
        int rowA = -1, laneA = -1;
        int rowB = -1, laneB = -1;
        int transfersRemaining = 0; ///< variable read+write pairs left
        int setupRemaining = 0;     ///< fixed op setup cycles left
        std::uint64_t startCycle = 0;
    };

    /** Per-row state census. */
    struct RowCensus
    {
        std::array<int, simt::kNumTravStates> count{};
        int total() const { return count[0] + count[1] + count[2]; }
        int fetch() const { return count[0]; }
        int inner() const { return count[1]; }
        int leaf() const { return count[2]; }
        int live() const { return count[1] + count[2]; }
    };

    /** Fresh census straight from the workspace. */
    RowCensus census(int row) const;

    /**
     * Cached census for engine decisions. Valid only for unbound rows —
     * their contents change exclusively through engine operations, which
     * invalidate the cache.
     */
    const RowCensus &cachedCensus(int row);

    void invalidateCensus(int row);

    /** True when the row can be dispatched without divergence stalls. */
    bool dispatchable(const RowCensus &c) const;

    /** Dispatch decision for a dispatchable row. */
    simt::RdctrlResult dispatch(int warp, int row, const RowCensus &c);

    /** Find the best unbound, unlocked, dispatchable row (or -1). */
    int findUniformRow();

    /** Memoized findUniformRow (stalled warps retry every cycle). */
    int cachedUniformRow();

    bool rowLocked(int row) const;
    void bindRow(int warp, int row);
    void unbindWarpRow(int warp);

    /** Pick the next operation for an idle shuffle task. */
    std::optional<Operation> chooseOperation(ShuffleTask task);

    /** Re-select a designated row for @p task if needed. */
    void refreshDesignatedRow(ShuffleTask task);

    void completeOperation(Operation &op);

    /** Idealized mode: consolidate all unbound rows instantly. */
    void idealConsolidate();

    DrsConfig config_;
    simt::RowWorkspace &workspace_;
    simt::Smx *smx_ = nullptr;
    fault::FaultInjector *fault_ = nullptr;
    int numWarps_;
    int rows_;
    int lanes_;

    std::vector<int> warpRow_;    ///< renaming table: warp -> row (-1 none)
    std::vector<int> rowOwner_;   ///< row -> warp (-1 unbound)
    std::array<int, 3> designated_{-1, -1, -1}; ///< per ShuffleTask row
    /**
     * In-flight operations: the swapping request table. Each shuffle
     * task pipelines up to buffersPerTask() concurrent operations (one
     * buffer carries one variable between its read and write cycle).
     */
    std::vector<Operation> ops_;
    int opsPerTask_ = 2;
    std::uint64_t now_ = 0;
    bool dirty_ = true; ///< unbound-row set or contents changed

    std::vector<RowCensus> censusCache_;
    std::vector<char> censusValid_;

    // Per-cycle cache of the drain-termination check.
    std::uint64_t liveCacheCycle_ = ~0ULL;
    std::size_t liveCacheValue_ = 1;
    bool liveCachePoolEmpty_ = false;

    // Memoized uniform-row search (see cachedUniformRow()).
    bool uniformCacheValid_ = false;
    int uniformCacheRow_ = -1;

    /** Observability counters ("drs.*"); see obs::Counters. */
    obs::Counters counters_;
    obs::Counter &remaps_;
    obs::Counter &stallsStarted_;
    obs::Counter &movesCompleted_;
    obs::Counter &exchangesCompleted_;
    obs::Counter &swapsCompleted_;
    obs::Counter &idleCycles_;
};

} // namespace drs::core
