#pragma once

/**
 * @file
 * Hardware overhead model (paper Section 4.5). The paper's numbers are
 * storage arithmetic plus one synthesis result; this module reproduces the
 * arithmetic exactly and estimates area from bit counts scaled to the
 * paper's synthesized 0.042 mm^2 per GPU core at TSMC 28 nm.
 */

#include <cstdint>

#include "core/drs_config.h"

namespace drs::core {

/** Storage overheads of the DRS hardware, in bytes (per SMX). */
struct DrsStorage
{
    std::uint64_t swapBufferBytes = 0; ///< paper: 744 B for 6 buffers
    std::uint64_t rayStateTableBytes = 0; ///< paper: 488 B for 61 rows
    std::uint64_t renamingTableBytes = 0;
    std::uint64_t controlStateBytes = 0;
    std::uint64_t totalBytes = 0; ///< paper: ~1.4 KB per SMX
};

/** Comparison-point storage (paper Section 4.5). */
struct BaselineStorage
{
    std::uint64_t dmkSpawnMemoryBytes = 0; ///< paper: 114.75 KB per SMX
    std::uint64_t tbcWarpBufferBytes = 0;  ///< paper: 2.5 KB per SMX
};

/** Area estimate of the DRS. */
struct DrsArea
{
    double mm2PerCore = 0.0;   ///< paper: 0.042 mm^2 (TSMC 28 nm)
    double mm2PerGpu = 0.0;    ///< 15 SMX
    double fractionOfGpu = 0.0; ///< paper: ~0.11% of 550 mm^2
};

/**
 * Compute DRS storage for @p config with @p num_warps resident warps.
 *
 * Matches the paper's arithmetic: swap buffers are (warp_size - 1) x 32
 * bits each; the ray state table holds (N + M + 2) x 32 entries of 20
 * bits.
 */
DrsStorage computeDrsStorage(const DrsConfig &config, int num_warps,
                             int warp_size = 32);

/**
 * Storage of the comparison points: DMK spawn memory sized for
 * @p dmk_warps warps of @p ray_variables 32-bit values, TBC warp buffer
 * for Kepler's 1024 threads/block and 64 warps/SMX.
 */
BaselineStorage computeBaselineStorage(int dmk_warps = 54,
                                       int ray_variables = 17);

/**
 * Area estimate: bit count scaled against the paper's synthesis point
 * (0.042 mm^2 for the default configuration), GPU fraction against a
 * 550 mm^2 Kepler die.
 */
DrsArea estimateDrsArea(const DrsStorage &storage, int num_smx = 15,
                        double gpu_mm2 = 550.0);

} // namespace drs::core
