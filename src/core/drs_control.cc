#include "core/drs_control.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

#include "fault/fault.h"
#include "simt/smx.h"

namespace drs::core {

using simt::RdctrlResult;
using simt::TravState;

DrsControl::DrsControl(const DrsConfig &config,
                       simt::RowWorkspace &workspace, int num_warps)
    : config_(config),
      workspace_(workspace),
      numWarps_(num_warps),
      rows_(workspace.rowCount()),
      lanes_(workspace.laneCount()),
      remaps_(counters_.get("drs.remaps")),
      stallsStarted_(counters_.get("drs.stalls_started")),
      movesCompleted_(counters_.get("drs.moves")),
      exchangesCompleted_(counters_.get("drs.exchanges")),
      swapsCompleted_(counters_.get("drs.swaps")),
      idleCycles_(counters_.get("drs.idle_cycles"))
{
    if (rows_ < num_warps + config.backupRows + 2)
        throw std::invalid_argument(
            "workspace must provide N + M + 2 rows for the DRS");
    if (config.swapBuffers < 3)
        throw std::invalid_argument("DRS needs at least 3 swap buffers");

    opsPerTask_ = std::max(config.buffersPerTask(), 1);
    ops_.assign(static_cast<std::size_t>(opsPerTask_) * 3, Operation{});
    warpRow_.assign(static_cast<std::size_t>(num_warps), -1);
    rowOwner_.assign(static_cast<std::size_t>(rows_), -1);
    censusCache_.assign(static_cast<std::size_t>(rows_), RowCensus{});
    censusValid_.assign(static_cast<std::size_t>(rows_), 0);
    // Initially the first N rows are bound to the N warps (Section 3.2.2).
    for (int w = 0; w < num_warps; ++w) {
        warpRow_[static_cast<std::size_t>(w)] = w;
        rowOwner_[static_cast<std::size_t>(w)] = w;
    }
}

DrsControl::RowCensus
DrsControl::census(int row) const
{
    RowCensus c;
    for (int lane = 0; lane < lanes_; ++lane)
        ++c.count[static_cast<std::size_t>(workspace_.state(row, lane))];
    return c;
}

const DrsControl::RowCensus &
DrsControl::cachedCensus(int row)
{
    if (!censusValid_[static_cast<std::size_t>(row)]) {
        censusCache_[static_cast<std::size_t>(row)] = census(row);
        censusValid_[static_cast<std::size_t>(row)] = 1;
    }
    return censusCache_[static_cast<std::size_t>(row)];
}

void
DrsControl::invalidateCensus(int row)
{
    censusValid_[static_cast<std::size_t>(row)] = 0;
}

bool
DrsControl::dispatchable(const RowCensus &c) const
{
    if (c.live() == 0)
        return !workspace_.poolEmpty(); // all-fetch row: batched refill
    // Live rays must share a single traversal state; holes are fine, and
    // a minority of opposite-state rays within the tolerance rides along
    // with its lanes inactive.
    const int minority = std::min(c.inner(), c.leaf());
    return minority <= config_.dispatchMinorityTolerance;
}

RdctrlResult
DrsControl::dispatch(int warp, int row, const RowCensus &c)
{
    bindRow(warp, row);

    RdctrlResult result;
    result.row = row;
    if (c.live() == 0) {
        result.ctrl = TravState::Fetch;
        result.mask = simt::fullMask(lanes_);
        return result;
    }

    const TravState state =
        c.inner() >= c.leaf() ? TravState::Inner : TravState::Leaf;
    result.ctrl = state;
    std::uint32_t mask = 0;
    std::uint32_t holes = 0;
    for (int lane = 0; lane < lanes_; ++lane) {
        const TravState s = workspace_.state(row, lane);
        if (s == state)
            mask |= 1u << lane;
        else if (s == TravState::Fetch)
            holes |= 1u << lane;
    }
    result.mask = mask;
    assert(mask != 0);
    // Batched hole refill: when enough empty slots accumulated, their
    // lanes receive FETCH as their per-thread trav_ctrl_val.
    if (holes != 0 && !workspace_.poolEmpty() &&
        simt::popcount(holes) >= config_.fetchRefillThreshold) {
        result.fetchMask = holes;
    }
    return result;
}

bool
DrsControl::rowLocked(int row) const
{
    for (const auto &op : ops_)
        if (op.active && (op.rowA == row || op.rowB == row))
            return true;
    return false;
}

void
DrsControl::bindRow(int warp, int row)
{
    const int old = warpRow_[static_cast<std::size_t>(warp)];
    if (old == row)
        return;
    if (old >= 0) {
        rowOwner_[static_cast<std::size_t>(old)] = -1;
        invalidateCensus(old);
    }
    assert(rowOwner_[static_cast<std::size_t>(row)] == -1 &&
           "a row may not be bound to more than one warp");
    warpRow_[static_cast<std::size_t>(warp)] = row;
    rowOwner_[static_cast<std::size_t>(row)] = warp;
    invalidateCensus(row);
    dirty_ = true;
    uniformCacheValid_ = false;
}

void
DrsControl::unbindWarpRow(int warp)
{
    const int old = warpRow_[static_cast<std::size_t>(warp)];
    if (old < 0)
        return;
    rowOwner_[static_cast<std::size_t>(old)] = -1;
    warpRow_[static_cast<std::size_t>(warp)] = -1;
    invalidateCensus(old);
    dirty_ = true;
    uniformCacheValid_ = false;
}

int
DrsControl::findUniformRow()
{
    // Preference order: drain leaf rows first, keep inner rows moving,
    // fetch new work last; prefer fuller rows for higher SIMD payoff.
    int best = -1;
    int best_score = -1;
    for (int row = 0; row < rows_; ++row) {
        if (rowOwner_[static_cast<std::size_t>(row)] >= 0 || rowLocked(row))
            continue;
        const RowCensus &c = cachedCensus(row);
        if (!dispatchable(c))
            continue;
        // Fuller rows give higher SIMD payoff per dispatch; leaf rows
        // break ties so nearly finished rays drain.
        int score;
        if (c.live() > 0) {
            score = c.live() * 4 + (c.leaf() > 0 ? 1 : 0);
        } else {
            score = 1; // all-fetch (pool non-empty)
        }
        if (score > best_score) {
            best_score = score;
            best = row;
        }
    }
    return best;
}

int
DrsControl::cachedUniformRow()
{
    if (uniformCacheValid_) {
        const int row = uniformCacheRow_;
        if (row < 0)
            return -1;
        if (rowOwner_[static_cast<std::size_t>(row)] == -1 &&
            !rowLocked(row))
            return row;
    }
    uniformCacheRow_ = findUniformRow();
    uniformCacheValid_ = true;
    return uniformCacheRow_;
}

RdctrlResult
DrsControl::onRdctrl(int warp)
{
    // Terminal condition: no pool rays and no live rays anywhere. The
    // live-ray census is cached per cycle: every stalled warp retries
    // each cycle during the drain phase.
    if (liveCacheCycle_ != now_) {
        liveCacheCycle_ = now_;
        liveCachePoolEmpty_ = workspace_.poolEmpty();
        liveCacheValue_ = liveCachePoolEmpty_ ? workspace_.liveRays() : 1;
    }
    if (liveCachePoolEmpty_ && liveCacheValue_ == 0) {
        unbindWarpRow(warp);
        RdctrlResult result;
        result.exit = true;
        return result;
    }

    const int own = warpRow_[static_cast<std::size_t>(warp)];
    if (own >= 0) {
        const RowCensus c = census(own);
        if (dispatchable(c)) {
            // Near-full rows run in place. Under-full rows circulate:
            // the warp takes a fuller unbound row and releases its own
            // to the swap engine for topping up.
            const int majority = std::max(c.inner(), c.leaf());
            const int refill =
                !workspace_.poolEmpty() &&
                        c.fetch() >= config_.fetchRefillThreshold
                    ? c.fetch()
                    : 0;
            const bool full_enough =
                majority + refill >= config_.fullDispatchTarget ||
                workspace_.poolEmpty();
            if (!full_enough) {
                const int fuller = cachedUniformRow();
                if (fuller >= 0 &&
                    cachedCensus(fuller).live() > c.live()) {
                    const RowCensus fc = cachedCensus(fuller);
                    unbindWarpRow(warp);
                    remaps_.add();
                    return dispatch(warp, fuller, fc);
                }
            }
            return dispatch(warp, own, c);
        }
    }

    const int found = cachedUniformRow();
    if (found >= 0) {
        if (own >= 0)
            unbindWarpRow(warp);
        remaps_.add();
        const RowCensus c = cachedCensus(found);
        return dispatch(warp, found, c);
    }

    // Stall: release the warp's row so the swap engine may reorganize it.
    if (own >= 0) {
        unbindWarpRow(warp);
        stallsStarted_.add();
    }
    RdctrlResult result;
    result.stall = true;
    return result;
}

void
DrsControl::refreshDesignatedRow(ShuffleTask task)
{
    const auto t = static_cast<std::size_t>(task);
    auto eligible = [&](int row) {
        if (rowOwner_[static_cast<std::size_t>(row)] >= 0 || rowLocked(row))
            return false;
        for (std::size_t other = 0; other < designated_.size(); ++other)
            if (other != t && designated_[other] == row)
                return false;
        return true;
    };

    // Keep the current designation while it is still useful.
    const int current = designated_[t];
    if (current >= 0 && eligible(current)) {
        const RowCensus &c = cachedCensus(current);
        const bool still_useful =
            (task == ShuffleTask::FetchCollect && c.fetch() < lanes_ &&
             c.live() > 0) ||
            (task == ShuffleTask::LeafCollect && c.leaf() > 0 &&
             c.leaf() < lanes_) ||
            (task == ShuffleTask::InnerEject && c.inner() > 0 &&
             c.inner() < lanes_);
        if (still_useful)
            return;
    }
    designated_[t] = -1;

    int best = -1;
    int best_score = -1;
    for (int row = 0; row < rows_; ++row) {
        if (!eligible(row))
            continue;
        const RowCensus &c = cachedCensus(row);
        int score = -1;
        switch (task) {
          case ShuffleTask::FetchCollect:
            // Nearly-empty mixed rows are cheapest to finish emptying.
            if (c.fetch() > 0 && c.fetch() < lanes_ && c.live() > 0)
                score = c.fetch();
            break;
          case ShuffleTask::LeafCollect:
            // Rows already rich in leaf rays finish collecting fastest.
            // Only rows that actually mix leaf with inner need fixing.
            if (c.leaf() > 0 && c.inner() > 0)
                score = c.leaf();
            break;
          case ShuffleTask::InnerEject:
            // Rows with few inner rays are emptied of them fastest.
            if (c.inner() > 0 && c.leaf() > 0)
                score = lanes_ - c.inner();
            break;
        }
        if (score > best_score) {
            best_score = score;
            best = row;
        }
    }
    designated_[t] = best;
}

std::optional<DrsControl::Operation>
DrsControl::chooseOperation(ShuffleTask task)
{
    refreshDesignatedRow(task);
    const int home = designated_[static_cast<std::size_t>(task)];
    if (home < 0)
        return std::nullopt;

    auto find_lane = [&](int row, TravState state) {
        for (int lane = 0; lane < lanes_; ++lane)
            if (workspace_.state(row, lane) == state)
                return lane;
        return -1;
    };

    auto partner_rows = [&](auto &&accept) {
        for (int row = 0; row < rows_; ++row) {
            if (row == home ||
                rowOwner_[static_cast<std::size_t>(row)] >= 0 ||
                rowLocked(row))
                continue;
            if (accept(cachedCensus(row)))
                return row;
        }
        return -1;
    };

    Operation op;
    op.rowA = home;
    op.startCycle = now_;
    op.setupRemaining = config_.opSetupCycles;

    switch (task) {
      case ShuffleTask::FetchCollect: {
        // Empty the home row: move a live ray into a hole of a row whose
        // live rays share the ray's state (keeping that row dispatchable).
        int lane = find_lane(home, TravState::Inner);
        TravState state = TravState::Inner;
        if (lane < 0) {
            lane = find_lane(home, TravState::Leaf);
            state = TravState::Leaf;
        }
        if (lane < 0)
            return std::nullopt;
        const bool want_inner = state == TravState::Inner;
        const int home_live = cachedCensus(home).live();
        // Monotone consolidation: rays only move from emptier rows into
        // strictly fuller compatible rows, so the engine cannot ping-pong
        // with the inner-eject task. Prefer a hole in a row whose live
        // rays already match; accept a majority-compatible mixed row
        // otherwise.
        // Only pure, strictly fuller rows accept rays: anything looser
        // lets this task undo the separation the other two tasks make.
        const int partner = partner_rows([&](const RowCensus &c) {
            if (c.fetch() == 0 || c.live() <= home_live)
                return false;
            return want_inner ? (c.leaf() == 0 && c.inner() > 0)
                              : (c.inner() == 0 && c.leaf() > 0);
        });
        if (partner < 0)
            return std::nullopt;
        op.rowA = home;
        op.laneA = lane;
        op.rowB = partner;
        op.laneB = find_lane(partner, TravState::Fetch);
        op.isExchange = false;
        break;
      }
      case ShuffleTask::LeafCollect: {
        // Fill a non-leaf slot of the home row with a leaf ray, or
        // exchange one of its inner rays for a donor's leaf ray. The
        // donor is the mixed row with the fewest leaf rays: it becomes
        // dispatchable after the fewest moves.
        const int hole = find_lane(home, TravState::Fetch);
        const int inner_slot = find_lane(home, TravState::Inner);
        int donor = -1;
        int donor_leaves = lanes_ + 1;
        for (int row = 0; row < rows_; ++row) {
            if (row == home ||
                rowOwner_[static_cast<std::size_t>(row)] >= 0 ||
                rowLocked(row))
                continue;
            const RowCensus &c = cachedCensus(row);
            if (c.leaf() > 0 && c.inner() > 0 && c.leaf() < donor_leaves) {
                donor = row;
                donor_leaves = c.leaf();
            }
        }
        if (donor < 0)
            return std::nullopt;
        if (hole >= 0) {
            op.rowA = donor;
            op.laneA = find_lane(donor, TravState::Leaf);
            op.rowB = home;
            op.laneB = hole;
            op.isExchange = false;
        } else if (inner_slot >= 0) {
            op.rowA = home;
            op.laneA = inner_slot;
            op.rowB = donor;
            op.laneB = find_lane(donor, TravState::Leaf);
            op.isExchange = true;
        } else {
            return std::nullopt;
        }
        break;
      }
      case ShuffleTask::InnerEject: {
        // Push an inner ray from the home row into an inner-compatible
        // row (hole first, leaf-exchange second, any hole as last resort
        // — the paper's "empty slots on other rows").
        const int lane = find_lane(home, TravState::Inner);
        if (lane < 0)
            return std::nullopt;
        int partner = partner_rows([&](const RowCensus &c) {
            return c.fetch() > 0 && c.leaf() == 0 && c.inner() > 0;
        });
        bool exchange = false;
        int partner_lane = -1;
        if (partner >= 0) {
            partner_lane = find_lane(partner, TravState::Fetch);
        } else {
            partner = partner_rows([&](const RowCensus &c) {
                return c.leaf() > 0 && c.inner() > c.leaf();
            });
            if (partner >= 0) {
                partner_lane = find_lane(partner, TravState::Leaf);
                exchange = true;
            }
        }
        if (partner_lane < 0) {
            partner = partner_rows([&](const RowCensus &c) {
                return c.fetch() > 0;
            });
            if (partner < 0)
                return std::nullopt;
            partner_lane = find_lane(partner, TravState::Fetch);
            exchange = false;
        }
        op.rowA = home;
        op.laneA = lane;
        op.rowB = partner;
        op.laneB = partner_lane;
        op.isExchange = exchange;
        break;
      }
    }

    assert(op.laneA >= 0 && op.laneB >= 0);
    // A move streams 17 variables through the buffers (read + write per
    // variable); an exchange streams both rays.
    op.transfersRemaining = config_.rayVariables * (op.isExchange ? 2 : 1);
    op.active = true;
    return op;
}

void
DrsControl::completeOperation(Operation &op)
{
    if (op.isExchange) {
        workspace_.swapRays(op.rowA, op.laneA, op.rowB, op.laneB);
        exchangesCompleted_.add();
    } else {
        workspace_.moveRay(op.rowA, op.laneA, op.rowB, op.laneB);
        movesCompleted_.add();
    }
    swapsCompleted_.add();
    // Fault site: the ray just written through the swap buffers may land
    // with a flipped payload bit (soft error while registers were in
    // flight). Injected after the move so the corruption is in the
    // destination slot, exactly where real buffer damage would surface.
    if (fault_ != nullptr && fault_->rollSwapBitFlip())
        workspace_.corruptRay(op.rowB, op.laneB, fault_->pick(256));
    invalidateCensus(op.rowA);
    invalidateCensus(op.rowB);
    if (smx_ != nullptr) {
        smx_->recordRaySwap(now_ - op.startCycle);
        smx_->addShuffleRfAccesses(
            2ULL * static_cast<std::uint64_t>(config_.rayVariables) *
            (op.isExchange ? 2 : 1));
    }
    op = Operation{};
    dirty_ = true;
    uniformCacheValid_ = false;
}

void
DrsControl::describeState(std::ostream &out) const
{
    out << "  drs: now=" << now_ << " row ownership {";
    bool first = true;
    for (int w = 0; w < numWarps_; ++w) {
        if (warpRow_[static_cast<std::size_t>(w)] < 0)
            continue;
        if (!first)
            out << ' ';
        out << 'w' << w << "->r" << warpRow_[static_cast<std::size_t>(w)];
        first = false;
    }
    out << "} designated fetch=" << designated_[0]
        << " leaf=" << designated_[1] << " inner=" << designated_[2]
        << '\n';
    for (const auto &op : ops_) {
        if (!op.active)
            continue;
        out << "  drs op: " << (op.isExchange ? "exchange" : "move")
            << " (" << op.rowA << ',' << op.laneA << ")<->(" << op.rowB
            << ',' << op.laneB << ") transfersRemaining="
            << op.transfersRemaining << " setupRemaining="
            << op.setupRemaining << " started=" << op.startCycle << '\n';
    }
}

int
DrsControl::activeOperations() const
{
    int n = 0;
    for (const auto &op : ops_)
        if (op.active)
            ++n;
    return n;
}

void
DrsControl::cycle(int issued_instructions)
{
    ++now_;

    if (config_.idealized) {
        if (dirty_) {
            dirty_ = false;
            idealConsolidate(); // may re-set dirty_ when work remains
        }
        return;
    }

    // Start new operations on idle tasks. Scanning is gated on dirty_:
    // candidate rows only change through events that set it. A task whose
    // designated row blocks another task's only viable move releases it;
    // bounded retry rounds let designations rotate to a feasible
    // assignment within one event.
    bool any_active = false;
    if (dirty_) {
        dirty_ = false;
        for (int round = 0; round < 3; ++round) {
            bool released = false;
            for (int t = 0; t < 3; ++t) {
                bool failed = false;
                for (int k = 0; k < opsPerTask_ && !failed; ++k) {
                    auto &op = ops_[static_cast<std::size_t>(
                        t * opsPerTask_ + k)];
                    if (op.active)
                        continue;
                    auto chosen =
                        chooseOperation(static_cast<ShuffleTask>(t));
                    if (chosen) {
                        chosen->startCycle = now_;
                        op = *chosen;
                    } else {
                        failed = true;
                    }
                }
                if (failed &&
                    designated_[static_cast<std::size_t>(t)] >= 0) {
                    designated_[static_cast<std::size_t>(t)] = -1;
                    released = true;
                }
            }
            if (!released)
                break;
        }
    }

    // Advance active operations. A swap buffer holds one 32-bit variable
    // between its read and write cycle, so k buffers sustain ~k/2
    // variable transfers per cycle; register-bank ports are shared with
    // the operand collectors of normal execution (the paper's
    // bank-conflict effect).
    int ports = config_.registerBanks - (issued_instructions + 1) / 2;
    ports = std::max(ports, 2);
    // One buffer sustains about one variable transfer per two cycles;
    // generous configurations also speed up individual operations.
    const int per_op_rate = config_.buffersPerTask() >= 4 ? 2 : 1;

    for (int t = 0; t < 3; ++t) {
        int task_budget = config_.buffersPerTask();
        for (int k = 0; k < opsPerTask_; ++k) {
            auto &op = ops_[static_cast<std::size_t>(t * opsPerTask_ + k)];
            if (!op.active)
                continue;
            any_active = true;
            if (op.setupRemaining > 0) {
                --op.setupRemaining;
                continue;
            }
            const int grant = std::min(
                {per_op_rate, task_budget, ports, op.transfersRemaining});
            if (grant <= 0)
                continue;
            ports -= grant;
            task_budget -= grant;
            op.transfersRemaining -= grant;
            if (op.transfersRemaining == 0)
                completeOperation(op);
        }
    }

    if (!any_active)
        idleCycles_.add();
}

void
DrsControl::verifyInvariants() const
{
    // Renaming tables: the bound (warp, row) pairs must form a bijection
    // read identically from both directions — this is the paper's
    // row-ownership exclusivity (one warp per row, one row per warp).
    for (int w = 0; w < numWarps_; ++w) {
        const int row = warpRow_[static_cast<std::size_t>(w)];
        if (row < -1 || row >= rows_)
            throw std::logic_error("DrsControl: warpRow out of range");
        if (row >= 0 && rowOwner_[static_cast<std::size_t>(row)] != w)
            throw std::logic_error(
                "DrsControl: warpRow/rowOwner tables disagree");
    }
    for (int row = 0; row < rows_; ++row) {
        const int w = rowOwner_[static_cast<std::size_t>(row)];
        if (w < -1 || w >= numWarps_)
            throw std::logic_error("DrsControl: rowOwner out of range");
        if (w >= 0 && warpRow_[static_cast<std::size_t>(w)] != row)
            throw std::logic_error(
                "DrsControl: rowOwner/warpRow tables disagree");
    }

    for (const int row : designated_)
        if (row < -1 || row >= rows_)
            throw std::logic_error("DrsControl: designated row out of range");

    // In-flight operations only move rays between unbound rows (binding
    // paths skip locked rows, and chooseOperation picks unbound ones);
    // a bound endpoint would mean the swap engine races the warp
    // executing on that row.
    for (const auto &op : ops_) {
        if (!op.active)
            continue;
        if (op.rowA < 0 || op.rowA >= rows_ || op.rowB < 0 ||
            op.rowB >= rows_ || op.rowA == op.rowB)
            throw std::logic_error("DrsControl: operation rows invalid");
        if (op.laneA < 0 || op.laneA >= lanes_ || op.laneB < 0 ||
            op.laneB >= lanes_)
            throw std::logic_error("DrsControl: operation lanes invalid");
        if (rowOwner_[static_cast<std::size_t>(op.rowA)] >= 0 ||
            rowOwner_[static_cast<std::size_t>(op.rowB)] >= 0)
            throw std::logic_error(
                "DrsControl: in-flight operation touches a bound row");
        if (op.transfersRemaining <= 0 || op.setupRemaining < 0)
            throw std::logic_error(
                "DrsControl: operation has no remaining work");
    }

    // The census cache is only ever read for unbound rows; a stale entry
    // there would silently misdirect dispatch and shuffle decisions.
    for (int row = 0; row < rows_; ++row) {
        if (rowOwner_[static_cast<std::size_t>(row)] >= 0)
            continue;
        if (!censusValid_[static_cast<std::size_t>(row)])
            continue;
        if (censusCache_[static_cast<std::size_t>(row)].count !=
            census(row).count)
            throw std::logic_error(
                "DrsControl: stale census cache for an unbound row");
    }
}

DrsControlStats
DrsControl::stats() const
{
    DrsControlStats s;
    s.remaps = remaps_.value();
    s.stallsStarted = stallsStarted_.value();
    s.movesCompleted = movesCompleted_.value();
    s.exchangesCompleted = exchangesCompleted_.value();
    s.idleCycles = idleCycles_.value();
    return s;
}

void
DrsControl::idealConsolidate()
{
    // Idealized 1-cycle shuffling: gather the live rays of ALL unbound
    // rows and repack them into full, state-pure rows (inner rows first,
    // then leaf rows, then empty rows). This is the fixed point the real
    // swap engine works toward.
    std::vector<int> pool_rows;
    std::vector<std::pair<int, int>> inner_rays;
    std::vector<std::pair<int, int>> leaf_rays;
    for (int row = 0; row < rows_; ++row) {
        if (rowOwner_[static_cast<std::size_t>(row)] >= 0 || rowLocked(row))
            continue;
        pool_rows.push_back(row);
        for (int lane = 0; lane < lanes_; ++lane) {
            switch (workspace_.state(row, lane)) {
              case TravState::Inner:
                inner_rays.emplace_back(row, lane);
                break;
              case TravState::Leaf:
                leaf_rays.emplace_back(row, lane);
                break;
              case TravState::Fetch:
                break;
            }
        }
    }
    if (pool_rows.empty())
        return;

    std::vector<std::pair<int, int>> targets;
    targets.reserve(pool_rows.size() * static_cast<std::size_t>(lanes_));
    for (int row : pool_rows)
        for (int lane = 0; lane < lanes_; ++lane)
            targets.emplace_back(row, lane);

    std::size_t cursor = 0;
    auto place = [&](std::vector<std::pair<int, int>> &rays) {
        for (std::size_t i = 0; i < rays.size() && cursor < targets.size();
             ++i) {
            const auto target = targets[cursor++];
            const auto src = rays[i];
            if (src == target)
                continue;
            workspace_.swapRays(src.first, src.second, target.first,
                                target.second);
            // A later source may have occupied the target slot; it now
            // lives where src was.
            for (auto *list : {&inner_rays, &leaf_rays})
                for (std::size_t j = 0; j < list->size(); ++j)
                    if ((*list)[j] == target)
                        (*list)[j] = src;
        }
    };
    place(inner_rays);
    // Leaf rays start at the next row boundary so no row mixes states.
    if (cursor % static_cast<std::size_t>(lanes_) != 0)
        cursor += static_cast<std::size_t>(lanes_) -
                  cursor % static_cast<std::size_t>(lanes_);
    place(leaf_rays);

    for (int row : pool_rows)
        invalidateCensus(row);
    uniformCacheValid_ = false;
}

} // namespace drs::core
