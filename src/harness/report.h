#pragma once

/**
 * @file
 * Simulator-statistics-to-JSON conversion for the structured bench
 * reports (obs::BenchReport). Lives in the harness so obs stays free of
 * simulator dependencies: obs owns the document skeleton and schema,
 * this header knows what a SimStats is.
 */

#include "harness/harness.h"
#include "obs/json.h"
#include "simt/sim_stats.h"

namespace drs::harness {

/**
 * Convert one run's statistics into the well-known report metric fields
 * (see obs::validateBenchReport): cycles, rays_traced, simd_efficiency,
 * mrays_per_s, bucket/spawn fractions, rdctrl behaviour, register-file
 * and swap statistics, cache hit rates, and the full hierarchical
 * counter snapshot under "counters".
 *
 * @param clock_ghz core clock used for the Mrays/s conversion
 */
obs::Json statsJson(const simt::SimStats &stats, double clock_ghz);

/**
 * Lossless SimStats serialization for the sweep's completed-job journal:
 * every raw integer field (histogram tallies, block-issue pairs, cache
 * counters, the full counter snapshot) — no derived floating-point
 * metrics, so statsFromJson(statsJsonFull(s)) == s exactly.
 */
obs::Json statsJsonFull(const simt::SimStats &stats);

/**
 * Inverse of statsJsonFull.
 * @throws std::runtime_error when @p json is not a statsJsonFull document
 */
simt::SimStats statsFromJson(const obs::Json &json);

/** The ExperimentScale knobs as a report "scale" object. */
obs::Json scaleJson(const ExperimentScale &scale);

/**
 * Attach the optional profiler sections to a result row (schema v3+):
 * "attribution" (issue-slot buckets x traversal phases plus the top
 * @p top_k hottest blocks, joined from stats.blockIssue and the
 * collector's block-name table) and "timeline" (merged windowed
 * frames); plus, since schema v4, "trace" (ring recorded/ring_dropped
 * counters when the run traced). No-op when @p observations holds no
 * collectors and no trace — so v2-shaped rows stay unchanged.
 */
void addObservationsJson(obs::Json &row,
                         const RunObservations &observations,
                         const simt::SimStats &stats,
                         std::size_t top_k = 8);

} // namespace drs::harness
