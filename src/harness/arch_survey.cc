/**
 * @file
 * The survey-completing architecture plugins: "ser" (SER-style reordering
 * at the traversal->shading boundary, inside the kernel) and "pathpred"
 * (hash-based ray-path prediction that prunes traversal via a validated
 * leaf probe). Both keep hits bitwise identical to the Aila baseline —
 * ser because traversal is untouched, pathpred by the probe-only-shrinks-
 * tMax argument in kernels/pathpred_kernel.h.
 */

#include "harness/arch_builtin.h"

#include "baselines/ser_control.h"
#include "harness/arch_detail.h"
#include "kernels/pathpred_kernel.h"
#include "kernels/ser_kernel.h"

namespace drs::harness {

namespace {

class SerArch : public ArchPlugin
{
  public:
    std::string name() const override { return "ser"; }
    std::string description() const override
    {
        return "while-if kernel + SER-style reordering at the shading "
               "boundary";
    }
    std::string counterNamespace() const override { return "ser"; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        simt::GpuRunOptions options = detail::gpuRunOptions(config, observers);
        options.check = checker;
        if (config.hitsOut != nullptr || checker != nullptr)
            options.onSmxRetire = [&config, checker](int,
                                                     simt::Kernel &kernel) {
                auto &workspace =
                    static_cast<kernels::SerKernel &>(kernel).travWorkspace();
                if (checker != nullptr)
                    check::verifyWorkspace(workspace, /*strict=*/true);
                if (config.hitsOut != nullptr)
                    detail::harvestHits(workspace, *config.hitsOut);
            };
        return simt::runGpu(
            config.gpu,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(rays.size(), config.gpu.numSmx, smx,
                                    config.gpu.simdLanes);
                kernels::SerKernelConfig kernel_config;
                kernel_config.numWarps = config.ser.numWarps;
                kernel_config.cutSize = config.ser.cutSize;
                auto kernel = std::make_unique<kernels::SerKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    rays.subspan(first, count), first, kernel_config);
                simt::SmxSetup setup;
                setup.numWarps = kernel_config.numWarps;
                setup.controller = std::make_unique<baselines::SerControl>(
                    config.ser, *kernel);
                setup.kernel = std::move(kernel);
                return setup;
            },
            options);
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        (void)config;
        // Traversal is the default while-if configuration (closest hit,
        // no speculation); the shade block only adds issue slots.
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileIf;
        inputs.reference = kernels::AilaConfig{};
        inputs.simCost = kernels::SerKernelConfig{}.cost;
        return inputs;
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        static constexpr int kWarpChoices[] = {4, 8, 16};
        config.ser.numWarps = kWarpChoices[rng.nextUInt(3)];
        config.ser.shadeBatch = rng.nextUInt(2) == 0 ? 8 : 32;
        config.ser.cutSize = rng.nextUInt(2) == 0 ? 64 : 256;
    }
};

class PathPredArch : public ArchPlugin
{
  public:
    std::string name() const override { return "pathpred"; }
    std::string description() const override
    {
        return "while-while kernel + hash-based ray-path prediction "
               "(validated leaf probe)";
    }
    std::string counterNamespace() const override { return "pathpred"; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        simt::GpuRunOptions options = detail::gpuRunOptions(config, observers);
        options.check = checker;
        // Always installed (not only under hitsOut/checker): the hook also
        // harvests the predictor tallies, and the pure-observer contract
        // requires identical counters with checking on or off. Hooks run
        // serially in SMX-index order, so the sums are deterministic.
        kernels::PathPredKernel::Counts totals;
        options.onSmxRetire = [&config, checker, &totals](
                                  int, simt::Kernel &kernel) {
            auto &pathpred = static_cast<kernels::PathPredKernel &>(kernel);
            if (checker != nullptr)
                check::verifyWorkspace(pathpred.travWorkspace(),
                                       /*strict=*/true);
            if (config.hitsOut != nullptr)
                detail::harvestHits(pathpred.travWorkspace(),
                                    *config.hitsOut);
            const auto &counts = pathpred.counts();
            totals.lookups += counts.lookups;
            totals.tableHits += counts.tableHits;
            totals.mispredicts += counts.mispredicts;
            totals.correct += counts.correct;
            totals.inserts += counts.inserts;
        };
        simt::SimStats stats = simt::runGpu(
            config.gpu,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(rays.size(), config.gpu.numSmx, smx,
                                    config.gpu.simdLanes);
                simt::SmxSetup setup;
                setup.kernel = std::make_unique<kernels::PathPredKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    rays.subspan(first, count), first, config.pathpred);
                setup.numWarps = config.pathpred.numWarps;
                return setup;
            },
            options);
        stats.counters.add("pathpred.lookups", totals.lookups);
        stats.counters.add("pathpred.table_hits", totals.tableHits);
        stats.counters.add("pathpred.mispredicts", totals.mispredicts);
        stats.counters.add("pathpred.correct", totals.correct);
        stats.counters.add("pathpred.inserts", totals.inserts);
        return stats;
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileWhile;
        // The probe adds leaf visits the baseline doesn't have (and prunes
        // inner visits), so per-block issue comparison doesn't apply; hit
        // identity is the contract.
        inputs.hasBlockIssue = false;
        kernels::AilaConfig reference;
        reference.anyHit = config.pathpred.anyHit;
        inputs.reference = reference;
        inputs.simCost = config.pathpred.cost;
        return inputs;
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        static constexpr int kWarpChoices[] = {4, 8, 16};
        config.pathpred.numWarps = kWarpChoices[rng.nextUInt(3)];
        config.pathpred.predictor.tableBits =
            8 + static_cast<int>(rng.nextUInt(7));
        config.pathpred.predictor.originBits =
            5 + static_cast<int>(rng.nextUInt(4));
        config.pathpred.predictor.directionBits =
            2 + static_cast<int>(rng.nextUInt(3));
        config.pathpred.anyHit = rng.nextUInt(4) == 0;
    }
};

} // namespace

namespace detail {

std::unique_ptr<const ArchPlugin>
makeSerArch()
{
    return std::make_unique<SerArch>();
}

std::unique_ptr<const ArchPlugin>
makePathPredArch()
{
    return std::make_unique<PathPredArch>();
}

} // namespace detail

} // namespace drs::harness
