#include "harness/sweep.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>

#include "exec/cancel.h"
#include "exec/thread_pool.h"
#include "harness/report.h"
#include "obs/json.h"
#include "obs/log.h"

namespace drs::harness {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Salt separating the backoff-jitter stream from the fault streams. */
constexpr std::uint64_t kBackoffJitterSalt = 0x6a69747465720000ULL;

/** Deterministic jitter factor in [0.5, 1.0) for one (job, attempt). */
double
backoffJitter(std::uint64_t seed, std::size_t index, int attempt)
{
    const std::uint64_t mixed =
        fault::mixSeed(seed ^ kBackoffJitterSalt,
                       static_cast<std::uint64_t>(index),
                       static_cast<std::uint64_t>(attempt));
    // Top 53 bits -> uniform double in [0, 1).
    const double unit =
        static_cast<double>(mixed >> 11) * 0x1.0p-53;
    return 0.5 + 0.5 * unit;
}

} // namespace

// ------------------------------------------------- Durable journal I/O

SweepJournal::~SweepJournal() { close(); }

bool
SweepJournal::open(const std::string &path, bool truncate, std::string *error)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        if (error)
            *error = "cannot open journal '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    return true;
}

bool
SweepJournal::append(const obs::Json &entry, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "journal is not open";
        return false;
    }
    const std::string line = entry.dump() + "\n";
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + written, line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("journal write failed: ") +
                         std::strerror(errno);
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    // The durability contract: the record is on disk before append()
    // returns, so a SIGKILL after this point cannot lose it.
    if (::fsync(fd_) != 0) {
        if (error)
            *error = std::string("journal fsync failed: ") +
                     std::strerror(errno);
        return false;
    }
    ++appends_;
    return true;
}

void
SweepJournal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ------------------------------------------- Result <-> JSON records

obs::Json
sweepResultToJson(std::size_t index, const std::string &key,
                  const SweepResult &result)
{
    obs::Json entry = obs::Json::object();
    entry["job"] = static_cast<std::uint64_t>(index);
    entry["key"] = key;
    entry["ran"] = result.ran;
    entry["failed"] = result.failed;
    entry["attempts"] = static_cast<std::int64_t>(result.attempts);
    entry["fault_seed"] = result.faultSeed;
    entry["seconds"] = result.seconds;
    if (result.ran)
        entry["stats"] = statsJsonFull(result.stats);
    if (!result.error.empty())
        entry["error"] = result.error;
    return entry;
}

std::string
sweepResultFromJson(const obs::Json &entry, std::uint64_t *index,
                    std::string *key, SweepResult *result)
{
    if (!entry.isObject())
        return "record is not an object";
    const obs::Json *job_field = entry.find("job");
    const obs::Json *key_field = entry.find("key");
    if (job_field == nullptr || !job_field->isNumber() ||
        key_field == nullptr || !key_field->isString())
        return "record lacks job/key";
    *index = job_field->asUint();
    *key = key_field->asString();

    SweepResult parsed;
    const obs::Json *ran = entry.find("ran");
    const obs::Json *failed = entry.find("failed");
    parsed.ran = ran != nullptr && ran->isBool() && ran->asBool();
    parsed.failed = failed != nullptr && failed->isBool() && failed->asBool();
    if (const obs::Json *attempts = entry.find("attempts");
        attempts != nullptr && attempts->isNumber())
        parsed.attempts = static_cast<int>(attempts->asUint());
    if (const obs::Json *seed = entry.find("fault_seed");
        seed != nullptr && seed->isNumber())
        parsed.faultSeed = seed->asUint();
    if (const obs::Json *seconds = entry.find("seconds");
        seconds != nullptr && seconds->isNumber())
        parsed.seconds = seconds->asDouble();
    if (const obs::Json *err = entry.find("error");
        err != nullptr && err->isString())
        parsed.error = err->asString();
    if (parsed.ran) {
        const obs::Json *stats = entry.find("stats");
        if (stats == nullptr)
            return "record has ran=true but no stats";
        try {
            parsed.stats = statsFromJson(*stats);
        } catch (const std::exception &e) {
            return std::string("record stats malformed: ") + e.what();
        }
    }
    *result = std::move(parsed);
    return "";
}

std::vector<char>
replaySweepJournal(const std::string &path,
                   const std::vector<SweepJob> &jobs,
                   std::vector<SweepResult> &results)
{
    std::vector<char> done(jobs.size(), 0);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        obs::Json data = obs::Json::object();
        data["path"] = obs::Json(path);
        obs::logEvent(obs::LogLevel::Warn, "sweep", "resume_no_journal",
                      std::move(data));
        return done;
    }

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::string error;
        std::optional<obs::Json> parsed = obs::Json::parse(line, &error);
        if (!parsed || !parsed->isObject()) {
            // A crash mid-append leaves a truncated last line; tolerate
            // it (and anything after it) by re-running those jobs.
            obs::Json data = obs::Json::object();
            data["line"] = obs::Json(
                static_cast<unsigned long long>(line_no));
            data["error"] =
                obs::Json(error.empty() ? "not an object" : error);
            obs::logEvent(obs::LogLevel::Warn, "sweep",
                          "resume_truncated", std::move(data));
            break;
        }
        std::uint64_t index = 0;
        std::string key;
        SweepResult result;
        const std::string reason =
            sweepResultFromJson(*parsed, &index, &key, &result);
        if (!reason.empty()) {
            obs::Json data = obs::Json::object();
            data["line"] = obs::Json(
                static_cast<unsigned long long>(line_no));
            data["error"] = obs::Json(reason);
            obs::logEvent(obs::LogLevel::Warn, "sweep",
                          "resume_truncated", std::move(data));
            break;
        }
        if (index >= jobs.size() || key != SweepRunner::jobKey(jobs[index])) {
            obs::Json data = obs::Json::object();
            data["line"] = obs::Json(
                static_cast<unsigned long long>(line_no));
            data["job"] = obs::Json(static_cast<unsigned long long>(index));
            data["key"] = obs::Json(key);
            obs::logEvent(obs::LogLevel::Warn, "sweep",
                          "resume_mismatch", std::move(data));
            continue;
        }
        result.fromJournal = true;
        results[index] = std::move(result);
        done[index] = 1;
    }
    return done;
}

SweepOptions
SweepOptions::fromEnvironment()
{
    SweepOptions options;
    options.fault = fault::FaultConfig::fromEnvironment();
    options.watchdogCycles = fault::watchdogCyclesFromEnvironment();
    if (const char *s = std::getenv("DRS_JOB_TIMEOUT")) {
        char *end = nullptr;
        const double v = std::strtod(s, &end);
        if (end != s && *end == '\0' && v > 0)
            options.jobTimeoutSeconds = v;
        else
            std::fprintf(
                stderr,
                "[sweep] warning: ignoring malformed DRS_JOB_TIMEOUT='%s'\n",
                s);
    }
    if (const char *s = std::getenv("DRS_RETRY_DEADLINE")) {
        char *end = nullptr;
        const double v = std::strtod(s, &end);
        if (end != s && *end == '\0' && v > 0)
            options.retryDeadlineSeconds = v;
        else
            std::fprintf(
                stderr,
                "[sweep] warning: ignoring malformed DRS_RETRY_DEADLINE='%s'\n",
                s);
    }
    if (const char *s = std::getenv("DRS_CRASH_AFTER")) {
        char *end = nullptr;
        const long v = std::strtol(s, &end, 10);
        if (end != s && *end == '\0' && v > 0)
            options.crashAfter = static_cast<int>(v);
        else
            std::fprintf(
                stderr,
                "[sweep] warning: ignoring malformed DRS_CRASH_AFTER='%s'\n",
                s);
    }
    return options;
}

const PreparedScene &
PreparedSceneCache::get(scene::SceneId id, const ExperimentScale &scale)
{
    std::shared_future<std::shared_ptr<const PreparedScene>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const PreparedScene>>>
        promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const Entry &entry : entries_) {
            if (entry.id == id && entry.scale == scale) {
                ++hits_;
                future = entry.future;
                break;
            }
        }
        if (!future.valid()) {
            ++misses_;
            promise = std::make_shared<
                std::promise<std::shared_ptr<const PreparedScene>>>();
            future = promise->get_future().share();
            entries_.push_back({id, scale, future});
        }
    }
    if (promise) {
        // Build outside the lock so other scenes can be looked up (and
        // built) concurrently; later requesters block on the future.
        try {
            promise->set_value(std::make_shared<const PreparedScene>(
                prepareScene(id, scale)));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    }
    return *future.get();
}

std::size_t
PreparedSceneCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
PreparedSceneCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

SweepRunner::SweepRunner(const ExperimentScale &scale, int jobs,
                         const SweepOptions &options)
    : scale_(scale),
      jobs_count_(jobs < 1 ? 1 : jobs),
      options_(options)
{
    if (options_.maxAttempts < 1)
        options_.maxAttempts = 1;
}

std::string
SweepRunner::jobKey(const SweepJob &job)
{
    return scene::sceneName(job.scene) + "/" + archName(job.arch) + "/b" +
           std::to_string(job.bounce) + "/r" + std::to_string(job.maxRays);
}

std::size_t
SweepRunner::add(const SweepJob &job)
{
    pending_.push_back(job);
    return pending_.size() - 1;
}

std::vector<SweepJob>
SweepRunner::takePending()
{
    std::vector<SweepJob> jobs;
    jobs.swap(pending_);
    return jobs;
}

std::vector<std::size_t>
SweepRunner::addCapture(scene::SceneId scene, Arch arch,
                        const RunConfig &config, int max_bounces,
                        std::size_t max_rays)
{
    const int bounces = max_bounces > 0 ? max_bounces : scale_.maxDepth;
    std::vector<std::size_t> indices;
    indices.reserve(static_cast<std::size_t>(bounces));
    for (int bounce = 1; bounce <= bounces; ++bounce) {
        SweepJob job;
        job.scene = scene;
        job.arch = arch;
        job.config = config;
        job.bounce = bounce;
        job.maxRays = max_rays;
        indices.push_back(add(job));
    }
    return indices;
}

SweepResult
SweepRunner::runOne(const SweepJob &job)
{
    const PreparedScene &prepared = cache_.get(job.scene, scale_);

    SweepResult result;
    const render::BounceRays *found = nullptr;
    for (const auto &bounce : prepared.trace.bounces) {
        if (bounce.bounce == job.bounce) {
            found = &bounce;
            break;
        }
    }
    if (!found || found->rays.empty())
        return result;

    std::span<const geom::Ray> rays(found->rays);
    if (job.maxRays && rays.size() > job.maxRays)
        rays = rays.first(job.maxRays);

    // The sweep owns the profiler side channel: jobs run concurrently,
    // so a caller-provided observationsOut would be clobbered. Tracing
    // also deposits observations (the ring recorded/dropped counters
    // surface in bench reports).
    RunConfig config = job.config;
    std::shared_ptr<RunObservations> observations;
    if (config.sample.enabled || config.trace.enabled) {
        observations = std::make_shared<RunObservations>();
        config.observationsOut = observations.get();
    } else {
        config.observationsOut = nullptr;
    }

    const auto start = std::chrono::steady_clock::now();
    result.stats = runBatch(job.arch, *prepared.tracer, rays, config);
    result.seconds = secondsSince(start);
    result.ran = true;
    result.observations = std::move(observations);
    return result;
}

SweepResult
SweepRunner::runWithRetry(const SweepJob &job, std::size_t index)
{
    SweepResult result;
    // The retry deadline spans the whole loop: every attempt and every
    // backoff sleep draws from the same wall-clock budget.
    const bool has_retry_deadline = options_.retryDeadlineSeconds > 0;
    const Clock::time_point retry_deadline =
        has_retry_deadline
            ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     options_.retryDeadlineSeconds))
            : Clock::time_point::max();

    for (int attempt = 1; attempt <= options_.maxAttempts; ++attempt) {
        SweepJob tried = job;
        std::uint64_t attempt_seed = 0;
        if (options_.fault.enabled()) {
            tried.config.fault = options_.fault;
            // Pure function of (sweep seed, job index, attempt): the
            // fault stream does not depend on --jobs or scheduling.
            attempt_seed = fault::mixSeed(options_.fault.seed,
                                          static_cast<std::uint64_t>(index),
                                          static_cast<std::uint64_t>(attempt));
            tried.config.fault.seed = attempt_seed;
            // Injected faults can livelock a simulator; never let a hung
            // job stall the whole sweep.
            if (tried.config.watchdogCycles == 0)
                tried.config.watchdogCycles = fault::kDefaultWatchdogCycles;
        }
        if (options_.watchdogCycles != 0)
            tried.config.watchdogCycles = options_.watchdogCycles;

        exec::CancelToken token;
        token.setParent(tried.config.cancel != nullptr ? tried.config.cancel
                                                       : options_.cancel);
        // The attempt's deadline is the tighter of the per-attempt
        // timeout and the whole-job retry deadline.
        Clock::time_point deadline = retry_deadline;
        if (options_.jobTimeoutSeconds > 0)
            deadline = std::min(
                deadline,
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       options_.jobTimeoutSeconds)));
        if (deadline != Clock::time_point::max())
            token.setDeadline(deadline);
        if (token.hasDeadline() || token.parent() != nullptr)
            tried.config.cancel = &token;

        try {
            result = runOne(tried);
            result.attempts = attempt;
            result.faultSeed = attempt_seed;
            return result;
        } catch (const exec::Cancelled &e) {
            // A sweep-wide cancel (signal fan-out): report the job
            // failed and stop immediately — retrying a cancelled job
            // would fight the shutdown.
            result = SweepResult{};
            result.failed = true;
            result.error = e.what();
            result.attempts = attempt;
            result.faultSeed = attempt_seed;
            return result;
        } catch (const std::exception &e) {
            result = SweepResult{};
            result.failed = true;
            result.error = e.what();
            result.attempts = attempt;
            result.faultSeed = attempt_seed;
            if (const auto *timeout =
                    dynamic_cast<const fault::WatchdogTimeout *>(&e)) {
                // The diagnostic dump rides in the event payload: one
                // structured record instead of a multi-line stderr
                // interleave (the stderr sink renders it truncated).
                obs::Json data = obs::Json::object();
                data["job"] =
                    obs::Json(static_cast<unsigned long long>(index));
                data["key"] = obs::Json(jobKey(job));
                data["cycle"] = obs::Json(static_cast<unsigned long long>(
                    timeout->cycle()));
                data["budget_cycles"] =
                    obs::Json(static_cast<unsigned long long>(
                        timeout->budgetCycles()));
                data["dump"] = obs::Json(timeout->dump());
                obs::logEvent(obs::LogLevel::Error, "watchdog", "timeout",
                              std::move(data));
            }
            {
                obs::Json data = obs::Json::object();
                data["job"] =
                    obs::Json(static_cast<unsigned long long>(index));
                data["key"] = obs::Json(jobKey(job));
                data["attempt"] = obs::Json(attempt);
                data["max_attempts"] = obs::Json(options_.maxAttempts);
                data["error"] = obs::Json(std::string(e.what()));
                obs::logEvent(obs::LogLevel::Warn, "sweep",
                              "attempt_failed", std::move(data));
            }
            if (options_.cancel != nullptr && options_.cancel->cancelled())
                return result;
            if (attempt < options_.maxAttempts &&
                options_.backoffSeconds > 0) {
                const double scale =
                    static_cast<double>(std::uint64_t{1} << (attempt - 1));
                // Deterministic jitter desynchronizes concurrent
                // retries; same sweep, same waits (see SweepOptions).
                const double delay = options_.backoffSeconds * scale *
                                     backoffJitter(options_.fault.seed,
                                                   index, attempt);
                const auto wake =
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(delay));
                if (wake >= retry_deadline) {
                    // Sleeping would overrun the retry budget:
                    // quarantine now instead of wasting the wall-clock.
                    result.error += " (retry deadline of " +
                                    std::to_string(
                                        options_.retryDeadlineSeconds) +
                                    " s exhausted)";
                    return result;
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(delay));
            }
        }
    }
    // Retry budget exhausted: quarantine. The result stays in the
    // vector (failed = true) so reports list it instead of dropping it.
    return result;
}

void
SweepRunner::journalAppend(std::size_t index, const SweepJob &job,
                           const SweepResult &result)
{
    if (options_.journalPath.empty())
        return;

    const obs::Json entry = sweepResultToJson(index, jobKey(job), result);

    std::lock_guard<std::mutex> lock(journalMutex_);
    std::string error;
    if (!journal_.isOpen() || !journal_.append(entry, &error)) {
        obs::Json data = obs::Json::object();
        data["path"] = obs::Json(options_.journalPath);
        data["error"] = obs::Json(error);
        obs::logEvent(obs::LogLevel::Error, "sweep",
                      "journal_append_failed", std::move(data));
        return;
    }
    if (options_.crashAfter > 0 && journal_.appends() >= options_.crashAfter) {
        // Crash injection for the resume tests: die without unwinding,
        // exactly like a kill -9 after the append hit the disk.
        obs::Json data = obs::Json::object();
        data["appends"] = obs::Json(journal_.appends());
        obs::logEvent(obs::LogLevel::Warn, "sweep", "crash_injection",
                      std::move(data));
        std::fprintf(stderr, "[sweep] DRS_CRASH_AFTER: exiting after %d "
                             "journal append%s\n",
                     journal_.appends(), journal_.appends() == 1 ? "" : "s");
        std::fflush(stderr);
        std::_Exit(70);
    }
}

std::vector<SweepResult>
SweepRunner::run()
{
    std::vector<SweepJob> jobs;
    jobs.swap(pending_);
    std::vector<SweepResult> results(jobs.size());

    std::vector<char> done(jobs.size(), 0);
    if (!options_.journalPath.empty()) {
        if (options_.resume)
            done = replaySweepJournal(options_.journalPath, jobs, results);
        // Fresh run: truncate any stale journal so a later --resume
        // cannot merge entries from a different invocation. Resumed
        // runs append after the replayed records.
        std::string error;
        if (!journal_.open(options_.journalPath, !options_.resume, &error)) {
            obs::Json data = obs::Json::object();
            data["error"] = obs::Json(error);
            obs::logEvent(obs::LogLevel::Warn, "sweep",
                          "journal_open_failed", std::move(data));
        }
    }

    std::vector<std::size_t> todo;
    todo.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!done[i])
            todo.push_back(i);

    const auto start = std::chrono::steady_clock::now();
    // Progress accounting: replayed jobs count as done up front, and
    // each completion bumps the shared counter before the callback.
    std::atomic<std::size_t> completed{jobs.size() - todo.size()};
    if (options_.progress && !jobs.empty())
        options_.progress(completed.load(), jobs.size());
    auto execute = [this, &jobs, &results, &completed](std::size_t i) {
        if (options_.cancel != nullptr && options_.cancel->cancelled()) {
            // Cancelled sweep: fail the job instead of starting it so
            // the result vector stays complete (reported, not dropped).
            results[i].failed = true;
            results[i].error = "sweep cancelled";
            return;
        }
        results[i] = runWithRetry(jobs[i], i);
        journalAppend(i, jobs[i], results[i]);
        if (options_.progress)
            options_.progress(completed.fetch_add(1) + 1, jobs.size());
    };
    if (jobs_count_ <= 1 || todo.size() <= 1) {
        for (const std::size_t i : todo)
            execute(i);
    } else {
        exec::ThreadPool pool(jobs_count_);
        exec::TaskGroup group(pool);
        for (const std::size_t i : todo)
            group.run([&execute, i] { execute(i); });
        group.wait();
    }

    journal_.close();

    std::size_t replayed = 0;
    std::size_t quarantined = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        replayed += results[i].fromJournal ? 1u : 0u;
        quarantined += results[i].failed ? 1u : 0u;
    }

    std::printf("[sweep] %zu sims on %d worker%s in %.2f s "
                "(scene cache: %zu hit%s, %zu miss%s)",
                todo.size(), jobs_count_, jobs_count_ == 1 ? "" : "s",
                secondsSince(start), cache_.hits(),
                cache_.hits() == 1 ? "" : "s", cache_.misses(),
                cache_.misses() == 1 ? "" : "es");
    if (replayed > 0)
        std::printf(", %zu replayed from journal", replayed);
    if (quarantined > 0)
        std::printf(", %zu QUARANTINED", quarantined);
    std::printf("\n");
    std::fflush(stdout);
    return results;
}

CaptureResult
collectCapture(const std::vector<SweepResult> &results,
               const std::vector<std::size_t> &indices)
{
    CaptureResult capture;
    std::uint64_t cycles = 0;
    for (const std::size_t index : indices) {
        const SweepResult &result = results.at(index);
        if (!result.ran)
            continue;
        capture.overall.merge(result.stats);
        cycles += result.stats.cycles;
        capture.perBounce.push_back(result.stats);
    }
    // As in runCapture: bounces run back-to-back, so overall cycles
    // accumulate instead of taking the max.
    capture.overall.cycles = cycles;
    return capture;
}

} // namespace drs::harness
