#include "harness/sweep.h"

#include <chrono>
#include <cstdio>
#include <span>

#include "exec/thread_pool.h"

namespace drs::harness {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

const PreparedScene &
PreparedSceneCache::get(scene::SceneId id, const ExperimentScale &scale)
{
    std::shared_future<std::shared_ptr<const PreparedScene>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const PreparedScene>>>
        promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const Entry &entry : entries_) {
            if (entry.id == id && entry.scale == scale) {
                ++hits_;
                future = entry.future;
                break;
            }
        }
        if (!future.valid()) {
            ++misses_;
            promise = std::make_shared<
                std::promise<std::shared_ptr<const PreparedScene>>>();
            future = promise->get_future().share();
            entries_.push_back({id, scale, future});
        }
    }
    if (promise) {
        // Build outside the lock so other scenes can be looked up (and
        // built) concurrently; later requesters block on the future.
        try {
            promise->set_value(std::make_shared<const PreparedScene>(
                prepareScene(id, scale)));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    }
    return *future.get();
}

std::size_t
PreparedSceneCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
PreparedSceneCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

SweepRunner::SweepRunner(const ExperimentScale &scale, int jobs)
    : scale_(scale),
      jobs_count_(jobs < 1 ? 1 : jobs)
{
}

std::size_t
SweepRunner::add(const SweepJob &job)
{
    pending_.push_back(job);
    return pending_.size() - 1;
}

std::vector<std::size_t>
SweepRunner::addCapture(scene::SceneId scene, Arch arch,
                        const RunConfig &config, int max_bounces,
                        std::size_t max_rays)
{
    const int bounces = max_bounces > 0 ? max_bounces : scale_.maxDepth;
    std::vector<std::size_t> indices;
    indices.reserve(static_cast<std::size_t>(bounces));
    for (int bounce = 1; bounce <= bounces; ++bounce) {
        SweepJob job;
        job.scene = scene;
        job.arch = arch;
        job.config = config;
        job.bounce = bounce;
        job.maxRays = max_rays;
        indices.push_back(add(job));
    }
    return indices;
}

SweepResult
SweepRunner::runOne(const SweepJob &job)
{
    const PreparedScene &prepared = cache_.get(job.scene, scale_);

    SweepResult result;
    const render::BounceRays *found = nullptr;
    for (const auto &bounce : prepared.trace.bounces) {
        if (bounce.bounce == job.bounce) {
            found = &bounce;
            break;
        }
    }
    if (!found || found->rays.empty())
        return result;

    std::span<const geom::Ray> rays(found->rays);
    if (job.maxRays && rays.size() > job.maxRays)
        rays = rays.first(job.maxRays);

    const auto start = std::chrono::steady_clock::now();
    result.stats = runBatch(job.arch, *prepared.tracer, rays, job.config);
    result.seconds = secondsSince(start);
    result.ran = true;
    return result;
}

std::vector<SweepResult>
SweepRunner::run()
{
    std::vector<SweepJob> jobs;
    jobs.swap(pending_);
    std::vector<SweepResult> results(jobs.size());

    const auto start = std::chrono::steady_clock::now();
    if (jobs_count_ <= 1 || jobs.size() <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = runOne(jobs[i]);
    } else {
        exec::ThreadPool pool(jobs_count_);
        exec::TaskGroup group(pool);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            group.run([this, &jobs, &results, i] {
                results[i] = runOne(jobs[i]);
            });
        group.wait();
    }

    std::printf("[sweep] %zu sims on %d worker%s in %.2f s "
                "(scene cache: %zu hit%s, %zu miss%s)\n",
                jobs.size(), jobs_count_, jobs_count_ == 1 ? "" : "s",
                secondsSince(start), cache_.hits(),
                cache_.hits() == 1 ? "" : "s", cache_.misses(),
                cache_.misses() == 1 ? "" : "es");
    std::fflush(stdout);
    return results;
}

CaptureResult
collectCapture(const std::vector<SweepResult> &results,
               const std::vector<std::size_t> &indices)
{
    CaptureResult capture;
    std::uint64_t cycles = 0;
    for (const std::size_t index : indices) {
        const SweepResult &result = results.at(index);
        if (!result.ran)
            continue;
        capture.overall.merge(result.stats);
        cycles += result.stats.cycles;
        capture.perBounce.push_back(result.stats);
    }
    // As in runCapture: bounces run back-to-back, so overall cycles
    // accumulate instead of taking the max.
    capture.overall.cycles = cycles;
    return capture;
}

} // namespace drs::harness
