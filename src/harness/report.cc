#include "harness/report.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>
#include <string>

#include "stats/histogram.h"

namespace drs::harness {

obs::Json
statsJson(const simt::SimStats &stats, double clock_ghz)
{
    obs::Json row = obs::Json::object();
    row["cycles"] = stats.cycles;
    row["rays_traced"] = stats.raysTraced;
    row["simd_efficiency"] = stats.histogram.simdEfficiency();
    row["mrays_per_s"] = stats.mraysPerSecond(clock_ghz);

    obs::Json &buckets = row["bucket_fractions"];
    for (int b = 0; b < stats::ActiveThreadHistogram::kNumBuckets; ++b)
        buckets[stats::ActiveThreadHistogram::bucketLabel(b)] =
            stats.histogram.bucketFraction(b);
    row["spawn_fraction"] = stats.histogram.spawnFraction();

    row["rdctrl_issued"] = stats.rdctrlIssued;
    row["rdctrl_stall_rate"] = stats.rdctrlStallRate();
    row["rdctrl_stall_cycles"] = stats.rdctrlStallCycles;

    row["rf_accesses_normal"] = stats.rfAccessesNormal;
    row["rf_accesses_shuffle"] = stats.rfAccessesShuffle;
    row["shuffle_rf_fraction"] = stats.shuffleRfFraction();

    row["ray_swaps"] = stats.raySwapsCompleted;
    row["mean_swap_cycles"] = stats.meanSwapCycles();
    row["spawn_conflict_cycles"] = stats.spawnBankConflictCycles;

    row["l1d_hit_rate"] = stats.l1Data.hitRate();
    row["l1t_hit_rate"] = stats.l1Texture.hitRate();
    row["l2_hit_rate"] = stats.l2.hitRate();

    obs::Json &counters = row["counters"];
    counters = obs::Json::object();
    for (const auto &[name, value] : stats.counters.entries())
        counters[name] = value;
    return row;
}

obs::Json
statsJsonFull(const simt::SimStats &stats)
{
    using Hist = stats::ActiveThreadHistogram;
    obs::Json row = obs::Json::object();
    row["cycles"] = stats.cycles;
    row["rays_traced"] = stats.raysTraced;

    obs::Json &hist = row["histogram"];
    hist = obs::Json::object();
    hist["instructions"] = stats.histogram.instructions();
    hist["spawn_instructions"] = stats.histogram.spawnInstructions();
    hist["active_threads"] = stats.histogram.activeThreads();
    obs::Json &buckets = hist["buckets"];
    buckets = obs::Json::array();
    for (int b = 0; b < Hist::kNumBuckets; ++b)
        buckets.push(stats.histogram.bucketCount(b));
    obs::Json &exact = hist["exact"];
    exact = obs::Json::array();
    for (int a = 0; a <= Hist::kWarpSize; ++a)
        exact.push(stats.histogram.exactCount(a));

    row["rdctrl_issued"] = stats.rdctrlIssued;
    row["rdctrl_stalled_issues"] = stats.rdctrlStalledIssues;
    row["rdctrl_stall_cycles"] = stats.rdctrlStallCycles;
    row["rf_accesses_normal"] = stats.rfAccessesNormal;
    row["rf_accesses_shuffle"] = stats.rfAccessesShuffle;
    row["ray_swaps_completed"] = stats.raySwapsCompleted;
    row["ray_swap_cycles"] = stats.raySwapCycles;
    row["spawn_bank_conflict_cycles"] = stats.spawnBankConflictCycles;

    obs::Json &blocks = row["block_issue"];
    blocks = obs::Json::array();
    for (const auto &[instructions, active] : stats.blockIssue) {
        obs::Json pair = obs::Json::array();
        pair.push(instructions);
        pair.push(active);
        blocks.push(std::move(pair));
    }

    auto cache = [](const simt::CacheStats &c) {
        obs::Json j = obs::Json::object();
        j["accesses"] = c.accesses;
        j["misses"] = c.misses;
        return j;
    };
    row["l1d"] = cache(stats.l1Data);
    row["l1t"] = cache(stats.l1Texture);
    row["l2"] = cache(stats.l2);

    obs::Json &counters = row["counters"];
    counters = obs::Json::object();
    for (const auto &[name, value] : stats.counters.entries())
        counters[name] = value;
    return row;
}

namespace {

const obs::Json &
requireField(const obs::Json &json, const char *key)
{
    const obs::Json *field = json.find(key);
    if (field == nullptr)
        throw std::runtime_error(std::string("statsFromJson: missing \"") +
                                 key + "\"");
    return *field;
}

std::uint64_t
requireUint(const obs::Json &json, const char *key)
{
    const obs::Json &field = requireField(json, key);
    if (!field.isNumber())
        throw std::runtime_error(std::string("statsFromJson: \"") + key +
                                 "\" is not a number");
    return field.asUint();
}

simt::CacheStats
cacheFromJson(const obs::Json &json, const char *key)
{
    const obs::Json &field = requireField(json, key);
    simt::CacheStats c;
    c.accesses = requireUint(field, "accesses");
    c.misses = requireUint(field, "misses");
    return c;
}

} // namespace

simt::SimStats
statsFromJson(const obs::Json &json)
{
    using Hist = stats::ActiveThreadHistogram;
    if (!json.isObject())
        throw std::runtime_error("statsFromJson: not an object");

    simt::SimStats stats;
    stats.cycles = requireUint(json, "cycles");
    stats.raysTraced = requireUint(json, "rays_traced");

    const obs::Json &hist = requireField(json, "histogram");
    const obs::Json &buckets = requireField(hist, "buckets");
    const obs::Json &exact = requireField(hist, "exact");
    if (!buckets.isArray() ||
        buckets.size() != static_cast<std::size_t>(Hist::kNumBuckets) ||
        !exact.isArray() ||
        exact.size() != static_cast<std::size_t>(Hist::kWarpSize + 1))
        throw std::runtime_error("statsFromJson: malformed histogram");
    std::array<std::uint64_t, Hist::kNumBuckets> bucket_counts{};
    for (int b = 0; b < Hist::kNumBuckets; ++b)
        bucket_counts[static_cast<std::size_t>(b)] =
            buckets.asArray()[static_cast<std::size_t>(b)].asUint();
    std::array<std::uint64_t, Hist::kWarpSize + 1> exact_counts{};
    for (int a = 0; a <= Hist::kWarpSize; ++a)
        exact_counts[static_cast<std::size_t>(a)] =
            exact.asArray()[static_cast<std::size_t>(a)].asUint();
    stats.histogram.restore(requireUint(hist, "instructions"),
                            requireUint(hist, "spawn_instructions"),
                            requireUint(hist, "active_threads"),
                            bucket_counts, exact_counts);

    stats.rdctrlIssued = requireUint(json, "rdctrl_issued");
    stats.rdctrlStalledIssues = requireUint(json, "rdctrl_stalled_issues");
    stats.rdctrlStallCycles = requireUint(json, "rdctrl_stall_cycles");
    stats.rfAccessesNormal = requireUint(json, "rf_accesses_normal");
    stats.rfAccessesShuffle = requireUint(json, "rf_accesses_shuffle");
    stats.raySwapsCompleted = requireUint(json, "ray_swaps_completed");
    stats.raySwapCycles = requireUint(json, "ray_swap_cycles");
    stats.spawnBankConflictCycles =
        requireUint(json, "spawn_bank_conflict_cycles");

    const obs::Json &blocks = requireField(json, "block_issue");
    if (!blocks.isArray())
        throw std::runtime_error("statsFromJson: malformed block_issue");
    for (const obs::Json &pair : blocks.asArray()) {
        if (!pair.isArray() || pair.size() != 2)
            throw std::runtime_error("statsFromJson: malformed block_issue");
        stats.blockIssue.emplace_back(pair.asArray()[0].asUint(),
                                      pair.asArray()[1].asUint());
    }

    stats.l1Data = cacheFromJson(json, "l1d");
    stats.l1Texture = cacheFromJson(json, "l1t");
    stats.l2 = cacheFromJson(json, "l2");

    const obs::Json &counters = requireField(json, "counters");
    if (!counters.isObject())
        throw std::runtime_error("statsFromJson: malformed counters");
    for (const auto &[name, value] : counters.asObject()) {
        if (!value.isNumber())
            throw std::runtime_error("statsFromJson: malformed counters");
        stats.counters.add(name, value.asUint());
    }
    return stats;
}

void
addObservationsJson(obs::Json &row, const RunObservations &observations,
                    const simt::SimStats &stats, std::size_t top_k)
{
    if (observations.attribution) {
        obs::Json section = observations.attribution->toJson();

        // Hottest blocks by issued instructions: block-issue tallies from
        // the stats joined with the collector's name table.
        std::vector<std::size_t> order(stats.blockIssue.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return stats.blockIssue[a].first >
                                    stats.blockIssue[b].first;
                         });
        if (order.size() > top_k)
            order.resize(top_k);

        const auto &names = observations.attribution->blockNames();
        obs::Json &blocks = section["blocks"];
        blocks = obs::Json::array();
        for (std::size_t index : order) {
            if (stats.blockIssue[index].first == 0)
                break; // sorted: everything after is idle too
            obs::Json &block = blocks.push(obs::Json::object());
            block["name"] = index < names.size()
                                ? names[index]
                                : "block " + std::to_string(index);
            block["issues"] = stats.blockIssue[index].first;
            block["active_threads"] = stats.blockIssue[index].second;
        }
        row["attribution"] = std::move(section);
    }
    if (observations.sampler)
        row["timeline"] = observations.sampler->toJson(observations.simdLanes);
    if (observations.traced) {
        obs::Json trace = obs::Json::object();
        trace["recorded"] = observations.traceRecorded;
        trace["ring_dropped"] = observations.traceDropped;
        row["trace"] = std::move(trace);
    }
}

obs::Json
scaleJson(const ExperimentScale &scale)
{
    obs::Json s = obs::Json::object();
    s["rays_per_bounce"] = scale.raysPerBounce;
    s["scene_scale"] = static_cast<double>(scale.sceneScale);
    s["num_smx"] = scale.numSmx;
    s["width"] = scale.width;
    s["height"] = scale.height;
    s["samples_per_pixel"] = scale.samplesPerPixel;
    s["max_depth"] = scale.maxDepth;
    return s;
}

} // namespace drs::harness
