#include "harness/report.h"

#include "stats/histogram.h"

namespace drs::harness {

obs::Json
statsJson(const simt::SimStats &stats, double clock_ghz)
{
    obs::Json row = obs::Json::object();
    row["cycles"] = stats.cycles;
    row["rays_traced"] = stats.raysTraced;
    row["simd_efficiency"] = stats.histogram.simdEfficiency();
    row["mrays_per_s"] = stats.mraysPerSecond(clock_ghz);

    obs::Json &buckets = row["bucket_fractions"];
    for (int b = 0; b < stats::ActiveThreadHistogram::kNumBuckets; ++b)
        buckets[stats::ActiveThreadHistogram::bucketLabel(b)] =
            stats.histogram.bucketFraction(b);
    row["spawn_fraction"] = stats.histogram.spawnFraction();

    row["rdctrl_issued"] = stats.rdctrlIssued;
    row["rdctrl_stall_rate"] = stats.rdctrlStallRate();
    row["rdctrl_stall_cycles"] = stats.rdctrlStallCycles;

    row["rf_accesses_normal"] = stats.rfAccessesNormal;
    row["rf_accesses_shuffle"] = stats.rfAccessesShuffle;
    row["shuffle_rf_fraction"] = stats.shuffleRfFraction();

    row["ray_swaps"] = stats.raySwapsCompleted;
    row["mean_swap_cycles"] = stats.meanSwapCycles();
    row["spawn_conflict_cycles"] = stats.spawnBankConflictCycles;

    row["l1d_hit_rate"] = stats.l1Data.hitRate();
    row["l1t_hit_rate"] = stats.l1Texture.hitRate();
    row["l2_hit_rate"] = stats.l2.hitRate();

    obs::Json &counters = row["counters"];
    counters = obs::Json::object();
    for (const auto &[name, value] : stats.counters.entries())
        counters[name] = value;
    return row;
}

obs::Json
scaleJson(const ExperimentScale &scale)
{
    obs::Json s = obs::Json::object();
    s["rays_per_bounce"] = scale.raysPerBounce;
    s["scene_scale"] = static_cast<double>(scale.sceneScale);
    s["num_smx"] = scale.numSmx;
    s["width"] = scale.width;
    s["height"] = scale.height;
    s["samples_per_pixel"] = scale.samplesPerPixel;
    s["max_depth"] = scale.maxDepth;
    return s;
}

} // namespace drs::harness
