#pragma once

/**
 * @file
 * The architecture plugin registry.
 *
 * One ArchPlugin bundles everything the rest of the system needs to run,
 * verify and fuzz an architecture:
 *
 *  - the executor factory (run(): kernel IR + control unit/SMX executor
 *    wiring, producing SimStats for one ray batch);
 *  - the reference-interpreter inputs (checkInputs()) so DRS_CHECK's
 *    lockstep cross-check works without knowing the architecture;
 *  - the counter namespace its observability counters live under;
 *  - a configuration randomizer for the fuzzer (randomizeConfig()).
 *
 * Plugins register under a unique name; every consumer — runBatch, the
 * sweep runner, the benches, tests/test_registry.cc's conformance suite,
 * tools/fuzz_sim, the fault injectors and the cycle-attribution profiler
 * (both plumbed through RunConfig) — resolves architectures through the
 * registry, so a registered plugin is picked up everywhere at once. The
 * built-in lineup (aila, drs, dmk, tbc, sort, cutcode) registers on
 * first registry use; external code can add() more at runtime (or via a
 * static ArchRegistrar in a TU the binary references). See DESIGN.md
 * section 10 for the full contract a plugin must satisfy.
 */

#include <memory>
#include <mutex>
#include <vector>

#include "check/check.h"
#include "check/reference.h"
#include "geom/rng.h"
#include "harness/harness.h"

namespace drs::harness {

/**
 * The pure observers runBatch scopes to one batch (cycle trace ring,
 * issue-slot attribution, timeline sampler); any pointer may be null.
 * Plugins forward these into their engine options — observation must
 * never alter SimStats (the pure-observer contract).
 */
struct ArchObservers
{
    obs::TraceCollector *trace = nullptr;
    obs::AttributionCollector *attribution = nullptr;
    obs::SamplerCollector *sampler = nullptr;
};

/** One architecture: executor factory + verification + fuzzing hooks. */
class ArchPlugin
{
  public:
    virtual ~ArchPlugin() = default;

    /** Unique registry name; also the bench "arch" column/JSON field. */
    virtual std::string name() const = 0;

    /** One-line description for survey output and --list style UIs. */
    virtual std::string description() const = 0;

    /**
     * Namespace prefix of this architecture's observability counters
     * ("smx", "drs", "reorder", ...): after any run, SimStats::counters
     * must contain at least one "<prefix>." entry. The conformance suite
     * enforces this, so an architecture can never silently lose its
     * counter wiring.
     */
    virtual std::string counterNamespace() const = 0;

    /**
     * False when the executor is self-contained without warp-level
     * tracing (TBC): runBatch then skips building a trace collector.
     */
    virtual bool supportsWarpTrace() const { return true; }

    /**
     * Trace one ray batch. Implementations build their kernel/controller
     * per SMX, run their engine, and honor the RunConfig contract:
     * hitsOut (per-ray hits at the ray's batch index), perSmxStats,
     * fault/watchdog/cancel plumbing, and the observers. @p checker is
     * non-null under DRS_CHECK and must be threaded into the engine.
     */
    virtual simt::SimStats run(const render::PathTracer &tracer,
                               std::span<const geom::Ray> rays,
                               const RunConfig &config,
                               const ArchObservers &observers,
                               const check::Checker *checker) const = 0;

    /**
     * How the lockstep reference interpreter should re-execute a batch
     * this plugin ran: kernel flavour, traversal semantics, cost model,
     * whether per-block issue stats exist. Must match run() exactly or
     * DRS_CHECK runs will (correctly) fail.
     */
    virtual check::BatchCheckInputs
    checkInputs(const RunConfig &config) const = 0;

    /**
     * Fuzzer hook: randomize this architecture's slice of @p config from
     * @p rng (tools/fuzz_sim). Must stay a pure function of the RNG
     * stream so fuzz cases replay from their seed alone. Default: the
     * architecture has no tunables.
     */
    virtual void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const
    {
        (void)rng;
        (void)config;
    }
};

/**
 * The process-wide architecture registry. Thread-safe; the built-in
 * lineup registers on first access.
 */
class ArchRegistry
{
  public:
    /** The singleton (builtins registered on first call). */
    static ArchRegistry &instance();

    /**
     * Register @p plugin. @return the handle for it.
     * @throws std::invalid_argument on an empty or duplicate name
     */
    Arch add(std::unique_ptr<const ArchPlugin> plugin);

    /** Plugin registered under @p arch, or nullptr. */
    const ArchPlugin *find(const Arch &arch) const;

    /**
     * Plugin registered under @p arch.
     * @throws std::invalid_argument naming the known architectures
     */
    const ArchPlugin &get(const Arch &arch) const;

    /** Handles of every registered architecture, in registration order. */
    std::vector<Arch> archs() const;

    /** Every registered plugin, in registration order. */
    std::vector<const ArchPlugin *> plugins() const;

  private:
    ArchRegistry();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<const ArchPlugin>> plugins_;
};

/**
 * Static self-registration helper: a translation unit that defines
 *
 *     namespace { const ArchRegistrar registrar{makeMyPlugin()}; }
 *
 * contributes its architecture to the registry when the TU is linked
 * into the binary (reference a symbol of the TU from linked code when
 * archiving into a static library, or the linker may drop the object).
 */
class ArchRegistrar
{
  public:
    explicit ArchRegistrar(std::unique_ptr<const ArchPlugin> plugin)
        : arch_(ArchRegistry::instance().add(std::move(plugin)))
    {
    }

    const Arch &arch() const { return arch_; }

  private:
    Arch arch_;
};

} // namespace drs::harness
