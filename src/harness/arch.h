#pragma once

/**
 * @file
 * Architecture handles. An Arch names one entry of the architecture
 * plugin registry (harness/arch_plugin.h); all dispatch — benches, the
 * checker, the fuzzer, the profiler — goes through the registry, so a
 * new architecture that registers a plugin is picked up everywhere an
 * Arch is accepted.
 *
 * Handles are plain value types holding the registry name. Construction
 * never touches the registry (so the paper's four architectures can be
 * inline constants without initialization-order concerns); resolution
 * happens at use, inside runBatch(), and unknown names fail loudly
 * there.
 */

#include <string>
#include <string_view>

namespace drs::harness {

/** Names one registered architecture (see ArchRegistry). */
class Arch
{
  public:
    /** An empty (invalid) handle; runBatch rejects it. */
    Arch() = default;

    /** Handle for registry name @p name (validated at use, not here). */
    explicit Arch(std::string_view name) : name_(name) {}

    /** The registry name ("aila", "drs", "sort", ...). */
    const std::string &name() const { return name_; }

    /** True when the handle names something (not necessarily registered). */
    bool valid() const { return !name_.empty(); }

    bool operator==(const Arch &) const = default;

    // The paper's architectures, as named handles. Kept as constants so
    // figure/table benches that reproduce the paper's fixed lineups stay
    // first-class; survey-style consumers should enumerate
    // ArchRegistry::archs() instead.
    static const Arch Aila; ///< software while-while kernel (baseline)
    static const Arch Drs;  ///< while-if kernel + DRS hardware
    static const Arch Dmk;  ///< while-if kernel + dynamic micro-kernels
    static const Arch Tbc;  ///< while-while kernel + block compaction

  private:
    std::string name_;
};

inline const Arch Arch::Aila{"aila"};
inline const Arch Arch::Drs{"drs"};
inline const Arch Arch::Dmk{"dmk"};
inline const Arch Arch::Tbc{"tbc"};

/** The handle's registry name (kept for the pre-registry call sites). */
inline std::string
archName(const Arch &arch)
{
    return arch.name();
}

} // namespace drs::harness
