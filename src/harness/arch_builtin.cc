/**
 * @file
 * The paper's four architectures as registry plugins: the Aila software
 * baseline, DRS, and the two hardware baselines (DMK, TBC). The run()
 * bodies are the former harness.cc run* functions, unchanged; what the
 * registry adds is that the checker, fuzzer, profiler and every bench
 * reach them through the common ArchPlugin surface.
 */

#include "harness/arch_builtin.h"

#include "harness/arch_detail.h"

namespace drs::harness {

namespace {

class AilaArch : public ArchPlugin
{
  public:
    std::string name() const override { return "aila"; }
    std::string description() const override
    {
        return "software while-while kernel (Aila & Laine baseline)";
    }
    std::string counterNamespace() const override { return "smx"; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        simt::GpuRunOptions options = detail::gpuRunOptions(config, observers);
        options.check = checker;
        if (config.hitsOut != nullptr || checker != nullptr)
            options.onSmxRetire = [&config, checker](int,
                                                     simt::Kernel &kernel) {
                auto &workspace =
                    static_cast<kernels::AilaKernel &>(kernel).travWorkspace();
                if (checker != nullptr)
                    check::verifyWorkspace(workspace, /*strict=*/true);
                if (config.hitsOut != nullptr)
                    detail::harvestHits(workspace, *config.hitsOut);
            };
        return simt::runGpu(
            config.gpu,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(rays.size(), config.gpu.numSmx, smx,
                                    config.gpu.simdLanes);
                simt::SmxSetup setup;
                setup.kernel = std::make_unique<kernels::AilaKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    rays.subspan(first, count), first, config.aila);
                setup.numWarps = config.aila.numWarps;
                return setup;
            },
            options);
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileWhile;
        inputs.reference = config.aila;
        inputs.simCost = config.aila.cost;
        return inputs;
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        static constexpr int kWarpChoices[] = {4, 8, 16};
        config.aila.numWarps = kWarpChoices[rng.nextUInt(3)];
        config.aila.speculativeTraversal = rng.nextUInt(2) == 0;
        config.aila.anyHit = rng.nextUInt(4) == 0;
    }
};

class DrsArch : public ArchPlugin
{
  public:
    std::string name() const override { return "drs"; }
    std::string description() const override
    {
        return "while-if kernel + dynamic ray shuffling hardware (the paper)";
    }
    std::string counterNamespace() const override { return "drs"; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        simt::GpuRunOptions options = detail::gpuRunOptions(config, observers);
        options.check = checker;
        if (config.hitsOut != nullptr || checker != nullptr)
            options.onSmxRetire = [&config, checker](int,
                                                     simt::Kernel &kernel) {
                auto &workspace =
                    static_cast<kernels::DrsKernel &>(kernel).travWorkspace();
                if (checker != nullptr)
                    check::verifyWorkspace(workspace, /*strict=*/true);
                if (config.hitsOut != nullptr)
                    detail::harvestHits(workspace, *config.hitsOut);
            };
        return simt::runGpu(
            config.gpu,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(rays.size(), config.gpu.numSmx, smx,
                                    config.gpu.simdLanes);
                kernels::DrsKernelConfig kernel_config;
                kernel_config.numWarps = config.drs.spawnableWarps();
                kernel_config.backupRows = config.drs.backupRows;
                auto kernel = std::make_unique<kernels::DrsKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    rays.subspan(first, count), first, kernel_config);
                simt::SmxSetup setup;
                setup.numWarps = kernel_config.numWarps;
                setup.controller = std::make_unique<core::DrsControl>(
                    config.drs, kernel->workspace(),
                    kernel_config.numWarps);
                setup.kernel = std::move(kernel);
                return setup;
            },
            options);
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        (void)config;
        // The DRS kernel is built with a default-config traversal (no
        // speculation, closest-hit, default cost model).
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileIf;
        inputs.reference = kernels::AilaConfig{};
        inputs.simCost = kernels::DrsKernelConfig{}.cost;
        return inputs;
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        config.drs.backupRows = static_cast<int>(rng.nextUInt(3));
        config.drs.swapBuffers = 6 + 3 * static_cast<int>(rng.nextUInt(2));
        config.drs.dispatchMinorityTolerance =
            static_cast<int>(rng.nextUInt(8));
        config.drs.idealized = rng.nextUInt(4) == 0;
        // Shrink the register file so runs stay small (~13 warps).
        config.drs.registersPerSmx = 16384;
    }
};

class DmkArch : public ArchPlugin
{
  public:
    std::string name() const override { return "dmk"; }
    std::string description() const override
    {
        return "while-if kernel + dynamic micro-kernel spawning baseline";
    }
    std::string counterNamespace() const override { return "dmk"; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        simt::GpuRunOptions options = detail::gpuRunOptions(config, observers);
        options.check = checker;
        if (config.hitsOut != nullptr || checker != nullptr)
            options.onSmxRetire = [&config, checker](int,
                                                     simt::Kernel &kernel) {
                auto &workspace =
                    static_cast<kernels::DrsKernel &>(kernel).travWorkspace();
                if (checker != nullptr)
                    check::verifyWorkspace(workspace, /*strict=*/true);
                if (config.hitsOut != nullptr)
                    detail::harvestHits(workspace, *config.hitsOut);
            };
        return simt::runGpu(
            config.gpu,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(rays.size(), config.gpu.numSmx, smx,
                                    config.gpu.simdLanes);
                kernels::DrsKernelConfig kernel_config;
                kernel_config.numWarps = config.dmk.numWarps;
                kernel_config.backupRows = 0; // DMK regroups via spawn memory
                auto kernel = std::make_unique<kernels::DrsKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    rays.subspan(first, count), first, kernel_config);
                simt::SmxSetup setup;
                setup.numWarps = kernel_config.numWarps;
                setup.controller = std::make_unique<baselines::DmkControl>(
                    config.dmk, kernel->travWorkspace());
                setup.kernel = std::move(kernel);
                return setup;
            },
            options);
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        (void)config;
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileIf;
        inputs.reference = kernels::AilaConfig{};
        inputs.simCost = kernels::DrsKernelConfig{}.cost;
        return inputs;
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        static constexpr int kWarpChoices[] = {4, 8, 16};
        config.dmk.numWarps = kWarpChoices[rng.nextUInt(3)];
        config.dmk.spawnBanks = rng.nextUInt(2) == 0 ? 8 : 32;
    }
};

class TbcArch : public ArchPlugin
{
  public:
    std::string name() const override { return "tbc"; }
    std::string description() const override
    {
        return "while-while kernel + thread block compaction baseline";
    }
    std::string counterNamespace() const override { return "tbc"; }
    bool supportsWarpTrace() const override { return false; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        kernels::AilaConfig aila = config.aila;
        aila.numWarps = config.tbc.numWarps;
        baselines::TbcRunOptions options;
        options.maxCycles = config.maxCycles;
        options.smxThreads = config.smxThreads;
        options.perSmxStats = config.perSmxStats;
        options.check = checker;
        options.attribution = observers.attribution;
        options.sampler = observers.sampler;
        options.fault = config.fault;
        options.watchdogCycles = config.watchdogCycles;
        options.cancel = config.cancel;
        if (config.hitsOut != nullptr || checker != nullptr)
            options.onSmxRetire =
                [&config, checker](int, kernels::AilaKernel &kernel) {
                    if (checker != nullptr)
                        check::verifyWorkspace(kernel.travWorkspace(),
                                               /*strict=*/true);
                    if (config.hitsOut != nullptr)
                        detail::harvestHits(kernel.travWorkspace(),
                                            *config.hitsOut);
                };
        return baselines::runTbcGpu(
            config.gpu, config.tbc,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(rays.size(), config.gpu.numSmx, smx,
                                    config.gpu.simdLanes);
                return std::make_unique<kernels::AilaKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    rays.subspan(first, count), first, aila);
            },
            options);
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        // TBC runs the while-while kernel with config.aila's semantics
        // but reports no per-block issue stats: hits only.
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileWhile;
        inputs.hasBlockIssue = false;
        inputs.reference = config.aila;
        inputs.simCost = config.aila.cost;
        return inputs;
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        config.tbc.warpsPerBlock = 2 + static_cast<int>(rng.nextUInt(2));
        config.tbc.numWarps =
            config.tbc.warpsPerBlock * (2 + static_cast<int>(rng.nextUInt(3)));
        config.aila.speculativeTraversal = rng.nextUInt(2) == 0;
        config.aila.anyHit = rng.nextUInt(4) == 0;
    }
};

} // namespace

namespace detail {

std::unique_ptr<const ArchPlugin>
makeAilaArch()
{
    return std::make_unique<AilaArch>();
}

std::unique_ptr<const ArchPlugin>
makeDrsArch()
{
    return std::make_unique<DrsArch>();
}

std::unique_ptr<const ArchPlugin>
makeDmkArch()
{
    return std::make_unique<DmkArch>();
}

std::unique_ptr<const ArchPlugin>
makeTbcArch()
{
    return std::make_unique<TbcArch>();
}

} // namespace detail

} // namespace drs::harness
