#pragma once

/**
 * @file
 * Experiment harness: glues scenes, ray captures and the simulated
 * architectures into the runs the paper's figures and tables report.
 * Used by the bench binaries, the examples and the integration tests.
 *
 * Architectures are resolved through the plugin registry
 * (harness/arch_plugin.h): runBatch accepts any registered Arch handle,
 * so the built-in lineup (aila, drs, dmk, tbc, sort, cutcode, ser,
 * pathpred) and runtime-registered plugins all run through the same
 * entry points.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/dmk_control.h"
#include "baselines/ser_control.h"
#include "baselines/tbc_smx.h"
#include "core/drs_config.h"
#include "core/drs_control.h"
#include "harness/arch.h"
#include "kernels/aila_kernel.h"
#include "kernels/drs_kernel.h"
#include "kernels/pathpred_kernel.h"
#include "obs/attribution.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "render/path_tracer.h"
#include "reorder/reorder.h"
#include "scene/scenes.h"
#include "simt/gpu.h"

namespace drs::harness {

/**
 * Profiler output of one runBatch call (cycle attribution + sampled
 * timeline), harvested when RunConfig::observationsOut is set and
 * sampling is enabled. Side channel by design: SimStats stay
 * bit-identical with profiling on or off (the pure-observer contract),
 * so profiler results must never live inside them.
 */
struct RunObservations
{
    /** Per-SMX issue-slot ledgers (merged view via collector). */
    std::unique_ptr<obs::AttributionCollector> attribution;
    /** Per-SMX windowed timelines. */
    std::unique_ptr<obs::SamplerCollector> sampler;
    /** SIMD width, for instantaneous-efficiency reporting. */
    int simdLanes = 32;
    /** True when the run had tracing enabled (counters below valid). */
    bool traced = false;
    /** Trace events recorded across all SMX rings (incl. overwritten). */
    std::uint64_t traceRecorded = 0;
    /** Trace events lost to ring wrap-around (capacity exceeded). */
    std::uint64_t traceDropped = 0;
};

/** Everything configurable about one experiment run. */
struct RunConfig
{
    simt::GpuConfig gpu{};
    core::DrsConfig drs{};
    baselines::DmkConfig dmk{};
    baselines::TbcConfig tbc{};
    kernels::AilaConfig aila{};
    /** Software-reordering knobs (the "sort"/"cutcode" architectures). */
    reorder::ReorderConfig reorder{};
    /** SER-style shading-boundary reordering (the "ser" architecture). */
    baselines::SerConfig ser{};
    /** Ray-path prediction knobs (the "pathpred" architecture). */
    kernels::PathPredConfig pathpred{};
    std::uint64_t maxCycles = 2'000'000'000ULL;
    /**
     * Worker threads stepping SMXs concurrently inside one simulation
     * (simt::GpuRunOptions::smxThreads). <= 1 = sequential engine. Any
     * value produces bit-identical SimStats (see DESIGN.md, "Parallel
     * execution model").
     */
    int smxThreads = 1;
    /**
     * Cycle-level event tracing (see obs::TraceConfig, usually from the
     * DRS_TRACE environment variable). When enabled, runBatch writes a
     * Chrome trace_event JSON file after the run; concurrent runs
     * overwrite whole files, so trace with --jobs 1. The TBC baseline is
     * a self-contained executor without warp-level tracing and ignores
     * this. Tracing never alters SimStats.
     */
    obs::TraceConfig trace{};
    /**
     * Windowed time-series sampling (see obs::SampleConfig, usually from
     * the DRS_SAMPLE environment variable). Enabling it also enables
     * issue-slot attribution, so timeline frames carry slot breakdowns.
     * Pure observation: SimStats are bit-identical either way.
     */
    obs::SampleConfig sample{};
    /**
     * When set and sampling is enabled, runBatch deposits the profiler
     * collectors (attribution + timeline) here after the run.
     */
    RunObservations *observationsOut = nullptr;
    /**
     * When set, runBatch stores each traced ray's hit record at the
     * ray's global batch index (resizing as needed). Used by the
     * differential tests to compare per-ray results across
     * architectures.
     */
    std::vector<geom::Hit> *hitsOut = nullptr;
    /**
     * Per-SMX stats hook, invoked in SMX-index order after the run with
     * each SMX's own (pre-merge) statistics.
     */
    std::function<void(int smx_index, const simt::SimStats &stats)>
        perSmxStats;
    /**
     * Invariant checking (src/check): cycle-level assertions inside the
     * simulators plus a lockstep functional reference cross-checking
     * every hit and the traversal visit counts after the run. 0 = off,
     * 1 = on, -1 (default) = follow the DRS_CHECK environment variable.
     * Checking never alters SimStats; violations throw
     * check::InvariantViolation (a std::logic_error) out of runBatch.
     */
    int check = -1;
    /**
     * Fault injection (src/fault). Disabled by default (seed == 0): no
     * injector exists and runs are bit-identical to a faultless build.
     * With a seed, deterministic faults (ray bit flips at swap
     * boundaries, cache tag corruption, delayed/dropped DRAM responses)
     * are injected — same seed, same faults, same SimStats, at any
     * smxThreads. Usually populated from DRS_FAULT_SEED via
     * fault::FaultConfig::fromEnvironment().
     */
    fault::FaultConfig fault{};
    /**
     * Forward-progress watchdog budget in cycles (0 = off): when no ray
     * completes and no warp/block exits for this many cycles, the run
     * aborts with fault::WatchdogTimeout carrying a diagnostic dump.
     */
    std::uint64_t watchdogCycles = 0;
    /** Cooperative stop/deadline token polled by the engines (may be null). */
    const exec::CancelToken *cancel = nullptr;
};

/**
 * Trace one ray batch on @p arch.
 *
 * The batch is only viewed, never copied: each SMX's kernel receives a
 * subspan of @p rays (its stripe), so the caller must keep the batch
 * alive for the duration of the call.
 *
 * @param arch registered architecture to simulate (see ArchRegistry)
 * @param tracer path tracer owning scene + BVH
 * @param rays the batch (one bounce of a capture)
 * @param config run configuration
 * @return aggregated GPU statistics
 * @throws std::invalid_argument for an unregistered architecture
 */
simt::SimStats runBatch(const Arch &arch, const render::PathTracer &tracer,
                        std::span<const geom::Ray> rays,
                        const RunConfig &config = {});

/** Per-bounce plus overall results of tracing a full capture. */
struct CaptureResult
{
    std::vector<simt::SimStats> perBounce; ///< index 0 = bounce 1
    simt::SimStats overall;                ///< merged across bounces

    /** Overall Mrays/s: total rays / summed cycles (paper Section 4.4). */
    double overallMrays(double clock_ghz) const;
};

/**
 * Trace every bounce of @p trace on @p arch.
 *
 * @param max_bounces 0 = all captured bounces
 * @param max_rays_per_bounce 0 = no cap (paper uses 2M rays per bounce)
 */
CaptureResult runCapture(Arch arch, const render::PathTracer &tracer,
                         const render::RayTrace &trace,
                         const RunConfig &config = {}, int max_bounces = 0,
                         std::size_t max_rays_per_bounce = 0);

/**
 * Environment-tunable experiment scale so the full paper-sized runs stay
 * reachable: DRS_RAYS (rays per bounce), DRS_SCALE (scene tessellation),
 * DRS_SMX (simulated SMX count), DRS_SPP (samples per pixel),
 * DRS_WIDTH/DRS_HEIGHT (film size).
 */
struct ExperimentScale
{
    std::size_t raysPerBounce = 500'000; ///< paper: 2'000'000
    float sceneScale = 0.25f;            ///< paper: 1.0 (full meshes)
    int numSmx = 15;                     ///< Table 1: 15
    int width = 640;                     ///< paper resolution
    int height = 480;
    int samplesPerPixel = 2;             ///< paper: 64
    int maxDepth = 8;                  ///< paper: 8

    /** Read overrides from the environment. */
    static ExperimentScale fromEnvironment();

    /** Scales are cache keys (PreparedSceneCache). */
    bool operator==(const ExperimentScale &) const = default;
};

/**
 * Build scene + tracer + capture for one benchmark scene. The scene is
 * heap-allocated because the tracer holds a reference to it: the struct
 * stays safely movable.
 */
struct PreparedScene
{
    std::unique_ptr<scene::Scene> scenePtr;
    std::unique_ptr<render::PathTracer> tracer;
    render::RayTrace trace;

    const scene::Scene &scene() const { return *scenePtr; }
};

PreparedScene prepareScene(scene::SceneId id, const ExperimentScale &scale);

} // namespace drs::harness
