/**
 * @file
 * Software ray-reordering architectures for the survey: "sort"
 * (hash-grid origin/direction keys, Garanzha & Loop style) and "cutcode"
 * (BVH hierarchy-cut codes, Xiang et al. style).
 *
 * Both model the software alternative to the paper's hardware shuffling:
 * the batch is permuted up front — rays with equal keys become SIMT
 * neighbours — and then runs on the plain Aila while-while GPU with no
 * ray-management hardware at all. Per-ray traversal is a pure function
 * of the ray, so hits are bitwise identical to the unsorted Aila run
 * (the differential tests pin this); only warp coherence, and with it
 * SIMT efficiency and cycle count, changes. Hits are scattered back
 * through the permutation so callers always see batch order.
 */

#include "harness/arch_builtin.h"

#include "harness/arch_detail.h"
#include "reorder/reorder.h"

namespace drs::harness {

namespace {

class ReorderArchBase : public ArchPlugin
{
  public:
    std::string counterNamespace() const override { return "reorder"; }

    simt::SimStats run(const render::PathTracer &tracer,
                       std::span<const geom::Ray> rays,
                       const RunConfig &config,
                       const ArchObservers &observers,
                       const check::Checker *checker) const override
    {
        const std::vector<std::uint64_t> keys =
            batchKeys(tracer, rays, config.reorder);
        reorder::ReorderStats reorder_stats;
        const std::vector<std::uint32_t> order =
            reorder::sortedOrder(keys, &reorder_stats);

        std::vector<geom::Ray> sorted(rays.size());
        for (std::size_t p = 0; p < order.size(); ++p)
            sorted[p] = rays[order[p]];

        // The inner run stores hits at *sorted* positions; collect them
        // locally and scatter back through the permutation afterwards so
        // the caller's hits land at original batch indices.
        std::vector<geom::Hit> sorted_hits;
        RunConfig inner = config;
        inner.hitsOut = (config.hitsOut != nullptr || checker != nullptr)
                            ? &sorted_hits
                            : nullptr;

        simt::GpuRunOptions options = detail::gpuRunOptions(inner, observers);
        options.check = checker;
        if (inner.hitsOut != nullptr || checker != nullptr)
            options.onSmxRetire = [&inner, checker](int,
                                                    simt::Kernel &kernel) {
                auto &workspace =
                    static_cast<kernels::AilaKernel &>(kernel).travWorkspace();
                if (checker != nullptr)
                    check::verifyWorkspace(workspace, /*strict=*/true);
                if (inner.hitsOut != nullptr)
                    detail::harvestHits(workspace, *inner.hitsOut);
            };
        std::span<const geom::Ray> sorted_span(sorted);
        simt::SimStats stats = simt::runGpu(
            config.gpu,
            [&](int smx) {
                auto [first, count] =
                    simt::rayStripe(sorted_span.size(), config.gpu.numSmx,
                                    smx, config.gpu.simdLanes);
                simt::SmxSetup setup;
                setup.kernel = std::make_unique<kernels::AilaKernel>(
                    tracer.bvh(), tracer.sceneTriangles(),
                    sorted_span.subspan(first, count), first, config.aila);
                setup.numWarps = config.aila.numWarps;
                return setup;
            },
            options);

        if (config.hitsOut != nullptr)
            detail::scatterHits(order, sorted_hits, *config.hitsOut);

        // The reordering pass reports through the shared counter
        // namespace, like the hardware controllers do ("drs.*", ...):
        // deterministic values derived from the permutation alone.
        stats.counters.add("reorder.rays", rays.size());
        stats.counters.add("reorder.distinct_keys",
                           reorder_stats.distinctKeys);
        stats.counters.add("reorder.displacement_sum",
                           reorder_stats.displacementSum);
        return stats;
    }

    check::BatchCheckInputs
    checkInputs(const RunConfig &config) const override
    {
        // Reordering is invisible to the reference interpreter: per-ray
        // hits and per-block visit totals are order-invariant, so the
        // plain Aila inputs verify a reordered run unchanged.
        check::BatchCheckInputs inputs;
        inputs.flavor = check::KernelFlavor::WhileWhile;
        inputs.reference = config.aila;
        inputs.simCost = config.aila.cost;
        return inputs;
    }

  protected:
    /** Sort key of every ray in the batch (pure function of ray+scene). */
    virtual std::vector<std::uint64_t>
    batchKeys(const render::PathTracer &tracer,
              std::span<const geom::Ray> rays,
              const reorder::ReorderConfig &config) const = 0;

    /** Shared part of both reorder fuzz distributions. */
    void randomizeAila(geom::Pcg32 &rng, RunConfig &config) const
    {
        static constexpr int kWarpChoices[] = {4, 8, 16};
        config.aila.numWarps = kWarpChoices[rng.nextUInt(3)];
        config.aila.speculativeTraversal = rng.nextUInt(2) == 0;
        config.aila.anyHit = rng.nextUInt(4) == 0;
    }
};

class SortArch : public ReorderArchBase
{
  public:
    std::string name() const override { return "sort"; }
    std::string description() const override
    {
        return "software ray sorting by hash-grid origin/direction key, "
               "then the Aila while-while kernel";
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        randomizeAila(rng, config);
        config.reorder.originBits = 4 + static_cast<int>(rng.nextUInt(5));
        config.reorder.directionOctant = rng.nextUInt(2) == 0;
    }

  protected:
    std::vector<std::uint64_t>
    batchKeys(const render::PathTracer &tracer,
              std::span<const geom::Ray> rays,
              const reorder::ReorderConfig &config) const override
    {
        const geom::Aabb bounds = tracer.bvh().bounds();
        std::vector<std::uint64_t> keys(rays.size());
        for (std::size_t i = 0; i < rays.size(); ++i)
            keys[i] = reorder::hashGridKey(rays[i], bounds, config);
        return keys;
    }
};

class CutCodeArch : public ReorderArchBase
{
  public:
    std::string name() const override { return "cutcode"; }
    std::string description() const override
    {
        return "software ray reordering by BVH hierarchy-cut code, "
               "then the Aila while-while kernel";
    }

    void randomizeConfig(geom::Pcg32 &rng, RunConfig &config) const override
    {
        randomizeAila(rng, config);
        config.reorder.cutSize = rng.nextUInt(2) == 0 ? 64 : 256;
        config.reorder.directionOctant = rng.nextUInt(2) == 0;
    }

  protected:
    std::vector<std::uint64_t>
    batchKeys(const render::PathTracer &tracer,
              std::span<const geom::Ray> rays,
              const reorder::ReorderConfig &config) const override
    {
        const reorder::BvhCut cut(tracer.bvh(), config.cutSize);
        std::vector<std::uint64_t> keys(rays.size());
        for (std::size_t i = 0; i < rays.size(); ++i)
            keys[i] = reorder::cutCodeKey(rays[i], cut, config);
        return keys;
    }
};

} // namespace

namespace detail {

std::unique_ptr<const ArchPlugin>
makeSortArch()
{
    return std::make_unique<SortArch>();
}

std::unique_ptr<const ArchPlugin>
makeCutCodeArch()
{
    return std::make_unique<CutCodeArch>();
}

} // namespace detail

} // namespace drs::harness
