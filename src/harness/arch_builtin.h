#pragma once

/**
 * @file
 * Maker functions of the built-in architecture plugins. The registry
 * constructor calls these directly (instead of relying on static
 * self-registration) so the plugin translation units can never be
 * dead-stripped out of the static harness library.
 */

#include <memory>

#include "harness/arch_plugin.h"

namespace drs::harness::detail {

// arch_builtin.cc — the paper's lineup.
std::unique_ptr<const ArchPlugin> makeAilaArch();
std::unique_ptr<const ArchPlugin> makeDrsArch();
std::unique_ptr<const ArchPlugin> makeDmkArch();
std::unique_ptr<const ArchPlugin> makeTbcArch();

// arch_reorder.cc — the software ray-reordering survey competitors.
std::unique_ptr<const ArchPlugin> makeSortArch();
std::unique_ptr<const ArchPlugin> makeCutCodeArch();

// arch_survey.cc — SER-style shading reorder + ray-path prediction.
std::unique_ptr<const ArchPlugin> makeSerArch();
std::unique_ptr<const ArchPlugin> makePathPredArch();

} // namespace drs::harness::detail
