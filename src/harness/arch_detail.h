#pragma once

/**
 * @file
 * Shared plumbing of the built-in architecture plugins (arch_builtin.cc,
 * arch_reorder.cc): GpuRunOptions assembly from a RunConfig and per-SMX
 * hit harvesting. Internal to src/harness.
 */

#include <algorithm>
#include <stdexcept>
#include <string>

#include "harness/arch_plugin.h"
#include "kernels/trav_workspace.h"

namespace drs::harness::detail {

/**
 * Scatter hits collected at sorted positions back to original batch
 * indices: out[order[p]] = sorted_hits[p]. A short @p sorted_hits means
 * the inner run dropped rays (a harness bug, not a user error) — fail
 * loudly instead of reading past the end.
 */
inline void
scatterHits(const std::vector<std::uint32_t> &order,
            const std::vector<geom::Hit> &sorted_hits,
            std::vector<geom::Hit> &out)
{
    if (sorted_hits.size() < order.size())
        throw std::logic_error(
            "scatterHits: inner run produced " +
            std::to_string(sorted_hits.size()) + " hits for a " +
            std::to_string(order.size()) +
            "-ray permutation (rays were dropped)");
    if (out.size() < order.size())
        out.resize(order.size());
    for (std::size_t p = 0; p < order.size(); ++p)
        out[order[p]] = sorted_hits[p];
}

/**
 * Copy one SMX's per-stripe hit records into the global hits vector. The
 * retire hooks run serially in SMX-index order, so plain resize+copy is
 * safe.
 */
inline void
harvestHits(const kernels::TravWorkspace &workspace,
            std::vector<geom::Hit> &out)
{
    const auto &results = workspace.results();
    const std::size_t first = workspace.firstRay();
    if (out.size() < first + results.size())
        out.resize(first + results.size());
    std::copy(results.begin(), results.end(),
              out.begin() + static_cast<std::ptrdiff_t>(first));
}

/** Engine options common to every runGpu-based architecture. */
inline simt::GpuRunOptions
gpuRunOptions(const RunConfig &config, const ArchObservers &observers)
{
    simt::GpuRunOptions options;
    options.maxCycles = config.maxCycles;
    options.smxThreads = config.smxThreads;
    options.trace = observers.trace;
    options.attribution = observers.attribution;
    options.sampler = observers.sampler;
    options.perSmxStats = config.perSmxStats;
    options.fault = config.fault;
    options.watchdogCycles = config.watchdogCycles;
    options.cancel = config.cancel;
    return options;
}

} // namespace drs::harness::detail
