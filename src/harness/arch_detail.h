#pragma once

/**
 * @file
 * Shared plumbing of the built-in architecture plugins (arch_builtin.cc,
 * arch_reorder.cc): GpuRunOptions assembly from a RunConfig and per-SMX
 * hit harvesting. Internal to src/harness.
 */

#include <algorithm>

#include "harness/arch_plugin.h"
#include "kernels/trav_workspace.h"

namespace drs::harness::detail {

/**
 * Copy one SMX's per-stripe hit records into the global hits vector. The
 * retire hooks run serially in SMX-index order, so plain resize+copy is
 * safe.
 */
inline void
harvestHits(const kernels::TravWorkspace &workspace,
            std::vector<geom::Hit> &out)
{
    const auto &results = workspace.results();
    const std::size_t first = workspace.firstRay();
    if (out.size() < first + results.size())
        out.resize(first + results.size());
    std::copy(results.begin(), results.end(),
              out.begin() + static_cast<std::ptrdiff_t>(first));
}

/** Engine options common to every runGpu-based architecture. */
inline simt::GpuRunOptions
gpuRunOptions(const RunConfig &config, const ArchObservers &observers)
{
    simt::GpuRunOptions options;
    options.maxCycles = config.maxCycles;
    options.smxThreads = config.smxThreads;
    options.trace = observers.trace;
    options.attribution = observers.attribution;
    options.sampler = observers.sampler;
    options.perSmxStats = config.perSmxStats;
    options.fault = config.fault;
    options.watchdogCycles = config.watchdogCycles;
    options.cancel = config.cancel;
    return options;
}

} // namespace drs::harness::detail
