#pragma once

/**
 * @file
 * Concurrent sweep runner: the bench binaries describe their experiment
 * as a declarative grid of {scene, architecture, config, bounce} jobs and
 * this runner executes them on a work-stealing thread pool, preparing
 * each scene (geometry, BVH, ray capture) exactly once per
 * (SceneId, ExperimentScale) and sharing it read-only across all jobs.
 *
 * Simulations are independent, so sweep-level parallelism never changes
 * any SimStats — results are written by job index and each simulation is
 * bit-identical to a sequential run (see DESIGN.md, "Parallel execution
 * model").
 */

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/harness.h"
#include "obs/json.h"

namespace drs::harness {

/**
 * Build-once, share-everywhere scene store. Thread-safe: concurrent
 * first requests for the same key build the scene exactly once (the
 * first requester builds, the rest block on a shared future).
 */
class PreparedSceneCache
{
  public:
    /**
     * Scene + tracer + capture for @p id at @p scale, building it on the
     * first request. The reference stays valid for the cache's lifetime.
     */
    const PreparedScene &get(scene::SceneId id, const ExperimentScale &scale);

    /** Requests served from an existing (or in-flight) entry. */
    std::size_t hits() const;
    /** Requests that had to build the scene. */
    std::size_t misses() const;

  private:
    struct Entry
    {
        scene::SceneId id;
        ExperimentScale scale;
        std::shared_future<std::shared_ptr<const PreparedScene>> future;
    };

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

/** One cell of a sweep grid: a single simulated ray batch. */
struct SweepJob
{
    scene::SceneId scene = scene::SceneId::Conference;
    Arch arch = Arch::Aila;
    RunConfig config{};
    /** 1-based bounce of the scene's capture to trace. */
    int bounce = 1;
    /** Cap on rays taken from the bounce; 0 = the whole bounce. */
    std::size_t maxRays = 0;
};

/** Outcome of one SweepJob, in add order. */
struct SweepResult
{
    simt::SimStats stats;
    /** False when the capture has no rays for the requested bounce. */
    bool ran = false;
    /** Wall-clock seconds of this simulation (excludes scene prep). */
    double seconds = 0.0;
    /**
     * True when the job exhausted its retry budget and was quarantined.
     * Quarantined jobs are never dropped: they stay in the result vector
     * (ran = false) and bench reports list them in a "quarantined"
     * summary with their last error.
     */
    bool failed = false;
    /** Last failure message (empty when the job succeeded first try). */
    std::string error;
    /** Simulation attempts made (0 when replayed from a journal). */
    int attempts = 0;
    /** Derived per-attempt fault seed of the final attempt (0 = none). */
    std::uint64_t faultSeed = 0;
    /** True when this result was replayed from a --resume journal. */
    bool fromJournal = false;
    /**
     * Profiler output (cycle attribution + sampled timeline), present
     * only when the job's config enabled sampling (RunConfig::sample)
     * and the job actually ran. Null for journal replays: the journal
     * stores lossless SimStats, not profiler sections. Shared because
     * results are copied around by value.
     */
    std::shared_ptr<const RunObservations> observations;
};

/**
 * Robust-execution policy of a sweep: fault injection, per-job deadlines,
 * bounded retry with quarantine, and the append-only completed-job
 * journal that makes an interrupted sweep resumable. All defaults keep
 * the sweep byte-for-byte compatible with the pre-fault-layer behaviour.
 */
struct SweepOptions
{
    /**
     * Master fault configuration (seed 0 = off). Each job attempt runs
     * with a private seed derived as mixSeed(master seed, job index,
     * attempt), so the fault sequence is a pure function of the sweep
     * seed and position — independent of --jobs, scheduling, or which
     * attempt of another job is in flight.
     */
    fault::FaultConfig fault{};
    /**
     * Watchdog budget per job in cycles. 0 = automatic: off for clean
     * runs (bit-identity with older binaries), fault::kDefaultWatchdogCycles
     * as soon as fault injection is enabled (faults can livelock a
     * simulator, and a hung job would stall the whole sweep).
     */
    std::uint64_t watchdogCycles = 0;
    /** Per-job wall-clock deadline in seconds; <= 0 = none. */
    double jobTimeoutSeconds = 0.0;
    /** Attempts per job before quarantine (>= 1). */
    int maxAttempts = 3;
    /**
     * Base of the exponential retry backoff (seconds). The actual delay
     * before attempt N+1 is backoffSeconds * 2^(N-1) scaled by a
     * deterministic jitter factor in [0.5, 1.0] seeded from (fault
     * seed, job index, attempt) — retries of concurrent jobs spread out
     * instead of stampeding in lockstep, and the same sweep always
     * waits the same amount.
     */
    double backoffSeconds = 0.05;
    /**
     * Cap on a job's total wall-clock across all attempts and backoff
     * sleeps (seconds); <= 0 = none. Enforced through the cancel-token
     * deadline plumbing: the deadline spans the whole retry loop, a
     * pending backoff that would overrun it quarantines the job
     * immediately instead of sleeping, and the in-flight attempt is
     * aborted via DeadlineExceeded. DRS_RETRY_DEADLINE.
     */
    double retryDeadlineSeconds = 0.0;
    /**
     * Sweep-wide cooperative stop flag (may be null). Chained as the
     * parent of every per-attempt token, so one requestCancel() — e.g.
     * from a signal handler — aborts the running simulations and fails
     * the remaining jobs instead of starting them. Cancelled jobs are
     * reported failed, never retried.
     */
    const exec::CancelToken *cancel = nullptr;
    /**
     * Append-only JSONL journal of completed jobs (lossless SimStats via
     * statsJsonFull). Empty = no journal. A fresh run truncates the
     * file; --resume replays it instead.
     */
    std::string journalPath;
    /**
     * Replay matching journal entries instead of re-running their jobs;
     * only the jobs the journal does not cover (including a corrupt
     * tail, which is tolerated) are executed. The merged results are
     * identical to an uninterrupted run.
     */
    bool resume = false;
    /**
     * Crash-injection for the resume tests (DRS_CRASH_AFTER): terminate
     * the process with _Exit(70) after this many journal appends. 0 =
     * off. Requires a journalPath.
     */
    int crashAfter = 0;
    /**
     * Completion callback: invoked after every finished job with (jobs
     * done so far, jobs total). Called from worker threads under the
     * runner's bookkeeping; keep it cheap (the --progress ticker just
     * repaints one stderr line). Pure observer — never affects results.
     * Cleared by fleet workers: only the coordinator reports progress.
     */
    std::function<void(std::size_t done, std::size_t total)> progress;

    /**
     * Populate from the environment: DRS_FAULT_SEED (see
     * fault::FaultConfig::fromEnvironment), DRS_WATCHDOG (cycles),
     * DRS_JOB_TIMEOUT (seconds), DRS_RETRY_DEADLINE (seconds),
     * DRS_CRASH_AFTER (journal appends).
     */
    static SweepOptions fromEnvironment();
};

/**
 * Durable append-only JSONL writer backing the sweep journal. Every
 * append writes the full line and fsync()s the file descriptor before
 * returning, so a record the caller saw succeed is on disk — a SIGKILL
 * (or DRS_CRASH_AFTER _Exit) one instruction later cannot lose it to a
 * libc or page-cache buffer. Not thread-safe; callers serialize (the
 * sweep runner holds its journal mutex across append()).
 */
class SweepJournal
{
  public:
    SweepJournal() = default;
    ~SweepJournal();
    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open @p path for appending; @p truncate discards existing content
     * (a fresh run), otherwise appends (a --resume continuation).
     * @return false with a reason in @p error on failure.
     */
    bool open(const std::string &path, bool truncate,
              std::string *error = nullptr);

    bool isOpen() const { return fd_ >= 0; }

    /** Append one record as a single line, flushed + fsync'd. */
    bool append(const obs::Json &entry, std::string *error = nullptr);

    /** Records appended through this writer (not lines in the file). */
    int appends() const { return appends_; }

    void close();

  private:
    int fd_ = -1;
    int appends_ = 0;
};

/**
 * One sweep outcome as a journal/protocol record: {"job", "key",
 * "ran", "failed", "attempts", "fault_seed", "seconds", "stats"
 * (lossless, when ran), "error" (when failed)}. The fleet result
 * protocol reuses this shape verbatim, so a worker's result frame and a
 * journal line are interchangeable.
 */
obs::Json sweepResultToJson(std::size_t index, const std::string &key,
                            const SweepResult &result);

/**
 * Parse one sweepResultToJson record. @return empty string on success
 * (with @p index, @p key and @p result filled, result.fromJournal
 * left untouched), else a human-readable reason.
 */
std::string sweepResultFromJson(const obs::Json &entry, std::uint64_t *index,
                                std::string *key, SweepResult *result);

/**
 * Replay a JSONL journal at @p path into @p results (sized like
 * @p jobs): entries whose index/key match the job at that index are
 * marked done; a malformed line (torn tail of a crash) stops the replay
 * and everything after it re-runs. Shared by SweepRunner::run(--resume)
 * and the fleet coordinator, so a journal written by either is
 * resumable by both.
 *
 * @return per-job done flags (1 = replayed from the journal)
 */
std::vector<char> replaySweepJournal(const std::string &path,
                                     const std::vector<SweepJob> &jobs,
                                     std::vector<SweepResult> &results);

/**
 * Declarative experiment sweep over a shared scene cache.
 *
 * Usage: add() every cell of the grid, then run() once; results come
 * back indexed exactly like the add() calls. With jobs > 1 the cells
 * execute concurrently on a work-stealing pool; with jobs <= 1 they run
 * inline, in order.
 */
class SweepRunner
{
  public:
    /**
     * @param scale experiment scale shared by every job (scene cache key)
     * @param jobs worker threads for the sweep; <= 1 = sequential
     * @param options robustness policy (faults, retry, journal, resume)
     */
    explicit SweepRunner(const ExperimentScale &scale, int jobs = 1,
                         const SweepOptions &options = {});

    /** Queue one job. @return its index into run()'s result vector. */
    std::size_t add(const SweepJob &job);

    /**
     * Queue one job per bounce of @p scene's capture: bounces 1 to
     * @p max_bounces (0 = the scale's maxDepth). Bounces the capture
     * does not contain come back with ran = false.
     *
     * @return result indices, one per bounce, in bounce order
     */
    std::vector<std::size_t> addCapture(scene::SceneId scene, Arch arch,
                                        const RunConfig &config,
                                        int max_bounces = 0,
                                        std::size_t max_rays = 0);

    /**
     * Execute every queued job and return their results in add order.
     * Prints a one-line summary (job count, workers, wall-clock, scene
     * cache hits/misses) to stdout. Clears the queue; the scene cache
     * persists across run() calls.
     */
    std::vector<SweepResult> run();

    /** The shared scene store (also usable directly, e.g. for stats). */
    const PreparedScene &prepared(scene::SceneId id)
    {
        return cache_.get(id, scale_);
    }

    const ExperimentScale &scale() const { return scale_; }
    int jobCount() const { return jobs_count_; }
    std::size_t pendingJobs() const { return pending_.size(); }

    /** Scene cache observability (each scene must build exactly once). */
    std::size_t cacheHits() const { return cache_.hits(); }
    std::size_t cacheMisses() const { return cache_.misses(); }

    const SweepOptions &options() const { return options_; }

    /**
     * Execute one job under the full robustness policy (fault seeds,
     * watchdog, timeout, retry + jitter backoff, retry deadline) without
     * touching the queue or the journal. @p index is the job's identity
     * in its grid: per-attempt fault seeds derive from it, so a fleet
     * worker executing job 7 of a sharded grid produces bit-identical
     * results to the single-process sweep running job 7 itself.
     */
    SweepResult runJob(const SweepJob &job, std::size_t index)
    {
        return runWithRetry(job, index);
    }

    /** Take (and clear) the queued jobs, e.g. to shard them elsewhere. */
    std::vector<SweepJob> takePending();

    /**
     * Journal/identity key of @p job ("scene/arch/b<bounce>/r<maxRays>"):
     * a --resume run only replays an entry when its key still matches
     * the job at the same index, so a journal from a different sweep is
     * rejected instead of silently merged.
     */
    static std::string jobKey(const SweepJob &job);

  private:
    SweepResult runOne(const SweepJob &job);
    SweepResult runWithRetry(const SweepJob &job, std::size_t index);
    void journalAppend(std::size_t index, const SweepJob &job,
                       const SweepResult &result);

    ExperimentScale scale_;
    int jobs_count_;
    SweepOptions options_;
    PreparedSceneCache cache_;
    std::vector<SweepJob> pending_;
    std::mutex journalMutex_;
    SweepJournal journal_;
};

/**
 * Assemble per-bounce sweep results (as returned for an addCapture call)
 * into the CaptureResult shape runCapture produces: absent bounces are
 * skipped, overall merges the rest, cycles accumulate across bounces.
 */
CaptureResult collectCapture(const std::vector<SweepResult> &results,
                             const std::vector<std::size_t> &indices);

} // namespace drs::harness
