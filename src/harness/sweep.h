#pragma once

/**
 * @file
 * Concurrent sweep runner: the bench binaries describe their experiment
 * as a declarative grid of {scene, architecture, config, bounce} jobs and
 * this runner executes them on a work-stealing thread pool, preparing
 * each scene (geometry, BVH, ray capture) exactly once per
 * (SceneId, ExperimentScale) and sharing it read-only across all jobs.
 *
 * Simulations are independent, so sweep-level parallelism never changes
 * any SimStats — results are written by job index and each simulation is
 * bit-identical to a sequential run (see DESIGN.md, "Parallel execution
 * model").
 */

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/harness.h"

namespace drs::harness {

/**
 * Build-once, share-everywhere scene store. Thread-safe: concurrent
 * first requests for the same key build the scene exactly once (the
 * first requester builds, the rest block on a shared future).
 */
class PreparedSceneCache
{
  public:
    /**
     * Scene + tracer + capture for @p id at @p scale, building it on the
     * first request. The reference stays valid for the cache's lifetime.
     */
    const PreparedScene &get(scene::SceneId id, const ExperimentScale &scale);

    /** Requests served from an existing (or in-flight) entry. */
    std::size_t hits() const;
    /** Requests that had to build the scene. */
    std::size_t misses() const;

  private:
    struct Entry
    {
        scene::SceneId id;
        ExperimentScale scale;
        std::shared_future<std::shared_ptr<const PreparedScene>> future;
    };

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

/** One cell of a sweep grid: a single simulated ray batch. */
struct SweepJob
{
    scene::SceneId scene = scene::SceneId::Conference;
    Arch arch = Arch::Aila;
    RunConfig config{};
    /** 1-based bounce of the scene's capture to trace. */
    int bounce = 1;
    /** Cap on rays taken from the bounce; 0 = the whole bounce. */
    std::size_t maxRays = 0;
};

/** Outcome of one SweepJob, in add order. */
struct SweepResult
{
    simt::SimStats stats;
    /** False when the capture has no rays for the requested bounce. */
    bool ran = false;
    /** Wall-clock seconds of this simulation (excludes scene prep). */
    double seconds = 0.0;
};

/**
 * Declarative experiment sweep over a shared scene cache.
 *
 * Usage: add() every cell of the grid, then run() once; results come
 * back indexed exactly like the add() calls. With jobs > 1 the cells
 * execute concurrently on a work-stealing pool; with jobs <= 1 they run
 * inline, in order.
 */
class SweepRunner
{
  public:
    /**
     * @param scale experiment scale shared by every job (scene cache key)
     * @param jobs worker threads for the sweep; <= 1 = sequential
     */
    explicit SweepRunner(const ExperimentScale &scale, int jobs = 1);

    /** Queue one job. @return its index into run()'s result vector. */
    std::size_t add(const SweepJob &job);

    /**
     * Queue one job per bounce of @p scene's capture: bounces 1 to
     * @p max_bounces (0 = the scale's maxDepth). Bounces the capture
     * does not contain come back with ran = false.
     *
     * @return result indices, one per bounce, in bounce order
     */
    std::vector<std::size_t> addCapture(scene::SceneId scene, Arch arch,
                                        const RunConfig &config,
                                        int max_bounces = 0,
                                        std::size_t max_rays = 0);

    /**
     * Execute every queued job and return their results in add order.
     * Prints a one-line summary (job count, workers, wall-clock, scene
     * cache hits/misses) to stdout. Clears the queue; the scene cache
     * persists across run() calls.
     */
    std::vector<SweepResult> run();

    /** The shared scene store (also usable directly, e.g. for stats). */
    const PreparedScene &prepared(scene::SceneId id)
    {
        return cache_.get(id, scale_);
    }

    const ExperimentScale &scale() const { return scale_; }
    int jobCount() const { return jobs_count_; }
    std::size_t pendingJobs() const { return pending_.size(); }

    /** Scene cache observability (each scene must build exactly once). */
    std::size_t cacheHits() const { return cache_.hits(); }
    std::size_t cacheMisses() const { return cache_.misses(); }

  private:
    SweepResult runOne(const SweepJob &job);

    ExperimentScale scale_;
    int jobs_count_;
    PreparedSceneCache cache_;
    std::vector<SweepJob> pending_;
};

/**
 * Assemble per-bounce sweep results (as returned for an addCapture call)
 * into the CaptureResult shape runCapture produces: absent bounces are
 * skipped, overall merges the rest, cycles accumulate across bounces.
 */
CaptureResult collectCapture(const std::vector<SweepResult> &results,
                             const std::vector<std::size_t> &indices);

} // namespace drs::harness
