#include "harness/harness.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "check/check.h"
#include "check/reference.h"
#include "harness/arch_plugin.h"

namespace drs::harness {

namespace {

simt::SimStats
runBatchImpl(const ArchPlugin &plugin, const render::PathTracer &tracer,
             std::span<const geom::Ray> rays, const RunConfig &config,
             const check::Checker *checker)
{
    // Trace collection is scoped to the batch: the collector is built
    // here, filled during the run, and written afterwards so tracing
    // stays invisible to the simulation itself. Plugins without
    // warp-level tracing (TBC's self-contained block executor) skip it.
    std::unique_ptr<obs::TraceCollector> collector;
    if (config.trace.enabled && plugin.supportsWarpTrace())
        collector = std::make_unique<obs::TraceCollector>(
            config.gpu.numSmx, config.trace.capacity);

    // Issue-slot attribution runs whenever sampling asks for it or a
    // checker is attached (the ledger's conservation invariant is part
    // of the DRS_CHECK surface); the timeline sampler only on request.
    // All of it is scoped to the batch, exactly like the trace ring.
    std::unique_ptr<obs::AttributionCollector> attribution;
    if (config.sample.enabled || checker != nullptr)
        attribution = std::make_unique<obs::AttributionCollector>(
            config.gpu.numSmx,
            config.gpu.schedulersPerSmx * config.gpu.issuesPerScheduler());
    std::unique_ptr<obs::SamplerCollector> sampler;
    if (config.sample.enabled)
        sampler = std::make_unique<obs::SamplerCollector>(config.gpu.numSmx,
                                                          config.sample);

    ArchObservers observers;
    observers.trace = collector.get();
    observers.attribution = attribution.get();
    observers.sampler = sampler.get();

    simt::SimStats stats =
        plugin.run(tracer, rays, config, observers, checker);

    if (collector) {
        // Whole-file writes from concurrent sweep jobs would interleave;
        // the mutex keeps each file internally consistent (the last
        // writer wins — trace with --jobs 1 for a specific run).
        static std::mutex write_mutex;
        const std::lock_guard<std::mutex> lock(write_mutex);
        std::string error;
        if (!collector->writeFile(config.trace.path, &error,
                                  sampler.get()))
            std::fprintf(stderr, "warning: trace not written: %s\n",
                         error.c_str());
    }

    if (config.observationsOut != nullptr &&
        (config.sample.enabled || collector)) {
        if (config.sample.enabled) {
            config.observationsOut->attribution = std::move(attribution);
            config.observationsOut->sampler = std::move(sampler);
        }
        config.observationsOut->simdLanes = config.gpu.simdLanes;
        if (collector) {
            config.observationsOut->traced = true;
            for (int i = 0; i < collector->smxCount(); ++i) {
                config.observationsOut->traceRecorded +=
                    collector->smx(i).recorded();
                config.observationsOut->traceDropped +=
                    collector->smx(i).dropped();
            }
        }
    }
    return stats;
}

} // namespace

simt::SimStats
runBatch(const Arch &arch, const render::PathTracer &tracer,
         std::span<const geom::Ray> rays, const RunConfig &config)
{
    // Throws std::invalid_argument (naming the registered lineup) for an
    // architecture nobody registered.
    const ArchPlugin &plugin = ArchRegistry::instance().get(arch);

    // Fault injection deliberately corrupts in-flight ray state (swap
    // bit flips, cache tag corruption), so the fault-free lockstep
    // reference cannot agree with a faulted run — checking would report
    // every injected fault as a simulator bug. The checker only attaches
    // to clean runs; fault campaigns validate determinism and
    // conservation through their own suite instead.
    if (config.fault.seed != 0 || !check::checkEnabled(config.check))
        return runBatchImpl(plugin, tracer, rays, config, nullptr);

    // Checked run: thread the checker through the simulators, collect
    // per-ray hits locally, and cross-check the finished run against the
    // lockstep reference interpreter. Results are untouched — the hits
    // the caller asked for are copied out exactly as an unchecked run
    // would have produced them.
    const check::Checker checker;
    std::vector<geom::Hit> hits;
    RunConfig checked = config;
    checked.hitsOut = &hits;
    const simt::SimStats stats =
        runBatchImpl(plugin, tracer, rays, checked, &checker);

    check::verifyBatch(tracer.bvh(), tracer.sceneTriangles(), rays, stats,
                       hits, plugin.checkInputs(config));

    if (config.hitsOut != nullptr) {
        if (config.hitsOut->size() < hits.size())
            config.hitsOut->resize(hits.size());
        std::copy(hits.begin(), hits.end(), config.hitsOut->begin());
    }
    return stats;
}

double
CaptureResult::overallMrays(double clock_ghz) const
{
    // Paper Section 4.4: total rays traced in all bounces over total
    // cycles of all bounces.
    std::uint64_t cycles = 0;
    std::uint64_t rays = 0;
    for (const auto &b : perBounce) {
        cycles += b.cycles;
        rays += b.raysTraced;
    }
    if (cycles == 0)
        return 0.0;
    const double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
    return static_cast<double>(rays) / seconds / 1e6;
}

CaptureResult
runCapture(Arch arch, const render::PathTracer &tracer,
           const render::RayTrace &trace, const RunConfig &config,
           int max_bounces, std::size_t max_rays_per_bounce)
{
    CaptureResult result;
    for (const auto &bounce : trace.bounces) {
        if (max_bounces > 0 && bounce.bounce > max_bounces)
            break;
        std::span<const geom::Ray> rays(bounce.rays);
        if (max_rays_per_bounce && rays.size() > max_rays_per_bounce)
            rays = rays.first(max_rays_per_bounce);
        if (rays.empty())
            continue;
        simt::SimStats stats = runBatch(arch, tracer, rays, config);
        result.overall.merge(stats);
        result.perBounce.push_back(std::move(stats));
    }
    // "cycles" of the overall stats should accumulate bounces, not take
    // the max (bounces run back-to-back).
    std::uint64_t cycles = 0;
    for (const auto &b : result.perBounce)
        cycles += b.cycles;
    result.overall.cycles = cycles;
    return result;
}

ExperimentScale
ExperimentScale::fromEnvironment()
{
    ExperimentScale scale;
    auto read_env = [](const char *name, auto &value) {
        const char *s = std::getenv(name);
        if (!s)
            return;
        // Parse strictly: a malformed or non-positive value would
        // otherwise silently fall back to the default and corrupt a
        // sweep without anyone noticing.
        char *end = nullptr;
        const double v = std::strtod(s, &end);
        while (end && *end != '\0' &&
               std::isspace(static_cast<unsigned char>(*end)))
            ++end;
        if (end == s || *end != '\0') {
            std::fprintf(stderr,
                         "warning: ignoring malformed %s=\"%s\" "
                         "(not a number)\n",
                         name, s);
            return;
        }
        if (!(v > 0)) { // also catches NaN
            std::fprintf(stderr,
                         "warning: ignoring %s=\"%s\" "
                         "(must be positive)\n",
                         name, s);
            return;
        }
        value = static_cast<std::remove_reference_t<decltype(value)>>(v);
    };
    read_env("DRS_RAYS", scale.raysPerBounce);
    read_env("DRS_SCALE", scale.sceneScale);
    read_env("DRS_SMX", scale.numSmx);
    read_env("DRS_WIDTH", scale.width);
    read_env("DRS_HEIGHT", scale.height);
    read_env("DRS_SPP", scale.samplesPerPixel);
    return scale;
}

PreparedScene
prepareScene(scene::SceneId id, const ExperimentScale &scale)
{
    PreparedScene prepared;
    prepared.scenePtr = std::make_unique<scene::Scene>(
        scene::makeScene(id, scale.sceneScale));
    render::RenderConfig render_config;
    render_config.width = scale.width;
    render_config.height = scale.height;
    render_config.samplesPerPixel = scale.samplesPerPixel;
    render_config.maxDepth = scale.maxDepth;
    prepared.tracer = std::make_unique<render::PathTracer>(
        *prepared.scenePtr, render_config);
    prepared.trace = prepared.tracer->capture(scale.raysPerBounce);
    return prepared;
}

} // namespace drs::harness
