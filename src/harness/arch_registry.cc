#include "harness/arch_plugin.h"

#include <stdexcept>
#include <utility>

#include "harness/arch_builtin.h"

namespace drs::harness {

ArchRegistry &
ArchRegistry::instance()
{
    // Construct-on-first-use: the built-in lineup registers inside the
    // constructor, so no static-initialization-order games are possible
    // and the registry works from static initializers of other TUs
    // (ArchRegistrar).
    static ArchRegistry registry;
    return registry;
}

ArchRegistry::ArchRegistry()
{
    // Registration order is the survey lineup order: benches, the
    // conformance suite and the fuzzer's arch draw all iterate in this
    // deterministic order.
    plugins_.push_back(detail::makeAilaArch());
    plugins_.push_back(detail::makeDrsArch());
    plugins_.push_back(detail::makeDmkArch());
    plugins_.push_back(detail::makeTbcArch());
    plugins_.push_back(detail::makeSortArch());
    plugins_.push_back(detail::makeCutCodeArch());
    plugins_.push_back(detail::makeSerArch());
    plugins_.push_back(detail::makePathPredArch());
}

Arch
ArchRegistry::add(std::unique_ptr<const ArchPlugin> plugin)
{
    if (plugin == nullptr)
        throw std::invalid_argument("ArchRegistry::add: null plugin");
    const std::string name = plugin->name();
    if (name.empty())
        throw std::invalid_argument("ArchRegistry::add: empty plugin name");
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &existing : plugins_)
        if (existing->name() == name)
            throw std::invalid_argument(
                "ArchRegistry::add: duplicate architecture \"" + name +
                "\"");
    plugins_.push_back(std::move(plugin));
    return Arch(name);
}

const ArchPlugin *
ArchRegistry::find(const Arch &arch) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &plugin : plugins_)
        if (plugin->name() == arch.name())
            return plugin.get();
    return nullptr;
}

const ArchPlugin &
ArchRegistry::get(const Arch &arch) const
{
    if (const ArchPlugin *plugin = find(arch))
        return *plugin;
    std::string known;
    for (const Arch &a : archs()) {
        if (!known.empty())
            known += ", ";
        known += a.name();
    }
    throw std::invalid_argument("unknown architecture \"" + arch.name() +
                                "\" (registered: " + known + ")");
}

std::vector<Arch>
ArchRegistry::archs() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Arch> result;
    result.reserve(plugins_.size());
    for (const auto &plugin : plugins_)
        result.push_back(Arch(plugin->name()));
    return result;
}

std::vector<const ArchPlugin *>
ArchRegistry::plugins() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const ArchPlugin *> result;
    result.reserve(plugins_.size());
    for (const auto &plugin : plugins_)
        result.push_back(plugin.get());
    return result;
}

} // namespace drs::harness
