#pragma once

/**
 * @file
 * Low-discrepancy sampling. The paper renders with PBRT's low-discrepancy
 * sampler; we provide a scrambled Halton sequence plus the standard warping
 * functions (cosine hemisphere, uniform disk/triangle) used by the path
 * tracer's Lambertian BSDF sampling.
 */

#include <cstdint>

#include "geom/vec.h"

namespace drs::geom {

/** Radical inverse of @p index in base @p base (Halton component). */
float radicalInverse(std::uint32_t base, std::uint64_t index);

/** Van der Corput sequence (radical inverse base 2), computed bitwise. */
float vanDerCorput(std::uint32_t index);

/**
 * Low-discrepancy sample generator.
 *
 * Produces a Halton sequence with per-dimension Cranley–Patterson rotation
 * so that distinct pixels decorrelate while each pixel's sample set keeps
 * its low-discrepancy structure.
 */
class HaltonSampler
{
  public:
    /** @param rotation_seed seed for the per-dimension rotations. */
    explicit HaltonSampler(std::uint64_t rotation_seed = 0);

    /** Position to sample @p index, dimension 0. */
    void startSample(std::uint64_t index);

    /** Next 1D sample value in [0, 1). */
    float next1D();

    /** Next 2D sample value in [0, 1)^2. */
    Vec2 next2D();

    std::uint64_t currentSample() const { return index_; }
    std::uint32_t currentDimension() const { return dimension_; }

  private:
    std::uint64_t index_ = 0;
    std::uint32_t dimension_ = 0;
    std::uint64_t rotationSeed_ = 0;
};

/** Cosine-weighted hemisphere direction around +Z from a 2D sample. */
Vec3 cosineSampleHemisphere(const Vec2 &u);

/** Uniform point on the unit disk (concentric mapping). */
Vec2 concentricSampleDisk(const Vec2 &u);

/** Uniform barycentric coordinates on a triangle. */
Vec2 uniformSampleTriangle(const Vec2 &u);

/** PDF of cosineSampleHemisphere for direction with cos(theta)=cos_theta. */
float cosineHemispherePdf(float cos_theta);

} // namespace drs::geom
