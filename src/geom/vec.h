#pragma once

/**
 * @file
 * Small fixed-size vector types used throughout the renderer and the
 * traversal kernels. Deliberately minimal: only the operations the ray
 * tracer needs, all constexpr-friendly and branch-free where possible.
 */

#include <cmath>
#include <cstdint>
#include <algorithm>
#include <ostream>

namespace drs::geom {

/** A 3-component float vector (points, directions, colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    constexpr Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(const Vec3 &o) const { return {x * o.x, y * o.y, z * o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    constexpr Vec3 &operator+=(const Vec3 &o) { x += o.x; y += o.y; z += o.z; return *this; }
    constexpr Vec3 &operator-=(const Vec3 &o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
    constexpr Vec3 &operator*=(float s) { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const = default;
};

constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }

constexpr float dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float length(const Vec3 &v) { return std::sqrt(dot(v, v)); }
constexpr float lengthSquared(const Vec3 &v) { return dot(v, v); }

/** Normalize @p v; returns a zero vector when |v| underflows to zero. */
inline Vec3 normalize(const Vec3 &v)
{
    float len = length(v);
    return len > 0.0f ? v / len : Vec3{};
}

constexpr Vec3 min(const Vec3 &a, const Vec3 &b)
{
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

constexpr Vec3 max(const Vec3 &a, const Vec3 &b)
{
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

constexpr float maxComponent(const Vec3 &v)
{
    return std::max(v.x, std::max(v.y, v.z));
}

constexpr float minComponent(const Vec3 &v)
{
    return std::min(v.x, std::min(v.y, v.z));
}

/** Index (0/1/2) of the component with the largest absolute value. */
constexpr int maxDimension(const Vec3 &v)
{
    float ax = v.x < 0 ? -v.x : v.x;
    float ay = v.y < 0 ? -v.y : v.y;
    float az = v.z < 0 ? -v.z : v.z;
    if (ax >= ay && ax >= az) return 0;
    return ay >= az ? 1 : 2;
}

constexpr Vec3 lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

/** Reflect direction @p d about unit normal @p n. */
constexpr Vec3 reflect(const Vec3 &d, const Vec3 &n)
{
    return d - n * (2.0f * dot(d, n));
}

inline std::ostream &operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/** A 2-component float vector (film samples, barycentrics). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float xx, float yy) : x(xx), y(yy) {}

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr bool operator==(const Vec2 &o) const = default;
};

/**
 * Build an orthonormal basis around unit vector @p n (Duff et al. 2017,
 * "Building an Orthonormal Basis, Revisited"). @p n becomes the third axis.
 */
struct OrthonormalBasis
{
    Vec3 tangent;
    Vec3 bitangent;
    Vec3 normal;

    explicit OrthonormalBasis(const Vec3 &n) : normal(n)
    {
        const float sign = std::copysign(1.0f, n.z);
        const float a = -1.0f / (sign + n.z);
        const float b = n.x * n.y * a;
        tangent = {1.0f + sign * n.x * n.x * a, sign * b, -sign * n.x};
        bitangent = {b, sign + n.y * n.y * a, -n.y};
    }

    /** Transform local coordinates (x, y, z) into world space. */
    Vec3 toWorld(const Vec3 &local) const
    {
        return tangent * local.x + bitangent * local.y + normal * local.z;
    }
};

} // namespace drs::geom
