#pragma once

/**
 * @file
 * Ray and hit-record types shared by the CPU reference tracer, the
 * wavefront path tracer and the simulated traversal kernels.
 */

#include <cstdint>
#include <limits>

#include "geom/vec.h"

namespace drs::geom {

/** Sentinel triangle index meaning "no intersection found". */
inline constexpr std::int32_t kNoHit = -1;

/** Infinity used as the initial ray extent. */
inline constexpr float kRayInfinity = std::numeric_limits<float>::infinity();

/**
 * A ray with a parametric validity interval [tMin, tMax].
 *
 * The traversal kernels treat tMax as the "hit length" live variable the
 * paper stores in registers: it shrinks as closer hits are found.
 */
struct Ray
{
    Vec3 origin;
    float tMin = 1e-4f;
    Vec3 direction;
    float tMax = kRayInfinity;

    /** Point at parameter @p t along the ray. */
    Vec3 at(float t) const { return origin + direction * t; }
};

/** Result of tracing one ray: closest triangle, distance and barycentrics. */
struct Hit
{
    std::int32_t triangle = kNoHit;
    float t = kRayInfinity;
    float u = 0.0f;
    float v = 0.0f;

    bool valid() const { return triangle != kNoHit; }
};

} // namespace drs::geom
