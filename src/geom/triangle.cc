#include "geom/triangle.h"

#include <cmath>

namespace drs::geom {

bool
Triangle::intersect(const Ray &ray, float &t, float &u, float &v) const
{
    constexpr float epsilon = 1e-9f;

    const Vec3 e1 = v1 - v0;
    const Vec3 e2 = v2 - v0;
    const Vec3 pvec = cross(ray.direction, e2);
    const float det = dot(e1, pvec);

    // Cull nothing: two-sided test, reject only near-degenerate dets.
    if (std::fabs(det) < epsilon)
        return false;

    const float inv_det = 1.0f / det;
    const Vec3 tvec = ray.origin - v0;
    const float bu = dot(tvec, pvec) * inv_det;
    if (bu < 0.0f || bu > 1.0f)
        return false;

    const Vec3 qvec = cross(tvec, e1);
    const float bv = dot(ray.direction, qvec) * inv_det;
    if (bv < 0.0f || bu + bv > 1.0f)
        return false;

    const float bt = dot(e2, qvec) * inv_det;
    if (bt <= ray.tMin || bt >= ray.tMax)
        return false;

    t = bt;
    u = bu;
    v = bv;
    return true;
}

} // namespace drs::geom
