#pragma once

/**
 * @file
 * Triangle primitive and the Möller–Trumbore intersection test.
 */

#include <cstdint>

#include "geom/aabb.h"
#include "geom/ray.h"
#include "geom/vec.h"

namespace drs::geom {

/**
 * A triangle with explicit vertices and a material handle.
 *
 * Scenes in this reproduction are flat triangle soups: the BVH indexes
 * directly into an array of these.
 */
struct Triangle
{
    Vec3 v0;
    Vec3 v1;
    Vec3 v2;
    std::int32_t material = 0;

    Aabb bounds() const
    {
        Aabb b;
        b.extend(v0);
        b.extend(v1);
        b.extend(v2);
        return b;
    }

    Vec3 centroid() const { return (v0 + v1 + v2) / 3.0f; }

    /** Geometric (unnormalized) normal; zero for degenerate triangles. */
    Vec3 geometricNormal() const { return cross(v1 - v0, v2 - v0); }

    float area() const { return 0.5f * length(geometricNormal()); }

    /**
     * Möller–Trumbore ray-triangle test.
     *
     * @param ray ray to test; ray.tMax is the current hit length
     * @param[out] t hit distance when the test succeeds
     * @param[out] u,v barycentric coordinates of the hit
     * @return true when the ray hits within (ray.tMin, ray.tMax)
     */
    bool intersect(const Ray &ray, float &t, float &u, float &v) const;
};

} // namespace drs::geom
