#include "geom/aabb.h"

#include <algorithm>

namespace drs::geom {

bool
Aabb::intersect(const Vec3 &origin, const Vec3 &inv_dir, float t_min,
                float t_max, float &t_entry) const
{
    // Classic branchless slab test. When a direction component is zero the
    // corresponding inv_dir component is +/-inf and the min/max below still
    // produce the correct interval (NaNs from 0*inf cannot occur because
    // origin is finite and lo/hi are finite for non-empty boxes).
    float tx1 = (lo.x - origin.x) * inv_dir.x;
    float tx2 = (hi.x - origin.x) * inv_dir.x;
    float tn = std::min(tx1, tx2);
    float tf = std::max(tx1, tx2);

    float ty1 = (lo.y - origin.y) * inv_dir.y;
    float ty2 = (hi.y - origin.y) * inv_dir.y;
    tn = std::max(tn, std::min(ty1, ty2));
    tf = std::min(tf, std::max(ty1, ty2));

    float tz1 = (lo.z - origin.z) * inv_dir.z;
    float tz2 = (hi.z - origin.z) * inv_dir.z;
    tn = std::max(tn, std::min(tz1, tz2));
    tf = std::min(tf, std::max(tz1, tz2));

    t_entry = tn;
    return tf >= tn && tn <= t_max && tf >= t_min;
}

} // namespace drs::geom
