#include "geom/sampler.h"

#include <cmath>
#include <numbers>

namespace drs::geom {

namespace {

/** First 32 primes: enough dimensions for an 8-bounce path (4 dims/bounce). */
constexpr std::uint32_t kPrimes[] = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
    59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
};
constexpr std::uint32_t kNumPrimes = sizeof(kPrimes) / sizeof(kPrimes[0]);

/** Cheap 64->32 bit hash (splitmix64 finalizer) for rotations. */
std::uint32_t
hashDimension(std::uint64_t seed, std::uint32_t dim)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (dim + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint32_t>(z ^ (z >> 31));
}

} // namespace

float
radicalInverse(std::uint32_t base, std::uint64_t index)
{
    const float inv_base = 1.0f / static_cast<float>(base);
    float inv_base_n = 1.0f;
    std::uint64_t reversed = 0;
    while (index) {
        std::uint64_t next = index / base;
        std::uint64_t digit = index - next * base;
        reversed = reversed * base + digit;
        inv_base_n *= inv_base;
        index = next;
    }
    float v = static_cast<float>(reversed) * inv_base_n;
    return v < 1.0f ? v : std::nextafter(1.0f, 0.0f);
}

float
vanDerCorput(std::uint32_t index)
{
    index = (index << 16u) | (index >> 16u);
    index = ((index & 0x55555555u) << 1u) | ((index & 0xAAAAAAAAu) >> 1u);
    index = ((index & 0x33333333u) << 2u) | ((index & 0xCCCCCCCCu) >> 2u);
    index = ((index & 0x0F0F0F0Fu) << 4u) | ((index & 0xF0F0F0F0u) >> 4u);
    index = ((index & 0x00FF00FFu) << 8u) | ((index & 0xFF00FF00u) >> 8u);
    return static_cast<float>(index) * 2.3283064365386963e-10f; // 2^-32
}

HaltonSampler::HaltonSampler(std::uint64_t rotation_seed)
    : rotationSeed_(rotation_seed)
{
}

void
HaltonSampler::startSample(std::uint64_t index)
{
    index_ = index;
    dimension_ = 0;
}

float
HaltonSampler::next1D()
{
    std::uint32_t dim = dimension_++;
    float v = radicalInverse(kPrimes[dim % kNumPrimes], index_);
    // Cranley-Patterson rotation decorrelates reused dimensions.
    float rot = static_cast<float>(hashDimension(rotationSeed_, dim)) *
                2.3283064365386963e-10f;
    v += rot;
    if (v >= 1.0f)
        v -= 1.0f;
    return v;
}

Vec2
HaltonSampler::next2D()
{
    float a = next1D();
    float b = next1D();
    return {a, b};
}

Vec2
concentricSampleDisk(const Vec2 &u)
{
    const float ox = 2.0f * u.x - 1.0f;
    const float oy = 2.0f * u.y - 1.0f;
    if (ox == 0.0f && oy == 0.0f)
        return {0.0f, 0.0f};

    float r;
    float theta;
    if (std::fabs(ox) > std::fabs(oy)) {
        r = ox;
        theta = (std::numbers::pi_v<float> / 4.0f) * (oy / ox);
    } else {
        r = oy;
        theta = (std::numbers::pi_v<float> / 2.0f) -
                (std::numbers::pi_v<float> / 4.0f) * (ox / oy);
    }
    return {r * std::cos(theta), r * std::sin(theta)};
}

Vec3
cosineSampleHemisphere(const Vec2 &u)
{
    Vec2 d = concentricSampleDisk(u);
    float z = std::sqrt(std::max(0.0f, 1.0f - d.x * d.x - d.y * d.y));
    return {d.x, d.y, z};
}

float
cosineHemispherePdf(float cos_theta)
{
    return cos_theta > 0.0f ? cos_theta / std::numbers::pi_v<float> : 0.0f;
}

Vec2
uniformSampleTriangle(const Vec2 &u)
{
    float su0 = std::sqrt(u.x);
    return {1.0f - su0, u.y * su0};
}

} // namespace drs::geom
