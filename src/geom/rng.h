#pragma once

/**
 * @file
 * PCG32 pseudo-random number generator (O'Neill 2014). Small, fast,
 * statistically solid, and fully deterministic across platforms — all
 * experiments in this repo are seeded so runs are reproducible.
 */

#include <cstdint>

namespace drs::geom {

/** PCG-XSH-RR 64/32 generator. */
class Pcg32
{
  public:
    /** Construct with a seed and an odd stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0u;
        inc_ = (stream << 1u) | 1u;
        nextUInt();
        state_ += seed;
        nextUInt();
    }

    /** Next 32 uniformly distributed bits. */
    std::uint32_t nextUInt()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t nextUInt(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint32_t threshold = (0u - bound) % bound;
        for (;;) {
            std::uint32_t r = nextUInt();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform float in [0, 1). */
    float nextFloat()
    {
        // 24 high bits -> float mantissa; strictly < 1.0f.
        return static_cast<float>(nextUInt() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    bool operator==(const Pcg32 &o) const = default;

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

} // namespace drs::geom
