#pragma once

/**
 * @file
 * Axis-aligned bounding box with the slab intersection test used by the
 * BVH traversal kernels.
 */

#include <limits>

#include "geom/ray.h"
#include "geom/vec.h"

namespace drs::geom {

/** An axis-aligned bounding box; default-constructed boxes are empty. */
struct Aabb
{
    Vec3 lo{ std::numeric_limits<float>::max(),
             std::numeric_limits<float>::max(),
             std::numeric_limits<float>::max() };
    Vec3 hi{ std::numeric_limits<float>::lowest(),
             std::numeric_limits<float>::lowest(),
             std::numeric_limits<float>::lowest() };

    /** True when the box contains no points. */
    bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

    /** Grow to include point @p p. */
    void extend(const Vec3 &p)
    {
        lo = min(lo, p);
        hi = max(hi, p);
    }

    /** Grow to include box @p b. */
    void extend(const Aabb &b)
    {
        lo = min(lo, b.lo);
        hi = max(hi, b.hi);
    }

    Vec3 center() const { return (lo + hi) * 0.5f; }
    Vec3 extent() const { return hi - lo; }

    /** Surface area; zero for empty boxes (used by the SAH builder). */
    float surfaceArea() const
    {
        if (empty())
            return 0.0f;
        Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** True when @p p lies inside or on the boundary. */
    bool contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    bool overlaps(const Aabb &b) const
    {
        return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
               hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
    }

    bool operator==(const Aabb &o) const = default;

    /**
     * Slab test against a ray whose inverse direction is precomputed.
     *
     * @param origin ray origin
     * @param inv_dir componentwise 1/direction (infinities allowed)
     * @param t_min ray interval start
     * @param t_max ray interval end (current hit length)
     * @param[out] t_entry distance at which the ray enters the box
     * @return true when the ray interval overlaps the box
     */
    bool intersect(const Vec3 &origin, const Vec3 &inv_dir, float t_min,
                   float t_max, float &t_entry) const;
};

/** Union of two boxes. */
inline Aabb merge(const Aabb &a, const Aabb &b)
{
    Aabb r = a;
    r.extend(b);
    return r;
}

} // namespace drs::geom
