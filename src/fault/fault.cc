#include "fault/fault.h"

#include <cstdio>
#include <cstdlib>

namespace drs::fault {

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt_a, std::uint64_t salt_b)
{
    // splitmix64 finalizer over the xored inputs; the golden-ratio
    // increments keep (seed, 0, 0) from mapping to the raw seed.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt_a + 1) +
                      0xbf58476d1ce4e5b9ULL * (salt_b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

FaultConfig
FaultConfig::fromEnvironment()
{
    FaultConfig config;
    if (const char *s = std::getenv("DRS_FAULT_SEED")) {
        char *end = nullptr;
        const std::uint64_t v = std::strtoull(s, &end, 0);
        if (end != s && *end == '\0')
            config.seed = v;
        else
            std::fprintf(stderr,
                         "[fault] warning: ignoring malformed "
                         "DRS_FAULT_SEED='%s'\n",
                         s);
    }
    return config;
}

std::uint64_t
watchdogCyclesFromEnvironment()
{
    const char *s = std::getenv("DRS_WATCHDOG");
    if (!s)
        return 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s, &end, 0);
    if (end != s && *end == '\0')
        return v;
    std::fprintf(stderr,
                 "[fault] warning: ignoring malformed DRS_WATCHDOG='%s'\n",
                 s);
    return 0;
}

FaultInjector::FaultInjector(const FaultConfig &config, std::uint64_t unit_id)
    : config_(config),
      rng_(mixSeed(config.seed, unit_id), unit_id)
{
}

bool
FaultInjector::roll(double rate)
{
    if (!config_.enabled() || rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    return static_cast<double>(rng_.nextFloat()) < rate;
}

bool
FaultInjector::rollSwapBitFlip()
{
    if (!roll(config_.swapBitFlipRate))
        return false;
    ++counters_.swapBitFlips;
    return true;
}

bool
FaultInjector::rollCacheTagFlip()
{
    if (!roll(config_.cacheTagFlipRate))
        return false;
    ++counters_.cacheTagFlips;
    return true;
}

std::uint32_t
FaultInjector::rollDramFault()
{
    if (!config_.enabled())
        return 0;
    if (roll(config_.dramDropRate)) {
        ++counters_.dramDropped;
        return config_.dramDropPenaltyCycles;
    }
    if (roll(config_.dramDelayRate)) {
        ++counters_.dramDelayed;
        return 1 + pick(config_.dramDelayCycles);
    }
    return 0;
}

bool
FaultInjector::rollAllocFailure()
{
    if (!roll(config_.allocFailRate))
        return false;
    ++counters_.allocFailures;
    return true;
}

WatchdogTimeout::WatchdogTimeout(std::uint64_t cycle,
                                 std::uint64_t budget_cycles, std::string dump)
    : std::runtime_error("watchdog: no forward progress within " +
                         std::to_string(budget_cycles) +
                         " cycles (at cycle " + std::to_string(cycle) +
                         "); diagnostic dump:\n" + dump),
      cycle_(cycle),
      budget_(budget_cycles),
      dump_(std::move(dump))
{
}

} // namespace drs::fault
