#pragma once

/**
 * @file
 * Deterministic, seed-driven fault injection for the simulator.
 *
 * The paper's architecture keeps a ray's live state resident in the
 * register file and moves it between rows in the background; silent
 * corruption of that in-flight state — or a stalled memory response —
 * would be invisible without injected faults. This library provides:
 *
 *  - FaultConfig / FaultInjector: seeded Bernoulli fault sources for
 *    transient bit flips at DRS swap boundaries, cache tag corruption,
 *    delayed/dropped DRAM responses and allocation failures. One
 *    injector per simulated unit (SMX or the shared L2/DRAM side),
 *    seeded from (master seed, unit id), so the injected fault sequence
 *    is a pure function of the seed — independent of host thread count
 *    or scheduling (each unit steps on exactly one worker and the
 *    shared side is only touched at the cycle barrier in SMX-index
 *    order; see DESIGN.md, "Parallel execution model").
 *  - Watchdog: forward-progress monitor for the cycle engines. When no
 *    unit makes progress (no ray completes, no warp retires) within a
 *    cycle budget, the engine aborts with a WatchdogTimeout carrying a
 *    diagnostic dump of every SMX's IPDOM stacks, row ownership and
 *    pending memory operations.
 *
 * Pure-observer contract: with the config disabled (seed == 0) no
 * injector is created, no hook fires and no RNG is advanced — SimStats
 * and reports are bit-identical to a build without this subsystem. With
 * a non-zero seed, the same seed always produces the same faults and
 * therefore the same SimStats.
 */

#include <cstdint>
#include <stdexcept>
#include <string>

#include "geom/rng.h"

namespace drs::fault {

/**
 * Mix a master seed with salt values into a well-distributed derived
 * seed (splitmix64 finalizer). Used to derive per-unit and per-job
 * fault seeds; never returns 0 (0 means "disabled") unless the inputs
 * conspire, in which case the caller keeps fault injection off.
 */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t salt_a,
                      std::uint64_t salt_b = 0);

/** Fault-injection configuration. seed == 0 disables everything. */
struct FaultConfig
{
    /** Master seed; 0 = fault injection off (pure observer). */
    std::uint64_t seed = 0;

    /** Per completed DRS swap/move: flip one bit of the moved ray. */
    double swapBitFlipRate = 0.02;
    /** Per cache access: corrupt one random valid line's tag. */
    double cacheTagFlipRate = 1e-4;
    /** Per shared-side (L2/DRAM) line access: delayed response. */
    double dramDelayRate = 1e-3;
    /** Maximum extra cycles of a delayed DRAM response. */
    std::uint32_t dramDelayCycles = 600;
    /** Per shared-side line access: dropped response (re-request). */
    double dramDropRate = 1e-4;
    /** Penalty cycles a dropped response costs (timeout + re-request). */
    std::uint32_t dramDropPenaltyCycles = 4000;
    /** Per sweep-job attempt: simulated allocation failure. */
    double allocFailRate = 0.0;

    bool enabled() const { return seed != 0; }

    /**
     * Defaults overridden by DRS_FAULT_SEED (decimal or 0x-hex; 0 or
     * unset = disabled; malformed values warn on stderr and are
     * ignored, like every other DRS_* knob).
     */
    static FaultConfig fromEnvironment();
};

/**
 * Watchdog cycle budget from DRS_WATCHDOG (positive integer; 0 or
 * unset = disabled; malformed values warn and are ignored).
 */
std::uint64_t watchdogCyclesFromEnvironment();

/** Default watchdog budget used when fault injection auto-enables it. */
inline constexpr std::uint64_t kDefaultWatchdogCycles = 5'000'000;

/** Tallies of injected faults (exported as "fault.*" counters). */
struct FaultCounters
{
    std::uint64_t swapBitFlips = 0;
    std::uint64_t cacheTagFlips = 0;
    std::uint64_t dramDelayed = 0;
    std::uint64_t dramDropped = 0;
    std::uint64_t allocFailures = 0;
};

/**
 * One unit's deterministic fault source. Not thread-safe: owned and
 * advanced by exactly one simulated unit (the unit-per-worker contract
 * of the parallel engine makes that race-free).
 */
class FaultInjector
{
  public:
    /**
     * @param config fault rates + master seed
     * @param unit_id stable unit identity (SMX index; the shared
     *        memory side uses a reserved id) mixed into the seed so
     *        units draw independent fault sequences
     */
    FaultInjector(const FaultConfig &config, std::uint64_t unit_id);

    bool enabled() const { return config_.enabled(); }
    const FaultConfig &config() const { return config_; }

    /** Roll for a bit flip in a ray moved at a DRS swap boundary. */
    bool rollSwapBitFlip();

    /** Roll for a corrupted cache tag on this access. */
    bool rollCacheTagFlip();

    /**
     * Roll for a delayed or dropped DRAM response on one shared-side
     * line access. @return extra latency cycles (0 = fault-free).
     */
    std::uint32_t rollDramFault();

    /** Roll for a simulated allocation failure (sweep-job granularity). */
    bool rollAllocFailure();

    /** Uniform integer in [0, bound) from the injector's stream. */
    std::uint32_t pick(std::uint32_t bound) { return rng_.nextUInt(bound); }

    const FaultCounters &counters() const { return counters_; }

  private:
    bool roll(double rate);

    FaultConfig config_;
    geom::Pcg32 rng_;
    FaultCounters counters_;
};

/**
 * Thrown by the engines when the forward-progress watchdog fires. The
 * message includes the diagnostic dump (IPDOM stacks, row ownership,
 * pending memory operations of every SMX), also available separately
 * via dump().
 */
class WatchdogTimeout : public std::runtime_error
{
  public:
    WatchdogTimeout(std::uint64_t cycle, std::uint64_t budget_cycles,
                    std::string dump);

    /** Cycle at which the watchdog fired. */
    std::uint64_t cycle() const { return cycle_; }
    /** The configured no-progress budget. */
    std::uint64_t budgetCycles() const { return budget_; }
    /** Engine state dump captured when the watchdog fired. */
    const std::string &dump() const { return dump_; }

  private:
    std::uint64_t cycle_ = 0;
    std::uint64_t budget_ = 0;
    std::string dump_;
};

/**
 * Forward-progress monitor: observe(cycle, progress) with a
 * monotonically non-decreasing progress measure (rays completed + units
 * retired); returns true when progress has not advanced for more than
 * the budget. budget_cycles == 0 disables the watchdog.
 */
class Watchdog
{
  public:
    explicit Watchdog(std::uint64_t budget_cycles) : budget_(budget_cycles) {}

    bool enabled() const { return budget_ != 0; }
    std::uint64_t budgetCycles() const { return budget_; }

    /** @return true when the no-progress budget is exhausted. */
    bool observe(std::uint64_t cycle, std::uint64_t progress)
    {
        if (budget_ == 0)
            return false;
        if (first_ || progress != lastProgress_) {
            first_ = false;
            lastProgress_ = progress;
            lastProgressCycle_ = cycle;
            return false;
        }
        return cycle - lastProgressCycle_ > budget_;
    }

    /** Cycle of the last observed progress change. */
    std::uint64_t lastProgressCycle() const { return lastProgressCycle_; }

  private:
    std::uint64_t budget_ = 0;
    std::uint64_t lastProgress_ = 0;
    std::uint64_t lastProgressCycle_ = 0;
    bool first_ = true;
};

} // namespace drs::fault
