#pragma once

/**
 * @file
 * Minimal HDR accumulation image with tonemapped PPM output, used by the
 * example renderers to prove the path tracer produces sensible pictures.
 */

#include <string>
#include <vector>

#include "geom/vec.h"

namespace drs::render {

/** A float RGB framebuffer that accumulates samples per pixel. */
class Image
{
  public:
    Image(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Add one radiance sample to pixel (x, y); origin at lower-left. */
    void addSample(int x, int y, const geom::Vec3 &radiance);

    /** Mean radiance of pixel (x, y) over its samples. */
    geom::Vec3 pixel(int x, int y) const;

    /** Mean luminance across the image (tests use this as a sanity probe). */
    double meanLuminance() const;

    /**
     * Write a gamma-2.2, Reinhard-tonemapped binary PPM.
     * @return true on success.
     */
    bool writePpm(const std::string &path) const;

  private:
    int width_;
    int height_;
    std::vector<geom::Vec3> sum_;
    std::vector<std::uint32_t> count_;
};

} // namespace drs::render
