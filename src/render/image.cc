#include "render/image.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace drs::render {

using geom::Vec3;

Image::Image(int width, int height)
    : width_(width),
      height_(height),
      sum_(static_cast<std::size_t>(width) * height),
      count_(static_cast<std::size_t>(width) * height, 0)
{
}

void
Image::addSample(int x, int y, const Vec3 &radiance)
{
    const std::size_t i = static_cast<std::size_t>(y) * width_ + x;
    sum_[i] += radiance;
    count_[i] += 1;
}

Vec3
Image::pixel(int x, int y) const
{
    const std::size_t i = static_cast<std::size_t>(y) * width_ + x;
    return count_[i] ? sum_[i] / static_cast<float>(count_[i]) : Vec3{};
}

double
Image::meanLuminance() const
{
    double total = 0.0;
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const Vec3 c = pixel(x, y);
            total += 0.2126 * c.x + 0.7152 * c.y + 0.0722 * c.z;
        }
    }
    return total / (static_cast<double>(width_) * height_);
}

bool
Image::writePpm(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;

    os << "P6\n" << width_ << " " << height_ << "\n255\n";
    auto encode = [](float v) {
        // Reinhard tonemap + gamma 2.2.
        const float mapped = v / (1.0f + v);
        const float g = std::pow(std::max(mapped, 0.0f), 1.0f / 2.2f);
        return static_cast<unsigned char>(
            std::min(255.0f, std::max(0.0f, g * 255.0f + 0.5f)));
    };
    // PPM rows go top to bottom; our origin is lower-left.
    for (int y = height_ - 1; y >= 0; --y) {
        for (int x = 0; x < width_; ++x) {
            const Vec3 c = pixel(x, y);
            const unsigned char rgb[3] = {encode(c.x), encode(c.y),
                                          encode(c.z)};
            os.write(reinterpret_cast<const char *>(rgb), 3);
        }
    }
    return static_cast<bool>(os);
}

} // namespace drs::render
