#pragma once

/**
 * @file
 * Per-bounce ray traces. The paper's experiments do not run the whole
 * renderer inside the simulator: "We streamed traces of rays captured from
 * PBRT and fed these traces to ray tracing kernels as input." A RayTrace is
 * exactly that artifact — the batch of rays a path tracer produced for one
 * bounce — plus serialization so traces can be cached on disk.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/ray.h"

namespace drs::render {

/** The rays of one path-tracing bounce. */
struct BounceRays
{
    /** 1-based bounce number (B1 = primary rays). */
    int bounce = 1;
    std::vector<geom::Ray> rays;

    std::size_t size() const { return rays.size(); }
    bool empty() const { return rays.empty(); }
};

/** A full capture: one BounceRays per bounce, in order. */
struct RayTrace
{
    std::string sceneName;
    std::vector<BounceRays> bounces;

    /** Total rays across all bounces. */
    std::size_t totalRays() const;

    /** Rays of bounce @p b (1-based); throws if absent. */
    const BounceRays &bounce(int b) const;
};

/** Serialize @p trace to a binary stream. */
void save(const RayTrace &trace, std::ostream &os);

/** Deserialize a trace; throws std::runtime_error on malformed input. */
RayTrace load(std::istream &is);

} // namespace drs::render
