#pragma once

/**
 * @file
 * Wavefront path tracer. Traces all paths of an image bounce-by-bounce,
 * which is exactly the structure the paper's experiments need: after each
 * bounce the surviving rays form the next BounceRays batch of the capture.
 *
 * The light-transport model is intentionally simple (Lambertian BSDF with
 * a small specular mixture, emissive area lights, no next-event
 * estimation): the paper treats "shading and ray generation as a black
 * box" and only consumes the ray streams.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bvh/builder.h"
#include "bvh/bvh.h"
#include "geom/ray.h"
#include "render/image.h"
#include "render/ray_trace.h"
#include "scene/scene.h"

namespace drs::render {

/** Path tracing parameters (paper defaults where applicable). */
struct RenderConfig
{
    int width = 160;              ///< paper: 640 (scaled by default)
    int height = 120;             ///< paper: 480
    int samplesPerPixel = 1;      ///< paper: 64
    int maxDepth = 8;             ///< paper: hard max path depth of 8
    std::uint64_t seed = 0x5eed;  ///< sampler rotation seed
    bvh::BuildConfig bvhConfig{}; ///< acceleration structure options
};

/** Coherence statistics of one ray batch (used by tests and analysis). */
struct CoherenceStats
{
    /** Mean pairwise-cosine proxy: |mean direction| in [0, 1]. */
    double directionCoherence = 0.0;
    /** Fraction of rays terminated by this bounce's trace. */
    double terminationRate = 0.0;
};

/**
 * A wavefront path tracer bound to one scene.
 *
 * Typical use: construct, then either render() a full image or capture()
 * a per-bounce ray trace for the simulator experiments.
 */
class PathTracer
{
  public:
    PathTracer(const scene::Scene &scene, const RenderConfig &config = {});

    /** The acceleration structure built over the scene. */
    const bvh::Bvh &bvh() const { return bvh_; }

    /** The scene this tracer renders. */
    const scene::Scene &scene() const { return scene_; }

    /** The scene's triangle array (the BVH indexes into it). */
    const std::vector<geom::Triangle> &sceneTriangles() const
    {
        return scene_.triangles();
    }

    /**
     * Render a full image (host-side reference renderer).
     * @return accumulated framebuffer
     */
    Image render() const;

    /**
     * Capture the per-bounce ray streams of a full render.
     *
     * @param max_rays_per_bounce optional cap: bounces are truncated to
     *        this many rays (the paper evaluates "two million rays for
     *        each bounce"); 0 means unlimited.
     */
    RayTrace capture(std::size_t max_rays_per_bounce = 0) const;

    /** Direction/termination statistics of @p rays against this scene. */
    CoherenceStats analyzeCoherence(const std::vector<geom::Ray> &rays) const;

  private:
    struct PathState;

    /** Shade a hit and produce the continuation ray, if the path survives. */
    std::optional<geom::Ray> shade(PathState &path, const geom::Ray &ray,
                                   const geom::Hit &hit) const;

    const scene::Scene &scene_;
    RenderConfig config_;
    bvh::Bvh bvh_;
};

} // namespace drs::render
