#include "render/path_tracer.h"

#include <cmath>

#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "geom/sampler.h"

namespace drs::render {

using geom::Hit;
using geom::Ray;
using geom::Vec2;
using geom::Vec3;

/** Per-path bookkeeping carried across bounces. */
struct PathTracer::PathState
{
    int pixelX = 0;
    int pixelY = 0;
    Vec3 throughput{1.0f, 1.0f, 1.0f};
    Vec3 radiance{0.0f, 0.0f, 0.0f};
    geom::HaltonSampler sampler;
    bool alive = true;
};

PathTracer::PathTracer(const scene::Scene &scene, const RenderConfig &config)
    : scene_(scene), config_(config),
      bvh_(bvh::build(scene.triangles(), config.bvhConfig))
{
}

std::optional<Ray>
PathTracer::shade(PathState &path, const Ray &ray, const Hit &hit) const
{
    if (!hit.valid()) {
        // Escaped the scene: collect nothing (no environment light; the
        // scenes carry explicit emissive sky geometry instead).
        path.alive = false;
        return std::nullopt;
    }

    const geom::Triangle &tri = scene_.triangles()[hit.triangle];
    const scene::Material &mat = scene_.materialOf(hit.triangle);

    if (mat.emissive()) {
        // Path hit a light source: terminate and collect.
        path.radiance += path.throughput * mat.emission;
        path.alive = false;
        return std::nullopt;
    }

    Vec3 n = geom::normalize(tri.geometricNormal());
    if (geom::dot(n, ray.direction) > 0.0f)
        n = -n; // shade the side the ray arrived on

    const Vec3 hit_point = ray.at(hit.t);

    // Mixture lobe: mirror with probability `specularity`, else cosine-
    // weighted Lambertian. Secondary rays therefore range from perfectly
    // coherent (mirror) to fully randomized (diffuse), like the paper's
    // PBRT BSDF sampling.
    const float lobe = path.sampler.next1D();
    Vec3 new_dir;
    if (lobe < mat.specularity) {
        new_dir = geom::reflect(ray.direction, n);
        path.throughput = path.throughput * mat.albedo;
        path.sampler.next2D(); // keep dimension alignment across lobes
    } else {
        const Vec2 u = path.sampler.next2D();
        const Vec3 local = geom::cosineSampleHemisphere(u);
        new_dir = geom::OrthonormalBasis(n).toWorld(local);
        // Cosine-weighted sampling of a Lambertian cancels the cosine and
        // the 1/pi, leaving just the albedo.
        path.throughput = path.throughput * mat.albedo;
    }

    if (geom::lengthSquared(new_dir) == 0.0f) {
        path.alive = false;
        return std::nullopt;
    }

    Ray next;
    next.origin = hit_point + n * 1e-4f;
    next.direction = geom::normalize(new_dir);
    next.tMin = 1e-4f;
    next.tMax = geom::kRayInfinity;
    return next;
}

Image
PathTracer::render() const
{
    Image image(config_.width, config_.height);

    for (int y = 0; y < config_.height; ++y) {
        for (int x = 0; x < config_.width; ++x) {
            for (int s = 0; s < config_.samplesPerPixel; ++s) {
                PathState path;
                path.pixelX = x;
                path.pixelY = y;
                path.sampler = geom::HaltonSampler(
                    config_.seed + (static_cast<std::uint64_t>(y) *
                                    config_.width + x));
                path.sampler.startSample(static_cast<std::uint64_t>(s));

                const Vec2 jitter = path.sampler.next2D();
                Ray ray = scene_.camera().generateRay(
                    (x + jitter.x) / config_.width,
                    (y + jitter.y) / config_.height);

                for (int depth = 0; depth < config_.maxDepth && path.alive;
                     ++depth) {
                    const Hit hit =
                        bvh::intersect(bvh_, scene_.triangles(), ray);
                    auto next = shade(path, ray, hit);
                    if (!next)
                        break;
                    ray = *next;
                }
                image.addSample(x, y, path.radiance);
            }
        }
    }
    return image;
}

RayTrace
PathTracer::capture(std::size_t max_rays_per_bounce) const
{
    RayTrace trace;
    trace.sceneName = scene_.name();

    // Wavefront state: all live paths and their current rays.
    std::vector<PathState> paths;
    std::vector<Ray> rays;
    const std::size_t total_paths =
        static_cast<std::size_t>(config_.width) * config_.height *
        config_.samplesPerPixel;
    paths.reserve(total_paths);
    rays.reserve(total_paths);

    for (int y = 0; y < config_.height; ++y) {
        for (int x = 0; x < config_.width; ++x) {
            for (int s = 0; s < config_.samplesPerPixel; ++s) {
                PathState path;
                path.pixelX = x;
                path.pixelY = y;
                path.sampler = geom::HaltonSampler(
                    config_.seed + (static_cast<std::uint64_t>(y) *
                                    config_.width + x));
                path.sampler.startSample(static_cast<std::uint64_t>(s));

                const Vec2 jitter = path.sampler.next2D();
                rays.push_back(scene_.camera().generateRay(
                    (x + jitter.x) / config_.width,
                    (y + jitter.y) / config_.height));
                paths.push_back(std::move(path));
            }
        }
    }

    for (int bounce = 1; bounce <= config_.maxDepth && !rays.empty();
         ++bounce) {
        BounceRays batch;
        batch.bounce = bounce;
        batch.rays = rays;
        if (max_rays_per_bounce && batch.rays.size() > max_rays_per_bounce)
            batch.rays.resize(max_rays_per_bounce);
        trace.bounces.push_back(std::move(batch));

        // Trace + shade every live path to produce the next wavefront.
        std::vector<PathState> next_paths;
        std::vector<Ray> next_rays;
        next_paths.reserve(paths.size());
        next_rays.reserve(paths.size());
        for (std::size_t i = 0; i < rays.size(); ++i) {
            const Hit hit = bvh::intersect(bvh_, scene_.triangles(), rays[i]);
            auto next = shade(paths[i], rays[i], hit);
            if (next && paths[i].alive) {
                next_paths.push_back(std::move(paths[i]));
                next_rays.push_back(*next);
            }
        }
        paths = std::move(next_paths);
        rays = std::move(next_rays);
    }
    return trace;
}

CoherenceStats
PathTracer::analyzeCoherence(const std::vector<Ray> &rays) const
{
    CoherenceStats stats;
    if (rays.empty())
        return stats;

    Vec3 mean_dir;
    std::size_t terminated = 0;
    for (const auto &r : rays) {
        mean_dir += geom::normalize(r.direction);
        const Hit hit = bvh::intersect(bvh_, scene_.triangles(), r);
        if (!hit.valid() || scene_.materialOf(hit.triangle).emissive())
            ++terminated;
    }
    stats.directionCoherence =
        geom::length(mean_dir) / static_cast<double>(rays.size());
    stats.terminationRate =
        static_cast<double>(terminated) / static_cast<double>(rays.size());
    return stats;
}

} // namespace drs::render
