#include "render/ray_trace.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace drs::render {

namespace {

constexpr std::uint32_t kMagic = 0x44525354; // "DRST"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v;
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error("truncated ray trace stream");
    return v;
}

} // namespace

std::size_t
RayTrace::totalRays() const
{
    std::size_t n = 0;
    for (const auto &b : bounces)
        n += b.size();
    return n;
}

const BounceRays &
RayTrace::bounce(int b) const
{
    for (const auto &br : bounces)
        if (br.bounce == b)
            return br;
    throw std::out_of_range("trace has no bounce " + std::to_string(b));
}

void
save(const RayTrace &trace, std::ostream &os)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, static_cast<std::uint32_t>(trace.sceneName.size()));
    os.write(trace.sceneName.data(),
             static_cast<std::streamsize>(trace.sceneName.size()));
    writePod(os, static_cast<std::uint32_t>(trace.bounces.size()));
    for (const auto &b : trace.bounces) {
        writePod(os, static_cast<std::int32_t>(b.bounce));
        writePod(os, static_cast<std::uint64_t>(b.rays.size()));
        for (const auto &r : b.rays) {
            writePod(os, r.origin);
            writePod(os, r.tMin);
            writePod(os, r.direction);
            writePod(os, r.tMax);
        }
    }
}

RayTrace
load(std::istream &is)
{
    if (readPod<std::uint32_t>(is) != kMagic)
        throw std::runtime_error("not a ray trace stream (bad magic)");
    if (readPod<std::uint32_t>(is) != kVersion)
        throw std::runtime_error("unsupported ray trace version");

    RayTrace trace;
    const auto name_len = readPod<std::uint32_t>(is);
    trace.sceneName.resize(name_len);
    is.read(trace.sceneName.data(), name_len);
    if (!is)
        throw std::runtime_error("truncated ray trace stream");

    const auto bounce_count = readPod<std::uint32_t>(is);
    trace.bounces.reserve(bounce_count);
    for (std::uint32_t i = 0; i < bounce_count; ++i) {
        BounceRays b;
        b.bounce = readPod<std::int32_t>(is);
        const auto ray_count = readPod<std::uint64_t>(is);
        b.rays.reserve(ray_count);
        for (std::uint64_t j = 0; j < ray_count; ++j) {
            geom::Ray r;
            r.origin = readPod<geom::Vec3>(is);
            r.tMin = readPod<float>(is);
            r.direction = readPod<geom::Vec3>(is);
            r.tMax = readPod<float>(is);
            b.rays.push_back(r);
        }
        trace.bounces.push_back(std::move(b));
    }
    return trace;
}

} // namespace drs::render
