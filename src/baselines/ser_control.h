#pragma once

/**
 * @file
 * SER-style control unit: the WarpController behind the "ser"
 * architecture. Warps keep a fixed 1:1 row binding (no ray shuffling);
 * the reorder point is at the traversal->shading boundary instead. At
 * each rdctrl the controller either diverts the warp to the shade block
 * — refilled with a coherent group pulled from the kernel's shared sort
 * buffer — or dispatches the row's majority traversal state with the
 * matching lane mask (hole lanes refill via the per-thread fetch mask,
 * as in the DRS dispatch).
 *
 * Deadlock-free by construction: every rdctrl resolves to a dispatch or
 * exit (never a stall), a warp only exits once its row, the ray pool and
 * the sort buffer are all empty, and a terminating ray always deposits
 * into the buffer before its warp can observe the empty row — so every
 * deposited ray is shaded before the last warp leaves.
 */

#include "kernels/ser_kernel.h"
#include "obs/counters.h"
#include "simt/controller.h"

namespace drs::baselines {

/** Tuning knobs of the SER architecture (RunConfig::ser). */
struct SerConfig
{
    /** Resident warps per SMX (rows are bound 1:1). */
    int numWarps = 48;
    /** BVH-cut size of the hit-point sort key. */
    int cutSize = 64;
    /**
     * Minimum parked rays before a warp is diverted to shading (clamped
     * to the warp width). Smaller batches shade sooner but less
     * coherently; the buffer also drains below the threshold once
     * traversal work runs out.
     */
    int shadeBatch = 32;
};

/** SER control for one SMX, bound to that SMX's SerKernel. */
class SerControl : public simt::WarpController
{
  public:
    SerControl(const SerConfig &config, kernels::SerKernel &kernel);

    simt::RdctrlResult onRdctrl(int warp) override;
    void cycle(int issued_instructions) override { (void)issued_instructions; }
    obs::CounterSnapshot countersSnapshot() const override
    {
        return counters_.snapshot();
    }
    void describeState(std::ostream &out) const override;

  private:
    /** Divert @p warp to the shade block with a coherent group. */
    simt::RdctrlResult dispatchShade(int row);

    SerConfig config_;
    kernels::SerKernel &kernel_;
    std::size_t shadeBatch_;

    /** Observability counters ("ser.*"). */
    obs::Counters counters_;
    obs::Counter &dispatches_;
    obs::Counter &shadeGroups_;
    obs::Counter &shadeRays_;
    obs::Counter &sortedKeySum_;
    obs::Counter &depositKeySum_;
};

} // namespace drs::baselines
