#include "baselines/dmk_control.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "simt/smx.h"

namespace drs::baselines {

using simt::RdctrlResult;
using simt::TravState;

DmkControl::DmkControl(const DmkConfig &config,
                       kernels::TravWorkspace &workspace)
    : config_(config),
      workspace_(workspace),
      spawns_(counters_.get("dmk.spawns")),
      raysDumped_(counters_.get("dmk.rays_dumped")),
      raysLoaded_(counters_.get("dmk.rays_loaded")),
      conflictCycles_(counters_.get("dmk.conflict_cycles"))
{
}

DmkStats
DmkControl::stats() const
{
    DmkStats s;
    s.spawns = spawns_.value();
    s.raysDumped = raysDumped_.value();
    s.raysLoaded = raysLoaded_.value();
    s.conflictCycles = conflictCycles_.value();
    return s;
}

int
DmkControl::allocSpawnSlot()
{
    if (!freeSlots_.empty()) {
        const int slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    return nextSpawnSlot_++;
}

void
DmkControl::freeSpawnSlot(int slot)
{
    freeSlots_.push_back(slot);
}

std::size_t
DmkControl::pooledRays(TravState state) const
{
    return pools_[static_cast<std::size_t>(state)].size();
}

void
DmkControl::verifyInvariants() const
{
    // Fetch slots are never dumped — the fetch pool must stay empty.
    if (!pools_[static_cast<std::size_t>(TravState::Fetch)].empty())
        throw std::logic_error("DmkControl: rays parked in the fetch pool");

    std::unordered_set<int> spawn_slots;
    std::unordered_set<std::int64_t> ray_ids;
    std::size_t pooled = 0;
    for (std::size_t s = 0; s < pools_.size(); ++s) {
        for (const PooledRay &parked : pools_[s]) {
            ++pooled;
            if (parked.payload.state != static_cast<TravState>(s))
                throw std::logic_error(
                    "DmkControl: pooled ray state disagrees with its pool");
            if (parked.payload.rayId < 0)
                throw std::logic_error("DmkControl: pooled empty slot");
            if (!ray_ids.insert(parked.payload.rayId).second)
                throw std::logic_error(
                    "DmkControl: duplicate ray id in spawn memory");
            if (parked.spawnSlot < 0 || parked.spawnSlot >= nextSpawnSlot_)
                throw std::logic_error(
                    "DmkControl: spawn slot out of range");
            if (!spawn_slots.insert(parked.spawnSlot).second)
                throw std::logic_error(
                    "DmkControl: spawn slot used by two rays");
        }
    }
    for (const int slot : freeSlots_) {
        if (slot < 0 || slot >= nextSpawnSlot_)
            throw std::logic_error("DmkControl: freed slot out of range");
        if (!spawn_slots.insert(slot).second)
            throw std::logic_error(
                "DmkControl: slot both free and holding a ray");
    }
    if (spawn_slots.size() != static_cast<std::size_t>(nextSpawnSlot_))
        throw std::logic_error("DmkControl: allocated spawn slots leaked");

    // Every ray of the stripe is in exactly one place: completed, live in
    // a workspace row, still unfetched in the pool, or parked in spawn
    // memory. Ray ids must not repeat across workspace and pools.
    std::size_t live = 0;
    for (int row = 0; row < workspace_.rowCount(); ++row) {
        for (int lane = 0; lane < workspace_.laneCount(); ++lane) {
            const kernels::RaySlot &slot = workspace_.slot(row, lane);
            if (slot.state == TravState::Fetch)
                continue;
            ++live;
            if (slot.rayId < 0)
                throw std::logic_error(
                    "DmkControl: live workspace slot without a ray id");
            if (!ray_ids.insert(slot.rayId).second)
                throw std::logic_error(
                    "DmkControl: ray id held by two slots");
        }
    }
    const std::size_t total = workspace_.results().size();
    const std::size_t accounted = workspace_.raysCompleted() + live +
                                  workspace_.poolRemaining() + pooled;
    if (accounted != total)
        throw std::logic_error("DmkControl: rays not conserved");
}

std::uint32_t
DmkControl::conflictCost(const std::vector<int> &slots) const
{
    // Each of the 17 ray variables is one warp-wide spawn-memory access;
    // lanes touch bank (slot + variable) % banks. Extra cycles per access
    // = (max per-bank population - 1), summed over the variables.
    std::uint32_t total = 0;
    const int banks = config_.spawnBanks;
    std::vector<int> population(static_cast<std::size_t>(banks));
    for (int var = 0; var < config_.cost.rayVariables; ++var) {
        std::fill(population.begin(), population.end(), 0);
        int worst = 0;
        for (int slot : slots) {
            auto &p = population[static_cast<std::size_t>(
                (slot + var) % banks)];
            ++p;
            worst = std::max(worst, p);
        }
        total += static_cast<std::uint32_t>(worst - 1);
    }
    return total;
}

RdctrlResult
DmkControl::onRdctrl(int warp)
{
    const int row = warp; // DMK has no renaming: warps keep their rows
    const int lanes = workspace_.laneCount();

    // Census of the warp's own row.
    int fetch = 0;
    int inner = 0;
    int leaf = 0;
    for (int lane = 0; lane < lanes; ++lane) {
        switch (workspace_.state(row, lane)) {
          case TravState::Fetch: ++fetch; break;
          case TravState::Inner: ++inner; break;
          case TravState::Leaf: ++leaf; break;
        }
    }
    const bool input_rays = !workspace_.poolEmpty();
    const bool pools_empty = pools_[1].empty() && pools_[2].empty();

    auto make_dispatch = [&](TravState state) {
        RdctrlResult r;
        r.ctrl = state;
        r.row = row;
        std::uint32_t mask = 0;
        std::uint32_t holes = 0;
        for (int lane = 0; lane < lanes; ++lane) {
            const TravState s = workspace_.state(row, lane);
            if (s == state)
                mask |= 1u << lane;
            else if (s == TravState::Fetch)
                holes |= 1u << lane;
        }
        if (state == TravState::Fetch) {
            mask = simt::fullMask(lanes);
            holes = 0;
        }
        r.mask = mask;
        // Terminated lanes refetch in place, like any while-if kernel.
        if (holes != 0 && input_rays &&
            simt::popcount(holes) >= config_.fetchRefillThreshold)
            r.fetchMask = holes;
        return r;
    };

    // Fast path: the row's live rays (tolerating a small minority, the
    // same dispatch rule the DRS uses, so Figure 10's "DMK ~= DRS when
    // SI is excluded" comparison is apples to apples) need no spawn.
    const int live = inner + leaf;
    const int minority = std::min(inner, leaf);
    if (live > 0 && minority <= config_.dispatchMinorityTolerance)
        return make_dispatch(inner >= leaf ? TravState::Inner
                                           : TravState::Leaf);
    if (live == 0) {
        if (input_rays && pools_empty)
            return make_dispatch(TravState::Fetch);
        if (pools_empty && !input_rays) {
            // Nothing anywhere for this warp: leave the kernel.
            RdctrlResult r;
            r.exit = true;
            return r;
        }
        // Fall through: reload parked rays from spawn memory.
    }

    // Micro-kernel spawn: dump the row's live rays to spawn memory, then
    // reload a same-state group. The dump writes a contiguous slab (no
    // bank conflicts); the reload gathers scattered slots and pays them.
    RdctrlResult result;
    int overhead = 0;
    std::uint32_t conflicts = 0;

    int dumped = 0;
    for (int lane = 0; lane < lanes; ++lane) {
        const TravState s = workspace_.state(row, lane);
        if (s == TravState::Fetch)
            continue;
        PooledRay pooled;
        pooled.payload = workspace_.slot(row, lane);
        workspace_.slot(row, lane) = kernels::RaySlot{};
        pooled.spawnSlot = allocSpawnSlot();
        pools_[static_cast<std::size_t>(s)].push_back(std::move(pooled));
        ++dumped;
        raysDumped_.add();
    }
    if (dumped > 0)
        overhead += config_.cost.spawnDump;

    // Reload the most plentiful pooled state (leaf priority on ties, so
    // nearly finished rays drain first).
    auto &leaf_pool = pools_[static_cast<std::size_t>(TravState::Leaf)];
    auto &inner_pool = pools_[static_cast<std::size_t>(TravState::Inner)];
    auto *pool = &inner_pool;
    TravState reload_state = TravState::Inner;
    if (leaf_pool.size() >= inner_pool.size()) {
        pool = &leaf_pool;
        reload_state = TravState::Leaf;
    }

    if (pool->empty()) {
        // Nothing parked: fetch fresh rays instead (row is now empty).
        if (!input_rays) {
            RdctrlResult r;
            r.exit = true;
            return r;
        }
        result = make_dispatch(TravState::Fetch);
        result.overheadInstructions = overhead;
        if (overhead > 0)
            spawns_.add();
        return result;
    }

    std::vector<int> load_slots;
    const int take = std::min<int>(lanes, static_cast<int>(pool->size()));
    for (int lane = 0; lane < take; ++lane) {
        PooledRay pooled = std::move(pool->back());
        pool->pop_back();
        workspace_.slot(row, lane) = std::move(pooled.payload);
        load_slots.push_back(pooled.spawnSlot);
        freeSpawnSlot(pooled.spawnSlot);
        raysLoaded_.add();
    }
    overhead += config_.cost.spawnLoad;
    conflicts += conflictCost(load_slots);

    spawns_.add();
    conflictCycles_.add(conflicts);
    if (smx_ != nullptr)
        smx_->addSpawnConflictCycles(conflicts);

    result = make_dispatch(reload_state);
    // Bank conflicts replay the conflicting spawn-memory instructions;
    // replays occupy issue slots, so — as the paper stresses — these
    // cycles cannot be hidden by other warps.
    result.overheadInstructions = overhead + static_cast<int>(conflicts);
    return result;
}

} // namespace drs::baselines
