#include "baselines/tbc_smx.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <ostream>
#include <stdexcept>
#include <unordered_set>

#include "simt/engine.h"

namespace drs::baselines {

using simt::Program;
using simt::ThreadStep;

namespace {

constexpr std::uint64_t kRfAccessesPerInstruction = 3;

} // namespace

TbcSmx::TbcSmx(const simt::GpuConfig &config, const TbcConfig &tbc,
               kernels::AilaKernel &kernel, simt::SharedMemorySide &shared)
    : config_(config),
      tbc_(tbc),
      kernel_(kernel),
      memory_(config.memory, shared),
      lastIssuedBlock_(static_cast<std::size_t>(config.schedulersPerSmx),
                       -1),
      normalRfAccesses_(counters_.get("smx.rf.normal_accesses")),
      syncStallCycles_(counters_.get("tbc.sync_stall_cycles"))
{
    if (tbc.numWarps % tbc.warpsPerBlock != 0)
        throw std::invalid_argument(
            "TBC: numWarps must be a multiple of warpsPerBlock");

    const int num_blocks = tbc.numWarps / tbc.warpsPerBlock;
    const int lanes = config.simdLanes;
    blocks_.resize(static_cast<std::size_t>(num_blocks));
    for (int b = 0; b < num_blocks; ++b) {
        ThreadBlock &block = blocks_[static_cast<std::size_t>(b)];
        BlockEntry entry;
        entry.pc = 0;
        entry.rpc = kernel.program().exitBlock();
        for (int w = 0; w < tbc.warpsPerBlock; ++w) {
            CompactedWarp warp;
            warp.lanes.resize(static_cast<std::size_t>(lanes));
            const int row = b * tbc.warpsPerBlock + w;
            for (int lane = 0; lane < lanes; ++lane)
                warp.lanes[static_cast<std::size_t>(lane)] = {row, lane};
            entry.warps.push_back(std::move(warp));
        }
        block.stack.push_back(std::move(entry));
        block.nextBlocks.assign(
            static_cast<std::size_t>(tbc.numWarps) * lanes, -1);
        // Arm the initial entry.
        for (auto &warp : block.stack.back().warps) {
            warp.remainingInstructions =
                kernel.program().block(0).instructionCount;
            warp.semanticsDone = false;
            warp.readyCycle = 0;
        }
    }
}

int
TbcSmx::threadSlotIndex(const ThreadRef &t) const
{
    return t.row * config_.simdLanes + t.lane;
}

bool
TbcSmx::done() const
{
    for (const auto &b : blocks_)
        if (!b.exited)
            return false;
    return true;
}

std::vector<TbcSmx::CompactedWarp>
TbcSmx::compact(const std::vector<std::vector<ThreadRef>> &per_lane,
                int lanes)
{
    std::size_t depth = 0;
    for (const auto &list : per_lane)
        depth = std::max(depth, list.size());

    std::vector<CompactedWarp> warps(depth);
    for (auto &warp : warps)
        warp.lanes.assign(static_cast<std::size_t>(lanes), ThreadRef{});
    for (int lane = 0; lane < lanes; ++lane) {
        const auto &list = per_lane[static_cast<std::size_t>(lane)];
        for (std::size_t k = 0; k < list.size(); ++k)
            warps[k].lanes[static_cast<std::size_t>(lane)] = list[k];
    }
    return warps;
}

void
TbcSmx::completeWarp(ThreadBlock &block, CompactedWarp &warp)
{
    BlockEntry &top = block.stack.back();
    const simt::Block &blk = kernel_.program().block(top.pc);

    std::vector<std::uint64_t> addresses;
    std::uint32_t bytes = 0;
    for (const auto &t : warp.lanes) {
        if (t.row < 0)
            continue;
        const ThreadStep step = kernel_.execute(top.pc, t.row, t.lane);
        block.nextBlocks[static_cast<std::size_t>(threadSlotIndex(t))] =
            step.nextBlock;
        if (blk.memSpace != simt::MemSpace::None && step.memBytes > 0) {
            addresses.push_back(step.memAddress);
            bytes = step.memBytes;
        }
    }
    if (!addresses.empty()) {
        if (deferredMemory_) {
            DeferredAccess deferred;
            deferred.warp = &warp;
            deferred.issueCycle = cycle_;
            deferred.pending =
                memory_.resolveL1(blk.memSpace, addresses, bytes);
            deferredAccesses_.push_back(std::move(deferred));
        } else {
            const std::uint32_t latency =
                memory_.warpAccess(blk.memSpace, addresses, bytes);
            warp.readyCycle = cycle_ + latency;
        }
    }
    warp.semanticsDone = true;
}

void
TbcSmx::commitMemory()
{
    for (const DeferredAccess &d : deferredAccesses_)
        d.warp->readyCycle = d.issueCycle + memory_.commitAccess(d.pending);
    deferredAccesses_.clear();
}

void
TbcSmx::finishEntry(ThreadBlock &block)
{
    const Program &prog = kernel_.program();
    BlockEntry &top = block.stack.back();
    const int lanes = config_.simdLanes;

    // Partition all threads of the entry by their buffered successor.
    std::map<int, std::vector<std::vector<ThreadRef>>> targets;
    for (const auto &warp : top.warps) {
        for (const auto &t : warp.lanes) {
            if (t.row < 0)
                continue;
            const int next = block.nextBlocks[static_cast<std::size_t>(
                threadSlotIndex(t))];
            auto [it, inserted] = targets.try_emplace(next);
            if (inserted)
                it->second.resize(static_cast<std::size_t>(lanes));
            it->second[static_cast<std::size_t>(t.lane)].push_back(t);
        }
    }
    assert(!targets.empty());

    auto arm_top = [&](BlockEntry &entry) {
        const int count = prog.block(entry.pc).instructionCount;
        for (auto &warp : entry.warps) {
            warp.remainingInstructions = count;
            warp.semanticsDone = false;
            warp.readyCycle = cycle_;
        }
    };

    if (targets.size() == 1) {
        const int next = targets.begin()->first;
        if (next == top.rpc) {
            if (block.stack.size() > 1) {
                block.stack.pop_back();
            } else {
                top.pc = next;
            }
        } else {
            top.pc = next;
            // Straight-line continuation: recompact anyway, which merges
            // holes left by threads that reached the reconvergence point.
            top.warps = compact(targets.begin()->second, lanes);
        }
    } else {
        // Block-wide divergence: barrier + compaction.
        const int rpc = prog.immediatePostDominator(top.pc);
        top.pc = rpc;
        for (auto &[next, per_lane] : targets) {
            if (next == rpc)
                continue;
            BlockEntry entry;
            entry.pc = next;
            entry.rpc = rpc;
            entry.warps = compact(per_lane, lanes);
            block.stack.push_back(std::move(entry));
        }
        block.barrierUntil = cycle_ + static_cast<std::uint64_t>(
                                          tbc_.syncLatency);
        syncStallCycles_.add(static_cast<std::uint64_t>(tbc_.syncLatency));
    }

    while (block.stack.size() > 1 &&
           block.stack.back().pc == block.stack.back().rpc)
        block.stack.pop_back();

    BlockEntry &new_top = block.stack.back();
    if (block.stack.size() == 1 && new_top.pc == prog.exitBlock()) {
        block.exited = true;
        return;
    }
    arm_top(new_top);
}

int
TbcSmx::issueFromBlock(ThreadBlock &block, int max_issues)
{
    if (block.exited || block.barrierUntil > cycle_)
        return 0;

    BlockEntry &top = block.stack.back();
    const simt::Block &blk = kernel_.program().block(top.pc);

    // Issue from the first warp that still has instructions.
    for (auto &warp : top.warps) {
        if (warp.semanticsDone || warp.readyCycle > cycle_ ||
            warp.remainingInstructions <= 0)
            continue;
        const int active = warp.activeThreads();
        int issued = 0;
        while (issued < max_issues && warp.remainingInstructions > 0) {
            histogram_.recordInstruction(active, blk.spawnRelated);
            normalRfAccesses_.add(kRfAccessesPerInstruction);
            --warp.remainingInstructions;
            ++issued;
            if (attribution_)
                attribution_->record(active == config_.simdLanes
                                         ? obs::SlotBucket::IssuedFull
                                         : obs::SlotBucket::IssuedPartial,
                                     blk.phase);
        }
        if (warp.remainingInstructions == 0)
            completeWarp(block, warp);
        return issued;
    }

    return 0;
}

void
TbcSmx::verifyInvariants() const
{
    const Program &prog = kernel_.program();
    const int lanes = config_.simdLanes;

    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const ThreadBlock &block = blocks_[b];
        if (block.stack.empty())
            throw std::logic_error("TBC: empty block stack");
        if (block.stack.front().rpc != prog.exitBlock())
            throw std::logic_error(
                "TBC: bottom stack entry does not reconverge at exit");

        const int first_row = static_cast<int>(b) * tbc_.warpsPerBlock;
        const int last_row = first_row + tbc_.warpsPerBlock;

        // Per-entry thread sets (home slot indices) for the subset and
        // disjointness checks below.
        std::vector<std::unordered_set<int>> entry_threads;
        entry_threads.reserve(block.stack.size());

        for (const BlockEntry &entry : block.stack) {
            if (entry.pc < 0 || entry.pc >= prog.blockCount() ||
                entry.rpc < 0 || entry.rpc >= prog.blockCount())
                throw std::logic_error("TBC: stack pc/rpc out of range");
            std::unordered_set<int> threads;
            for (const CompactedWarp &warp : entry.warps) {
                if (static_cast<int>(warp.lanes.size()) != lanes)
                    throw std::logic_error("TBC: malformed compacted warp");
                for (int lane = 0; lane < lanes; ++lane) {
                    const ThreadRef &t =
                        warp.lanes[static_cast<std::size_t>(lane)];
                    if (t.row < 0)
                        continue;
                    // Per-lane compaction: a thread can only occupy its
                    // own home lane in any warp it is compacted into.
                    if (t.lane != lane)
                        throw std::logic_error(
                            "TBC: thread compacted into a foreign lane");
                    if (t.row < first_row || t.row >= last_row)
                        throw std::logic_error(
                            "TBC: thread from another block's rows");
                    if (!threads.insert(threadSlotIndex(t)).second)
                        throw std::logic_error(
                            "TBC: thread appears twice in one entry");
                }
            }
            entry_threads.push_back(std::move(threads));
        }

        // Child entries reconverge at their parent's pc (the parent is
        // parked there while children run); siblings of one parent hold
        // pairwise-disjoint subsets of the parent's threads. The entry
        // below is the parent iff its pc is this entry's rpc (non-top
        // entries never advance, and children are never created sitting
        // on their rpc, so this is unambiguous); otherwise it must be a
        // sibling and the parent is inherited.
        std::vector<std::size_t> parent_of(block.stack.size(), 0);
        for (std::size_t i = 1; i < block.stack.size(); ++i) {
            const BlockEntry &entry = block.stack[i];
            const BlockEntry &prev = block.stack[i - 1];
            std::size_t parent;
            if (prev.pc == entry.rpc) {
                parent = i - 1;
            } else if (prev.rpc == entry.rpc) {
                parent = parent_of[i - 1];
            } else {
                throw std::logic_error(
                    "TBC: stack entry reconverges at an unrelated block");
            }
            parent_of[i] = parent;
            for (const int slot : entry_threads[i]) {
                if (entry_threads[parent].count(slot) == 0)
                    throw std::logic_error(
                        "TBC: child entry holds a thread its parent lacks");
                for (std::size_t j = parent + 1; j < i; ++j)
                    if (parent_of[j] == parent &&
                        entry_threads[j].count(slot) != 0)
                        throw std::logic_error(
                            "TBC: sibling entries share a thread");
            }
        }
    }
}

void
TbcSmx::step()
{
    const int per_scheduler = config_.issuesPerScheduler();
    const int schedulers = config_.schedulersPerSmx;

    if (check_ != nullptr && (cycle_ & 1023u) == 0) {
        verifyInvariants();
        check_->checkMemory(memory_);
        check_->checkKernel(kernel_);
    }

    // Barrier maintenance: an entry whose warps have all completed (and
    // waited out their memory latency) partitions and compacts, whether
    // or not a scheduler visits the block this cycle.
    for (auto &block : blocks_) {
        if (block.exited || block.barrierUntil > cycle_)
            continue;
        bool all_done = true;
        for (const auto &warp : block.stack.back().warps)
            all_done = all_done && warp.semanticsDone &&
                       warp.readyCycle <= cycle_;
        if (all_done)
            finishEntry(block);
    }

    for (int s = 0; s < schedulers; ++s) {
        // Greedy-then-oldest over this scheduler's block partition.
        const int last = lastIssuedBlock_[static_cast<std::size_t>(s)];
        int issued = 0;
        if (last >= 0)
            issued = issueFromBlock(blocks_[static_cast<std::size_t>(last)],
                                    per_scheduler);
        if (issued == 0) {
            for (std::size_t b = static_cast<std::size_t>(s);
                 b < blocks_.size();
                 b += static_cast<std::size_t>(schedulers)) {
                issued = issueFromBlock(blocks_[b], per_scheduler);
                if (issued > 0) {
                    lastIssuedBlock_[static_cast<std::size_t>(s)] =
                        static_cast<int>(b);
                    break;
                }
            }
        }
        if (attribution_)
            attributeUnissued(s, per_scheduler - issued);
    }

    // Close the attribution/sampling cycle last (see simt::Smx::step).
    if (attribution_)
        attribution_->endCycle();
    if (sampler_)
        sampler_->tick(histogram_.instructions(), histogram_.activeThreads(),
                       kernel_.raysCompleted());

    ++cycle_;
}

void
TbcSmx::attributeUnissued(int scheduler, int slots)
{
    if (slots <= 0)
        return;

    // Blame the first culprit block of this scheduler's partition, in
    // partition order (deterministic). The TBC-specific stall is the
    // block-wide divergence barrier, charged to stalled-scoreboard; a
    // block whose compacted warps wait on memory is stalled-memory.
    const ThreadBlock *barrier = nullptr;
    const ThreadBlock *memory = nullptr;
    const ThreadBlock *live = nullptr;
    for (std::size_t b = static_cast<std::size_t>(scheduler);
         b < blocks_.size();
         b += static_cast<std::size_t>(config_.schedulersPerSmx)) {
        const ThreadBlock &block = blocks_[b];
        if (block.exited)
            continue;
        if (live == nullptr)
            live = &block;
        if (block.barrierUntil > cycle_) {
            if (barrier == nullptr)
                barrier = &block;
        } else if (memory == nullptr) {
            for (const auto &warp : block.stack.back().warps) {
                if (warp.readyCycle > cycle_) {
                    memory = &block;
                    break;
                }
            }
        }
    }

    obs::SlotBucket bucket = obs::SlotBucket::Drained;
    const ThreadBlock *blame = nullptr;
    if (live == nullptr) {
        bucket = obs::SlotBucket::Drained;
    } else if (barrier != nullptr) {
        bucket = obs::SlotBucket::StalledScoreboard;
        blame = barrier;
    } else if (memory != nullptr) {
        bucket = obs::SlotBucket::StalledMemory;
        blame = memory;
    } else {
        bucket = obs::SlotBucket::NoReadyWarp;
        blame = live;
    }
    const obs::TravPhase phase =
        blame != nullptr
            ? kernel_.program().block(blame->stack.back().pc).phase
            : obs::TravPhase::None;
    attribution_->record(bucket, phase, static_cast<std::uint64_t>(slots));
}

void
TbcSmx::run(std::uint64_t max_cycles)
{
    while (!done() && cycle_ < max_cycles)
        step();
    if (!done())
        throw std::runtime_error("TBC simulation exceeded max_cycles");
}

simt::SimStats
TbcSmx::collectStats() const
{
    simt::SimStats s;
    s.cycles = cycle_;
    s.histogram = histogram_;
    s.raysTraced = kernel_.raysCompleted();
    s.rfAccessesNormal = normalRfAccesses_.value();
    s.l1Data = memory_.l1DataStats();
    s.l1Texture = memory_.l1TextureStats();
    s.counters = counters_.snapshot();
    s.counters.add("l1d.access", s.l1Data.accesses);
    s.counters.add("l1d.miss", s.l1Data.misses);
    s.counters.add("l1t.access", s.l1Texture.accesses);
    s.counters.add("l1t.miss", s.l1Texture.misses);
    if (fault_ != nullptr && fault_->enabled()) {
        const fault::FaultCounters &f = fault_->counters();
        s.counters.add("fault.swap_bit_flips", f.swapBitFlips);
        s.counters.add("fault.cache_tag_flips", f.cacheTagFlips);
        s.counters.add("fault.dram_delayed", f.dramDelayed);
        s.counters.add("fault.dram_dropped", f.dramDropped);
        s.counters.add("fault.alloc_failures", f.allocFailures);
    }
    if (check_ != nullptr) {
        check_->checkStats(s);
        if (attribution_) {
            attribution_->verifyConservation();
            if (attribution_->cycles() != cycle_)
                throw std::logic_error(
                    "issue attribution: ledger cycles out of step with "
                    "the TBC SMX");
            const std::uint64_t issued =
                attribution_->bucketTotal(obs::SlotBucket::IssuedFull) +
                attribution_->bucketTotal(obs::SlotBucket::IssuedPartial);
            if (issued != histogram_.instructions())
                throw std::logic_error(
                    "issue attribution: issued slots disagree with the "
                    "instruction histogram");
        }
    }
    return s;
}

void
TbcSmx::setFault(fault::FaultInjector *fault)
{
    fault_ = fault;
    memory_.setFault(fault);
}

std::uint64_t
TbcSmx::progressCount() const
{
    std::uint64_t exited = 0;
    for (const auto &block : blocks_)
        if (block.exited)
            ++exited;
    return kernel_.raysCompleted() + exited;
}

void
TbcSmx::describeState(std::ostream &out) const
{
    out << "  cycle=" << cycle_ << " raysCompleted="
        << kernel_.raysCompleted() << '\n';
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const ThreadBlock &block = blocks_[b];
        out << "  block " << b;
        if (block.exited) {
            out << " exited\n";
            continue;
        }
        out << " stackDepth=" << block.stack.size();
        if (!block.stack.empty()) {
            const BlockEntry &top = block.stack.back();
            out << " top{pc=" << top.pc << " rpc=" << top.rpc
                << " warps=" << top.warps.size() << '}';
        }
        if (block.barrierUntil > cycle_)
            out << " barrierUntil=" << block.barrierUntil;
        out << '\n';
    }
    if (!deferredAccesses_.empty())
        out << "  pending deferred accesses: " << deferredAccesses_.size()
            << '\n';
}

simt::SimStats
runTbcGpu(const simt::GpuConfig &config, const TbcConfig &tbc,
          const std::function<std::unique_ptr<kernels::AilaKernel>(int)>
              &make_kernel,
          const TbcRunOptions &options)
{
    simt::SharedMemorySide shared(config.memory);

    // Same per-unit injector scheme as simt::runGpu — see GpuRunOptions.
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::unique_ptr<fault::FaultInjector> sharedInjector;
    if (options.fault.enabled()) {
        injectors.reserve(static_cast<std::size_t>(config.numSmx));
        for (int i = 0; i < config.numSmx; ++i)
            injectors.push_back(std::make_unique<fault::FaultInjector>(
                options.fault, static_cast<std::uint64_t>(i)));
        sharedInjector = std::make_unique<fault::FaultInjector>(
            options.fault,
            static_cast<std::uint64_t>(config.numSmx) + 0x10000u);
        shared.setFault(sharedInjector.get());
    }

    struct Unit
    {
        std::unique_ptr<kernels::AilaKernel> kernel;
        std::unique_ptr<TbcSmx> smx;
    };
    std::vector<Unit> units;
    units.reserve(static_cast<std::size_t>(config.numSmx));
    for (int i = 0; i < config.numSmx; ++i) {
        Unit unit;
        unit.kernel = make_kernel(i);
        unit.smx = std::make_unique<TbcSmx>(config, tbc, *unit.kernel,
                                            shared);
        unit.smx->setDeferredMemory(true);
        unit.smx->setCheck(options.check);
        if (options.fault.enabled())
            unit.smx->setFault(injectors[static_cast<std::size_t>(i)].get());
        if (options.attribution != nullptr) {
            if (i == 0) {
                const Program &program = unit.kernel->program();
                std::vector<std::string> names;
                names.reserve(
                    static_cast<std::size_t>(program.blockCount()));
                for (int b = 0; b < program.blockCount(); ++b)
                    names.push_back(program.block(b).name);
                options.attribution->setBlockNames(std::move(names));
            }
            unit.smx->setAttribution(&options.attribution->smx(i));
        }
        if (options.sampler != nullptr) {
            obs::TimeSampler &sampler = options.sampler->smx(i);
            const obs::SampleConfig &sample = options.sampler->config();
            sampler.enable(sample.interval, sample.capacity,
                           options.attribution != nullptr
                               ? &options.attribution->smx(i)
                               : nullptr);
            unit.smx->setSampler(&sampler);
        }
        units.push_back(std::move(unit));
    }

    std::vector<TbcSmx *> smxs;
    smxs.reserve(units.size());
    for (auto &unit : units)
        smxs.push_back(unit.smx.get());
    fault::Watchdog watchdog(options.watchdogCycles);
    simt::runEngine(smxs, options.maxCycles, options.smxThreads,
                    watchdog.enabled() ? &watchdog : nullptr,
                    options.cancel);

    simt::SimStats total;
    for (std::size_t i = 0; i < units.size(); ++i) {
        simt::SimStats stats = units[i].smx->collectStats();
        if (options.perSmxStats)
            options.perSmxStats(static_cast<int>(i), stats);
        if (options.onSmxRetire)
            options.onSmxRetire(static_cast<int>(i), *units[i].kernel);
        total.merge(stats);
    }
    total.l2 = shared.l2Stats();
    total.counters.add("l2.access", total.l2.accesses);
    total.counters.add("l2.miss", total.l2.misses);
    if (sharedInjector) {
        const fault::FaultCounters &f = sharedInjector->counters();
        total.counters.add("fault.cache_tag_flips", f.cacheTagFlips);
        total.counters.add("fault.dram_delayed", f.dramDelayed);
        total.counters.add("fault.dram_dropped", f.dramDropped);
    }
    return total;
}

simt::SimStats
runTbcGpu(const simt::GpuConfig &config, const TbcConfig &tbc,
          const std::function<std::unique_ptr<kernels::AilaKernel>(int)>
              &make_kernel,
          std::uint64_t max_cycles)
{
    TbcRunOptions options;
    options.maxCycles = max_cycles;
    return runTbcGpu(config, tbc, make_kernel, options);
}

} // namespace drs::baselines
