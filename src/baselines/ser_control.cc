#include "baselines/ser_control.h"

#include <algorithm>
#include <ostream>

namespace drs::baselines {

using simt::RdctrlResult;
using simt::TravState;

SerControl::SerControl(const SerConfig &config, kernels::SerKernel &kernel)
    : config_(config),
      kernel_(kernel),
      shadeBatch_(static_cast<std::size_t>(std::clamp(
          config.shadeBatch, 1,
          kernel.travWorkspace().laneCount()))),
      dispatches_(counters_.get("ser.dispatches")),
      shadeGroups_(counters_.get("ser.shade_groups")),
      shadeRays_(counters_.get("ser.shade_rays")),
      sortedKeySum_(counters_.get("ser.sorted_key_sum")),
      depositKeySum_(counters_.get("ser.deposit_key_sum"))
{
}

RdctrlResult
SerControl::dispatchShade(int row)
{
    const int lanes = kernel_.travWorkspace().laneCount();
    reorder::PullStats pull;
    const std::size_t n = kernel_.fillShadeGroup(
        row, static_cast<std::size_t>(lanes), &pull);
    shadeGroups_.add();
    shadeRays_.add(n);
    sortedKeySum_.add(pull.sortedDistinctKeys);
    depositKeySum_.add(pull.depositDistinctKeys);

    RdctrlResult result;
    result.row = row;
    result.bodyBlock = kernels::SerBlocks::kShade;
    result.mask = n >= 32 ? 0xffffffffu
                          : ((1u << static_cast<unsigned>(n)) - 1u);
    return result;
}

RdctrlResult
SerControl::onRdctrl(int warp)
{
    auto &workspace = kernel_.travWorkspace();
    const int row = warp; // fixed binding: no ray management hardware
    const int lanes = workspace.laneCount();

    std::uint32_t inner_mask = 0;
    std::uint32_t leaf_mask = 0;
    std::uint32_t hole_mask = 0;
    int inner = 0;
    int leaf = 0;
    for (int lane = 0; lane < lanes; ++lane) {
        const std::uint32_t bit = 1u << static_cast<unsigned>(lane);
        switch (workspace.state(row, lane)) {
          case TravState::Inner:
            inner_mask |= bit;
            ++inner;
            break;
          case TravState::Leaf:
            leaf_mask |= bit;
            ++leaf;
            break;
          case TravState::Fetch:
            hole_mask |= bit;
            break;
        }
    }

    // A full coherent batch is waiting: shading takes priority, so the
    // buffer cannot grow without bound while every warp traverses.
    if (kernel_.shadeQueue().size() >= shadeBatch_)
        return dispatchShade(row);

    RdctrlResult result;
    result.row = row;
    if (inner + leaf > 0) {
        dispatches_.add();
        if (inner >= leaf) {
            result.ctrl = TravState::Inner;
            result.mask = inner_mask;
        } else {
            result.ctrl = TravState::Leaf;
            result.mask = leaf_mask;
        }
        result.fetchMask = workspace.poolEmpty() ? 0 : hole_mask;
        return result;
    }
    if (!workspace.poolEmpty()) {
        dispatches_.add();
        result.ctrl = TravState::Fetch;
        result.mask = hole_mask;
        return result;
    }
    // Row and pool exhausted: drain the sort buffer, then leave.
    if (!kernel_.shadeQueue().empty())
        return dispatchShade(row);
    result.exit = true;
    return result;
}

void
SerControl::describeState(std::ostream &out) const
{
    out << "  ser control: " << kernel_.shadeQueue().size()
        << " rays parked at the shading boundary (batch " << shadeBatch_
        << ")\n";
}

} // namespace drs::baselines
