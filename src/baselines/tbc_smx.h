#pragma once

/**
 * @file
 * Thread Block Compaction baseline (Fung & Aamodt, HPCA 2011), as the
 * paper evaluates it: the Aila while-while kernel runs on thread blocks
 * of 6 warps that share a block-wide reconvergence stack. At a divergent
 * branch all warps of the block synchronize, then threads are compacted
 * into new warps — but a thread can only move to its own SIMD lane in
 * another warp (per-lane compaction), and the block-wide barrier costs
 * synchronization latency. Both limits are the reasons the paper gives
 * for TBC's modest SIMD-efficiency gains.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/cancel.h"
#include "fault/fault.h"
#include "kernels/aila_kernel.h"
#include "obs/attribution.h"
#include "obs/counters.h"
#include "obs/sampler.h"
#include "simt/check.h"
#include "simt/config.h"
#include "simt/memory.h"
#include "simt/sim_stats.h"

namespace drs::baselines {

/** TBC configuration. */
struct TbcConfig
{
    /** Warps per thread block (paper: 6, as in the TBC paper). */
    int warpsPerBlock = 6;
    /** Resident warps per SMX (runs Aila's kernel: 48). */
    int numWarps = 48;
    /** Cycles a block pays at each divergence barrier. */
    int syncLatency = 4;
    kernels::AilaConfig kernelConfig{};
};

/**
 * One SMX executing the while-while kernel under TBC. Self-contained
 * executor (the block-wide stack does not fit the per-warp Smx), sharing
 * the memory system, program and workspace semantics with the rest of
 * the simulator.
 */
class TbcSmx
{
  public:
    /**
     * @param config GPU configuration
     * @param tbc TBC parameters
     * @param kernel the Aila kernel instance bound to this SMX
     * @param shared GPU-wide L2/DRAM
     */
    TbcSmx(const simt::GpuConfig &config, const TbcConfig &tbc,
           kernels::AilaKernel &kernel, simt::SharedMemorySide &shared);

    /** Observability counter registry ("tbc.*" / "smx.rf.*" names). */
    obs::Counters &counters() { return counters_; }

    bool done() const;
    void step();
    void run(std::uint64_t max_cycles = 2'000'000'000ULL);
    std::uint64_t cycle() const { return cycle_; }

    /**
     * Deferred-memory mode (see simt::Smx::setDeferredMemory): step()
     * buffers shared-side requests; commitMemory() — called at the
     * per-cycle barrier in SMX-index order — resolves them.
     */
    void setDeferredMemory(bool deferred) { deferredMemory_ = deferred; }
    void commitMemory();

    /**
     * Attach an invariant checker (see simt::Smx::setCheck): block-stack
     * structure is verified periodically and stats at collection. Null
     * disables checking. Not owned; must outlive the SMX.
     */
    void setCheck(const simt::CheckContext *check) { check_ = check; }

    /**
     * Attach an issue-slot attribution ledger (see simt::Smx): every
     * scheduler slot of every cycle is classified, with the TBC barrier
     * charged to the stalled-scoreboard bucket. Pure observation.
     */
    void setAttribution(obs::IssueAttribution *attribution)
    {
        attribution_ = attribution;
    }

    /** Attach a windowed time-series sampler (see simt::Smx). */
    void setSampler(obs::TimeSampler *sampler) { sampler_ = sampler; }

    /**
     * Block-stack invariants: every stack is non-empty with its bottom
     * entry reconverging at the exit block; pcs/rpcs are valid blocks;
     * compaction is lane-preserving (a thread only ever occupies its home
     * lane); threads stay within their block's rows and appear at most
     * once per entry; child entries reconverge at their parent's pc and
     * hold pairwise-disjoint subsets of the parent's threads. Throws
     * std::logic_error.
     */
    void verifyInvariants() const;

    /**
     * Arm this SMX's private fault sites (L1 tag corruption); shared-side
     * faults are armed on the SharedMemorySide. The TBC has no swap
     * hardware, so it has no payload-corruption site — the same
     * FaultConfig injects strictly fewer fault kinds here, by design.
     */
    void setFault(fault::FaultInjector *fault);

    /** Forward-progress measure: completed rays + exited blocks. */
    std::uint64_t progressCount() const;

    /** Architectural-state dump for the watchdog diagnostic. */
    void describeState(std::ostream &out) const;

    simt::SimStats collectStats() const;

  private:
    /** A thread's permanent identity: its home (row, lane) slot. */
    struct ThreadRef
    {
        int row = -1;
        int lane = -1;
    };

    /** A compacted warp: per lane, one thread or none. */
    struct CompactedWarp
    {
        std::vector<ThreadRef> lanes; ///< size = warp width; row<0 = hole
        int remainingInstructions = 0;
        std::uint64_t readyCycle = 0;
        bool semanticsDone = false;
        int activeThreads() const
        {
            int n = 0;
            for (const auto &t : lanes)
                n += t.row >= 0 ? 1 : 0;
            return n;
        }
    };

    /** One block-wide reconvergence stack entry. */
    struct BlockEntry
    {
        int pc = 0;
        int rpc = 0;
        std::vector<CompactedWarp> warps;
    };

    /** One thread block: 6 warps sharing a stack. */
    struct ThreadBlock
    {
        std::vector<BlockEntry> stack;
        bool exited = false;
        /** Buffered successor per thread slot, filled at warp completion. */
        std::vector<int> nextBlocks; // indexed row-major over block slots
        std::uint64_t barrierUntil = 0;
    };

    /** Compact @p threads (per lane lists) into warps, lane-preserving. */
    static std::vector<CompactedWarp>
    compact(const std::vector<std::vector<ThreadRef>> &per_lane, int lanes);

    /** All warps of the top entry finished: partition and push. */
    void finishEntry(ThreadBlock &block);

    int issueFromBlock(ThreadBlock &block, int max_issues);
    void completeWarp(ThreadBlock &block, CompactedWarp &warp);

    /** Charge scheduler @p scheduler's unissued slots (attribution). */
    void attributeUnissued(int scheduler, int slots);

    int threadSlotIndex(const ThreadRef &t) const;

    const simt::GpuConfig &config_;
    TbcConfig tbc_;
    kernels::AilaKernel &kernel_;
    simt::SmxMemory memory_;
    std::vector<ThreadBlock> blocks_;
    std::vector<int> lastIssuedBlock_; ///< per scheduler
    std::uint64_t cycle_ = 0;

    stats::ActiveThreadHistogram histogram_;

    /** Observability counters; see obs::Counters. */
    obs::Counters counters_;
    obs::Counter &normalRfAccesses_;
    obs::Counter &syncStallCycles_;

    /**
     * One L1-resolved access awaiting its shared-side commit. The pointer
     * stays valid between completeWarp and commitMemory: block stacks are
     * only restructured by finishEntry, which runs at the start of the
     * next step — after the commit.
     */
    struct DeferredAccess
    {
        CompactedWarp *warp = nullptr;
        std::uint64_t issueCycle = 0;
        simt::PendingWarpAccess pending;
    };

    bool deferredMemory_ = false;
    std::vector<DeferredAccess> deferredAccesses_;
    const simt::CheckContext *check_ = nullptr;
    fault::FaultInjector *fault_ = nullptr;
    obs::IssueAttribution *attribution_ = nullptr;
    obs::TimeSampler *sampler_ = nullptr;
};

/** Execution options (mirrors simt::GpuRunOptions). */
struct TbcRunOptions
{
    std::uint64_t maxCycles = 2'000'000'000ULL;
    /** Worker threads stepping SMXs concurrently; <= 1 = sequential. */
    int smxThreads = 1;
    /** Per-SMX stats hook; see simt::GpuRunOptions::perSmxStats. */
    std::function<void(int smx_index, const simt::SimStats &stats)>
        perSmxStats;
    /** Per-SMX kernel retirement hook (hit harvesting). */
    std::function<void(int smx_index, kernels::AilaKernel &kernel)>
        onSmxRetire;
    /** Invariant checker (see simt::GpuRunOptions::check); null = off. */
    const simt::CheckContext *check = nullptr;
    /** Issue-slot attribution (see simt::GpuRunOptions); null = off. */
    obs::AttributionCollector *attribution = nullptr;
    /** Time-series sampling (see simt::GpuRunOptions); null = off. */
    obs::SamplerCollector *sampler = nullptr;
    /** Fault injection (see simt::GpuRunOptions::fault); seed 0 = off. */
    fault::FaultConfig fault{};
    /** Watchdog budget in cycles (see simt::GpuRunOptions); 0 = off. */
    std::uint64_t watchdogCycles = 0;
    /** Cooperative stop/deadline token (may be null). */
    const exec::CancelToken *cancel = nullptr;
};

/**
 * Run a full ray batch on a TBC GPU (all SMXs, shared L2).
 *
 * @param config GPU parameters
 * @param tbc TBC parameters
 * @param make_kernel per-SMX Aila kernel factory
 */
simt::SimStats runTbcGpu(
    const simt::GpuConfig &config, const TbcConfig &tbc,
    const std::function<std::unique_ptr<kernels::AilaKernel>(int)>
        &make_kernel,
    const TbcRunOptions &options);

/** Convenience overload: sequential engine with a cycle bound. */
simt::SimStats runTbcGpu(
    const simt::GpuConfig &config, const TbcConfig &tbc,
    const std::function<std::unique_ptr<kernels::AilaKernel>(int)>
        &make_kernel,
    std::uint64_t max_cycles = 2'000'000'000ULL);

} // namespace drs::baselines
