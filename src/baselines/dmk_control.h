#pragma once

/**
 * @file
 * Dynamic Micro-Kernel (DMK) baseline (Zambreno & Steffen, MICRO 2010),
 * modeled as the paper's Section 4.4 describes it: when a warp's rays
 * diverge in traversal state, the warp explicitly dumps its live rays to
 * on-chip spawn memory and reloads a same-state group, paying
 * spawn-related instructions (the SI category of Figure 10) plus
 * unhidden spawn-memory bank-conflict cycles. Warps keep their own rows
 * (no renaming hardware); regrouping is pure data movement.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/cost_model.h"
#include "kernels/trav_workspace.h"
#include "obs/counters.h"
#include "simt/controller.h"

namespace drs::simt {
class Smx;
}

namespace drs::baselines {

/** DMK hardware configuration. */
struct DmkConfig
{
    /** Spawn memory banks per SMX (paper: configured to 32). */
    int spawnBanks = 32;
    /** Resident warps (paper: 54 for the DMK kernel). */
    int numWarps = 54;
    /**
     * DMK regroups whenever a warp diverges: any opposite-state minority
     * beyond a single straggler triggers a micro-kernel spawn.
     */
    int dispatchMinorityTolerance = 1;
    /** Same batched hole-refill threshold as the DRS. */
    int fetchRefillThreshold = 4;
    kernels::CostModel cost = kernels::defaultCostModel();
};

/**
 * Counters for tests/benches. A value snapshot of the control's obs
 * counters ("dmk.*" names), which are the source of truth.
 */
struct DmkStats
{
    std::uint64_t spawns = 0;           ///< dump+reload events
    std::uint64_t raysDumped = 0;
    std::uint64_t raysLoaded = 0;
    std::uint64_t conflictCycles = 0;   ///< unhidden bank-conflict cycles
};

/**
 * DMK controller for one SMX. Drives the same while-if kernel as the DRS
 * but regroups rays through spawn memory instead of renaming warps.
 */
class DmkControl : public simt::WarpController
{
  public:
    /**
     * @param config DMK parameters
     * @param workspace the kernel's concrete workspace (DMK moves ray
     *        payloads through spawn memory, which requires slot access)
     */
    DmkControl(const DmkConfig &config, kernels::TravWorkspace &workspace);

    void attach(simt::Smx &smx) override { smx_ = &smx; }
    simt::RdctrlResult onRdctrl(int warp) override;
    void cycle(int issued_instructions) override { (void)issued_instructions; }
    obs::CounterSnapshot countersSnapshot() const override
    {
        return counters_.snapshot();
    }

    DmkStats stats() const;

    /** Rays currently parked in spawn memory (per state; tests). */
    std::size_t pooledRays(simt::TravState state) const;

    /**
     * Spawn-memory invariants: pooled payloads match their pool's state
     * and hold a real ray, spawn slots are unique across pools and the
     * free list (and account for every allocated slot), ray ids are
     * unique across workspace and pools, and the strict conservation law
     * holds: completed + live-in-rows + unfetched + pooled rays equals
     * the stripe size. Throws std::logic_error.
     */
    void verifyInvariants() const override;

  private:
    /** A ray parked in spawn memory. */
    struct PooledRay
    {
        kernels::RaySlot payload;
        int spawnSlot = 0; ///< spawn-memory slot (bank = slot % banks)
    };

    /** Bank-conflict cycles of moving @p slots through spawn memory. */
    std::uint32_t conflictCost(const std::vector<int> &slots) const;

    int allocSpawnSlot();
    void freeSpawnSlot(int slot);

    DmkConfig config_;
    kernels::TravWorkspace &workspace_;
    simt::Smx *smx_ = nullptr;
    std::array<std::vector<PooledRay>, simt::kNumTravStates> pools_;
    std::vector<int> freeSlots_;
    int nextSpawnSlot_ = 0;

    /** Observability counters ("dmk.*"); see obs::Counters. */
    obs::Counters counters_;
    obs::Counter &spawns_;
    obs::Counter &raysDumped_;
    obs::Counter &raysLoaded_;
    obs::Counter &conflictCycles_;
};

} // namespace drs::baselines
