#pragma once

/**
 * @file
 * Kernel intermediate representation. A simulated kernel is a control-flow
 * graph of basic blocks; each block carries the number of warp instructions
 * it represents and flags describing its memory/special behaviour. Per-
 * thread semantics (which successor a thread takes, which address it loads)
 * are supplied by the kernel implementation at execution time — the IR only
 * fixes the *set* of possible successors so reconvergence points can be
 * computed statically, exactly like compiling real SASS fixes branch
 * targets.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.h"

namespace drs::simt {

/** Which cache hierarchy path a block's memory instruction uses. */
enum class MemSpace : std::uint8_t
{
    None,    ///< no memory instruction in this block
    Global,  ///< through the L1 data cache (ray fetch, result store)
    Texture, ///< through the L1 texture cache (BVH nodes, triangles)
};

/** Special hardware interaction performed when a block issues. */
enum class SpecialOp : std::uint8_t
{
    None,
    /**
     * The paper's rdctrl instruction: reads a traversal-control value from
     * the DRS (or DMK) hardware. May stall warp issue; its successor is
     * chosen uniformly for the whole warp by the controller.
     */
    Rdctrl,
};

/** One basic block of a kernel. */
struct Block
{
    std::string name;
    /** Number of warp instructions this block issues when executed. */
    int instructionCount = 1;
    /** All statically possible successor block ids (empty only for exit). */
    std::vector<int> successors;
    MemSpace memSpace = MemSpace::None;
    SpecialOp specialOp = SpecialOp::None;
    /**
     * Instructions of this block are micro-kernel spawn overhead (the DMK
     * "SI" category of Figure 10) rather than useful traversal work.
     */
    bool spawnRelated = false;
    /**
     * Traversal phase the cycle-attribution profiler charges this block's
     * issue slots (and stalls blamed on warps parked here) to. Control
     * and exit blocks stay None.
     */
    obs::TravPhase phase = obs::TravPhase::None;
};

/**
 * A kernel program: blocks 0..n-1 with block 0 as entry and a designated
 * exit block. Immediately validates its CFG and computes immediate
 * post-dominators, which the SIMT stack uses as reconvergence points.
 */
class Program
{
  public:
    Program() = default;

    /**
     * @param blocks the CFG; block ids are vector indices
     * @param exit_block id of the unique exit block (no successors)
     * @throws std::invalid_argument on malformed CFGs (bad successor ids,
     *         exit with successors, blocks that cannot reach the exit)
     */
    Program(std::vector<Block> blocks, int exit_block);

    const Block &block(int id) const { return blocks_.at(id); }
    int blockCount() const { return static_cast<int>(blocks_.size()); }
    int exitBlock() const { return exitBlock_; }

    /**
     * Immediate post-dominator of block @p id — the reconvergence point
     * pushed by the SIMT stack when @p id diverges. The exit block's ipdom
     * is itself.
     */
    int immediatePostDominator(int id) const { return ipdom_.at(id); }

    /** Total instruction count along blocks (diagnostics). */
    int totalInstructionCount() const;

  private:
    void validate() const;
    void computePostDominators();

    std::vector<Block> blocks_;
    int exitBlock_ = 0;
    std::vector<int> ipdom_;
};

} // namespace drs::simt
