#include "simt/warp.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace drs::simt {

Warp::Warp(int id, int row, int entry_block, int exit_block, int lanes)
    : id_(id), row_(row), exitBlock_(exit_block), lanes_(lanes)
{
    if (lanes < 1 || lanes > 32)
        throw std::invalid_argument(
            "Warp: lanes must be in [1, 32] (lane masks are 32-bit)");
    stack_.push_back(StackEntry{entry_block, exit_block, fullMask(lanes)});
    if (entry_block == exit_block)
        exited_ = true;
}

void
Warp::applySuccessors(const std::vector<int> &next_blocks,
                      const Program &program)
{
    assert(!exited_);
    StackEntry &top = stack_.back();
    const std::uint32_t mask = top.mask;
    const int branch_pc = top.pc;

    // Partition active lanes by successor.
    std::map<int, std::uint32_t> targets; // ordered for determinism
    for (int lane = 0; lane < lanes_; ++lane) {
        if (!(mask & (1u << lane)))
            continue;
        targets[next_blocks[static_cast<std::size_t>(lane)]] |= 1u << lane;
    }
    assert(!targets.empty());

    if (targets.size() == 1) {
        const int next = targets.begin()->first;
        if (next == top.rpc) {
            // Reached the reconvergence point: rejoin the entry below.
            if (stack_.size() > 1) {
                stack_.pop_back();
            } else {
                // The bottom entry's rpc must be the exit block — pushed
                // that way in the constructor and never rewritten. If it
                // ever weren't, overwriting pc here would skip the exit
                // re-check below and the warp would keep running at its
                // "reconvergence" block. Fail loudly instead of
                // continuing on a corrupted stack.
                if (top.rpc != exitBlock_)
                    throw std::logic_error(
                        "Warp: bottom stack entry reconverges at a "
                        "non-exit block");
                top.pc = next;
            }
        } else {
            top.pc = next;
        }
    } else {
        // Divergence: the current entry becomes the reconvergence entry at
        // the immediate post-dominator; one entry per target is pushed.
        const int rpc = program.immediatePostDominator(branch_pc);
        top.pc = rpc;
        // Push in descending target order so execution order is
        // deterministic; any order is architecturally valid.
        for (auto it = targets.begin(); it != targets.end(); ++it) {
            if (it->first == rpc)
                continue; // these lanes wait at the reconvergence entry
            stack_.push_back(StackEntry{it->first, rpc, it->second});
        }
    }

    popConverged();
    if (stack_.size() == 1 && stack_.back().pc == exitBlock_)
        exited_ = true;
}

void
Warp::pushUniformBody(int body_block, std::uint32_t mask, int rpc)
{
    assert(!exited_);
    assert(mask != 0);
    stack_.push_back(StackEntry{body_block, rpc, mask});
}

void
Warp::forceExit()
{
    stack_.clear();
    stack_.push_back(StackEntry{exitBlock_, exitBlock_, 0});
    exited_ = true;
}

void
Warp::popConverged()
{
    while (stack_.size() > 1 && stack_.back().pc == stack_.back().rpc)
        stack_.pop_back();
}

} // namespace drs::simt
