#include "simt/smx.h"

#include "fault/fault.h"

#include <cassert>
#include <ostream>
#include <stdexcept>

namespace drs::simt {

namespace {

/** Approximate operand-collector traffic of one warp instruction. */
constexpr std::uint64_t kRfAccessesPerInstruction = 3;

} // namespace

Smx::Smx(const GpuConfig &config, Kernel &kernel, WarpController *controller,
         int num_warps, SharedMemorySide &shared)
    : config_(config),
      kernel_(kernel),
      controller_(controller),
      memory_(config.memory, shared),
      lastIssued_(static_cast<std::size_t>(config.schedulersPerSmx), -1),
      rdctrlIssued_(counters_.get("smx.rdctrl.issued")),
      rdctrlStalledIssues_(counters_.get("smx.rdctrl.stalled_issues")),
      rdctrlStallCycles_(counters_.get("smx.rdctrl.stall_cycles")),
      normalRfAccesses_(counters_.get("smx.rf.normal_accesses")),
      shuffleRfAccesses_(counters_.get("smx.rf.shuffle_accesses")),
      raySwapsCompleted_(counters_.get("smx.swap.completed")),
      raySwapCycles_(counters_.get("smx.swap.cycles")),
      spawnConflictCycles_(counters_.get("smx.spawn.conflict_cycles")),
      issueIdleCycles_(counters_.get("smx.issue.idle_cycles")),
      blockIssue_(static_cast<std::size_t>(kernel.program().blockCount()),
                  {0, 0}),
      nextBlocks_(static_cast<std::size_t>(config.simdLanes), -1),
      memAddresses_()
{
    // Loud bounds validation up front: the issue loop masks lanes with
    // 1u << lane and indexes warps_ with static_cast<int>, so an
    // out-of-range width or warp count would wrap silently instead of
    // failing. Plain throws (not assert) — the default build is
    // RelWithDebInfo with NDEBUG.
    if (config.simdLanes < 1 || config.simdLanes > 32)
        throw std::invalid_argument(
            "Smx: simdLanes must be in [1, 32] (lane masks are 32-bit)");
    if (num_warps < 1)
        throw std::invalid_argument("Smx: need at least one resident warp");
    if (config.schedulersPerSmx < 1)
        throw std::invalid_argument("Smx: need at least one scheduler");

    const Program &prog = kernel.program();
    const int entry = 0;
    warps_.reserve(static_cast<std::size_t>(num_warps));
    for (int w = 0; w < num_warps; ++w) {
        warps_.emplace_back(w, w, entry, prog.exitBlock(), config.simdLanes);
        warps_.back().age = static_cast<std::uint64_t>(w);
    }
    memAddresses_.reserve(static_cast<std::size_t>(config.simdLanes));
}

bool
Smx::done() const
{
    for (const auto &w : warps_)
        if (!w.exited())
            return false;
    return true;
}

bool
Smx::warpReady(const Warp &warp) const
{
    return !warp.exited() && warp.readyCycle <= cycle_;
}

bool
Smx::resolveRdctrl(Warp &warp)
{
    assert(controller_ != nullptr);
    const RdctrlResult result = controller_->onRdctrl(warp.id());
    if (result.stall) {
        if (!warp.stalledOnRdctrl) {
            warp.stalledOnRdctrl = true;
            warp.stallStartCycle = cycle_;
            rdctrlStalledIssues_.add();
        }
        return false;
    }
    if (warp.stalledOnRdctrl && tracer_ && tracer_->enabled())
        tracer_->record(obs::TraceEventKind::RdctrlStall, warp.id(),
                        warp.stallStartCycle, cycle_);
    warp.stalledOnRdctrl = false;
    warp.rdctrlResolved = true;
    warp.pendingExit = result.exit;
    warp.pendingBody = result.exit      ? -1
                       : result.bodyBlock >= 0
                           ? result.bodyBlock
                           : kernel_.blockForState(result.ctrl);
    warp.pendingMask = result.mask;
    warp.pendingFetchMask = result.fetchMask;
    warp.pendingFetchBody =
        result.fetchMask ? kernel_.blockForState(TravState::Fetch) : -1;
    if (result.row >= 0)
        warp.bindRow(result.row);
    warp.overheadInstructions = result.overheadInstructions;
    if (result.overheadStallCycles > 0) {
        warp.readyCycle = cycle_ + result.overheadStallCycles;
        warp.waitReason = WarpWait::SpawnOverhead;
        spawnConflictCycles_.add(result.overheadStallCycles);
        if (tracer_ && tracer_->enabled())
            tracer_->record(obs::TraceEventKind::SpawnOverhead, warp.id(),
                            cycle_, cycle_ + result.overheadStallCycles,
                            result.overheadInstructions);
    }
    return true;
}

int
Smx::issueFromWarp(Warp &warp, int max_issues)
{
    if (warp.exited() || warp.readyCycle > cycle_)
        return 0;

    const Program &prog = kernel_.program();

    // Starting a fresh block: handle the rdctrl handshake first.
    if (warp.remainingInstructions == 0 && warp.overheadInstructions == 0) {
        const Block &block = prog.block(warp.pc());
        if (block.specialOp == SpecialOp::Rdctrl && !warp.rdctrlResolved) {
            if (controller_ == nullptr)
                throw std::logic_error(
                    "rdctrl kernel running without a controller");
            if (!resolveRdctrl(warp))
                return 0;
            if (warp.readyCycle > cycle_)
                return 0; // spawn-overhead stall charged by the controller
        }
        warp.remainingInstructions = block.instructionCount;
        warp.blockStartCycle = cycle_;
    }

    const Block &block = prog.block(warp.pc());
    const int active = popcount(warp.activeMask());
    int issued = 0;
    while (issued < max_issues &&
           (warp.overheadInstructions > 0 || warp.remainingInstructions > 0)) {
        if (warp.overheadInstructions > 0) {
            // DMK spawn data movement: full-warp instructions tagged SI.
            histogram_.recordInstruction(config_.simdLanes, true);
            --warp.overheadInstructions;
            if (attribution_)
                attribution_->record(obs::SlotBucket::IssuedFull,
                                     obs::TravPhase::None);
        } else {
            histogram_.recordInstruction(active, block.spawnRelated);
            auto &issue = blockIssue_[static_cast<std::size_t>(warp.pc())];
            issue.first += 1;
            issue.second += static_cast<std::uint64_t>(active);
            --warp.remainingInstructions;
            if (attribution_)
                attribution_->record(active == config_.simdLanes
                                         ? obs::SlotBucket::IssuedFull
                                         : obs::SlotBucket::IssuedPartial,
                                     block.phase);
        }
        normalRfAccesses_.add(kRfAccessesPerInstruction);
        ++issued;
        warp.lastIssueCycle = cycle_;
        if (warp.overheadInstructions == 0 &&
            warp.remainingInstructions == 0) {
            completeBlock(warp);
            break; // block boundary: stop dual issue across blocks
        }
    }
    return issued;
}

void
Smx::completeBlock(Warp &warp)
{
    const Program &prog = kernel_.program();
    const int pc = warp.pc();
    const Block &block = prog.block(pc);

    if (tracer_ && tracer_->enabled())
        tracer_->record(obs::TraceEventKind::Block, warp.id(),
                        warp.blockStartCycle, cycle_ + 1, pc);

    if (block.specialOp == SpecialOp::Rdctrl) {
        rdctrlIssued_.add();
        warp.rdctrlResolved = false;
        if (warp.pendingExit) {
            warp.forceExit();
        } else {
            assert(warp.pendingBody >= 0);
            // Hole lanes run the fetch body after the main body (both
            // entries reconverge back at rdctrl, where pc still points).
            if (warp.pendingFetchMask != 0 && warp.pendingFetchBody >= 0 &&
                warp.pendingFetchBody != warp.pendingBody) {
                warp.pushUniformBody(warp.pendingFetchBody,
                                     warp.pendingFetchMask, pc);
            }
            warp.pushUniformBody(warp.pendingBody, warp.pendingMask, pc);
        }
        if (check_)
            check_->checkWarp(warp, prog);
        return;
    }

    const std::uint32_t mask = warp.activeMask();
    memAddresses_.clear();
    std::uint32_t bytes = 0;
    for (int lane = 0; lane < config_.simdLanes; ++lane) {
        if (!(mask & (1u << lane)))
            continue;
        const ThreadStep step = kernel_.execute(pc, warp.row(), lane);
        nextBlocks_[static_cast<std::size_t>(lane)] = step.nextBlock;
        if (block.memSpace != MemSpace::None && step.memBytes > 0) {
            memAddresses_.push_back(step.memAddress);
            bytes = step.memBytes;
        }
    }

    if (!memAddresses_.empty()) {
        if (deferredMemory_) {
            DeferredAccess deferred;
            deferred.warp = warp.id();
            deferred.issueCycle = cycle_;
            deferred.pending =
                memory_.resolveL1(block.memSpace, memAddresses_, bytes);
            deferredAccesses_.push_back(std::move(deferred));
        } else {
            const std::uint32_t latency =
                memory_.warpAccess(block.memSpace, memAddresses_, bytes);
            warp.readyCycle = cycle_ + latency;
            warp.waitReason = WarpWait::Memory;
        }
    }

    warp.applySuccessors(nextBlocks_, prog);
    if (check_)
        check_->checkWarp(warp, prog);
}

void
Smx::step()
{
    // Periodic deep checks: cheap per-event checks (checkWarp) run at
    // every stack change, the heavier memory/workspace/controller scans
    // amortize over a window of cycles. The final state is re-checked by
    // the run-level verification in the harness.
    if (check_ && (cycle_ & 1023u) == 0) {
        check_->checkMemory(memory_);
        check_->checkKernel(kernel_);
        if (controller_ != nullptr)
            controller_->verifyInvariants();
    }

    int issued_total = 0;
    const int per_scheduler = config_.issuesPerScheduler();
    const int schedulers = config_.schedulersPerSmx;

    for (int s = 0; s < schedulers; ++s) {
        // Greedy-then-oldest: try the warp this scheduler issued from
        // last; when it cannot issue, fall back to the oldest ready warp.
        int issued = 0;
        const int last = lastIssued_[static_cast<std::size_t>(s)];
        if (last >= 0) {
            Warp &warp = warps_[static_cast<std::size_t>(last)];
            if (warpReady(warp))
                issued = issueFromWarp(warp, per_scheduler);
        }

        if (issued == 0) {
            // Oldest-first scan over this scheduler's warp partition;
            // warps that fail to issue (e.g. stalled on rdctrl) are
            // skipped and the next-oldest is tried.
            bool have_floor = false;
            std::uint64_t age_floor = 0;
            while (issued == 0) {
                int candidate = -1;
                std::uint64_t cand_age = ~0ULL;
                for (std::size_t w = static_cast<std::size_t>(s);
                     w < warps_.size();
                     w += static_cast<std::size_t>(schedulers)) {
                    Warp &warp = warps_[w];
                    if (!warpReady(warp))
                        continue;
                    if (have_floor && warp.age <= age_floor)
                        continue;
                    if (warp.age < cand_age) {
                        cand_age = warp.age;
                        candidate = static_cast<int>(w);
                    }
                }
                if (candidate < 0)
                    break;
                issued = issueFromWarp(
                    warps_[static_cast<std::size_t>(candidate)],
                    per_scheduler);
                if (issued > 0) {
                    lastIssued_[static_cast<std::size_t>(s)] = candidate;
                } else {
                    have_floor = true;
                    age_floor = cand_age;
                }
            }
        }
        if (attribution_)
            attributeUnissued(s, per_scheduler - issued);
        issued_total += issued;
    }

    // Count stall time of rdctrl-stalled warps (Figure 9's metric).
    for (const auto &w : warps_)
        if (w.stalledOnRdctrl && !w.exited())
            rdctrlStallCycles_.add();

    if (issued_total == 0)
        issueIdleCycles_.add();

    if (controller_ != nullptr)
        controller_->cycle(issued_total);

    // Close the attribution/sampling cycle last so the ledgers see the
    // whole cycle; endCycle enforces per-cycle slot conservation.
    if (attribution_)
        attribution_->endCycle();
    if (sampler_)
        sampler_->tick(histogram_.instructions(), histogram_.activeThreads(),
                       kernel_.raysCompleted());

    ++cycle_;
}

void
Smx::attributeUnissued(int scheduler, int slots)
{
    if (slots <= 0)
        return;

    // Blame the oldest culprit warp of this scheduler's partition, with
    // the same priority the taxonomy lists: a warp parked by the ray
    // hardware outranks a memory wait, which outranks an in-core hazard,
    // which outranks plain "nothing eligible".
    const Warp *rdctrl = nullptr;
    const Warp *memory = nullptr;
    const Warp *hazard = nullptr;
    const Warp *live = nullptr;
    const auto oldest = [](const Warp *best, const Warp &warp) {
        return best == nullptr || warp.age < best->age ? &warp : best;
    };
    for (std::size_t w = static_cast<std::size_t>(scheduler);
         w < warps_.size();
         w += static_cast<std::size_t>(config_.schedulersPerSmx)) {
        const Warp &warp = warps_[w];
        if (warp.exited())
            continue;
        live = oldest(live, warp);
        if (warp.stalledOnRdctrl)
            rdctrl = oldest(rdctrl, warp);
        else if (warp.readyCycle > cycle_) {
            if (warp.waitReason == WarpWait::SpawnOverhead)
                hazard = oldest(hazard, warp);
            else
                memory = oldest(memory, warp);
        }
    }

    obs::SlotBucket bucket = obs::SlotBucket::Drained;
    const Warp *blame = nullptr;
    if (live == nullptr) {
        bucket = obs::SlotBucket::Drained;
    } else if (rdctrl != nullptr) {
        bucket = obs::SlotBucket::StalledRdctrl;
        blame = rdctrl;
    } else if (memory != nullptr) {
        bucket = obs::SlotBucket::StalledMemory;
        blame = memory;
    } else if (hazard != nullptr) {
        bucket = obs::SlotBucket::StalledScoreboard;
        blame = hazard;
    } else {
        // Every live warp is nominally ready yet the scheduler came up
        // short — no eligible warp, or dual-issue width lost at a block
        // boundary. Charge the oldest live warp's phase.
        bucket = obs::SlotBucket::NoReadyWarp;
        blame = live;
    }
    const obs::TravPhase phase =
        blame != nullptr ? kernel_.program().block(blame->pc()).phase
                         : obs::TravPhase::None;
    attribution_->record(bucket, phase, static_cast<std::uint64_t>(slots));
}

void
Smx::commitMemory()
{
    // FIFO order: the sequential engine's L2 sees this SMX's accesses in
    // exactly the order the schedulers produced them within the cycle.
    for (const DeferredAccess &d : deferredAccesses_) {
        const std::uint32_t latency = memory_.commitAccess(d.pending);
        Warp &warp = warps_[static_cast<std::size_t>(d.warp)];
        warp.readyCycle = d.issueCycle + latency;
        warp.waitReason = WarpWait::Memory;
    }
    deferredAccesses_.clear();
}

void
Smx::run(std::uint64_t max_cycles)
{
    while (!done() && cycle_ < max_cycles)
        step();
}

void
Smx::setFault(fault::FaultInjector *fault)
{
    fault_ = fault;
    memory_.setFault(fault);
    if (controller_ != nullptr)
        controller_->setFault(fault);
}

std::uint64_t
Smx::progressCount() const
{
    std::uint64_t exited = 0;
    for (const auto &w : warps_)
        if (w.exited())
            ++exited;
    return kernel_.raysCompleted() + exited;
}

void
Smx::describeState(std::ostream &out) const
{
    out << "  cycle=" << cycle_ << " raysCompleted="
        << kernel_.raysCompleted() << '\n';
    for (const auto &w : warps_) {
        out << "  warp " << w.id();
        if (w.exited()) {
            out << " exited\n";
            continue;
        }
        out << " row=" << w.row() << " age=" << w.age
            << " readyCycle=" << w.readyCycle;
        if (w.stalledOnRdctrl)
            out << " STALLED-on-rdctrl since=" << w.stallStartCycle;
        out << " stack=[";
        for (std::size_t i = 0; i < w.stack().size(); ++i) {
            const auto &e = w.stack()[i];
            if (i)
                out << ' ';
            out << "{pc=" << e.pc << " rpc=" << e.rpc << " mask=0x"
                << std::hex << e.mask << std::dec << '}';
        }
        out << "]\n";
    }
    if (!deferredAccesses_.empty()) {
        out << "  pending deferred accesses:";
        for (const DeferredAccess &d : deferredAccesses_)
            out << " {warp=" << d.warp << " issued=" << d.issueCycle
                << " missLines=" << d.pending.missLines.size() << '}';
        out << '\n';
    }
    if (controller_ != nullptr)
        controller_->describeState(out);
}

SimStats
Smx::collectStats() const
{
    SimStats s;
    s.cycles = cycle_;
    s.histogram = histogram_;
    s.raysTraced = kernel_.raysCompleted();
    s.rdctrlIssued = rdctrlIssued_.value();
    s.rdctrlStalledIssues = rdctrlStalledIssues_.value();
    s.rdctrlStallCycles = rdctrlStallCycles_.value();
    s.rfAccessesNormal = normalRfAccesses_.value();
    s.rfAccessesShuffle = shuffleRfAccesses_.value();
    s.raySwapsCompleted = raySwapsCompleted_.value();
    s.raySwapCycles = raySwapCycles_.value();
    s.spawnBankConflictCycles = spawnConflictCycles_.value();
    s.blockIssue = blockIssue_;
    s.l1Data = memory_.l1DataStats();
    s.l1Texture = memory_.l1TextureStats();

    // The exported counter snapshot: the SMX registry, the attached
    // controller's registry, and the cache models bridged under their
    // hierarchical names.
    s.counters = counters_.snapshot();
    if (controller_ != nullptr)
        s.counters.merge(controller_->countersSnapshot());
    s.counters.add("l1d.access", s.l1Data.accesses);
    s.counters.add("l1d.miss", s.l1Data.misses);
    s.counters.add("l1t.access", s.l1Texture.accesses);
    s.counters.add("l1t.miss", s.l1Texture.misses);
    if (fault_ != nullptr && fault_->enabled()) {
        const fault::FaultCounters &f = fault_->counters();
        s.counters.add("fault.swap_bit_flips", f.swapBitFlips);
        s.counters.add("fault.cache_tag_flips", f.cacheTagFlips);
        s.counters.add("fault.dram_delayed", f.dramDelayed);
        s.counters.add("fault.dram_dropped", f.dramDropped);
        s.counters.add("fault.alloc_failures", f.allocFailures);
    }
    if (check_) {
        check_->checkStats(s);
        if (attribution_) {
            // Hard conservation invariant of the attribution ledger:
            // every slot of every cycle classified exactly once, and the
            // issued buckets must agree with the instruction histogram.
            attribution_->verifyConservation();
            if (attribution_->cycles() != cycle_)
                throw std::logic_error(
                    "issue attribution: ledger cycles out of step with "
                    "the SMX");
            const std::uint64_t issued =
                attribution_->bucketTotal(obs::SlotBucket::IssuedFull) +
                attribution_->bucketTotal(obs::SlotBucket::IssuedPartial);
            if (issued != histogram_.instructions())
                throw std::logic_error(
                    "issue attribution: issued slots disagree with the "
                    "instruction histogram");
        }
    }
    return s;
}

} // namespace drs::simt
