#pragma once

/**
 * @file
 * Memory hierarchy: per-SMX L1 data and L1 texture caches in front of a
 * GPU-wide shared L2 and a fixed-latency DRAM, as configured by the
 * paper's Table 1. A warp memory instruction coalesces its lanes'
 * addresses into distinct cache lines; the warp then waits for the worst
 * line plus a small per-line serialization charge.
 */

#include <cstdint>
#include <vector>

#include "simt/cache.h"
#include "simt/config.h"
#include "simt/kernel_ir.h"

namespace drs::simt {

/** The GPU-wide shared memory side (L2 + DRAM). */
class SharedMemorySide
{
  public:
    explicit SharedMemorySide(const MemoryConfig &config);

    /** Access one line address; returns latency beyond the L1 miss. */
    std::uint32_t accessLine(std::uint64_t address);

    const CacheStats &l2Stats() const { return l2_.stats(); }
    void resetStats() { l2_.resetStats(); }
    void flush() { l2_.flush(); }

    /** L2 structural invariants; throws std::logic_error on violation. */
    void verifyInvariants() const { l2_.verifyInvariants(); }

    /**
     * Attach a fault injector (nullptr detaches). Arms L2 tag corruption
     * plus delayed/dropped DRAM responses: a delayed response adds extra
     * cycles to the line latency, a dropped one charges a full retry
     * penalty. Callers in the parallel engine must only reach this object
     * from the cycle barrier (SMX-index order) so the injector's RNG
     * stream stays deterministic.
     */
    void setFault(fault::FaultInjector *fault)
    {
        fault_ = fault;
        l2_.setFault(fault);
    }

  private:
    MemoryConfig config_;
    Cache l2_;
    fault::FaultInjector *fault_ = nullptr;
};

/**
 * One warp access with its private (L1) half resolved and its shared (L2)
 * half still pending. The parallel GPU engine buffers these per SMX while
 * SMXs step concurrently and commits them to the SharedMemorySide at the
 * cycle barrier in SMX-index order, which reproduces the sequential
 * engine's L2 access interleaving exactly.
 */
struct PendingWarpAccess
{
    /** Worst latency among lines already satisfied by the L1. */
    std::uint32_t baseLatency = 0;
    /** Per-line serialization charge (fixed at resolve time). */
    std::uint32_t extraLatency = 0;
    /** L1 hit latency added in front of each pending L2 line. */
    std::uint32_t l1Latency = 0;
    /** Byte addresses of the lines that missed the L1. */
    std::vector<std::uint64_t> missLines;
};

/** The per-SMX memory path (both L1s), backed by a SharedMemorySide. */
class SmxMemory
{
  public:
    SmxMemory(const MemoryConfig &config, SharedMemorySide &shared);

    /**
     * Perform a coalesced warp access.
     *
     * @param space Global (L1D) or Texture (L1T)
     * @param addresses per-active-lane byte addresses
     * @param bytes access width per lane
     * @return total warp latency in cycles
     */
    std::uint32_t warpAccess(MemSpace space,
                             const std::vector<std::uint64_t> &addresses,
                             std::uint32_t bytes);

    /**
     * Phase 1 of a warp access: coalesce lanes into lines and look them up
     * in the private L1 (which this call updates). Lines that miss are
     * returned for a later commitAccess() against the shared side; the L2
     * is NOT touched. warpAccess() == resolveL1() + commitAccess().
     */
    PendingWarpAccess resolveL1(MemSpace space,
                                const std::vector<std::uint64_t> &addresses,
                                std::uint32_t bytes);

    /**
     * Phase 2: play the pending L2 lines against the shared side (in the
     * order resolveL1 produced them) and return the final warp latency.
     */
    std::uint32_t commitAccess(const PendingWarpAccess &pending);

    const CacheStats &l1DataStats() const { return l1Data_.stats(); }
    const CacheStats &l1TextureStats() const { return l1Texture_.stats(); }
    void resetStats();
    void flush();

    /** Both L1s' structural invariants; throws std::logic_error. */
    void verifyInvariants() const
    {
        l1Data_.verifyInvariants();
        l1Texture_.verifyInvariants();
    }

    /** Arm L1 tag corruption on both private caches (nullptr detaches). */
    void setFault(fault::FaultInjector *fault)
    {
        l1Data_.setFault(fault);
        l1Texture_.setFault(fault);
    }

  private:
    MemoryConfig config_;
    SharedMemorySide &shared_;
    Cache l1Data_;
    Cache l1Texture_;
};

} // namespace drs::simt
