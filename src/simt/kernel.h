#pragma once

/**
 * @file
 * The kernel execution interface: a Program (CFG) plus per-thread
 * semantics over row/lane-addressed thread state. One Kernel instance is
 * bound to one SMX (it owns that SMX's ray pool and rows).
 */

#include <cstdint>

#include "simt/controller.h"
#include "simt/kernel_ir.h"

namespace drs::simt {

/** What one thread reports after a block's semantics execute. */
struct ThreadStep
{
    /** Successor block id (must be one of the block's successors). */
    int nextBlock = -1;
    /** Byte address touched, when the block has a memory instruction. */
    std::uint64_t memAddress = 0;
    /** Access width in bytes (0 = this lane made no access). */
    std::uint32_t memBytes = 0;
};

/**
 * A simulated kernel: static CFG + dynamic per-thread semantics.
 *
 * The SMX calls execute() for every active lane when a block's
 * instructions have issued; the kernel mutates its private thread state
 * and reports the successor plus any memory traffic.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** The kernel's control-flow graph. */
    virtual const Program &program() const = 0;

    /** Execute block @p block for the thread at (row, lane). */
    virtual ThreadStep execute(int block, int row, int lane) = 0;

    /**
     * Body entry block for traversal state @p state (used to dispatch the
     * controller's trav_ctrl_val). Only meaningful for rdctrl-style
     * kernels; others may return -1.
     */
    virtual int blockForState(TravState state) const { (void)state; return -1; }

    /** Row-addressed state storage, for ray-management hardware. */
    virtual RowWorkspace &workspace() = 0;

    /** Rays fully traced so far on this SMX. */
    virtual std::uint64_t raysCompleted() const = 0;
};

} // namespace drs::simt
