#pragma once

/**
 * @file
 * Aggregated statistics of one simulation run, covering everything the
 * paper's figures and tables report.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "simt/cache.h"
#include "stats/histogram.h"

namespace drs::simt {

/** Statistics produced by one SMX (or aggregated over a GPU). */
struct SimStats
{
    /** Cycles until this unit drained its work. */
    std::uint64_t cycles = 0;
    /** Active-thread histogram over all issued warp instructions. */
    stats::ActiveThreadHistogram histogram;
    /** Rays fully traced. */
    std::uint64_t raysTraced = 0;

    // rdctrl behaviour (Figure 9)
    std::uint64_t rdctrlIssued = 0;        ///< rdctrl instructions issued
    std::uint64_t rdctrlStalledIssues = 0; ///< those that stalled >= 1 cycle
    std::uint64_t rdctrlStallCycles = 0;   ///< total cycles spent stalled

    // Register file traffic (Section 4.4 discussion)
    std::uint64_t rfAccessesNormal = 0;  ///< operand accesses of issued instrs
    std::uint64_t rfAccessesShuffle = 0; ///< accesses made by ray shuffling

    // Ray shuffling (Table 2 discussion)
    std::uint64_t raySwapsCompleted = 0;
    std::uint64_t raySwapCycles = 0; ///< summed duration of swap operations

    // DMK spawn memory (Section 4.4 discussion)
    std::uint64_t spawnBankConflictCycles = 0;

    /**
     * Per-basic-block issue statistics, indexed by block id:
     * {instructions issued, active-thread sum}. Sized by the kernel's
     * block count; empty when unused.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> blockIssue;

    // Cache behaviour
    CacheStats l1Data;
    CacheStats l1Texture;
    CacheStats l2;

    /**
     * Snapshot of the hierarchical observability counters (obs::Counters)
     * of the unit(s) this stats object covers: "smx.*" from the SMX core,
     * "drs.*"/"dmk.*"/"tbc.*" from the attached ray-management hardware,
     * "l1d.*"/"l1t.*"/"l2.*" bridged from the cache models. Purely
     * additive — merging sums by name — and bit-deterministic like every
     * other field (the counter-consistency tests pin both properties).
     */
    obs::CounterSnapshot counters;

    /** Fraction of rdctrl issues that experienced a stall. */
    double rdctrlStallRate() const
    {
        const auto attempts = rdctrlIssued;
        return attempts ? static_cast<double>(rdctrlStalledIssues) / attempts
                        : 0.0;
    }

    /** Mean cycles one ray-swap operation took. */
    double meanSwapCycles() const
    {
        return raySwapsCompleted ? static_cast<double>(raySwapCycles) /
                                       raySwapsCompleted
                                 : 0.0;
    }

    /** Shuffle share of all register file accesses. */
    double shuffleRfFraction() const
    {
        const auto total = rfAccessesNormal + rfAccessesShuffle;
        return total ? static_cast<double>(rfAccessesShuffle) / total : 0.0;
    }

    /** Ray throughput in Mrays/s at @p clock_ghz. */
    double mraysPerSecond(double clock_ghz) const
    {
        if (cycles == 0)
            return 0.0;
        const double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
        return static_cast<double>(raysTraced) / seconds / 1e6;
    }

    /** Merge per-SMX stats; cycles take the max (SMXs run in parallel). */
    void merge(const SimStats &o)
    {
        cycles = cycles > o.cycles ? cycles : o.cycles;
        histogram.merge(o.histogram);
        raysTraced += o.raysTraced;
        rdctrlIssued += o.rdctrlIssued;
        rdctrlStalledIssues += o.rdctrlStalledIssues;
        rdctrlStallCycles += o.rdctrlStallCycles;
        rfAccessesNormal += o.rfAccessesNormal;
        rfAccessesShuffle += o.rfAccessesShuffle;
        raySwapsCompleted += o.raySwapsCompleted;
        raySwapCycles += o.raySwapCycles;
        spawnBankConflictCycles += o.spawnBankConflictCycles;
        if (blockIssue.size() < o.blockIssue.size())
            blockIssue.resize(o.blockIssue.size());
        for (std::size_t i = 0; i < o.blockIssue.size(); ++i) {
            blockIssue[i].first += o.blockIssue[i].first;
            blockIssue[i].second += o.blockIssue[i].second;
        }
        l1Data.merge(o.l1Data);
        l1Texture.merge(o.l1Texture);
        l2.merge(o.l2);
        counters.merge(o.counters);
    }

    /**
     * Field-for-field equality. The parallel engines promise bit-identical
     * statistics for any thread count; the determinism regression tests
     * check exactly this.
     */
    bool operator==(const SimStats &) const = default;
};

} // namespace drs::simt
