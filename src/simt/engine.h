#pragma once

/**
 * @file
 * The cycle-stepping engine shared by the plain GPU (simt::runGpu) and
 * the TBC baseline: sequential and parallel drivers over any SMX-like
 * type exposing done()/step()/commitMemory().
 *
 * Both drivers buffer shared-side (L2/DRAM) requests during a cycle's
 * step phase and commit them afterwards in SMX-index order, so the L2
 * observes one canonical access interleaving no matter how many worker
 * threads step the SMXs. This is what makes the parallel engine's
 * SimStats bit-identical to the sequential engine's (see DESIGN.md,
 * "Parallel execution model").
 */

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace drs::simt {

/**
 * Step @p smxs cycle by cycle until all are done.
 *
 * @param smxs SMXs in commit order (index order defines L2 ordering)
 * @param max_cycles safety bound; throws std::runtime_error when exceeded
 * @param threads worker threads; <= 1 runs the sequential driver
 */
template <typename SmxLike>
void
runEngine(const std::vector<SmxLike *> &smxs, std::uint64_t max_cycles,
          int threads)
{
    bool all_done = true;
    for (SmxLike *smx : smxs)
        all_done = all_done && smx->done();
    if (all_done)
        return;

    if (threads <= 1 || smxs.size() <= 1) {
        std::uint64_t cycle = 0;
        while (!all_done && cycle < max_cycles) {
            all_done = true;
            for (SmxLike *smx : smxs) {
                if (!smx->done()) {
                    smx->step();
                    all_done = false;
                }
            }
            for (SmxLike *smx : smxs)
                smx->commitMemory();
            ++cycle;
        }
        if (!all_done)
            throw std::runtime_error("GPU simulation exceeded max_cycles");
        return;
    }

    const int workers = std::min<int>(threads, static_cast<int>(smxs.size()));

    std::atomic<bool> stop{false};
    std::atomic<bool> timed_out{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    // The completion step runs exactly once per cycle, by whichever
    // worker arrives last, strictly between two step phases.
    std::uint64_t cycle = 0;
    auto on_cycle_complete = [&]() noexcept {
        bool done_now = true;
        for (SmxLike *smx : smxs) {
            smx->commitMemory();
            done_now = done_now && smx->done();
        }
        ++cycle;
        if (done_now || error)
            stop.store(true, std::memory_order_release);
        else if (cycle >= max_cycles) {
            timed_out.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_release);
        }
    };
    std::barrier sync(workers, on_cycle_complete);

    auto worker = [&](int index) {
        while (!stop.load(std::memory_order_acquire)) {
            for (std::size_t i = static_cast<std::size_t>(index);
                 i < smxs.size(); i += static_cast<std::size_t>(workers)) {
                SmxLike *smx = smxs[i];
                if (smx->done())
                    continue;
                try {
                    smx->step();
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
            // Workers always reach the barrier, even on error, so nobody
            // deadlocks; the completion step turns the error into a stop.
            sync.arrive_and_wait();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers - 1));
    for (int t = 1; t < workers; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
    if (timed_out.load())
        throw std::runtime_error("GPU simulation exceeded max_cycles");
}

} // namespace drs::simt
