#pragma once

/**
 * @file
 * The cycle-stepping engine shared by the plain GPU (simt::runGpu) and
 * the TBC baseline: sequential and parallel drivers over any SMX-like
 * type exposing done()/step()/commitMemory().
 *
 * Both drivers buffer shared-side (L2/DRAM) requests during a cycle's
 * step phase and commit them afterwards in SMX-index order, so the L2
 * observes one canonical access interleaving no matter how many worker
 * threads step the SMXs. This is what makes the parallel engine's
 * SimStats bit-identical to the sequential engine's (see DESIGN.md,
 * "Parallel execution model").
 */

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/cancel.h"
#include "fault/fault.h"

namespace drs::simt {

/**
 * Diagnostic dump of every SMX's architectural state, for the watchdog's
 * timeout report.
 */
template <typename SmxLike>
std::string
describeEngineState(const std::vector<SmxLike *> &smxs)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < smxs.size(); ++i) {
        out << "SMX " << i << (smxs[i]->done() ? " (done)" : "") << ":\n";
        smxs[i]->describeState(out);
    }
    return out.str();
}

/**
 * Per-cycle engine policing: forward-progress watchdog and cooperative
 * cancellation. Shared by the sequential driver (called inline) and the
 * parallel driver (called from the barrier completion step). Throws
 * fault::WatchdogTimeout / exec::Cancelled / exec::DeadlineExceeded.
 * The deadline check reads the clock, so it is amortized over 1024-cycle
 * windows; cancellation is a plain atomic load checked every cycle.
 */
template <typename SmxLike>
void
policeCycle(const std::vector<SmxLike *> &smxs, std::uint64_t cycle,
            fault::Watchdog *watchdog, const exec::CancelToken *cancel)
{
    if (watchdog != nullptr && watchdog->enabled()) {
        std::uint64_t progress = 0;
        for (SmxLike *smx : smxs)
            progress += smx->progressCount();
        if (watchdog->observe(cycle, progress))
            throw fault::WatchdogTimeout(cycle, watchdog->budgetCycles(),
                                         describeEngineState(smxs));
    }
    if (cancel != nullptr) {
        if (cancel->cancelled())
            throw exec::Cancelled("simulation cancelled");
        if ((cycle & 1023u) == 0 && cancel->deadlineExpired())
            throw exec::DeadlineExceeded("simulation deadline exceeded");
    }
}

/**
 * Step @p smxs cycle by cycle until all are done.
 *
 * @param smxs SMXs in commit order (index order defines L2 ordering)
 * @param max_cycles safety bound; throws std::runtime_error when exceeded
 * @param threads worker threads; <= 1 runs the sequential driver
 * @param watchdog optional forward-progress watchdog; when it fires the
 *        engine throws fault::WatchdogTimeout carrying a diagnostic dump
 *        of every SMX (IPDOM stacks, row ownership, pending memory ops)
 * @param cancel optional cooperative stop/deadline token
 */
template <typename SmxLike>
void
runEngine(const std::vector<SmxLike *> &smxs, std::uint64_t max_cycles,
          int threads, fault::Watchdog *watchdog = nullptr,
          const exec::CancelToken *cancel = nullptr)
{
    bool all_done = true;
    for (SmxLike *smx : smxs)
        all_done = all_done && smx->done();
    if (all_done)
        return;

    if (threads <= 1 || smxs.size() <= 1) {
        std::uint64_t cycle = 0;
        while (!all_done && cycle < max_cycles) {
            all_done = true;
            for (SmxLike *smx : smxs) {
                if (!smx->done()) {
                    smx->step();
                    all_done = false;
                }
            }
            for (SmxLike *smx : smxs)
                smx->commitMemory();
            ++cycle;
            policeCycle(smxs, cycle, watchdog, cancel);
        }
        if (!all_done)
            throw std::runtime_error("GPU simulation exceeded max_cycles");
        return;
    }

    const int workers = std::min<int>(threads, static_cast<int>(smxs.size()));

    std::atomic<bool> stop{false};
    std::atomic<bool> timed_out{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    // The completion step runs exactly once per cycle, by whichever
    // worker arrives last, strictly between two step phases.
    std::uint64_t cycle = 0;
    auto on_cycle_complete = [&]() noexcept {
        bool done_now = true;
        for (SmxLike *smx : smxs) {
            smx->commitMemory();
            done_now = done_now && smx->done();
        }
        ++cycle;
        if (!done_now && !error) {
            // The completion step is noexcept (a throw through a barrier
            // terminates), so policing failures become the stored engine
            // error like a step() failure would.
            try {
                policeCycle(smxs, cycle, watchdog, cancel);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
        if (done_now || error)
            stop.store(true, std::memory_order_release);
        else if (cycle >= max_cycles) {
            timed_out.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_release);
        }
    };
    std::barrier sync(workers, on_cycle_complete);

    auto worker = [&](int index) {
        while (!stop.load(std::memory_order_acquire)) {
            for (std::size_t i = static_cast<std::size_t>(index);
                 i < smxs.size(); i += static_cast<std::size_t>(workers)) {
                SmxLike *smx = smxs[i];
                if (smx->done())
                    continue;
                try {
                    smx->step();
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
            // Workers always reach the barrier, even on error, so nobody
            // deadlocks; the completion step turns the error into a stop.
            sync.arrive_and_wait();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers - 1));
    for (int t = 1; t < workers; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
    if (timed_out.load())
        throw std::runtime_error("GPU simulation exceeded max_cycles");
}

} // namespace drs::simt
