#pragma once

/**
 * @file
 * Interfaces between the SIMT core and ray-management hardware.
 *
 * The DRS control unit (src/core) and the DMK baseline (src/baselines)
 * both sit on the warp-issue path of an SMX: they intercept the rdctrl
 * instruction, may stall it, and decide which row of rays a warp works on
 * and which traversal state the warp will process next. The SIMT core only
 * sees these two small interfaces; it never depends on the concrete
 * hardware models.
 */

#include <cstdint>
#include <iosfwd>

#include "obs/counters.h"

namespace drs::fault {
class FaultInjector;
}

namespace drs::simt {

/** Ray traversal states, exactly the paper's three (Figure 1/4). */
enum class TravState : std::uint8_t
{
    Fetch = 0, ///< slot must fetch a new ray (empty slots are Fetch)
    Inner = 1, ///< ray must traverse inner BVH nodes
    Leaf = 2,  ///< ray must test leaf triangles
};

/** Number of distinct TravState values. */
inline constexpr int kNumTravStates = 3;

/**
 * The register-file-resident rows of ray state, as seen by ray-management
 * hardware. Implemented by the traversal kernels (they own the actual
 * per-slot live variables); the DRS control reads states and commands
 * logical ray moves through it.
 */
class RowWorkspace
{
  public:
    virtual ~RowWorkspace() = default;

    /** Number of logical rows (N warps + M backup + 2 empty). */
    virtual int rowCount() const = 0;

    /** Lanes per row (the warp size). */
    virtual int laneCount() const = 0;

    /** Traversal state of slot (row, lane). */
    virtual TravState state(int row, int lane) const = 0;

    /**
     * Move the ray of (src_row, src_lane) into (dst_row, dst_lane); the
     * source slot becomes Fetch (empty). The destination must be Fetch.
     */
    virtual void moveRay(int src_row, int src_lane, int dst_row,
                         int dst_lane) = 0;

    /** Exchange the rays (or emptiness) of two slots. */
    virtual void swapRays(int row_a, int lane_a, int row_b, int lane_b) = 0;

    /** True when the SMX's input ray pool is exhausted. */
    virtual bool poolEmpty() const = 0;

    /** Number of live (Inner or Leaf) rays currently held in rows. */
    virtual std::size_t liveRays() const = 0;

    /**
     * Fault-injection hook: flip one bit of the ray payload held in slot
     * (row, lane). @p bit indexes into the slot's ray bytes modulo their
     * size, so any value is safe. Empty slots are a no-op. Default: the
     * workspace does not model payload corruption.
     */
    virtual void corruptRay(int row, int lane, std::uint32_t bit)
    {
        (void)row;
        (void)lane;
        (void)bit;
    }
};

/** Outcome of a warp's attempt to issue the rdctrl instruction. */
struct RdctrlResult
{
    /** Issue cannot proceed this cycle (ongoing shuffling, no row). */
    bool stall = false;
    /** trav_ctrl_val == EXIT: the warp leaves the kernel. */
    bool exit = false;
    /** Traversal state the warp will process (valid when proceeding). */
    TravState ctrl = TravState::Fetch;
    /** Row the warp is now mapped to (valid when proceeding). */
    int row = -1;
    /** Active-lane mask for the selected body. */
    std::uint32_t mask = 0;
    /**
     * Lanes whose slots are empty and receive FETCH as their per-thread
     * trav_ctrl_val (rdctrl reads a value per thread): these lanes run
     * the fetch if-body before the warp returns to rdctrl, refilling
     * holes without a shuffle. 0 when the row has no refillable holes.
     */
    std::uint32_t fetchMask = 0;
    /**
     * Explicit body block to dispatch instead of the state-mapped one
     * (kernel_.blockForState(ctrl)). Used by controllers whose kernels
     * have bodies with no TravState equivalent — the SER control unit
     * dispatches the shade block this way. -1 keeps the state mapping.
     */
    int bodyBlock = -1;
    /**
     * Spawn-overhead warp instructions to issue before the body (the
     * DMK's data dump/load instructions; 0 for DRS).
     */
    int overheadInstructions = 0;
    /** Unhidden stall cycles charged with the overhead (bank conflicts). */
    std::uint32_t overheadStallCycles = 0;
};

class Smx; // forward declaration (simt/smx.h)

/**
 * Ray-management hardware attached to one SMX (DRS control or DMK).
 * A null controller means the plain baseline GPU (Aila's kernel).
 */
class WarpController
{
  public:
    virtual ~WarpController() = default;

    /**
     * Bind to the SMX this controller serves, after the SMX exists.
     * Controllers use it for shuffle-statistic callbacks.
     */
    virtual void attach(Smx &smx) { (void)smx; }

    /**
     * A warp wants to issue rdctrl. Called once per issue attempt; a
     * stalled warp retries every cycle.
     */
    virtual RdctrlResult onRdctrl(int warp) = 0;

    /**
     * Advance one core cycle (ray-swap engine progress).
     * @param issued_instructions instructions the SMX issued this cycle,
     *        used to model register-bank contention with the operand
     *        collectors.
     */
    virtual void cycle(int issued_instructions) = 0;

    /**
     * Snapshot of this controller's observability counters ("drs.*",
     * "dmk.*"); merged into the owning SMX's SimStats::counters.
     */
    virtual obs::CounterSnapshot countersSnapshot() const { return {}; }

    /**
     * Verify the controller's internal invariants (renaming-table
     * consistency, ray conservation through its pools/operations).
     * Called periodically by the SMX under DRS_CHECK; implementations
     * throw std::logic_error on violation. Default: nothing to check.
     */
    virtual void verifyInvariants() const {}

    /**
     * Attach a fault injector (nullptr detaches). Controllers that model
     * transfer-boundary faults (DRS corrupts ray payloads as swaps
     * complete) roll on it; the default controller has no fault sites.
     */
    virtual void setFault(fault::FaultInjector *fault) { (void)fault; }

    /**
     * Append a human-readable dump of the controller's state (row
     * ownership, in-flight shuffle operations) to @p out. Used by the
     * forward-progress watchdog's diagnostic report. Default: nothing.
     */
    virtual void describeState(std::ostream &out) const { (void)out; }
};

} // namespace drs::simt
