#include "simt/kernel_ir.h"

#include <algorithm>
#include <stdexcept>

namespace drs::simt {

Program::Program(std::vector<Block> blocks, int exit_block)
    : blocks_(std::move(blocks)), exitBlock_(exit_block)
{
    validate();
    computePostDominators();
}

void
Program::validate() const
{
    const int n = blockCount();
    if (n == 0)
        throw std::invalid_argument("program has no blocks");
    if (exitBlock_ < 0 || exitBlock_ >= n)
        throw std::invalid_argument("exit block id out of range");
    if (!blocks_[exitBlock_].successors.empty())
        throw std::invalid_argument("exit block must have no successors");

    for (int i = 0; i < n; ++i) {
        const Block &b = blocks_[i];
        if (i != exitBlock_ && b.successors.empty())
            throw std::invalid_argument("non-exit block '" + b.name +
                                        "' has no successors");
        if (b.instructionCount <= 0)
            throw std::invalid_argument("block '" + b.name +
                                        "' has non-positive size");
        for (int s : b.successors)
            if (s < 0 || s >= n)
                throw std::invalid_argument("block '" + b.name +
                                            "' has invalid successor");
    }

    // Every block must reach the exit, or post-dominators are undefined.
    std::vector<char> reaches(n, 0);
    reaches[exitBlock_] = 1;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 0; i < n; ++i) {
            if (reaches[i])
                continue;
            for (int s : blocks_[i].successors) {
                if (reaches[s]) {
                    reaches[i] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    for (int i = 0; i < n; ++i)
        if (!reaches[i])
            throw std::invalid_argument("block '" + blocks_[i].name +
                                        "' cannot reach the exit");
}

void
Program::computePostDominators()
{
    // Iterative dataflow over the reverse CFG: pdom(exit) = {exit};
    // pdom(b) = {b} ∪ ⋂ pdom(s) over successors s. Represented as bitsets.
    const int n = blockCount();
    const int words = (n + 63) / 64;
    std::vector<std::uint64_t> pdom(static_cast<std::size_t>(n) * words,
                                    ~0ULL);

    auto bit = [&](int node, int of) -> bool {
        return (pdom[static_cast<std::size_t>(node) * words + of / 64] >>
                (of % 64)) & 1ULL;
    };

    // exit's set = {exit}
    for (int w = 0; w < words; ++w)
        pdom[static_cast<std::size_t>(exitBlock_) * words + w] = 0;
    pdom[static_cast<std::size_t>(exitBlock_) * words + exitBlock_ / 64] |=
        1ULL << (exitBlock_ % 64);

    bool changed = true;
    std::vector<std::uint64_t> tmp(words);
    while (changed) {
        changed = false;
        for (int b = 0; b < n; ++b) {
            if (b == exitBlock_)
                continue;
            std::fill(tmp.begin(), tmp.end(), ~0ULL);
            for (int s : blocks_[b].successors)
                for (int w = 0; w < words; ++w)
                    tmp[w] &= pdom[static_cast<std::size_t>(s) * words + w];
            tmp[b / 64] |= 1ULL << (b % 64);
            for (int w = 0; w < words; ++w) {
                auto &cur = pdom[static_cast<std::size_t>(b) * words + w];
                if (cur != tmp[w]) {
                    cur = tmp[w];
                    changed = true;
                }
            }
        }
    }

    // Immediate post-dominator: the strict post-dominator of b that is
    // post-dominated by every other strict post-dominator of b, i.e. the
    // one whose own pdom set has maximum size among b's strict pdoms.
    ipdom_.assign(n, exitBlock_);
    ipdom_[exitBlock_] = exitBlock_;
    for (int b = 0; b < n; ++b) {
        if (b == exitBlock_)
            continue;
        int best = exitBlock_;
        std::size_t best_size = 0;
        for (int c = 0; c < n; ++c) {
            if (c == b || !bit(b, c))
                continue;
            std::size_t size = 0;
            for (int w = 0; w < words; ++w) {
                std::uint64_t v =
                    pdom[static_cast<std::size_t>(c) * words + w];
                size += static_cast<std::size_t>(__builtin_popcountll(v));
            }
            // The immediate pdom is the strict pdom with the LARGEST pdom
            // set (it is the closest to b along every path to exit).
            if (size > best_size) {
                best_size = size;
                best = c;
            }
        }
        ipdom_[b] = best;
    }
}

int
Program::totalInstructionCount() const
{
    int total = 0;
    for (const auto &b : blocks_)
        total += b.instructionCount;
    return total;
}

} // namespace drs::simt
