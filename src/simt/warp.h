#pragma once

/**
 * @file
 * Warp execution state: the per-warp SIMT reconvergence stack (immediate
 * post-dominator based, as in GPGPU-Sim) and issue bookkeeping.
 */

#include <cstdint>
#include <vector>

#include "simt/kernel_ir.h"

namespace drs::simt {

/**
 * Why a warp's readyCycle lies in the future. Attribution bookkeeping
 * only — the scheduler never reads it, so it cannot alter simulation
 * results; it lets the cycle-attribution profiler split wait slots into
 * stalled-memory vs. stalled-scoreboard (spawn-overhead) buckets.
 */
enum class WarpWait : std::uint8_t
{
    None,
    Memory,
    SpawnOverhead,
};

/** One reconvergence-stack entry. */
struct StackEntry
{
    int pc = 0;            ///< next block to execute
    int rpc = 0;           ///< reconvergence block (pop when pc == rpc)
    std::uint32_t mask = 0; ///< active lanes
};

/** Number of set bits in a lane mask. */
inline int
popcount(std::uint32_t mask)
{
    return __builtin_popcount(mask);
}

/** Full mask for @p lanes threads. */
inline std::uint32_t
fullMask(int lanes)
{
    return lanes >= 32 ? 0xffffffffu : ((1u << lanes) - 1u);
}

/**
 * A warp: SIMT stack plus scheduler-visible state. The SMX drives it; this
 * class only encapsulates the reconvergence-stack mechanics.
 */
class Warp
{
  public:
    /**
     * @param id warp id within the SMX
     * @param row initial ray row the warp operates on
     * @param entry_block kernel entry block
     * @param exit_block kernel exit block
     * @param lanes warp width, in [1, 32]
     * @throws std::invalid_argument on an out-of-range warp width (the
     *         mask arithmetic shifts 1u << lane, so lanes > 32 would
     *         silently wrap instead of failing)
     */
    Warp(int id, int row, int entry_block, int exit_block, int lanes);

    int id() const { return id_; }

    /** Ray row this warp is renamed onto (row == id without DRS). */
    int row() const { return row_; }
    void bindRow(int row) { row_ = row; }

    bool exited() const { return exited_; }

    /** Current block to execute (stack top pc). */
    int pc() const { return stack_.back().pc; }

    /** Active mask of the current stack top. */
    std::uint32_t activeMask() const { return stack_.back().mask; }

    /**
     * Apply per-lane successor choices after the current block completed.
     *
     * @param next_blocks successor per lane (indexed by lane id); only
     *        lanes in the active mask are read
     * @param program the kernel CFG (for reconvergence points)
     */
    void applySuccessors(const std::vector<int> &next_blocks,
                         const Program &program);

    /**
     * Force a uniform branch: push a body entry for @p mask lanes that
     * reconverges at @p rpc (the rdctrl block, in the dispatch pattern).
     */
    void pushUniformBody(int body_block, std::uint32_t mask, int rpc);

    /** Terminate the warp (trav_ctrl_val == EXIT). */
    void forceExit();

    /** Stack depth (diagnostics/tests). */
    std::size_t stackDepth() const { return stack_.size(); }

    /** Read-only stack view (invariant checker, tests). */
    const std::vector<StackEntry> &stack() const { return stack_; }

    /** Exit block of the kernel this warp runs (invariant checker). */
    int exitBlock() const { return exitBlock_; }

    /** Warp width (invariant checker). */
    int lanes() const { return lanes_; }

    // --- scheduler-visible issue state (owned by the SMX) ---
    /** Instructions still to issue in the current block. */
    int remainingInstructions = 0;
    /** Extra spawn-overhead instructions to issue before the block. */
    int overheadInstructions = 0;
    /** Warp is blocked until this cycle (memory or overhead stalls). */
    std::uint64_t readyCycle = 0;
    /** What readyCycle waits on (attribution bookkeeping only). */
    WarpWait waitReason = WarpWait::None;
    /** Cycle of last issue, for greedy-then-oldest scheduling. */
    std::uint64_t lastIssueCycle = 0;
    /** Arrival order for the "oldest" policy. */
    std::uint64_t age = 0;
    /** Set while the warp is stalled on rdctrl. */
    bool stalledOnRdctrl = false;
    /** Cycle the current rdctrl stall began (tracer bookkeeping). */
    std::uint64_t stallStartCycle = 0;
    /** Cycle the current block began issuing (tracer bookkeeping). */
    std::uint64_t blockStartCycle = 0;
    /** The rdctrl result has been obtained for the pending dispatch. */
    bool rdctrlResolved = false;
    /** Pending uniform dispatch after rdctrl issues. */
    int pendingBody = -1;
    std::uint32_t pendingMask = 0;
    /** Optional second dispatch: the fetch body for hole lanes. */
    int pendingFetchBody = -1;
    std::uint32_t pendingFetchMask = 0;
    bool pendingExit = false;

  private:
    void popConverged();

    int id_;
    int row_;
    int exitBlock_;
    int lanes_;
    bool exited_ = false;
    std::vector<StackEntry> stack_;
};

} // namespace drs::simt
