#include "simt/cache.h"

#include <stdexcept>

namespace drs::simt {

Cache::Cache(std::uint32_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t ways)
    : lineBytes_(line_bytes), ways_(ways)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        throw std::invalid_argument("cache line size must be a power of two");
    if (ways == 0 || size_bytes < line_bytes * ways)
        throw std::invalid_argument("cache too small for its associativity");
    numSets_ = size_bytes / (line_bytes * ways);
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

bool
Cache::access(std::uint64_t address)
{
    ++stats_.accesses;
    ++useCounter_;

    const std::uint64_t line_addr = address / lineBytes_;
    const std::uint32_t set = static_cast<std::uint32_t>(line_addr % numSets_);
    const std::uint64_t tag = line_addr / numSets_;

    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useCounter_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useCounter_;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

} // namespace drs::simt
