#include "simt/cache.h"

#include "fault/fault.h"

#include <stdexcept>

namespace drs::simt {

Cache::Cache(std::uint32_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t ways)
    : lineBytes_(line_bytes), ways_(ways)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        throw std::invalid_argument("cache line size must be a power of two");
    if (ways == 0 || size_bytes < line_bytes * ways)
        throw std::invalid_argument("cache too small for its associativity");
    numSets_ = size_bytes / (line_bytes * ways);
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

bool
Cache::access(std::uint64_t address)
{
    if (fault_ && fault_->rollCacheTagFlip())
        corruptRandomTag();

    ++stats_.accesses;
    ++useCounter_;

    const std::uint64_t line_addr = address / lineBytes_;
    const std::uint32_t set = static_cast<std::uint32_t>(line_addr % numSets_);
    const std::uint64_t tag = line_addr / numSets_;

    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useCounter_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useCounter_;
    return false;
}

void
Cache::corruptRandomTag()
{
    const std::uint32_t set = fault_->pick(numSets_);
    const std::uint32_t way = fault_->pick(ways_);
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line &line = base[way];
    if (!line.valid)
        return; // the particle hit an empty frame — no observable effect
    // Tags are line_addr / numSets_; 40 bits comfortably covers the
    // simulator's address space, so the flip always lands in live bits.
    const std::uint64_t flipped = line.tag ^ (1ULL << fault_->pick(40));
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (w != way && base[w].valid && base[w].tag == flipped) {
            // A duplicate tag would corrupt LRU bookkeeping in ways real
            // hardware ECC would catch; model it as a detected parity
            // error that invalidates the line.
            line = Line{};
            return;
        }
    }
    line.tag = flipped;
}

void
Cache::flush()
{
    // Reset whole lines, not just the valid bits: stale tag/lastUse
    // metadata on invalid lines is dead state the invariant checker
    // rejects, and a live LRU clock would make post-flush recency values
    // depend on pre-flush history.
    for (auto &line : lines_)
        line = Line{};
    useCounter_ = 0;
}

void
Cache::verifyInvariants() const
{
    if (stats_.misses > stats_.accesses)
        throw std::logic_error("Cache: more misses than accesses");
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        const Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const Line &line = base[w];
            if (!line.valid) {
                if (line.tag != 0 || line.lastUse != 0)
                    throw std::logic_error(
                        "Cache: invalid line carries stale metadata");
                continue;
            }
            if (line.lastUse == 0 || line.lastUse > useCounter_)
                throw std::logic_error(
                    "Cache: line recency outside the LRU clock range");
            for (std::uint32_t v = 0; v < w; ++v) {
                const Line &other = base[v];
                if (!other.valid)
                    continue;
                if (other.tag == line.tag)
                    throw std::logic_error(
                        "Cache: duplicate tag within one set");
                if (other.lastUse == line.lastUse)
                    throw std::logic_error(
                        "Cache: duplicate recency within one set");
            }
        }
    }
}

} // namespace drs::simt
