#pragma once

/**
 * @file
 * Invariant-checking hook interface of the SIMT core.
 *
 * The core knows only this tiny abstract surface; the concrete checker
 * (src/check) implements it and throws on violations. A null context is
 * the default everywhere — checking is strictly opt-in (DRS_CHECK=1 or an
 * explicit RunConfig) and never alters simulation results: every hook
 * receives const views (checkKernel takes a mutable Kernel only because
 * Kernel::workspace() is non-const) and runs after the state it inspects
 * was produced.
 */

namespace drs::simt {

class Warp;
class Program;
class SmxMemory;
class Kernel;
struct SimStats;

/** Hook points the SMX (and the TBC executor) call under DRS_CHECK. */
class CheckContext
{
  public:
    virtual ~CheckContext() = default;

    /** Stack well-formedness after a warp's stack changed. */
    virtual void checkWarp(const Warp &warp, const Program &program) const = 0;

    /** Cache model invariants (bounds, LRU monotonicity). */
    virtual void checkMemory(const SmxMemory &memory) const = 0;

    /** Ray-conservation invariants of the kernel's workspace. */
    virtual void checkKernel(Kernel &kernel) const = 0;

    /** Counter/SimStats lockstep of one collected stats object. */
    virtual void checkStats(const SimStats &stats) const = 0;
};

} // namespace drs::simt
