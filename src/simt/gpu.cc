#include "simt/gpu.h"

#include <algorithm>
#include <stdexcept>

#include "simt/engine.h"

namespace drs::simt {

SimStats
runGpu(const GpuConfig &config, const SmxFactory &factory,
       const GpuRunOptions &options)
{
    if (config.numSmx < 1)
        throw std::invalid_argument("runGpu: numSmx must be >= 1");

    SharedMemorySide shared(config.memory);

    // One private injector per SMX plus one for the shared side. The
    // shared injector's RNG only advances from accessLine calls, which
    // the engines issue at the commit barrier in SMX-index order, so its
    // fault sequence is thread-count-invariant like everything else.
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::unique_ptr<fault::FaultInjector> sharedInjector;
    if (options.fault.enabled()) {
        injectors.reserve(static_cast<std::size_t>(config.numSmx));
        for (int i = 0; i < config.numSmx; ++i)
            injectors.push_back(std::make_unique<fault::FaultInjector>(
                options.fault, static_cast<std::uint64_t>(i)));
        sharedInjector = std::make_unique<fault::FaultInjector>(
            options.fault,
            static_cast<std::uint64_t>(config.numSmx) + 0x10000u);
        shared.setFault(sharedInjector.get());
    }

    // Two-phase construction: the Smx needs the kernel and the controller
    // needs the Smx (for shuffle-stat callbacks), so SMXs are built with a
    // placeholder and wired immediately after.
    struct Unit
    {
        SmxSetup setup;
        std::unique_ptr<Smx> smx;
    };
    std::vector<Unit> units;
    units.reserve(static_cast<std::size_t>(config.numSmx));

    for (int i = 0; i < config.numSmx; ++i) {
        Unit unit;
        unit.setup = factory(i);
        if (!unit.setup.kernel)
            throw std::invalid_argument("SMX factory returned no kernel");
        unit.smx = std::make_unique<Smx>(config, *unit.setup.kernel,
                                         unit.setup.controller.get(),
                                         unit.setup.numWarps, shared);
        unit.smx->setDeferredMemory(true);
        unit.smx->setCheck(options.check);
        if (options.fault.enabled())
            unit.smx->setFault(injectors[static_cast<std::size_t>(i)].get());
        if (unit.setup.controller)
            unit.setup.controller->attach(*unit.smx);
        if (options.trace != nullptr) {
            obs::Tracer &tracer = options.trace->smx(i);
            const Program &program = unit.setup.kernel->program();
            std::vector<std::string> names;
            names.reserve(static_cast<std::size_t>(program.blockCount()));
            for (int b = 0; b < program.blockCount(); ++b)
                names.push_back(program.block(b).name);
            tracer.setBlockNames(std::move(names));
            unit.smx->setTracer(&tracer);
        }
        if (options.attribution != nullptr) {
            if (i == 0) {
                const Program &program = unit.setup.kernel->program();
                std::vector<std::string> names;
                names.reserve(
                    static_cast<std::size_t>(program.blockCount()));
                for (int b = 0; b < program.blockCount(); ++b)
                    names.push_back(program.block(b).name);
                options.attribution->setBlockNames(std::move(names));
            }
            unit.smx->setAttribution(&options.attribution->smx(i));
        }
        if (options.sampler != nullptr) {
            obs::TimeSampler &sampler = options.sampler->smx(i);
            const obs::SampleConfig &sample = options.sampler->config();
            sampler.enable(sample.interval, sample.capacity,
                           options.attribution != nullptr
                               ? &options.attribution->smx(i)
                               : nullptr);
            unit.smx->setSampler(&sampler);
        }
        units.push_back(std::move(unit));
    }

    std::vector<Smx *> smxs;
    smxs.reserve(units.size());
    for (auto &unit : units)
        smxs.push_back(unit.smx.get());
    fault::Watchdog watchdog(options.watchdogCycles);
    runEngine(smxs, options.maxCycles, options.smxThreads,
              watchdog.enabled() ? &watchdog : nullptr, options.cancel);

    SimStats total;
    for (std::size_t i = 0; i < units.size(); ++i) {
        SimStats stats = units[i].smx->collectStats();
        if (options.perSmxStats)
            options.perSmxStats(static_cast<int>(i), stats);
        if (options.onSmxRetire)
            options.onSmxRetire(static_cast<int>(i),
                                *units[i].setup.kernel);
        total.merge(stats);
    }
    total.l2 = shared.l2Stats();
    total.counters.add("l2.access", total.l2.accesses);
    total.counters.add("l2.miss", total.l2.misses);
    if (sharedInjector) {
        const fault::FaultCounters &f = sharedInjector->counters();
        total.counters.add("fault.cache_tag_flips", f.cacheTagFlips);
        total.counters.add("fault.dram_delayed", f.dramDelayed);
        total.counters.add("fault.dram_dropped", f.dramDropped);
    }
    return total;
}

SimStats
runGpu(const GpuConfig &config, const SmxFactory &factory,
       std::uint64_t max_cycles)
{
    GpuRunOptions options;
    options.maxCycles = max_cycles;
    return runGpu(config, factory, options);
}

std::pair<std::size_t, std::size_t>
rayStripe(std::size_t total_rays, int num_smx, int smx_index, int warp_size)
{
    if (num_smx < 1 || warp_size < 1)
        throw std::invalid_argument(
            "rayStripe: num_smx and warp_size must be >= 1");
    if (smx_index < 0 || smx_index >= num_smx)
        throw std::invalid_argument("rayStripe: smx_index out of range");

    const std::size_t groups =
        (total_rays + static_cast<std::size_t>(warp_size) - 1) /
        static_cast<std::size_t>(warp_size);
    const std::size_t per_smx =
        groups / static_cast<std::size_t>(num_smx);
    const std::size_t remainder =
        groups % static_cast<std::size_t>(num_smx);

    const auto idx = static_cast<std::size_t>(smx_index);
    const std::size_t my_groups = per_smx + (idx < remainder ? 1 : 0);
    const std::size_t first_group =
        idx * per_smx + std::min(idx, remainder);

    const std::size_t first = first_group * static_cast<std::size_t>(warp_size);
    if (first >= total_rays)
        return {total_rays, 0};
    const std::size_t count =
        std::min(my_groups * static_cast<std::size_t>(warp_size),
                 total_rays - first);
    return {first, count};
}

} // namespace drs::simt
