#pragma once

/**
 * @file
 * GPU top level: a set of SMXs sharing an L2, each running one kernel
 * instance over its stripe of the input ray batch. Mirrors the paper's
 * evaluation flow: a batch of rays (one bounce of a capture) is traced to
 * completion and statistics are aggregated.
 */

#include <functional>
#include <memory>
#include <vector>

#include "exec/cancel.h"
#include "fault/fault.h"
#include "obs/attribution.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "simt/check.h"
#include "simt/config.h"
#include "simt/controller.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/sim_stats.h"
#include "simt/smx.h"

namespace drs::simt {

/** Everything one SMX needs: its kernel and optional controller. */
struct SmxSetup
{
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<WarpController> controller; ///< may be null (baseline)
    int numWarps = 48;
};

/**
 * Factory invoked once per SMX; @p smx_index selects the ray stripe. The
 * returned controller (if any) is attach()ed to its Smx after
 * construction so it can report shuffle statistics.
 */
using SmxFactory = std::function<SmxSetup(int smx_index)>;

/** Execution options of one runGpu invocation. */
struct GpuRunOptions
{
    /** Safety bound; stats.cycles < maxCycles on success. */
    std::uint64_t maxCycles = 2'000'000'000ULL;
    /**
     * Worker threads stepping SMXs concurrently; <= 1 selects the
     * sequential engine. The parallel engine is deterministic: every SMX
     * steps one cycle on its worker with shared-side (L2/DRAM) requests
     * buffered, then a per-cycle barrier commits them in SMX-index order —
     * exactly the interleaving the sequential engine produces — so
     * SimStats are bit-identical for any thread count.
     */
    int smxThreads = 1;
    /**
     * Optional cycle-level event tracing: when set, SMX i records into
     * collector tracer i (the collector must hold >= numSmx tracers).
     * Pure observation — SimStats are identical with tracing on or off.
     */
    obs::TraceCollector *trace = nullptr;
    /**
     * Optional issue-slot attribution: when set, SMX i records into
     * ledger i (the collector must hold >= numSmx ledgers enabled for
     * schedulersPerSmx x issuesPerScheduler slots per cycle). Pure
     * observation, like the tracer.
     */
    obs::AttributionCollector *attribution = nullptr;
    /**
     * Optional windowed time-series sampling: when set, SMX i records
     * into sampler i (the collector must hold >= numSmx samplers).
     * Requires `attribution` when timeline slot breakdowns are wanted;
     * pure observation either way.
     */
    obs::SamplerCollector *sampler = nullptr;
    /**
     * Observability hook: called once per SMX (in index order, after the
     * engine drained) with that SMX's own statistics, before they are
     * merged into the aggregate. Used by the counter-consistency tests
     * and by per-SMX reporting.
     */
    std::function<void(int smx_index, const SimStats &stats)> perSmxStats;
    /**
     * Called once per SMX (in index order, after the engine drained)
     * with the kernel instance, before it is destroyed. Lets callers
     * harvest per-ray results (e.g. hit records for the differential
     * tests) that live in the kernel's workspace.
     */
    std::function<void(int smx_index, Kernel &kernel)> onSmxRetire;
    /**
     * Invariant checker attached to every SMX (nullptr = off). Checking
     * never alters SimStats; violations throw std::logic_error out of
     * runGpu. See src/check and DESIGN.md, "Correctness".
     */
    const CheckContext *check = nullptr;
    /**
     * Fault-injection configuration (disabled by default: seed == 0).
     * When enabled, every SMX gets a private deterministic injector
     * (stream derived from seed and SMX index) arming L1 tag corruption
     * and swap-boundary ray bit flips, and the shared L2/DRAM side gets
     * its own injector whose RNG only advances at the commit barrier —
     * so fault sequences are identical at any smxThreads. Disabled, no
     * injector exists and execution is bit-identical to a build without
     * the fault layer.
     */
    fault::FaultConfig fault{};
    /**
     * Forward-progress watchdog budget in cycles (0 = off). When no ray
     * completes and no warp exits for this many cycles, runGpu throws
     * fault::WatchdogTimeout with a diagnostic dump of every SMX.
     */
    std::uint64_t watchdogCycles = 0;
    /** Cooperative stop/deadline token polled every cycle (may be null). */
    const exec::CancelToken *cancel = nullptr;
};

/**
 * Run one ray batch to completion on a simulated GPU.
 *
 * @param config GPU parameters (Table 1 defaults)
 * @param factory per-SMX kernel/controller factory
 * @param options engine options (cycle bound, SMX-level parallelism)
 * @return aggregated statistics (cycles = slowest SMX)
 */
SimStats runGpu(const GpuConfig &config, const SmxFactory &factory,
                const GpuRunOptions &options);

/** Convenience overload: sequential engine with a cycle bound. */
SimStats runGpu(const GpuConfig &config, const SmxFactory &factory,
                std::uint64_t max_cycles = 2'000'000'000ULL);

/**
 * Split @p total_rays into per-SMX stripes of whole 32-ray groups, so
 * consecutive rays stay in the same warp fetch (preserving primary-ray
 * coherence like the real persistent-threads global ray pool).
 *
 * @return (first_ray, count) for @p smx_index of @p num_smx
 */
std::pair<std::size_t, std::size_t> rayStripe(std::size_t total_rays,
                                              int num_smx, int smx_index,
                                              int warp_size = 32);

} // namespace drs::simt
