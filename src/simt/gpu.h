#pragma once

/**
 * @file
 * GPU top level: a set of SMXs sharing an L2, each running one kernel
 * instance over its stripe of the input ray batch. Mirrors the paper's
 * evaluation flow: a batch of rays (one bounce of a capture) is traced to
 * completion and statistics are aggregated.
 */

#include <functional>
#include <memory>
#include <vector>

#include "simt/config.h"
#include "simt/controller.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/sim_stats.h"
#include "simt/smx.h"

namespace drs::simt {

/** Everything one SMX needs: its kernel and optional controller. */
struct SmxSetup
{
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<WarpController> controller; ///< may be null (baseline)
    int numWarps = 48;
};

/**
 * Factory invoked once per SMX; @p smx_index selects the ray stripe. The
 * returned controller (if any) is attach()ed to its Smx after
 * construction so it can report shuffle statistics.
 */
using SmxFactory = std::function<SmxSetup(int smx_index)>;

/**
 * Run one ray batch to completion on a simulated GPU.
 *
 * @param config GPU parameters (Table 1 defaults)
 * @param factory per-SMX kernel/controller factory
 * @param max_cycles safety bound; stats.cycles < max_cycles on success
 * @return aggregated statistics (cycles = slowest SMX)
 */
SimStats runGpu(const GpuConfig &config, const SmxFactory &factory,
                std::uint64_t max_cycles = 2'000'000'000ULL);

/**
 * Split @p total_rays into per-SMX stripes of whole 32-ray groups, so
 * consecutive rays stay in the same warp fetch (preserving primary-ray
 * coherence like the real persistent-threads global ray pool).
 *
 * @return (first_ray, count) for @p smx_index of @p num_smx
 */
std::pair<std::size_t, std::size_t> rayStripe(std::size_t total_rays,
                                              int num_smx, int smx_index,
                                              int warp_size = 32);

} // namespace drs::simt
