#pragma once

/**
 * @file
 * Set-associative LRU cache model. Tag-only (no data), single-cycle lookup
 * — latency is modeled by the memory system, this class just tracks
 * hit/miss behaviour and working-set displacement so effects like the
 * paper's "additional backup rays lead to L1 cache thrashing" reproduce.
 */

#include <cstdint>
#include <vector>

namespace drs::fault {
class FaultInjector;
}

namespace drs::simt {

/** Hit/miss statistics of one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double hitRate() const
    {
        return accesses ? 1.0 - static_cast<double>(misses) / accesses : 0.0;
    }

    void merge(const CacheStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
    }

    /** Exact counter equality (determinism regression tests). */
    bool operator==(const CacheStats &) const = default;
};

/** A set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param line_bytes line size (power of two)
     * @param ways associativity
     */
    Cache(std::uint32_t size_bytes, std::uint32_t line_bytes,
          std::uint32_t ways);

    /**
     * Access the line containing @p address.
     * @return true on hit; on miss the line is filled (allocate-on-miss).
     */
    bool access(std::uint64_t address);

    /** Line size in bytes. */
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return numSets_; }

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    /**
     * Invalidate all lines and reset the LRU clock (does not reset
     * stats). Post-flush replacement behaves exactly like a cold cache:
     * no tag or recency metadata of the pre-flush history survives.
     */
    void flush();

    /**
     * Verify structural invariants: every valid line's lastUse is within
     * [1, current use counter] and unique within its set, tags are unique
     * within a set, invalidated lines carry no stale metadata, and misses
     * never exceed accesses.
     * @throws std::logic_error on the first violation found
     */
    void verifyInvariants() const;

    /**
     * Attach a fault injector (nullptr detaches). When armed, each
     * access() may first corrupt a random valid line's tag — modeling a
     * soft error in the tag array. Corruption preserves the structural
     * invariants verifyInvariants() checks: a flip that would duplicate
     * a tag within its set invalidates the line instead.
     */
    void setFault(fault::FaultInjector *fault) { fault_ = fault; }

  private:
    void corruptRandomTag();

    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t lineBytes_;
    std::uint32_t ways_;
    std::uint32_t numSets_;
    std::uint64_t useCounter_ = 0;
    std::vector<Line> lines_; // numSets_ * ways_, set-major
    CacheStats stats_;
    fault::FaultInjector *fault_ = nullptr;
};

} // namespace drs::simt
