#include "simt/memory.h"

#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>

namespace drs::simt {

SharedMemorySide::SharedMemorySide(const MemoryConfig &config)
    : config_(config),
      l2_(config.l2.sizeBytes, config.l2.lineBytes, config.l2.ways)
{
}

std::uint32_t
SharedMemorySide::accessLine(std::uint64_t address)
{
    const bool hit = l2_.access(address);
    std::uint32_t latency =
        config_.l2.hitLatency + (hit ? 0u : config_.dramLatency);
    if (!hit && fault_)
        latency += fault_->rollDramFault();
    return latency;
}

SmxMemory::SmxMemory(const MemoryConfig &config, SharedMemorySide &shared)
    : config_(config),
      shared_(shared),
      l1Data_(config.l1Data.sizeBytes, config.l1Data.lineBytes,
              config.l1Data.ways),
      l1Texture_(config.l1Texture.sizeBytes, config.l1Texture.lineBytes,
                 config.l1Texture.ways)
{
}

std::uint32_t
SmxMemory::warpAccess(MemSpace space,
                      const std::vector<std::uint64_t> &addresses,
                      std::uint32_t bytes)
{
    return commitAccess(resolveL1(space, addresses, bytes));
}

PendingWarpAccess
SmxMemory::resolveL1(MemSpace space,
                     const std::vector<std::uint64_t> &addresses,
                     std::uint32_t bytes)
{
    PendingWarpAccess pending;
    if (space == MemSpace::None || addresses.empty())
        return pending;

    Cache &l1 = (space == MemSpace::Texture) ? l1Texture_ : l1Data_;
    const std::uint32_t line = l1.lineBytes();

    // Coalesce: collect the distinct lines this warp instruction touches.
    // An access of `bytes` bytes may straddle a line boundary.
    std::vector<std::uint64_t> lines;
    lines.reserve(addresses.size());
    for (std::uint64_t a : addresses) {
        const std::uint64_t first = a / line;
        const std::uint64_t last = (a + std::max(bytes, 1u) - 1) / line;
        for (std::uint64_t l = first; l <= last; ++l)
            lines.push_back(l);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

    pending.l1Latency = (space == MemSpace::Texture)
                            ? config_.l1Texture.hitLatency
                            : config_.l1Data.hitLatency;
    for (std::uint64_t l : lines) {
        const std::uint64_t byte_addr = l * line;
        if (l1.access(byte_addr))
            pending.baseLatency =
                std::max(pending.baseLatency, pending.l1Latency);
        else
            pending.missLines.push_back(byte_addr);
    }
    // Additional lines serialize at the L1 port, adding a small per-line
    // charge (memory divergence).
    pending.extraLatency = static_cast<std::uint32_t>(lines.size() - 1) *
                           config_.perLineSerialization;
    return pending;
}

std::uint32_t
SmxMemory::commitAccess(const PendingWarpAccess &pending)
{
    if (pending.missLines.empty() && pending.baseLatency == 0 &&
        pending.extraLatency == 0)
        return 0;

    // The warp waits for the slowest line.
    std::uint32_t worst = pending.baseLatency;
    for (std::uint64_t byte_addr : pending.missLines)
        worst = std::max(worst,
                         pending.l1Latency + shared_.accessLine(byte_addr));
    return worst + pending.extraLatency;
}

void
SmxMemory::resetStats()
{
    l1Data_.resetStats();
    l1Texture_.resetStats();
}

void
SmxMemory::flush()
{
    l1Data_.flush();
    l1Texture_.flush();
}

} // namespace drs::simt
