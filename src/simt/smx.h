#pragma once

/**
 * @file
 * One streaming multiprocessor (SMX): warps, greedy-then-oldest warp
 * schedulers with dual issue, the per-SMX memory path, and the hook points
 * for ray-management hardware (rdctrl interception). This is the heart of
 * the GPGPU-Sim substitute.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/attribution.h"
#include "obs/counters.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "simt/check.h"
#include "simt/config.h"
#include "simt/controller.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/sim_stats.h"
#include "simt/warp.h"

namespace drs::simt {

/**
 * A simulated SMX executing one kernel with a fixed set of resident warps
 * (persistent-threads style, as in the paper's setup: Aila's kernel spawns
 * 48 warps, the DRS Kernel 1 spawns 60).
 */
class Smx
{
  public:
    /**
     * @param config GPU configuration (Table 1)
     * @param kernel kernel bound to this SMX (owns its ray pool/rows)
     * @param controller ray-management hardware, or nullptr for baseline
     * @param num_warps resident warps
     * @param shared GPU-wide L2/DRAM side
     */
    Smx(const GpuConfig &config, Kernel &kernel, WarpController *controller,
        int num_warps, SharedMemorySide &shared);

    /** True when every warp has exited. */
    bool done() const;

    /** Advance one core cycle. */
    void step();

    /**
     * Deferred-memory mode, used by the parallel GPU engine: step() then
     * buffers shared-side (L2/DRAM) requests instead of playing them
     * immediately, and commitMemory() must be called after every step() —
     * serially, in SMX-index order across the GPU — to resolve them and
     * release the waiting warps. Per-cycle results are bit-identical to
     * immediate mode because a warp never observes its own memory latency
     * within the cycle that issued the access.
     */
    void setDeferredMemory(bool deferred) { deferredMemory_ = deferred; }

    /** Commit buffered shared-side requests (deferred mode only). */
    void commitMemory();

    /** Current cycle count. */
    std::uint64_t cycle() const { return cycle_; }

    /** Run to completion, bounding runaway simulations. */
    void run(std::uint64_t max_cycles = ~0ULL);

    /** Statistics gathered so far (cache stats included). */
    SimStats collectStats() const;

    /** Shuffle-side RF access/swap counters, added by the controller. */
    void addShuffleRfAccesses(std::uint64_t n) { shuffleRfAccesses_.add(n); }
    void recordRaySwap(std::uint64_t duration_cycles)
    {
        raySwapsCompleted_.add();
        raySwapCycles_.add(duration_cycles);
        if (tracer_ && tracer_->enabled())
            tracer_->record(obs::TraceEventKind::RaySwap, -1,
                            cycle_ >= duration_cycles
                                ? cycle_ - duration_cycles
                                : 0,
                            cycle_);
    }
    void addSpawnConflictCycles(std::uint64_t n)
    {
        spawnConflictCycles_.add(n);
    }

    /**
     * This SMX's observability counter registry ("smx.*" names). The
     * controller and tests may register additional counters; see
     * obs::Counters for the single-stepping-worker contract.
     */
    obs::Counters &counters() { return counters_; }

    /**
     * Attach a cycle-level event tracer (nullptr = off, the default).
     * Tracing is pure observation: SimStats are identical either way.
     */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Attach an issue-slot attribution ledger (nullptr = off, the
     * default). Must be enabled for schedulersPerSmx x
     * issuesPerScheduler slots per cycle. Pure observation: every slot
     * of every cycle is classified (DESIGN.md §9) but scheduling never
     * reads the ledger, so SimStats are bit-identical either way.
     */
    void setAttribution(obs::IssueAttribution *attribution)
    {
        attribution_ = attribution;
    }

    /**
     * Attach a windowed time-series sampler (nullptr = off, the
     * default). Pure observation, like the tracer.
     */
    void setSampler(obs::TimeSampler *sampler) { sampler_ = sampler; }

    /**
     * Attach an invariant checker (nullptr = off, the default). Checking
     * is pure observation — SimStats are bit-identical either way — but
     * every violation throws out of step()/collectStats().
     */
    void setCheck(const CheckContext *check) { check_ = check; }

    /**
     * Attach a fault injector (nullptr = off, the default). Arms this
     * SMX's private fault sites: L1 tag corruption and — via the
     * controller — ray-payload bit flips at swap boundaries. Shared-side
     * (L2/DRAM) faults are armed separately on the SharedMemorySide so
     * their RNG stream is only advanced at the commit barrier.
     */
    void setFault(fault::FaultInjector *fault);

    /**
     * Monotone forward-progress measure for the watchdog: completed rays
     * plus exited warps. While the SMX is not done() this must eventually
     * grow; a stuck value over a large cycle budget means livelock.
     */
    std::uint64_t progressCount() const;

    /**
     * Append a human-readable dump of this SMX's architectural state
     * (warp PCs/rows/stalls/IPDOM stacks, pending deferred accesses, the
     * controller's row ownership) to @p out — the watchdog's diagnostic.
     */
    void describeState(std::ostream &out) const;

    const std::vector<Warp> &warps() const { return warps_; }

  private:
    /** Try to issue up to the dual-issue width from warp @p w. */
    int issueFromWarp(Warp &warp, int max_issues);

    /** A block's instructions finished issuing: run semantics. */
    void completeBlock(Warp &warp);

    /** Handle the rdctrl handshake; returns false when the warp stalls. */
    bool resolveRdctrl(Warp &warp);

    bool warpReady(const Warp &warp) const;

    /**
     * Charge scheduler @p scheduler's @p slots unissued slots of this
     * cycle to one stall bucket, blamed on the oldest culprit warp of
     * its partition (attribution enabled only).
     */
    void attributeUnissued(int scheduler, int slots);

    const GpuConfig &config_;
    Kernel &kernel_;
    WarpController *controller_;
    SmxMemory memory_;
    std::vector<Warp> warps_;
    /** Last warp each scheduler issued from (greedy policy). */
    std::vector<int> lastIssued_;
    std::uint64_t cycle_ = 0;

    stats::ActiveThreadHistogram histogram_;

    /**
     * Observability counters (the ad-hoc scalar fields of earlier
     * revisions live here now). Handles are registered once in the
     * constructor; the hot path increments through stable references.
     */
    obs::Counters counters_;
    obs::Counter &rdctrlIssued_;
    obs::Counter &rdctrlStalledIssues_;
    obs::Counter &rdctrlStallCycles_;
    obs::Counter &normalRfAccesses_;
    obs::Counter &shuffleRfAccesses_;
    obs::Counter &raySwapsCompleted_;
    obs::Counter &raySwapCycles_;
    obs::Counter &spawnConflictCycles_;
    obs::Counter &issueIdleCycles_;

    obs::Tracer *tracer_ = nullptr;
    obs::IssueAttribution *attribution_ = nullptr;
    obs::TimeSampler *sampler_ = nullptr;
    const CheckContext *check_ = nullptr;
    fault::FaultInjector *fault_ = nullptr;

    /** Per-block {instructions, active-thread sum} (see SimStats). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> blockIssue_;

    // Scratch reused across completeBlock calls.
    std::vector<int> nextBlocks_;
    std::vector<std::uint64_t> memAddresses_;

    /** One L1-resolved access awaiting its shared-side commit. */
    struct DeferredAccess
    {
        int warp = -1;
        std::uint64_t issueCycle = 0;
        PendingWarpAccess pending;
    };

    bool deferredMemory_ = false;
    std::vector<DeferredAccess> deferredAccesses_;
};

} // namespace drs::simt
