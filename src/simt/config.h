#pragma once

/**
 * @file
 * Simulated GPU configuration. Defaults model the NVIDIA GeForce GTX780
 * (Kepler) exactly as the paper's Table 1 configures GPGPU-Sim.
 */

#include <cstdint>

namespace drs::simt {

/** One cache level's geometry and hit latency. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 48 * 1024;
    std::uint32_t lineBytes = 128;
    std::uint32_t ways = 6;
    /** Pipelined hit latency in core cycles. */
    std::uint32_t hitLatency = 28;
};

/** Memory hierarchy parameters. */
struct MemoryConfig
{
    CacheConfig l1Data{48 * 1024, 128, 6, 28};     ///< Table 1: 48 KB
    CacheConfig l1Texture{48 * 1024, 128, 6, 28};  ///< Table 1: 48 KB
    CacheConfig l2{1536 * 1024, 128, 12, 120};     ///< Table 1: 1536 KB
    /** Additional latency of a DRAM access beyond an L2 hit. */
    std::uint32_t dramLatency = 220;
    /** Extra cycles per additional cache line touched by one warp access. */
    std::uint32_t perLineSerialization = 2;
};

/**
 * GPU microarchitectural parameters (paper Table 1).
 */
struct GpuConfig
{
    double clockGhz = 0.980;            ///< SMX clock frequency: 980 MHz
    int simdLanes = 32;                 ///< SIMD lanes (= warp size)
    int numSmx = 15;                    ///< SMXs/GPU
    int schedulersPerSmx = 4;           ///< Warp schedulers/SMX (GTO)
    int dispatchUnitsPerSmx = 8;        ///< Inst. dispatch units/SMX
    int registersPerSmx = 65536;        ///< Registers/SMX
    int registerBanks = 8;              ///< single-ported RF banks
    MemoryConfig memory{};

    /** Dual issue per scheduler (dispatch units / schedulers). */
    int issuesPerScheduler() const
    {
        return dispatchUnitsPerSmx / schedulersPerSmx;
    }
};

} // namespace drs::simt
