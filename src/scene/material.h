#pragma once

/**
 * @file
 * Material model for the path tracer. The paper treats shading as a black
 * box around ray traversal, so a small Lambertian + emissive model is
 * sufficient: it produces exactly the incoherent, cosine-distributed
 * secondary rays the experiments depend on.
 */

#include "geom/vec.h"

namespace drs::scene {

/** A diffuse (Lambertian) material with an optional emission term. */
struct Material
{
    geom::Vec3 albedo{0.5f, 0.5f, 0.5f};
    geom::Vec3 emission{0.0f, 0.0f, 0.0f};
    /**
     * Mirror-reflection probability in [0, 1]; the remainder of the lobe
     * is Lambertian. Lets scenes mix in some specular bounces so
     * secondary-ray coherence varies the way real materials make it vary.
     */
    float specularity = 0.0f;

    bool emissive() const
    {
        return emission.x > 0.0f || emission.y > 0.0f || emission.z > 0.0f;
    }
};

} // namespace drs::scene
