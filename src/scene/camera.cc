#include "scene/camera.h"

#include <cmath>
#include <numbers>

namespace drs::scene {

using geom::Vec3;

Camera::Camera(const Vec3 &position, const Vec3 &look_at, const Vec3 &up,
               float vertical_fov_degrees, float aspect)
    : position_(position)
{
    const float theta = vertical_fov_degrees * std::numbers::pi_v<float> / 180.0f;
    const float half_height = std::tan(theta / 2.0f);
    const float half_width = aspect * half_height;

    const Vec3 w = geom::normalize(position - look_at);
    const Vec3 u = geom::normalize(geom::cross(up, w));
    const Vec3 v = geom::cross(w, u);

    lowerLeft_ = position - u * half_width - v * half_height - w;
    horizontal_ = u * (2.0f * half_width);
    vertical_ = v * (2.0f * half_height);
}

geom::Ray
Camera::generateRay(float s, float t) const
{
    geom::Ray ray;
    ray.origin = position_;
    ray.direction = geom::normalize(lowerLeft_ + horizontal_ * s +
                                    vertical_ * t - position_);
    return ray;
}

} // namespace drs::scene
