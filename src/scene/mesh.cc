#include "scene/mesh.h"

#include <cmath>
#include <numbers>

namespace drs::scene {

using geom::Pcg32;
using geom::Vec3;

void
MeshBuilder::addTriangle(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                         std::int32_t material)
{
    triangles_.push_back(geom::Triangle{a, b, c, material});
}

void
MeshBuilder::addQuad(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                     const Vec3 &d, std::int32_t material)
{
    addTriangle(a, b, c, material);
    addTriangle(a, c, d, material);
}

void
MeshBuilder::addBox(const Vec3 &lo, const Vec3 &hi, std::int32_t material)
{
    const Vec3 p000{lo.x, lo.y, lo.z}, p001{lo.x, lo.y, hi.z};
    const Vec3 p010{lo.x, hi.y, lo.z}, p011{lo.x, hi.y, hi.z};
    const Vec3 p100{hi.x, lo.y, lo.z}, p101{hi.x, lo.y, hi.z};
    const Vec3 p110{hi.x, hi.y, lo.z}, p111{hi.x, hi.y, hi.z};

    addQuad(p000, p100, p110, p010, material); // -z
    addQuad(p101, p001, p011, p111, material); // +z
    addQuad(p001, p000, p010, p011, material); // -x
    addQuad(p100, p101, p111, p110, material); // +x
    addQuad(p001, p101, p100, p000, material); // -y
    addQuad(p010, p110, p111, p011, material); // +y
}

void
MeshBuilder::addCylinder(const Vec3 &base, float radius, float height,
                         int segments, std::int32_t material, bool capped)
{
    segments = std::max(segments, 3);
    const float two_pi = 2.0f * std::numbers::pi_v<float>;
    const Vec3 top = base + Vec3{0.0f, height, 0.0f};

    for (int i = 0; i < segments; ++i) {
        const float a0 = two_pi * static_cast<float>(i) / segments;
        const float a1 = two_pi * static_cast<float>(i + 1) / segments;
        const Vec3 r0{radius * std::cos(a0), 0.0f, radius * std::sin(a0)};
        const Vec3 r1{radius * std::cos(a1), 0.0f, radius * std::sin(a1)};

        addQuad(base + r0, base + r1, top + r1, top + r0, material);
        if (capped) {
            addTriangle(base, base + r1, base + r0, material);
            addTriangle(top, top + r0, top + r1, material);
        }
    }
}

void
MeshBuilder::addSphere(const Vec3 &center, float radius, int stacks,
                       int slices, std::int32_t material)
{
    stacks = std::max(stacks, 2);
    slices = std::max(slices, 3);
    const float pi = std::numbers::pi_v<float>;

    auto point = [&](int stack, int slice) {
        const float phi = pi * static_cast<float>(stack) / stacks;
        const float theta = 2.0f * pi * static_cast<float>(slice) / slices;
        return center + Vec3{radius * std::sin(phi) * std::cos(theta),
                             radius * std::cos(phi),
                             radius * std::sin(phi) * std::sin(theta)};
    };

    for (int st = 0; st < stacks; ++st) {
        for (int sl = 0; sl < slices; ++sl) {
            const Vec3 p00 = point(st, sl);
            const Vec3 p01 = point(st, sl + 1);
            const Vec3 p10 = point(st + 1, sl);
            const Vec3 p11 = point(st + 1, sl + 1);
            if (st != 0)
                addTriangle(p00, p01, p11, material);
            if (st != stacks - 1)
                addTriangle(p00, p11, p10, material);
        }
    }
}

void
MeshBuilder::addSphereflake(const Vec3 &center, float radius, int depth,
                            int children, int stacks, int slices,
                            std::int32_t material)
{
    addSphere(center, radius, stacks, slices, material);
    if (depth <= 0)
        return;

    const float pi = std::numbers::pi_v<float>;
    const float child_radius = radius * 0.45f;
    for (int i = 0; i < children; ++i) {
        // Children distributed on a band around the parent sphere.
        const float theta = 2.0f * pi * static_cast<float>(i) / children;
        const float phi = pi * (0.25f + 0.5f * ((i % 3) / 3.0f));
        const Vec3 dir{std::sin(phi) * std::cos(theta), std::cos(phi),
                       std::sin(phi) * std::sin(theta)};
        const Vec3 child_center = center + dir * (radius + child_radius);
        addSphereflake(child_center, child_radius, depth - 1, children,
                       std::max(stacks / 2, 3), std::max(slices / 2, 4),
                       material);
    }
}

void
MeshBuilder::addPlant(const Vec3 &base, float height, int leaves,
                      std::int32_t stem_material, std::int32_t leaf_material,
                      Pcg32 &rng)
{
    const float two_pi = 2.0f * std::numbers::pi_v<float>;

    // Stem: a thin 4-sided tapering column, built from quads.
    const int stem_sections = 3;
    float radius = 0.02f * height;
    Vec3 p = base;
    for (int s = 0; s < stem_sections; ++s) {
        const float seg = height / stem_sections;
        const float next_radius = radius * 0.6f;
        const Vec3 q = p + Vec3{rng.nextFloat(-0.05f, 0.05f) * height, seg,
                                rng.nextFloat(-0.05f, 0.05f) * height};
        for (int i = 0; i < 4; ++i) {
            const float a0 = two_pi * static_cast<float>(i) / 4.0f;
            const float a1 = two_pi * static_cast<float>(i + 1) / 4.0f;
            const Vec3 r0{std::cos(a0), 0.0f, std::sin(a0)};
            const Vec3 r1{std::cos(a1), 0.0f, std::sin(a1)};
            addQuad(p + r0 * radius, p + r1 * radius,
                    q + r1 * next_radius, q + r0 * next_radius,
                    stem_material);
        }
        p = q;
        radius = next_radius;
    }

    // Leaves: two-triangle elliptical blades at random heights/orientations.
    for (int i = 0; i < leaves; ++i) {
        const float h = rng.nextFloat(0.3f, 1.0f) * height;
        const float yaw = rng.nextFloat(0.0f, two_pi);
        const float pitch = rng.nextFloat(0.2f, 1.2f);
        const float len = rng.nextFloat(0.25f, 0.5f) * height;
        const float wid = len * 0.3f;

        const Vec3 attach = base + Vec3{0.0f, h, 0.0f};
        const Vec3 out{std::cos(yaw) * std::cos(pitch), std::sin(pitch),
                       std::sin(yaw) * std::cos(pitch)};
        const Vec3 side = geom::normalize(geom::cross(out, Vec3{0, 1, 0}));
        const Vec3 tip = attach + out * len;
        const Vec3 mid = attach + out * (0.5f * len);

        addTriangle(attach, mid + side * wid, tip, leaf_material);
        addTriangle(attach, tip, mid - side * wid, leaf_material);
    }
}

} // namespace drs::scene
