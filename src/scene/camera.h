#pragma once

/**
 * @file
 * Pinhole camera generating primary rays. Primary rays from a pinhole
 * camera are the coherent "bounce 1" rays of the experiments.
 */

#include "geom/ray.h"
#include "geom/vec.h"

namespace drs::scene {

/** A pinhole camera with a vertical field of view. */
class Camera
{
  public:
    /**
     * @param position eye position
     * @param look_at point the camera looks at
     * @param up approximate up vector
     * @param vertical_fov_degrees full vertical field of view
     * @param aspect width / height of the film
     */
    Camera(const geom::Vec3 &position, const geom::Vec3 &look_at,
           const geom::Vec3 &up, float vertical_fov_degrees, float aspect);

    Camera() : Camera({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 60.0f, 4.0f / 3.0f) {}

    /**
     * Primary ray through film coordinates (s, t) in [0, 1)^2, where
     * (0, 0) is the lower-left corner of the film.
     */
    geom::Ray generateRay(float s, float t) const;

    const geom::Vec3 &position() const { return position_; }

  private:
    geom::Vec3 position_;
    geom::Vec3 lowerLeft_;
    geom::Vec3 horizontal_;
    geom::Vec3 vertical_;
};

} // namespace drs::scene
