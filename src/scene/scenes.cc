#include "scene/scenes.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/rng.h"
#include "scene/mesh.h"

namespace drs::scene {

using geom::Pcg32;
using geom::Vec3;

namespace {

/** Scale an integer tessellation parameter, keeping a floor of @p lo. */
int
scaled(int full, float scale, int lo)
{
    int v = static_cast<int>(std::lround(full * scale));
    return std::max(v, lo);
}

} // namespace

const std::vector<SceneId> &
allSceneIds()
{
    static const std::vector<SceneId> ids{
        SceneId::Conference, SceneId::Fairy, SceneId::Sponza, SceneId::Plants};
    return ids;
}

std::string
sceneName(SceneId id)
{
    switch (id) {
      case SceneId::Conference: return "conference";
      case SceneId::Fairy: return "fairy";
      case SceneId::Sponza: return "sponza";
      case SceneId::Plants: return "plants";
    }
    return "unknown";
}

SceneId
sceneFromName(const std::string &name)
{
    for (SceneId id : allSceneIds())
        if (sceneName(id) == name)
            return id;
    throw std::invalid_argument("unknown scene: " + name);
}

Scene
makeScene(SceneId id, float scale)
{
    switch (id) {
      case SceneId::Conference: return makeConferenceScene(scale);
      case SceneId::Fairy: return makeFairyScene(scale);
      case SceneId::Sponza: return makeSponzaScene(scale);
      case SceneId::Plants: return makePlantsScene(scale);
    }
    throw std::invalid_argument("unknown scene id");
}

Scene
makeConferenceScene(float scale)
{
    // An indoor conference room: floor/walls/ceiling, a large central
    // table, rings of chairs, and bright ceiling light panels. Lights on
    // the ceiling make bounced rays terminate relatively quickly, matching
    // the paper's observation that conference rays are "easier to
    // terminate" than sponza rays.
    std::vector<Material> mats = {
        {{0.70f, 0.68f, 0.62f}, {}, 0.0f},          // 0 walls
        {{0.35f, 0.25f, 0.18f}, {}, 0.10f},         // 1 wood furniture
        {{0.25f, 0.25f, 0.30f}, {}, 0.0f},          // 2 chair fabric
        {{0.9f, 0.9f, 0.9f}, {14.f, 14.f, 13.f}, 0.0f}, // 3 light panels
        {{0.55f, 0.55f, 0.58f}, {}, 0.25f},         // 4 metal trim
    };

    MeshBuilder mb;
    Pcg32 rng(101);

    const Vec3 room_lo{0, 0, 0};
    const Vec3 room_hi{20, 6, 14};

    // Room shell: inward-facing quads.
    mb.addQuad({0, 0, 0}, {20, 0, 0}, {20, 0, 14}, {0, 0, 14}, 0);  // floor
    mb.addQuad({0, 6, 0}, {0, 6, 14}, {20, 6, 14}, {20, 6, 0}, 0);  // ceiling
    mb.addQuad({0, 0, 0}, {0, 0, 14}, {0, 6, 14}, {0, 6, 0}, 0);    // -x wall
    mb.addQuad({20, 0, 0}, {20, 6, 0}, {20, 6, 14}, {20, 0, 14}, 0); // +x
    mb.addQuad({0, 0, 0}, {0, 6, 0}, {20, 6, 0}, {20, 0, 0}, 0);    // -z
    mb.addQuad({0, 0, 14}, {20, 0, 14}, {20, 6, 14}, {0, 6, 14}, 0); // +z

    // Ceiling light panels (emissive quads just below the ceiling).
    for (int ix = 0; ix < 4; ++ix) {
        for (int iz = 0; iz < 3; ++iz) {
            const float x0 = 2.5f + 4.5f * ix;
            const float z0 = 2.0f + 4.0f * iz;
            mb.addQuad({x0, 5.95f, z0}, {x0, 5.95f, z0 + 2.0f},
                       {x0 + 2.5f, 5.95f, z0 + 2.0f}, {x0 + 2.5f, 5.95f, z0},
                       3);
        }
    }

    // Central conference table: a slab on cylindrical legs.
    mb.addBox({5, 1.4f, 5}, {15, 1.6f, 9}, 1);
    const int leg_segments = scaled(24, scale, 6);
    for (float x : {6.0f, 14.0f})
        for (float z : {5.8f, 8.2f})
            mb.addCylinder({x, 0, z}, 0.18f, 1.4f, leg_segments, 4);

    // Chairs around the table and stacked along walls (uneven clusters).
    auto add_chair = [&](const Vec3 &p, float yaw) {
        const float c = std::cos(yaw);
        const float s = std::sin(yaw);
        auto rot = [&](const Vec3 &v) {
            return Vec3{p.x + v.x * c - v.z * s, p.y + v.y,
                        p.z + v.x * s + v.z * c};
        };
        // Seat, backrest and four legs made of rotated quads.
        MeshBuilder part;
        part.addBox({-0.35f, 0.85f, -0.35f}, {0.35f, 0.95f, 0.35f}, 2);
        part.addBox({-0.35f, 0.95f, 0.25f}, {0.35f, 1.8f, 0.35f}, 2);
        for (float lx : {-0.3f, 0.3f})
            for (float lz : {-0.3f, 0.3f})
                part.addBox({lx - 0.03f, 0.0f, lz - 0.03f},
                            {lx + 0.03f, 0.85f, lz + 0.03f}, 4);
        for (auto t : part.triangles())
            mb.addTriangle(rot(t.v0), rot(t.v1), rot(t.v2), t.material);
    };

    const int chairs_per_side = scaled(7, scale, 3);
    for (int i = 0; i < chairs_per_side; ++i) {
        const float x = 5.8f + 8.4f * static_cast<float>(i) /
                        std::max(chairs_per_side - 1, 1);
        add_chair({x, 0, 4.0f}, 0.0f);
        add_chair({x, 0, 10.0f}, std::numbers::pi_v<float>);
    }
    // Uneven wall clusters (the paper notes objects are "not evenly
    // distributed throughout the scene").
    const int wall_chairs = scaled(18, scale, 5);
    for (int i = 0; i < wall_chairs; ++i) {
        const float x = rng.nextFloat(1.0f, 6.0f);
        const float z = rng.nextFloat(1.0f, 13.0f);
        add_chair({x, 0, z}, rng.nextFloat(0.0f, 6.28f));
    }

    // A sideboard and detailed decorative spheres on it.
    mb.addBox({17.5f, 0, 3}, {19.5f, 1.1f, 11}, 1);
    const int deco = scaled(10, scale, 3);
    for (int i = 0; i < deco; ++i) {
        const float z = 3.6f + 7.0f * static_cast<float>(i) / deco;
        mb.addSphere({18.5f, 1.35f, z}, 0.25f, scaled(16, scale, 5),
                     scaled(24, scale, 8), 4);
    }

    Camera cam({2.2f, 2.6f, 12.2f}, {12.0f, 1.6f, 6.0f}, {0, 1, 0}, 58.0f,
               4.0f / 3.0f);
    (void)room_lo;
    (void)room_hi;
    return Scene("conference", mb.takeTriangles(), std::move(mats), cam);
}

Scene
makeFairyScene(float scale)
{
    // "Teapot in a stadium": a very detailed small model (sphereflake
    // "fairy") in a large, sparse outdoor environment under a bright sky
    // dome opening. Rays that bounce up escape quickly.
    std::vector<Material> mats = {
        {{0.30f, 0.45f, 0.20f}, {}, 0.0f},            // 0 ground
        {{0.45f, 0.35f, 0.25f}, {}, 0.0f},            // 1 tree trunks
        {{0.20f, 0.50f, 0.22f}, {}, 0.0f},            // 2 canopy
        {{0.80f, 0.70f, 0.85f}, {}, 0.35f},           // 3 fairy body
        {{1.0f, 1.0f, 1.0f}, {10.f, 10.f, 12.f}, 0.0f}, // 4 sky light
    };

    MeshBuilder mb;
    Pcg32 rng(202);

    // Large ground plane, mildly tessellated so it contributes geometry.
    const int gres = scaled(20, scale, 4);
    const float gsize = 120.0f;
    for (int ix = 0; ix < gres; ++ix) {
        for (int iz = 0; iz < gres; ++iz) {
            const float x0 = -gsize / 2 + gsize * ix / gres;
            const float x1 = -gsize / 2 + gsize * (ix + 1) / gres;
            const float z0 = -gsize / 2 + gsize * iz / gres;
            const float z1 = -gsize / 2 + gsize * (iz + 1) / gres;
            mb.addQuad({x0, 0, z0}, {x1, 0, z0}, {x1, 0, z1}, {x0, 0, z1}, 0);
        }
    }

    // Emissive sky: one huge overhead quad far above the scene.
    mb.addQuad({-200, 80, -200}, {-200, 80, 200}, {200, 80, 200},
               {200, 80, -200}, 4);

    // Sparse forest ring: simple trunk + canopy trees, far from the model.
    const int trees = scaled(26, scale, 6);
    for (int i = 0; i < trees; ++i) {
        const float angle = 6.2831853f * i / trees + rng.nextFloat(-0.1f, 0.1f);
        const float dist = rng.nextFloat(25.0f, 55.0f);
        const Vec3 base{dist * std::cos(angle), 0.0f, dist * std::sin(angle)};
        const float h = rng.nextFloat(6.0f, 12.0f);
        mb.addCylinder(base, 0.5f, h, scaled(10, scale, 4), 1, false);
        mb.addSphere(base + Vec3{0, h + 1.5f, 0}, rng.nextFloat(2.5f, 4.5f),
                     scaled(8, scale, 3), scaled(12, scale, 5), 2);
    }

    // The "fairy": a dense sphereflake near the camera. Most of the
    // scene's triangles concentrate here — the teapot-in-a-stadium
    // property that stresses BVH quality.
    const int flake_depth = scale >= 0.5f ? 3 : 2;
    mb.addSphereflake({0.0f, 1.6f, 0.0f}, 1.2f, flake_depth, 9,
                      scaled(24, scale, 8), scaled(36, scale, 12), 3);

    Camera cam({4.5f, 2.4f, 5.5f}, {0.0f, 1.5f, 0.0f}, {0, 1, 0}, 50.0f,
               4.0f / 3.0f);
    return Scene("fairy", mb.takeTriangles(), std::move(mats), cam);
}

Scene
makeSponzaScene(float scale)
{
    // An enclosed courtyard with two colonnade galleries and arches. The
    // only light is a modest sky opening high above the atrium, so rays
    // bounce many times before terminating — the paper's explanation for
    // sponza's low Mrays/s despite mid-pack SIMD efficiency.
    std::vector<Material> mats = {
        {{0.55f, 0.50f, 0.45f}, {}, 0.0f},             // 0 stone
        {{0.60f, 0.45f, 0.35f}, {}, 0.0f},             // 1 brick
        {{0.75f, 0.15f, 0.15f}, {}, 0.0f},             // 2 drapes
        {{1.0f, 1.0f, 1.0f}, {6.f, 6.f, 7.f}, 0.0f},   // 3 sky slot
    };

    MeshBuilder mb;
    Pcg32 rng(303);

    const float L = 36.0f; // courtyard length (x)
    const float W = 16.0f; // width (z)
    const float H = 12.0f; // height

    // Floor and outer walls; ceiling is closed except a narrow sky slot.
    mb.addQuad({0, 0, 0}, {L, 0, 0}, {L, 0, W}, {0, 0, W}, 0);
    mb.addQuad({0, 0, 0}, {0, H, 0}, {L, H, 0}, {L, 0, 0}, 1);
    mb.addQuad({0, 0, W}, {L, 0, W}, {L, H, W}, {0, H, W}, 1);
    mb.addQuad({0, 0, 0}, {0, 0, W}, {0, H, W}, {0, H, 0}, 1);
    mb.addQuad({L, 0, 0}, {L, H, 0}, {L, H, W}, {L, 0, W}, 1);
    // Ceiling strips each side of the slot.
    mb.addQuad({0, H, 0}, {0, H, 6}, {L, H, 6}, {L, H, 0}, 1);
    mb.addQuad({0, H, 10}, {0, H, W}, {L, H, W}, {L, H, 10}, 1);
    // Emissive sky slot.
    mb.addQuad({0, H - 0.01f, 6}, {0, H - 0.01f, 10}, {L, H - 0.01f, 10},
               {L, H - 0.01f, 6}, 3);

    // Two levels of colonnades along both long walls.
    const int columns = scaled(14, scale, 6);
    const int seg = scaled(20, scale, 6);
    for (int level = 0; level < 2; ++level) {
        const float y0 = level * 5.0f;
        for (int i = 0; i < columns; ++i) {
            const float x = 2.0f + (L - 4.0f) * i / (columns - 1);
            for (float z : {3.0f, W - 3.0f}) {
                mb.addCylinder({x, y0, z}, 0.45f, 4.2f, seg, 0);
                // Capital and base blocks.
                mb.addBox({x - 0.6f, y0 + 4.2f, z - 0.6f},
                          {x + 0.6f, y0 + 4.8f, z + 0.6f}, 0);
                mb.addBox({x - 0.55f, y0, z - 0.55f},
                          {x + 0.55f, y0 + 0.25f, z + 0.55f}, 0);
            }
        }
        // Gallery floors (walkways behind the columns).
        mb.addBox({0.5f, y0 + 4.8f, 0.5f}, {L - 0.5f, y0 + 5.0f, 4.5f}, 1);
        mb.addBox({0.5f, y0 + 4.8f, W - 4.5f}, {L - 0.5f, y0 + 5.0f, W - 0.5f}, 1);
    }

    // Arches between columns: approximated by tessellated ribbon strips.
    const int arch_steps = scaled(10, scale, 4);
    for (int i = 0; i + 1 < columns; ++i) {
        const float x0 = 2.0f + (L - 4.0f) * i / (columns - 1);
        const float x1 = 2.0f + (L - 4.0f) * (i + 1) / (columns - 1);
        for (float z : {3.0f, W - 3.0f}) {
            for (int s = 0; s < arch_steps; ++s) {
                const float t0 = static_cast<float>(s) / arch_steps;
                const float t1 = static_cast<float>(s + 1) / arch_steps;
                auto arch_point = [&](float t) {
                    const float x = x0 + (x1 - x0) * t;
                    const float y = 4.2f +
                        1.2f * std::sin(t * std::numbers::pi_v<float>);
                    return Vec3{x, y, z};
                };
                const Vec3 a = arch_point(t0);
                const Vec3 b = arch_point(t1);
                mb.addQuad(a, b, b + Vec3{0, 0.3f, 0}, a + Vec3{0, 0.3f, 0}, 0);
            }
        }
    }

    // Hanging drapes (large cloth quads) and floor clutter.
    const int drapes = scaled(8, scale, 3);
    for (int i = 0; i < drapes; ++i) {
        const float x = 4.0f + (L - 8.0f) * i / std::max(drapes - 1, 1);
        const float z = (i % 2) ? 4.6f : W - 4.6f;
        mb.addQuad({x, 9.5f, z}, {x + 2.0f, 9.5f, z}, {x + 2.0f, 3.0f, z},
                   {x, 3.0f, z}, 2);
    }
    const int clutter = scaled(30, scale, 8);
    for (int i = 0; i < clutter; ++i) {
        const Vec3 p{rng.nextFloat(3.0f, L - 3.0f), 0.0f,
                     rng.nextFloat(5.5f, W - 5.5f)};
        const float s = rng.nextFloat(0.3f, 0.9f);
        mb.addBox(p, p + Vec3{s, s * rng.nextFloat(0.5f, 2.0f), s}, 0);
    }

    Camera cam({3.0f, 2.0f, W / 2}, {L - 4.0f, 4.0f, W / 2}, {0, 1, 0},
               62.0f, 4.0f / 3.0f);
    return Scene("sponza", mb.takeTriangles(), std::move(mats), cam);
}

Scene
makePlantsScene(float scale)
{
    // Dense field of plants: the highest triangle count of the four, with
    // triangles densely and fairly uniformly distributed. Reflected rays
    // are mostly occluded by foliage, so bounce-2 rays do NOT terminate
    // quickly (the paper's explanation for plants' different B2 trend).
    std::vector<Material> mats = {
        {{0.35f, 0.28f, 0.18f}, {}, 0.0f},             // 0 soil
        {{0.30f, 0.40f, 0.15f}, {}, 0.0f},             // 1 stems
        {{0.20f, 0.55f, 0.18f}, {}, 0.05f},            // 2 leaves
        {{1.0f, 1.0f, 1.0f}, {8.f, 8.f, 9.f}, 0.0f},   // 3 sky
    };

    MeshBuilder mb;
    Pcg32 rng(404);

    const float field = 40.0f;
    // Soil plane.
    const int gres = scaled(10, scale, 3);
    for (int ix = 0; ix < gres; ++ix) {
        for (int iz = 0; iz < gres; ++iz) {
            const float x0 = -field / 2 + field * ix / gres;
            const float x1 = -field / 2 + field * (ix + 1) / gres;
            const float z0 = -field / 2 + field * iz / gres;
            const float z1 = -field / 2 + field * (iz + 1) / gres;
            mb.addQuad({x0, 0, z0}, {x1, 0, z0}, {x1, 0, z1}, {x0, 0, z1}, 0);
        }
    }
    // Sky.
    mb.addQuad({-120, 60, -120}, {-120, 60, 120}, {120, 60, 120},
               {120, 60, -120}, 3);

    // Dense jittered grid of plants. At scale 1 this yields ~1M triangles.
    const int rows = scaled(56, std::sqrt(scale), 10);
    const int leaves = scaled(24, scale, 6);
    for (int ix = 0; ix < rows; ++ix) {
        for (int iz = 0; iz < rows; ++iz) {
            const Vec3 base{-field / 2 + field * (ix + rng.nextFloat()) / rows,
                            0.0f,
                            -field / 2 + field * (iz + rng.nextFloat()) / rows};
            mb.addPlant(base, rng.nextFloat(0.8f, 2.2f), leaves, 1, 2, rng);
        }
    }

    Camera cam({-14.0f, 3.2f, -14.0f}, {4.0f, 0.8f, 4.0f}, {0, 1, 0}, 55.0f,
               4.0f / 3.0f);
    return Scene("plants", mb.takeTriangles(), std::move(mats), cam);
}

Scene
makeTestScene()
{
    std::vector<Material> mats = {
        {{0.7f, 0.7f, 0.7f}, {}, 0.0f},
        {{0.9f, 0.9f, 0.9f}, {12.f, 12.f, 12.f}, 0.0f},
        {{0.6f, 0.3f, 0.3f}, {}, 0.0f},
    };

    MeshBuilder mb;
    // Closed 10x6x10 box (inward normals irrelevant: two-sided test).
    mb.addQuad({0, 0, 0}, {10, 0, 0}, {10, 0, 10}, {0, 0, 10}, 0); // floor
    mb.addQuad({0, 6, 0}, {0, 6, 10}, {10, 6, 10}, {10, 6, 0}, 0); // ceiling
    mb.addQuad({0, 0, 0}, {0, 6, 0}, {0, 6, 10}, {0, 0, 10}, 0);
    mb.addQuad({10, 0, 0}, {10, 0, 10}, {10, 6, 10}, {10, 6, 0}, 0);
    mb.addQuad({0, 0, 0}, {10, 0, 0}, {10, 6, 0}, {0, 6, 0}, 0);
    mb.addQuad({0, 0, 10}, {0, 6, 10}, {10, 6, 10}, {10, 0, 10}, 0);
    // Ceiling light.
    mb.addQuad({4, 5.95f, 4}, {4, 5.95f, 6}, {6, 5.95f, 6}, {6, 5.95f, 4}, 1);
    // A block in the middle.
    mb.addBox({4, 0, 4.5f}, {6, 2, 6.5f}, 2);

    Camera cam({5.0f, 3.0f, 0.8f}, {5.0f, 1.5f, 6.0f}, {0, 1, 0}, 60.0f,
               4.0f / 3.0f);
    return Scene("test", mb.takeTriangles(), std::move(mats), cam);
}

} // namespace drs::scene
