#include "scene/scene.h"

#include <stdexcept>

namespace drs::scene {

Scene::Scene(std::string name, std::vector<geom::Triangle> triangles,
             std::vector<Material> materials, Camera camera)
    : name_(std::move(name)),
      triangles_(std::move(triangles)),
      materials_(std::move(materials)),
      camera_(camera)
{
    for (std::size_t i = 0; i < triangles_.size(); ++i) {
        const auto mat = triangles_[i].material;
        if (mat < 0 || static_cast<std::size_t>(mat) >= materials_.size())
            throw std::out_of_range("triangle references unknown material");
        if (materials_[static_cast<std::size_t>(mat)].emissive())
            emissive_.push_back(static_cast<std::int32_t>(i));
    }
}

geom::Aabb
Scene::bounds() const
{
    geom::Aabb b;
    for (const auto &t : triangles_)
        b.extend(t.bounds());
    return b;
}

} // namespace drs::scene
