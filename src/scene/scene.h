#pragma once

/**
 * @file
 * Scene container: triangle soup + materials + camera + emissive-triangle
 * index. This is the single input consumed by the BVH builder and the path
 * tracer.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "geom/triangle.h"
#include "scene/camera.h"
#include "scene/material.h"

namespace drs::scene {

/** A complete renderable scene. */
class Scene
{
  public:
    Scene() = default;

    Scene(std::string name, std::vector<geom::Triangle> triangles,
          std::vector<Material> materials, Camera camera);

    const std::string &name() const { return name_; }
    const std::vector<geom::Triangle> &triangles() const { return triangles_; }
    const std::vector<Material> &materials() const { return materials_; }
    const Camera &camera() const { return camera_; }

    /** Material for triangle @p tri. */
    const Material &materialOf(std::int32_t tri) const
    {
        return materials_.at(
            static_cast<std::size_t>(triangles_.at(tri).material));
    }

    /** Indices of emissive triangles (the scene's light geometry). */
    const std::vector<std::int32_t> &emissiveTriangles() const
    {
        return emissive_;
    }

    /** World-space bounds over all triangles. */
    geom::Aabb bounds() const;

    bool empty() const { return triangles_.empty(); }
    std::size_t triangleCount() const { return triangles_.size(); }

  private:
    std::string name_;
    std::vector<geom::Triangle> triangles_;
    std::vector<Material> materials_;
    Camera camera_;
    std::vector<std::int32_t> emissive_;
};

} // namespace drs::scene
