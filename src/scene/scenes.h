#pragma once

/**
 * @file
 * The four benchmark scenes of the paper's evaluation (Figure 7), rebuilt
 * procedurally with matching geometric character:
 *
 *  - conference: indoor room, medium triangle count, unevenly distributed
 *    furniture, area lights on the ceiling (rays terminate easily).
 *  - fairy: "teapot in a stadium" — a small, highly detailed model inside
 *    a large, simple open environment.
 *  - sponza: enclosed courtyard with complex architecture (colonnades,
 *    arches, galleries); rays are hard to terminate.
 *  - plants: outdoor scene with a large number of densely distributed
 *    triangles (foliage) that occlude reflected rays.
 *
 * Every generator takes a @c scale in (0, 1]: 1.0 approximates the paper's
 * triangle counts (283K / 174K / 262K / 1.1M); smaller values reduce
 * tessellation for faster simulation while preserving scene structure.
 */

#include <string>
#include <vector>

#include "scene/scene.h"

namespace drs::scene {

/** Identifier for the four benchmark scenes. */
enum class SceneId
{
    Conference,
    Fairy,
    Sponza,
    Plants,
};

/** All four scene ids in the paper's presentation order. */
const std::vector<SceneId> &allSceneIds();

/** Short lowercase name ("conference", "fairy", "sponza", "plants"). */
std::string sceneName(SceneId id);

/** Parse a scene name; throws std::invalid_argument on unknown names. */
SceneId sceneFromName(const std::string &name);

/** Build the scene @p id at tessellation @p scale in (0, 1]. */
Scene makeScene(SceneId id, float scale = 0.25f);

Scene makeConferenceScene(float scale = 0.25f);
Scene makeFairyScene(float scale = 0.25f);
Scene makeSponzaScene(float scale = 0.25f);
Scene makePlantsScene(float scale = 0.25f);

/** A tiny deterministic scene for unit tests (a lit box with one block). */
Scene makeTestScene();

} // namespace drs::scene
