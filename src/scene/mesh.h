#pragma once

/**
 * @file
 * Procedural mesh builders. The benchmark scenes are generated rather than
 * loaded from disk (the original meshes are not redistributable); these
 * primitives are combined by scenes.cc to reproduce each scene's geometric
 * character (see DESIGN.md section 2).
 */

#include <cstdint>
#include <vector>

#include "geom/rng.h"
#include "geom/triangle.h"
#include "geom/vec.h"

namespace drs::scene {

/** A growable triangle soup with per-triangle material ids. */
class MeshBuilder
{
  public:
    /** Append one triangle. */
    void addTriangle(const geom::Vec3 &a, const geom::Vec3 &b,
                     const geom::Vec3 &c, std::int32_t material);

    /** Append a quad (two triangles) with vertices in CCW order. */
    void addQuad(const geom::Vec3 &a, const geom::Vec3 &b,
                 const geom::Vec3 &c, const geom::Vec3 &d,
                 std::int32_t material);

    /** Append an axis-aligned box spanning [lo, hi]. */
    void addBox(const geom::Vec3 &lo, const geom::Vec3 &hi,
                std::int32_t material);

    /**
     * Append a tessellated vertical cylinder.
     *
     * @param base center of the bottom cap
     * @param radius cylinder radius
     * @param height cylinder height (along +Y)
     * @param segments number of side quads (>= 3)
     * @param capped whether to add top/bottom caps
     */
    void addCylinder(const geom::Vec3 &base, float radius, float height,
                     int segments, std::int32_t material, bool capped = true);

    /**
     * Append a UV-sphere.
     *
     * @param center sphere center
     * @param radius sphere radius
     * @param stacks latitudinal subdivisions (>= 2)
     * @param slices longitudinal subdivisions (>= 3)
     */
    void addSphere(const geom::Vec3 &center, float radius, int stacks,
                   int slices, std::int32_t material);

    /**
     * Append a sphereflake fractal: a sphere with @p children child
     * spheres per level recursively attached, a classic stand-in for a
     * "small detailed model" (the fairy in the fairy forest scene).
     *
     * @param depth recursion depth (0 = just the root sphere)
     */
    void addSphereflake(const geom::Vec3 &center, float radius, int depth,
                        int children, int stacks, int slices,
                        std::int32_t material);

    /**
     * Append a plant: a thin tapering stem with randomly oriented
     * elliptical leaves, used by the plants scene.
     *
     * @param rng randomness source (plants vary individually)
     * @param leaves number of leaves
     */
    void addPlant(const geom::Vec3 &base, float height, int leaves,
                  std::int32_t stem_material, std::int32_t leaf_material,
                  geom::Pcg32 &rng);

    const std::vector<geom::Triangle> &triangles() const { return triangles_; }
    std::vector<geom::Triangle> takeTriangles() { return std::move(triangles_); }
    std::size_t size() const { return triangles_.size(); }

  private:
    std::vector<geom::Triangle> triangles_;
};

} // namespace drs::scene
