#pragma once

/**
 * @file
 * Lockstep functional reference for the simulated traversal kernels.
 *
 * A ray's traversal work is a function of the ray alone: the per-thread
 * semantics (TravWorkspace) never read another lane's state, so a single
 * reference thread walking the while-while CFG with no timing model must
 * produce exactly the hits — and exactly the per-ray visit counts of the
 * traversal blocks — that any architecture, schedule or thread count
 * produces. verifyBatch() cross-checks a finished run against that
 * reference: per-ray hits bit-identically (the reference shares the
 * simulator's float paths), total rays traced, and per-block thread
 * visits derived from SimStats::blockIssue.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "bvh/bvh.h"
#include "geom/ray.h"
#include "geom/triangle.h"
#include "kernels/aila_kernel.h"
#include "simt/sim_stats.h"

namespace drs::check {

/** What the reference interpreter produced for one ray batch. */
struct ReferenceResult
{
    /** Per-ray hits, indexed like the input batch. */
    std::vector<geom::Hit> hits;
    /** Thread visits per while-while block (AilaBlocks indices). */
    std::vector<std::uint64_t> blockVisits;
};

/**
 * Execute the whole batch through one reference thread: walk the Aila
 * CFG from FETCH, draining the pool, with successor-membership
 * validation and a termination bound. @p config selects the traversal
 * semantics (speculation, any-hit); its warp count is ignored.
 */
ReferenceResult runReference(const bvh::Bvh &bvh,
                             const std::vector<geom::Triangle> &triangles,
                             std::span<const geom::Ray> rays,
                             const kernels::AilaConfig &config);

/** CFG flavour of the simulated run being cross-checked. */
enum class KernelFlavor
{
    WhileWhile, ///< Aila program (Aila baseline, TBC)
    WhileIf,    ///< DRS program (DRS, DMK)
};

/** How to interpret the simulated run in verifyBatch(). */
struct BatchCheckInputs
{
    KernelFlavor flavor = KernelFlavor::WhileWhile;
    /** False for runs without per-block issue stats (TBC): hits only. */
    bool hasBlockIssue = true;
    /**
     * Reference traversal semantics. Must match the simulated kernel:
     * speculation changes which inner nodes a ray visits, any-hit where
     * it stops. The DRS/DMK kernels never speculate.
     */
    kernels::AilaConfig reference{};
    /** Cost model of the simulated program (its instruction counts). */
    kernels::CostModel simCost = kernels::defaultCostModel();
};

/**
 * Cross-check one finished run against the reference interpreter:
 * per-ray hit equality (exact), stats.raysTraced == rays.size(), and —
 * when block-issue stats exist — per-block thread visits (active-thread
 * sums divided by instruction counts; divisibility is itself checked).
 * The while-while FETCH/EXIT blocks are thread-count-dependent and
 * excluded; the while-if comparison covers the two traversal-test
 * blocks, whose visit counts are flavour-independent.
 *
 * @param hits per-ray hits the run produced, indexed like @p rays
 * @throws InvariantViolation on any mismatch
 */
void verifyBatch(const bvh::Bvh &bvh,
                 const std::vector<geom::Triangle> &triangles,
                 std::span<const geom::Ray> rays,
                 const simt::SimStats &stats,
                 const std::vector<geom::Hit> &hits,
                 const BatchCheckInputs &inputs);

} // namespace drs::check
