#pragma once

/**
 * @file
 * The concrete invariant checker behind the simt::CheckContext hook.
 *
 * Dependency-light by design: it reads public state of the SIMT core and
 * the traversal workspace and throws on any violated invariant. It never
 * mutates simulation state, so a checked run produces bit-identical
 * SimStats to an unchecked one (pinned by tests/test_check.cc).
 *
 * Enabling: set DRS_CHECK=1 in the environment (the harness consults
 * checkEnabled()) or force it per run with harness::RunConfig::check.
 */

#include <stdexcept>

#include "simt/check.h"

namespace drs::kernels {
class TravWorkspace;
}

namespace drs::check {

/** Thrown by the checkers in this library on a violated invariant. */
class InvariantViolation : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/**
 * Whether invariant checking is requested.
 *
 * @param mode 0 = off, 1 = on, -1 = consult the DRS_CHECK environment
 *        variable: unset, empty or "0" is off, "1" is on; any other
 *        value warns once on stderr and stays off (fail-safe — a typo
 *        must not silently change what a run measures).
 */
bool checkEnabled(int mode = -1);

/**
 * Traversal-workspace invariants: empty slots hold no ray id, live slots
 * hold in-stripe unique ray ids with a sane leaf cursor, liveRays()
 * agrees with the slot states, and rays are conserved.
 *
 * @param strict every ray of the stripe must be inside the workspace
 *        (completed + live + unfetched == stripe size). False for
 *        architectures that legally park rays outside the rows (the DMK
 *        spawn memory); conservation then checks "<=" and the controller
 *        accounts for the parked remainder in its own verifyInvariants().
 */
void verifyWorkspace(const kernels::TravWorkspace &workspace, bool strict);

/**
 * Counter/SimStats lockstep: every scalar SimStats field that mirrors an
 * observability counter must equal the counter's snapshot value. Only
 * names present in the snapshot are compared, so the check applies to
 * any architecture's stats object.
 */
void verifyStatsLockstep(const simt::SimStats &stats);

/**
 * The checker the SMX (and the TBC executor) calls under DRS_CHECK.
 * Stateless and const: one instance can serve concurrently-stepped SMXs.
 */
class Checker : public simt::CheckContext
{
  public:
    /**
     * Reconvergence-stack well-formedness: non-empty, bottom entry
     * reconverges at the exit block, pcs/rpcs inside the program, masks
     * within the warp width, pushed entries non-empty, every entry a
     * child or sibling in the IPDOM tree, child masks subsets of their
     * parent's, sibling masks pairwise disjoint.
     */
    void checkWarp(const simt::Warp &warp,
                   const simt::Program &program) const override;

    /** Cache-model invariants of both L1s (bounds, LRU consistency). */
    void checkMemory(const simt::SmxMemory &memory) const override;

    /**
     * Workspace ray-conservation invariants (verifyWorkspace, non-strict)
     * when the kernel's workspace is a TravWorkspace; other workspaces
     * are skipped.
     */
    void checkKernel(simt::Kernel &kernel) const override;

    /** Counter/SimStats lockstep (verifyStatsLockstep). */
    void checkStats(const simt::SimStats &stats) const override;
};

} // namespace drs::check
