#include "check/reference.h"

#include <string>

#include "check/check.h"
#include "kernels/drs_kernel.h"

namespace drs::check {

using kernels::AilaBlocks;
using kernels::DrsBlocks;

ReferenceResult
runReference(const bvh::Bvh &bvh,
             const std::vector<geom::Triangle> &triangles,
             std::span<const geom::Ray> rays,
             const kernels::AilaConfig &config)
{
    kernels::AilaConfig ref_config = config;
    ref_config.numWarps = 1;
    kernels::AilaKernel kernel(bvh, triangles, rays, /*first_ray=*/0,
                               ref_config);
    const simt::Program &program = kernel.program();

    ReferenceResult result;
    result.blockVisits.assign(AilaBlocks::kCount, 0);

    // Generous bound: a ray visits each BVH node and triangle at most
    // once per traversal phase, far below a million blocks.
    const std::uint64_t bound =
        1'000'000ULL * (static_cast<std::uint64_t>(rays.size()) + 1);
    std::uint64_t steps = 0;

    int pc = AilaBlocks::kFetch;
    while (pc != AilaBlocks::kExit) {
        ++result.blockVisits[static_cast<std::size_t>(pc)];
        const simt::ThreadStep step = kernel.execute(pc, 0, 0);
        bool legal = false;
        for (const int succ : program.block(pc).successors)
            legal = legal || succ == step.nextBlock;
        if (!legal)
            throw InvariantViolation(
                "reference: block " + program.block(pc).name +
                " stepped to a non-successor block");
        pc = step.nextBlock;
        if (++steps > bound)
            throw InvariantViolation(
                "reference interpreter did not terminate");
    }

    result.hits = kernel.travWorkspace().results();
    return result;
}

namespace {

/**
 * Thread visits of block @p b: the active-thread sum of every issued
 * instruction, divided by the block's instruction count (each visit
 * issues the whole block at one active-thread population).
 */
std::uint64_t
threadVisits(const simt::SimStats &stats, const simt::Program &program,
             int b)
{
    const auto index = static_cast<std::size_t>(b);
    if (index >= stats.blockIssue.size())
        return 0;
    const std::uint64_t active_sum = stats.blockIssue[index].second;
    const int icount = program.block(b).instructionCount;
    if (icount <= 0)
        throw InvariantViolation("reference: block " +
                                 program.block(b).name +
                                 " has no instructions");
    if (active_sum % static_cast<std::uint64_t>(icount) != 0)
        throw InvariantViolation(
            "reference: active-thread sum of block " +
            program.block(b).name +
            " is not a multiple of its instruction count");
    return active_sum / static_cast<std::uint64_t>(icount);
}

void
compareVisits(const std::string &sim_name, std::uint64_t sim_visits,
              const std::string &ref_name, std::uint64_t ref_visits)
{
    if (sim_visits != ref_visits)
        throw InvariantViolation(
            "reference: block " + sim_name + " saw " +
            std::to_string(sim_visits) + " thread visits, reference " +
            ref_name + " saw " + std::to_string(ref_visits));
}

} // namespace

void
verifyBatch(const bvh::Bvh &bvh,
            const std::vector<geom::Triangle> &triangles,
            std::span<const geom::Ray> rays, const simt::SimStats &stats,
            const std::vector<geom::Hit> &hits,
            const BatchCheckInputs &inputs)
{
    if (hits.size() != rays.size())
        throw InvariantViolation("reference: run produced " +
                                 std::to_string(hits.size()) +
                                 " hits for " +
                                 std::to_string(rays.size()) + " rays");
    if (stats.raysTraced != rays.size())
        throw InvariantViolation(
            "reference: raysTraced is " +
            std::to_string(stats.raysTraced) + ", batch holds " +
            std::to_string(rays.size()) + " rays");

    const ReferenceResult ref =
        runReference(bvh, triangles, rays, inputs.reference);

    for (std::size_t i = 0; i < hits.size(); ++i) {
        const geom::Hit &got = hits[i];
        const geom::Hit &want = ref.hits[i];
        if (got.triangle != want.triangle || got.t != want.t ||
            got.u != want.u || got.v != want.v)
            throw InvariantViolation(
                "reference: ray " + std::to_string(i) +
                " hit mismatch (sim triangle " +
                std::to_string(got.triangle) + ", reference triangle " +
                std::to_string(want.triangle) + ")");
    }

    if (!inputs.hasBlockIssue)
        return;

    if (inputs.flavor == KernelFlavor::WhileWhile) {
        const simt::Program sim = kernels::makeAilaProgram(inputs.simCost);
        // FETCH is visited once per ray plus once per thread (the failed
        // fetch before exiting) and EXIT never issues: both depend on the
        // thread count and are excluded. Every other block's visits are
        // per-ray work.
        for (const int b :
             {AilaBlocks::kInnerHead, AilaBlocks::kInnerTest,
              AilaBlocks::kLeafHead, AilaBlocks::kLeafTest,
              AilaBlocks::kDoneCheck, AilaBlocks::kStore}) {
            compareVisits(sim.block(b).name, threadVisits(stats, sim, b),
                          sim.block(b).name,
                          ref.blockVisits[static_cast<std::size_t>(b)]);
        }
    } else {
        const simt::Program sim = kernels::makeDrsProgram(inputs.simCost);
        // The while-if bodies interleave rays differently, but one
        // INNER_TEST visit is one inner-node step and one LEAF_TEST
        // visit is one triangle test in both flavours.
        const simt::Program ref_prog =
            kernels::makeAilaProgram(inputs.simCost);
        compareVisits(
            sim.block(DrsBlocks::kInnerTest).name,
            threadVisits(stats, sim, DrsBlocks::kInnerTest),
            ref_prog.block(AilaBlocks::kInnerTest).name,
            ref.blockVisits[static_cast<std::size_t>(
                AilaBlocks::kInnerTest)]);
        compareVisits(
            sim.block(DrsBlocks::kLeafTest).name,
            threadVisits(stats, sim, DrsBlocks::kLeafTest),
            ref_prog.block(AilaBlocks::kLeafTest).name,
            ref.blockVisits[static_cast<std::size_t>(
                AilaBlocks::kLeafTest)]);
    }
}

} // namespace drs::check
