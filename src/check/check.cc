#include "check/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "kernels/trav_workspace.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/sim_stats.h"
#include "simt/warp.h"

namespace drs::check {

bool
checkEnabled(int mode)
{
    if (mode == 0)
        return false;
    if (mode == 1)
        return true;
    const char *env = std::getenv("DRS_CHECK");
    if (env == nullptr)
        return false;
    const std::string_view value(env);
    if (value.empty() || value == "0")
        return false;
    if (value == "1")
        return true;
    static bool warned = false;
    if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "DRS_CHECK=%s not understood (use 0 or 1); "
                     "invariant checking stays off\n",
                     env);
    }
    return false;
}

void
Checker::checkWarp(const simt::Warp &warp,
                   const simt::Program &program) const
{
    const std::vector<simt::StackEntry> &stack = warp.stack();
    if (stack.empty())
        throw InvariantViolation("warp stack is empty");
    if (stack.front().rpc != warp.exitBlock())
        throw InvariantViolation(
            "bottom stack entry does not reconverge at the exit block");

    const std::uint32_t full = simt::fullMask(warp.lanes());
    for (const simt::StackEntry &e : stack) {
        if (e.pc < 0 || e.pc >= program.blockCount() || e.rpc < 0 ||
            e.rpc >= program.blockCount())
            throw InvariantViolation("stack pc/rpc outside the program");
        if ((e.mask & ~full) != 0)
            throw InvariantViolation(
                "stack mask has lanes beyond the warp width");
    }
    for (std::size_t i = 1; i < stack.size(); ++i)
        if (stack[i].mask == 0)
            throw InvariantViolation(
                "pushed stack entry with an empty mask");

    // IPDOM-tree structure. Each entry above the bottom is either the
    // first child of the entry directly below (its rpc is that entry's
    // pc — divergence parks the parent at the reconvergence point) or a
    // sibling of it (same rpc, same parent). Only the top entry ever
    // executes, so a non-top child never sits at pc == rpc and the two
    // cases cannot collide.
    std::vector<std::size_t> parent_of(stack.size(), 0);
    for (std::size_t i = 1; i < stack.size(); ++i) {
        const simt::StackEntry &e = stack[i];
        const simt::StackEntry &prev = stack[i - 1];
        std::size_t parent;
        if (prev.pc == e.rpc) {
            parent = i - 1;
        } else if (prev.rpc == e.rpc) {
            parent = parent_of[i - 1];
        } else {
            throw InvariantViolation(
                "stack entry reconverges at an unrelated block");
        }
        parent_of[i] = parent;
        if ((e.mask & ~stack[parent].mask) != 0)
            throw InvariantViolation(
                "child mask is not a subset of its parent's");
        for (std::size_t j = parent + 1; j < i; ++j)
            if (parent_of[j] == parent && (stack[j].mask & e.mask) != 0)
                throw InvariantViolation(
                    "sibling stack entries share a lane");
    }
}

void
Checker::checkMemory(const simt::SmxMemory &memory) const
{
    memory.verifyInvariants();
}

void
Checker::checkKernel(simt::Kernel &kernel) const
{
    auto *workspace =
        dynamic_cast<kernels::TravWorkspace *>(&kernel.workspace());
    if (workspace == nullptr)
        return;
    verifyWorkspace(*workspace, /*strict=*/false);
}

void
Checker::checkStats(const simt::SimStats &stats) const
{
    verifyStatsLockstep(stats);
}

void
verifyWorkspace(const kernels::TravWorkspace &workspace, bool strict)
{
    std::unordered_set<std::int64_t> ids;
    std::size_t live = 0;
    const auto first = static_cast<std::int64_t>(workspace.firstRay());
    const auto end =
        first + static_cast<std::int64_t>(workspace.results().size());

    for (int row = 0; row < workspace.rowCount(); ++row) {
        for (int lane = 0; lane < workspace.laneCount(); ++lane) {
            const kernels::RaySlot &slot = workspace.slot(row, lane);
            if (slot.state == simt::TravState::Fetch) {
                if (slot.rayId != -1)
                    throw InvariantViolation(
                        "empty slot still holds a ray id");
                continue;
            }
            ++live;
            if (slot.rayId < first || slot.rayId >= end)
                throw InvariantViolation(
                    "live slot's ray id is outside the SMX stripe");
            if (!ids.insert(slot.rayId).second)
                throw InvariantViolation("two slots hold the same ray");
            if (slot.leafCursor > slot.leafEnd)
                throw InvariantViolation("leaf cursor ran past its end");
        }
    }

    if (live != workspace.liveRays())
        throw InvariantViolation("liveRays disagrees with slot states");

    const std::size_t total = workspace.results().size();
    const std::size_t accounted =
        static_cast<std::size_t>(workspace.raysCompleted()) + live +
        workspace.poolRemaining();
    if (strict) {
        if (accounted != total)
            throw InvariantViolation("rays lost or duplicated");
    } else if (accounted > total) {
        throw InvariantViolation(
            "more rays in flight than the stripe holds");
    }
}

void
verifyStatsLockstep(const simt::SimStats &stats)
{
    const obs::CounterSnapshot &counters = stats.counters;
    const auto expect = [&](std::string_view name, std::uint64_t field) {
        if (!counters.contains(name))
            return;
        if (counters.value(name) != field)
            throw InvariantViolation(
                "SimStats field drifted from counter '" +
                std::string(name) + "'");
    };
    expect("smx.rdctrl.issued", stats.rdctrlIssued);
    expect("smx.rdctrl.stalled_issues", stats.rdctrlStalledIssues);
    expect("smx.rdctrl.stall_cycles", stats.rdctrlStallCycles);
    expect("smx.rf.normal_accesses", stats.rfAccessesNormal);
    expect("smx.rf.shuffle_accesses", stats.rfAccessesShuffle);
    expect("smx.swap.completed", stats.raySwapsCompleted);
    expect("smx.swap.cycles", stats.raySwapCycles);
    expect("smx.spawn.conflict_cycles", stats.spawnBankConflictCycles);
    expect("l1d.access", stats.l1Data.accesses);
    expect("l1d.miss", stats.l1Data.misses);
    expect("l1t.access", stats.l1Texture.accesses);
    expect("l1t.miss", stats.l1Texture.misses);
    expect("l2.access", stats.l2.accesses);
    expect("l2.miss", stats.l2.misses);
}

} // namespace drs::check
