#pragma once

/**
 * @file
 * Cooperative cancellation and deadlines for long-running work. A
 * CancelToken is shared between a controller (sweep runner, signal
 * handler, test) and the workers it governs: workers poll it at cheap
 * points (the cycle engines check once per simulated cycle) and throw
 * Cancelled / DeadlineExceeded when asked to stop. Header-only and
 * std-only, so the simulator core can poll tokens without growing a
 * dependency.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace drs::exec {

/** Thrown by CancelToken::poll() after requestCancel(). */
class Cancelled : public std::runtime_error
{
  public:
    Cancelled() : std::runtime_error("task cancelled") {}
    explicit Cancelled(const std::string &what) : std::runtime_error(what) {}
};

/** Thrown by CancelToken::poll() once the deadline has passed. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    DeadlineExceeded() : std::runtime_error("task deadline exceeded") {}
    explicit DeadlineExceeded(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Shared stop/deadline flag. requestCancel() and cancelled() are
 * thread-safe; setDeadline()/setTimeout() must happen-before handing
 * the token to workers (the deadline is published through a release
 * store on hasDeadline_).
 *
 * Tokens can be chained: setParent() links a token to a longer-lived
 * one (a sweep-wide or process-wide stop flag), and cancellation,
 * deadlines and poll() then observe both. Used to fan a single
 * coordinator-level cancel (e.g. a SIGTERM handler) out through the
 * short-lived per-attempt tokens the sweep runner creates.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Ask every holder of this token to stop at its next poll. */
    void requestCancel() { cancelled_.store(true, std::memory_order_release); }

    bool cancelled() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        return parent_ != nullptr && parent_->cancelled();
    }

    /**
     * Chain this token under @p parent: cancellation or an expired
     * deadline on the parent stops holders of this token too. Must
     * happen-before handing the token to workers; the parent must
     * outlive this token. Null detaches.
     */
    void setParent(const CancelToken *parent) { parent_ = parent; }

    const CancelToken *parent() const { return parent_; }

    /** Absolute deadline; polls past it throw DeadlineExceeded. */
    void setDeadline(Clock::time_point deadline)
    {
        deadline_ = deadline;
        hasDeadline_.store(true, std::memory_order_release);
    }

    /** Relative deadline in seconds from now; <= 0 means none. */
    void setTimeout(double seconds)
    {
        if (seconds <= 0.0)
            return;
        setDeadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
    }

    bool hasDeadline() const
    {
        if (hasDeadline_.load(std::memory_order_acquire))
            return true;
        return parent_ != nullptr && parent_->hasDeadline();
    }

    /**
     * True once the deadline (own or a chained parent's) has passed.
     * Reads the clock — amortize in hot loops (the engines check every
     * 1024 cycles); cancelled() is a plain atomic load plus at most one
     * pointer chase and can be checked every cycle.
     */
    bool deadlineExpired() const
    {
        if (hasDeadline_.load(std::memory_order_acquire) &&
            Clock::now() >= deadline_)
            return true;
        return parent_ != nullptr && parent_->deadlineExpired();
    }

    /** Throw Cancelled / DeadlineExceeded when asked to stop. */
    void poll() const
    {
        if (cancelled())
            throw Cancelled();
        if (deadlineExpired())
            throw DeadlineExceeded();
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> hasDeadline_{false};
    Clock::time_point deadline_{};
    const CancelToken *parent_ = nullptr;
};

} // namespace drs::exec
