#pragma once

/**
 * @file
 * Host-side parallel execution primitives for the simulator: a
 * work-stealing thread pool and a task group for fork/join batches. This
 * library sits below src/simt in the dependency order (it knows nothing
 * about rendering or simulation) so both the sweep harness and the
 * parallel GPU engine can use it.
 *
 * Design: each worker owns a deque protected by a light mutex; submitters
 * distribute round-robin, workers pop from their own front (LIFO, cache
 * warm) and steal from other workers' backs (FIFO, coarse tasks first).
 * A pool of size <= 1 still runs tasks on a worker thread; callers that
 * want strictly inline execution (determinism debugging) simply don't go
 * through a pool.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drs::exec {

/**
 * Parallel worker count for this process: `DRS_JOBS` from the environment
 * when set to a positive integer (malformed values warn on stderr), else
 * std::thread::hardware_concurrency(), else 1.
 */
int defaultConcurrency();

/** A fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /** @param threads worker count; clamped to at least 1 */
    explicit ThreadPool(int threads);

    /** Drains nothing: outstanding tasks are completed before teardown. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Never blocks. */
    void submit(std::function<void()> task);

    int threadCount() const { return static_cast<int>(threads_.size()); }

    /** Tasks submitted over the pool's lifetime (observability/tests). */
    std::uint64_t tasksExecuted() const { return tasksExecuted_.load(); }

    /** Tasks stolen from another worker's queue (work-stealing proof). */
    std::uint64_t tasksStolen() const { return tasksStolen_.load(); }

  private:
    struct Worker
    {
        std::deque<std::function<void()>> queue;
        std::mutex mutex;
    };

    void workerLoop(std::size_t index);
    bool tryPop(std::size_t index, std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<std::uint64_t> tasksExecuted_{0};
    std::atomic<std::uint64_t> tasksStolen_{0};
};

/**
 * Fork/join helper: submit a batch of tasks to a pool and wait for all of
 * them. Exceptions thrown by tasks are captured on the worker — they
 * never cross a thread boundary raw (no std::terminate) — and the first
 * one rethrows from wait().
 *
 * Failure containment: the first captured error cancels the group, so
 * queued-but-unstarted siblings are skipped instead of burning workers
 * on a batch that already failed. cancel() does the same on demand, and
 * runWithDeadline() skips tasks still queued when their deadline passes
 * (a skipped task counts in skipped() and is recorded as a
 * DeadlineExceeded group error). Tasks already running are never
 * interrupted — cancellation inside a task is cooperative
 * (exec::CancelToken).
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** Groups must be joined before destruction. */
    ~TaskGroup() { waitNoThrow(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void run(std::function<void()> task);

    /**
     * Like run(), but the task is skipped (not executed) when it is
     * dequeued after @p deadline; the skip is recorded as a
     * DeadlineExceeded group error.
     */
    void runWithDeadline(std::function<void()> task,
                         std::chrono::steady_clock::time_point deadline);

    /**
     * Skip every task of this group not yet started. Running tasks
     * finish normally; wait() still joins them all.
     */
    void cancel() { cancelled_.store(true, std::memory_order_release); }

    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    /** Tasks skipped by cancellation or an expired deadline. */
    std::size_t skipped() const;

    /**
     * Block until every task run() so far has finished; rethrow first
     * error. Joining re-arms the group: the error is consumed and a
     * cancellation no longer applies to tasks submitted afterwards
     * (skipped() stays cumulative).
     */
    void wait();

  private:
    struct Deadline
    {
        bool active = false;
        std::chrono::steady_clock::time_point at{};
    };

    void submit(std::function<void()> task, Deadline deadline);
    void recordError(std::exception_ptr error);
    void waitNoThrow();

    ThreadPool &pool_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    std::size_t skipped_ = 0;
    std::exception_ptr error_;
    std::atomic<bool> cancelled_{false};
};

} // namespace drs::exec
