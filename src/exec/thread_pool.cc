#include "exec/thread_pool.h"

#include "exec/cancel.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace drs::exec {

int
defaultConcurrency()
{
    if (const char *s = std::getenv("DRS_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(s, &end, 10);
        if (end != s && *end == '\0' && v > 0)
            return static_cast<int>(v);
        std::fprintf(stderr,
                     "[exec] warning: ignoring malformed DRS_JOBS='%s'\n", s);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    const std::size_t n = threads > 1 ? static_cast<std::size_t>(threads) : 1;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_.store(true);
    }
    sleepCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const std::size_t target =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    // Serialize with the workers' empty-check-then-wait (the lock is what
    // makes the notify visible; without it a push between a worker's check
    // and its wait would be a lost wakeup).
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    sleepCv_.notify_one();
}

bool
ThreadPool::tryPop(std::size_t index, std::function<void()> &task)
{
    // Own queue first (front: most recently pushed locality)...
    {
        Worker &own = *workers_[index];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.queue.empty()) {
            task = std::move(own.queue.front());
            own.queue.pop_front();
            return true;
        }
    }
    // ...then steal from the back of the other queues.
    for (std::size_t k = 1; k < workers_.size(); ++k) {
        Worker &victim = *workers_[(index + k) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.queue.empty()) {
            task = std::move(victim.queue.back());
            victim.queue.pop_back();
            tasksStolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    for (;;) {
        std::function<void()> task;
        if (tryPop(index, task)) {
            // Count before running: the task body is what signals a
            // TaskGroup join, so an increment after task() could still be
            // pending when a waiter wakes and reads the counter.
            tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (stop_.load())
            return;
        // Re-check under the lock: a submit between tryPop and here would
        // otherwise be missed until the next notify.
        bool any = false;
        for (const auto &w : workers_) {
            std::lock_guard<std::mutex> qlock(w->mutex);
            any = any || !w->queue.empty();
        }
        if (any)
            continue;
        sleepCv_.wait(lock);
    }
}

void
TaskGroup::run(std::function<void()> task)
{
    submit(std::move(task), Deadline{});
}

void
TaskGroup::runWithDeadline(std::function<void()> task,
                           std::chrono::steady_clock::time_point deadline)
{
    submit(std::move(task), Deadline{true, deadline});
}

void
TaskGroup::submit(std::function<void()> task, Deadline deadline)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task), deadline] {
        // Decide skip-vs-run at dequeue time: a cancelled group (first
        // error or explicit cancel()) or an expired deadline drops the
        // task before it starts; running tasks are never interrupted.
        bool skip = cancelled();
        bool expired = false;
        if (!skip && deadline.active &&
            std::chrono::steady_clock::now() >= deadline.at) {
            skip = true;
            expired = true;
        }
        if (skip) {
            std::unique_lock<std::mutex> lock(mutex_);
            ++skipped_;
            if (expired && !error_)
                error_ = std::make_exception_ptr(DeadlineExceeded(
                    "task skipped: group deadline exceeded"));
            if (--pending_ == 0)
                cv_.notify_all();
            return;
        }
        try {
            task();
        } catch (...) {
            recordError(std::current_exception());
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0)
            cv_.notify_all();
    });
}

void
TaskGroup::recordError(std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_)
            error_ = std::move(error);
    }
    // First error cancels the group: unstarted siblings of a failed
    // batch are skipped instead of wasting workers.
    cancel();
}

std::size_t
TaskGroup::skipped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return skipped_;
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    // Joining resets the group for reuse: the error is consumed here and
    // a cancellation no longer applies to tasks submitted afterwards.
    cancelled_.store(false, std::memory_order_release);
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

void
TaskGroup::waitNoThrow()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
}

} // namespace drs::exec
