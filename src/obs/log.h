#pragma once

/**
 * @file
 * Structured, leveled, rate-limited event log for the whole fleet
 * (coordinator, workers, sweep runner, watchdog). One event is one JSONL
 * line:
 *
 *   {"ts_us": <monotonic us>, "pid": <pid>, "level": "warn",
 *    "subsystem": "fleet", "event": "worker_death", "data": {...}}
 *
 * Two sinks:
 *  - a file sink (DRS_LOG=<path>) opened O_APPEND and written with one
 *    write(2) per line, so fork()ed fleet workers share the same file
 *    without interleaving torn lines;
 *  - a stderr sink (warn and above by default) that renders exactly one
 *    pid-prefixed line per event, replacing the old freeform fprintf
 *    interleaving of coordinator + worker diagnostics.
 *
 * Timestamps come from CLOCK_MONOTONIC, which fork() preserves, so
 * coordinator and worker events stitched from one log file order
 * correctly without wall-clock skew.
 *
 * Logging is a pure observer: nothing in the simulation reads the log,
 * and SimStats are bit-identical with DRS_LOG set or unset (the fleet
 * chaos harness pins this end to end).
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace drs::obs {

/** Event severity; also used as a sink threshold (Off passes nothing). */
enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4, ///< threshold only: disables a sink entirely
};

/** Lower-case level name ("debug", "info", "warn", "error", "off"). */
const char *logLevelName(LogLevel level);

/**
 * Parse a level name or digit ("warn", "2", "off"). @return false (and
 * leaves @p out untouched) for anything else.
 */
bool parseLogLevel(std::string_view text, LogLevel *out);

/** Event-log configuration, usually from the environment. */
struct LogConfig
{
    /** JSONL destination; empty = no file sink. */
    std::string path;
    /** Minimum severity for the file sink. */
    LogLevel level = LogLevel::Info;
    /** Minimum severity for the one-line stderr sink. */
    LogLevel stderrLevel = LogLevel::Warn;
    /**
     * Per-(subsystem, event) rate limit: at most this many events per
     * rateWindowSeconds window; the surplus is counted and reported in a
     * "log"/"rate_limited" summary event when the window rolls over.
     * 0 = unlimited.
     */
    int maxEventsPerWindow = 64;
    /** Rate-limit window length (seconds). */
    double rateWindowSeconds = 1.0;

    /**
     * Read DRS_LOG (path), DRS_LOG_LEVEL (file-sink threshold),
     * DRS_LOG_STDERR (stderr-sink threshold, "off" disables) and
     * DRS_LOG_RATE (events per window, 0 = unlimited). Strict parse:
     * malformed values warn on stderr and keep the default.
     */
    static LogConfig fromEnvironment();
};

/**
 * The event log. Thread-safe; one instance may be shared by every
 * thread of a process. The global() instance is additionally shared
 * with fork()ed children: the O_APPEND file descriptor is inherited, so
 * coordinator and workers append to one file (pid is recorded per
 * event, never cached).
 */
class EventLog
{
  public:
    EventLog() = default;
    explicit EventLog(const LogConfig &config) { configure(config); }
    ~EventLog();
    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /** (Re)configure; opens the file sink O_APPEND (created 0644). */
    void configure(const LogConfig &config);

    const LogConfig &config() const { return config_; }
    bool fileOpen() const { return fd_ >= 0; }

    /** Would an event at @p level reach any sink? (Cheap pre-check.) */
    bool wouldLog(LogLevel level) const
    {
        return level >= config_.level || level >= config_.stderrLevel;
    }

    /**
     * Log one event. @p data is an optional object of key/value payload
     * fields, serialized under "data". The stderr sink renders long or
     * multiline values (e.g. a watchdog dump) truncated and escaped so
     * every event stays exactly one line.
     */
    void log(LogLevel level, std::string_view subsystem,
             std::string_view event, Json data = Json());

    /** Events that reached at least one sink. */
    std::uint64_t emitted() const;
    /** Events dropped by the rate limiter. */
    std::uint64_t suppressed() const;

    /** Close the file sink (stderr sink keeps working). */
    void close();

    /**
     * Process-wide instance, lazily configured from the environment on
     * first use (subsequent configure() calls override). Everything in
     * the tree logs through this unless it owns a private instance.
     */
    static EventLog &global();

  private:
    struct RateEntry
    {
        std::string key;
        std::uint64_t windowStartMicros = 0;
        int count = 0;
        std::uint64_t suppressed = 0;
    };

    /** @return false when the event must be dropped (limit exceeded). */
    bool admit(std::string_view subsystem, std::string_view event,
               std::uint64_t now_us);
    void emitLine(LogLevel level, std::string_view subsystem,
                  std::string_view event, const Json *data,
                  std::uint64_t ts_us);

    mutable std::mutex mutex_;
    LogConfig config_{};
    int fd_ = -1;
    std::uint64_t emitted_ = 0;
    std::uint64_t suppressedTotal_ = 0;
    std::vector<RateEntry> rate_;
};

/** Convenience: EventLog::global().log(...). */
void logEvent(LogLevel level, std::string_view subsystem,
              std::string_view event, Json data = Json());

/** Monotonic microseconds (CLOCK_MONOTONIC), the event-log timebase. */
std::uint64_t logNowMicros();

} // namespace drs::obs
