#include "obs/trace.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <set>

#include "obs/attribution.h"
#include "obs/json.h"
#include "obs/sampler.h"

namespace drs::obs {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Block: return "block";
      case TraceEventKind::RdctrlStall: return "rdctrl_stall";
      case TraceEventKind::RaySwap: return "ray_swap";
      case TraceEventKind::SpawnOverhead: return "spawn_overhead";
    }
    return "unknown";
}

void
Tracer::enable(std::size_t capacity)
{
    capacity_ = capacity;
    next_ = 0;
    ring_.assign(capacity, TraceEvent{});
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    if (capacity_ == 0 || next_ == 0)
        return out;
    const std::size_t count = next_ < capacity_ ? next_ : capacity_;
    out.reserve(count);
    // Oldest retained event first: when the ring wrapped, that is the
    // slot the next record would overwrite.
    const std::size_t start = next_ < capacity_ ? 0 : next_ % capacity_;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring_[(start + i) % capacity_]);
    return out;
}

TraceConfig
TraceConfig::fromEnvironment()
{
    TraceConfig config;
    if (const char *path = std::getenv("DRS_TRACE")) {
        // Strict: an empty value is almost certainly a scripting mistake
        // (e.g. DRS_TRACE= left over); warn instead of tracing nowhere.
        if (*path == '\0') {
            std::fprintf(stderr,
                         "warning: ignoring empty DRS_TRACE "
                         "(want an output path)\n");
        } else {
            config.enabled = true;
            config.path = path;
        }
    }
    if (const char *s = std::getenv("DRS_TRACE_CAPACITY")) {
        char *end = nullptr;
        const long long v = std::strtoll(s, &end, 10);
        while (end && *end != '\0' &&
               std::isspace(static_cast<unsigned char>(*end)))
            ++end;
        if (end == s || *end != '\0' || v <= 0) {
            std::fprintf(stderr,
                         "warning: ignoring malformed DRS_TRACE_CAPACITY"
                         "=\"%s\" (want a positive integer)\n",
                         s);
        } else {
            config.capacity = static_cast<std::size_t>(v);
        }
    }
    return config;
}

TraceCollector::TraceCollector(int num_smx, std::size_t capacity)
    : tracers_(static_cast<std::size_t>(num_smx))
{
    for (Tracer &tracer : tracers_)
        tracer.enable(capacity);
}

std::size_t
TraceCollector::eventCount() const
{
    std::size_t n = 0;
    for (const Tracer &tracer : tracers_) {
        const std::uint64_t recorded = tracer.recorded();
        n += static_cast<std::size_t>(recorded - tracer.dropped());
    }
    return n;
}

void
TraceCollector::writeChromeTrace(std::ostream &out,
                                 const SamplerCollector *sampler) const
{
    // Streamed by hand: a full Json tree of every event would dwarf the
    // simulation's own memory use at large ring capacities.
    out << "{\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped_total = 0;
    for (std::size_t smx = 0; smx < tracers_.size(); ++smx) {
        const Tracer &tracer = tracers_[smx];
        dropped_total += tracer.dropped();

        if (!first)
            out << ",";
        first = false;
        out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << smx
            << ",\"args\":{\"name\":\"SMX " << smx << "\"}}";

        const auto &names = tracer.blockNames();
        const std::vector<TraceEvent> events = tracer.events();

        // Name each track (tid) once so Perfetto shows "warp 3" / "swap
        // engine" instead of bare thread ids.
        std::set<int> tids;
        std::uint64_t last_ts = 0;
        for (const TraceEvent &event : events) {
            tids.insert(event.warp < 0 ? 9999 : event.warp);
            if (event.end > last_ts)
                last_ts = event.end;
        }
        for (int tid : tids) {
            out << ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << smx
                << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
            if (tid == 9999)
                out << "swap engine";
            else
                out << "warp " << tid;
            out << "\"}}";
        }

        for (const TraceEvent &event : events) {
            out << ",{\"ph\":\"X\",\"pid\":" << smx << ",\"tid\":"
                << (event.warp < 0 ? 9999 : event.warp) << ",\"ts\":"
                << event.begin << ",\"dur\":"
                << (event.end > event.begin ? event.end - event.begin : 1)
                << ",\"name\":\"";
            if (event.kind == TraceEventKind::Block &&
                static_cast<std::size_t>(event.aux) < names.size())
                out << jsonEscape(names[static_cast<std::size_t>(event.aux)]);
            else
                out << traceEventKindName(event.kind);
            out << "\",\"cat\":\""
                << (event.kind == TraceEventKind::Block ? "warp" : "rayhw")
                << "\",\"args\":{\"aux\":" << event.aux << "}}";
        }

        // Final ring-drop count as a counter sample so lossy rings are
        // visible in the UI, not only in the footer metadata.
        out << ",{\"ph\":\"C\",\"pid\":" << smx
            << ",\"ts\":" << last_ts << ",\"name\":\"ring_dropped\","
            << "\"args\":{\"dropped\":" << tracer.dropped() << "}}";
    }

    if (sampler != nullptr) {
        // Timeline counter tracks under a dedicated pid: issue-slot
        // breakdown plus raw work counters per window, merged across
        // SMXs. Frame order gives monotonically increasing ts.
        const std::size_t pid = tracers_.size();
        if (!first)
            out << ",";
        first = false;
        out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
            << ",\"args\":{\"name\":\"timeline\"}}";
        for (const SampleFrame &frame : sampler->mergedFrames()) {
            out << ",{\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":"
                << frame.begin << ",\"name\":\"issue_slots\",\"args\":{";
            for (int b = 0; b < kNumSlotBuckets; ++b) {
                if (b != 0)
                    out << ",";
                out << "\"" << slotBucketName(static_cast<SlotBucket>(b))
                    << "\":" << frame.slots[static_cast<std::size_t>(b)];
            }
            out << "}},{\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":"
                << frame.begin << ",\"name\":\"work\",\"args\":{"
                << "\"instructions\":" << frame.instructions
                << ",\"active_threads\":" << frame.activeThreads
                << ",\"rays_completed\":" << frame.raysCompleted << "}}";
        }
    }

    out << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
        << "\"timestamp_unit\":\"core cycle\",\"dropped_events\":"
        << dropped_total << "}}";
}

bool
TraceCollector::writeFile(const std::string &path, std::string *error,
                          const SamplerCollector *sampler) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    writeChromeTrace(out, sampler);
    out.flush();
    if (!out) {
        if (error)
            *error = "write to " + path + " failed";
        return false;
    }
    return true;
}

} // namespace drs::obs
