#pragma once

/**
 * @file
 * Minimal JSON value type with a writer and a strict parser — just enough
 * for the observability layer: structured bench reports (BENCH_*.json),
 * golden expectation files under tests/golden/, and Chrome trace_event
 * output. Objects preserve insertion order so emitted reports are stable
 * and diffable.
 *
 * No external dependency: the container bakes in no JSON library, and the
 * schema we need (numbers, strings, bools, arrays, ordered objects) is
 * small enough to own.
 */

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace drs::obs {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    using Array = std::vector<Json>;
    /** Insertion-ordered key/value pairs (stable, diffable output). */
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<std::int64_t>(i)) {}
    Json(long i) : value_(static_cast<std::int64_t>(i)) {}
    Json(long long i) : value_(static_cast<std::int64_t>(i)) {}
    Json(unsigned u) : value_(static_cast<std::uint64_t>(u)) {}
    Json(unsigned long u) : value_(static_cast<std::uint64_t>(u)) {}
    Json(unsigned long long u) : value_(static_cast<std::uint64_t>(u)) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string_view s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}

    static Json object() { return Json(Object{}); }
    static Json array() { return Json(Array{}); }

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool isBool() const { return std::holds_alternative<bool>(value_); }
    bool isNumber() const
    {
        return std::holds_alternative<double>(value_) ||
               std::holds_alternative<std::int64_t>(value_) ||
               std::holds_alternative<std::uint64_t>(value_);
    }
    bool isString() const { return std::holds_alternative<std::string>(value_); }
    bool isArray() const { return std::holds_alternative<Array>(value_); }
    bool isObject() const { return std::holds_alternative<Object>(value_); }

    bool asBool() const { return std::get<bool>(value_); }
    /** Numeric value as double (whatever internal representation). */
    double asDouble() const;
    /** Numeric value as uint64 (truncates doubles). */
    std::uint64_t asUint() const;
    const std::string &asString() const { return std::get<std::string>(value_); }
    const Array &asArray() const { return std::get<Array>(value_); }
    const Object &asObject() const { return std::get<Object>(value_); }

    /** Object access: insert-or-find @p key (value becomes an object). */
    Json &operator[](std::string_view key);

    /** Object lookup; nullptr when absent or not an object. */
    const Json *find(std::string_view key) const;

    /** Array append (value becomes an array when null). */
    Json &push(Json element);

    /** Children of an array/object; 0 otherwise. */
    std::size_t size() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits the compact one-line form.
     */
    void dump(std::ostream &out, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /**
     * Strict parse of a complete JSON document (trailing garbage is an
     * error). @return std::nullopt on malformed input, with a
     * human-readable reason in @p error when provided.
     */
    static std::optional<Json> parse(std::string_view text,
                                     std::string *error = nullptr);

    /**
     * Structural equality. Numbers compare by value, not by internal
     * representation, so a document still equals itself after a
     * dump/parse round trip (the writer emits "42" for int64 and uint64
     * alike; the parser picks one representation).
     */
    bool operator==(const Json &other) const;

  private:
    Json(Array a) : value_(std::move(a)) {}
    Json(Object o) : value_(std::move(o)) {}

    void dumpValue(std::ostream &out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t,
                 std::string, Array, Object>
        value_;
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(std::string_view s);

} // namespace drs::obs
