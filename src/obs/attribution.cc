#include "obs/attribution.h"

#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace drs::obs {

const char *
slotBucketName(SlotBucket bucket)
{
    switch (bucket) {
    case SlotBucket::IssuedFull: return "issued_full";
    case SlotBucket::IssuedPartial: return "issued_partial";
    case SlotBucket::StalledRdctrl: return "stalled_rdctrl";
    case SlotBucket::StalledMemory: return "stalled_memory";
    case SlotBucket::StalledScoreboard: return "stalled_scoreboard";
    case SlotBucket::NoReadyWarp: return "no_ready_warp";
    case SlotBucket::Drained: return "drained";
    }
    return "unknown";
}

const char *
travPhaseName(TravPhase phase)
{
    switch (phase) {
    case TravPhase::None: return "none";
    case TravPhase::Fetch: return "fetch";
    case TravPhase::Inner: return "inner";
    case TravPhase::Leaf: return "leaf";
    }
    return "unknown";
}

void
IssueAttribution::enable(int slots_per_cycle)
{
    if (slots_per_cycle <= 0)
        throw std::invalid_argument(
            "IssueAttribution::enable: slots_per_cycle must be positive");
    slotsPerCycle_ = slots_per_cycle;
}

void
IssueAttribution::endCycle()
{
    if (!enabled())
        return;
    if (cycleSlots_ != static_cast<std::uint64_t>(slotsPerCycle_)) {
        std::ostringstream out;
        out << "issue-slot conservation violated: cycle " << cycles_
            << " recorded " << cycleSlots_ << " slots, expected "
            << slotsPerCycle_;
        throw std::logic_error(out.str());
    }
    cycleSlots_ = 0;
    ++cycles_;
}

std::uint64_t
IssueAttribution::bucketTotal(SlotBucket bucket) const
{
    std::uint64_t total = 0;
    for (int p = 0; p < kNumTravPhases; ++p)
        total += count(bucket, static_cast<TravPhase>(p));
    return total;
}

std::array<std::uint64_t, kNumSlotBuckets>
IssueAttribution::bucketTotals() const
{
    std::array<std::uint64_t, kNumSlotBuckets> totals{};
    for (int b = 0; b < kNumSlotBuckets; ++b)
        totals[b] = bucketTotal(static_cast<SlotBucket>(b));
    return totals;
}

std::uint64_t
IssueAttribution::totalSlots() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t n : counts_)
        total += n;
    return total;
}

void
IssueAttribution::merge(const IssueAttribution &other)
{
    if (!other.enabled())
        return;
    if (!enabled())
        slotsPerCycle_ = other.slotsPerCycle_;
    if (slotsPerCycle_ != other.slotsPerCycle_)
        throw std::invalid_argument(
            "IssueAttribution::merge: slotsPerCycle mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    cycles_ += other.cycles_;
}

void
IssueAttribution::verifyConservation() const
{
    if (!enabled())
        return;
    if (cycleSlots_ != 0)
        throw std::logic_error(
            "issue-slot conservation: unfinished cycle at verification");
    const std::uint64_t expected =
        static_cast<std::uint64_t>(slotsPerCycle_) * cycles_;
    const std::uint64_t total = totalSlots();
    if (total == expected)
        return;
    std::ostringstream out;
    out << "issue-slot conservation violated: sum " << total << " != "
        << slotsPerCycle_ << " slots x " << cycles_ << " cycles ("
        << expected << ");";
    for (int b = 0; b < kNumSlotBuckets; ++b)
        out << ' ' << slotBucketName(static_cast<SlotBucket>(b)) << '='
            << bucketTotal(static_cast<SlotBucket>(b));
    throw std::logic_error(out.str());
}

AttributionCollector::AttributionCollector(int num_smx, int slots_per_cycle)
{
    if (num_smx <= 0)
        throw std::invalid_argument(
            "AttributionCollector: num_smx must be positive");
    perSmx_.reserve(static_cast<std::size_t>(num_smx));
    for (int i = 0; i < num_smx; ++i) {
        perSmx_.push_back(std::make_unique<IssueAttribution>());
        perSmx_.back()->enable(slots_per_cycle);
    }
}

void
AttributionCollector::setBlockNames(std::vector<std::string> names)
{
    blockNames_ = std::move(names);
}

IssueAttribution
AttributionCollector::merged() const
{
    IssueAttribution total;
    for (const auto &smx : perSmx_)
        total.merge(*smx);
    return total;
}

Json
AttributionCollector::toJson() const
{
    const IssueAttribution total = merged();
    Json section = Json::object();
    section["slots_per_cycle"] =
        static_cast<std::int64_t>(total.slotsPerCycle());
    section["cycles"] = total.cycles();
    section["total_slots"] = total.totalSlots();
    Json &buckets = section["buckets"];
    buckets = Json::object();
    for (int b = 0; b < kNumSlotBuckets; ++b) {
        const auto bucket = static_cast<SlotBucket>(b);
        Json &entry = buckets[slotBucketName(bucket)];
        entry = Json::object();
        entry["total"] = total.bucketTotal(bucket);
        for (int p = 0; p < kNumTravPhases; ++p) {
            const auto phase = static_cast<TravPhase>(p);
            entry[travPhaseName(phase)] = total.count(bucket, phase);
        }
    }
    return section;
}

} // namespace drs::obs
