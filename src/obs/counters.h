#pragma once

/**
 * @file
 * The counter registry of the observability layer: hierarchical named
 * event counters ("smx.rdctrl.issued", "l2.miss", "drs.swaps") registered
 * once per simulated component and incremented through stable handles on
 * the hot path.
 *
 * Concurrency/determinism contract (see DESIGN.md, "Observability"):
 * each registry belongs to exactly one simulated unit (one Smx, one
 * controller), and the parallel engine steps a unit on a single worker
 * per cycle — so increments are plain adds, never contended, and counter
 * values are bit-identical for any thread count, exactly like the rest of
 * SimStats. Registration appends; handles stay valid for the registry's
 * lifetime (deque storage), so hot code touches no lock and no lookup.
 */

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace drs::obs {

/**
 * One named 64-bit event counter. Handles are obtained from a Counters
 * registry; increments are a single add.
 */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * An order-independent snapshot of a registry (or a merge of several):
 * name → value, sorted by name so equality and merging are well-defined
 * across SMXs and runs.
 */
class CounterSnapshot
{
  public:
    /** Add @p value under @p name (summing with an existing entry). */
    void add(std::string_view name, std::uint64_t value);

    /** Value of @p name; 0 when absent. */
    std::uint64_t value(std::string_view name) const;

    /** True when @p name is present (even with value 0). */
    bool contains(std::string_view name) const;

    /** Sum all entries of @p other into this snapshot. */
    void merge(const CounterSnapshot &other);

    /** Sorted (name, value) pairs. */
    const std::vector<std::pair<std::string, std::uint64_t>> &entries() const
    {
        return entries_;
    }

    bool empty() const { return entries_.empty(); }

    /** Exact equality (determinism and consistency tests rely on it). */
    bool operator==(const CounterSnapshot &) const = default;

  private:
    /** Sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

/**
 * Append-only counter registry of one simulated unit.
 *
 * get() registers on first use and returns a stable reference; the hot
 * path holds the reference and increments without any registry access.
 * Registration itself is guarded by a mutex so a registry can be built
 * from helper objects without ceremony, but per the contract above all
 * increments happen from the unit's single stepping worker.
 */
class Counters
{
  public:
    Counters() = default;
    Counters(const Counters &) = delete;
    Counters &operator=(const Counters &) = delete;

    /** Handle for @p name, registering it (at 0) on first use. */
    Counter &get(std::string_view name);

    /** Point-in-time copy of every registered counter. */
    CounterSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_; ///< registration + snapshot only
    std::deque<std::pair<std::string, Counter>> entries_; ///< stable addrs
};

} // namespace drs::obs
