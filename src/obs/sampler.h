#pragma once

/**
 * @file
 * Windowed time-series sampler: how a run's behaviour evolves over
 * simulated time, not just its end-of-run aggregates.
 *
 * Each SMX owns a TimeSampler that snapshots cumulative progress
 * (instructions, active SIMD threads, completed rays, issue-slot
 * attribution) once per cycle and closes a frame of deltas every
 * `interval` cycles. Frames live in a fixed-capacity timeline: when it
 * fills, adjacent frames coalesce pairwise and the interval doubles —
 * so an arbitrarily long run always fits in bounded memory with a
 * uniform window size, and the result is a pure function of the
 * simulated cycles (deterministic at any --jobs/--smx-threads).
 *
 * Enabled with DRS_SAMPLE=<cycles> (or RunConfig::sample); exported as
 * the `timeline` section of bench JSON (schema v3+) and as Chrome
 * trace_event counter tracks ("ph":"C") next to the event spans.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/attribution.h"

namespace drs::obs {

class Json;

/** DRS_SAMPLE / RunConfig sampling policy. */
struct SampleConfig
{
    bool enabled = false;
    /** Cycles per timeline window (before any coalescing). */
    std::uint64_t interval = 0;
    /** Maximum frames retained per SMX (rounded up to even, >= 2). */
    std::size_t capacity = 512;

    /**
     * DRS_SAMPLE=<cycles> enables sampling at that window size;
     * DRS_SAMPLE_CAPACITY overrides the frame budget. Malformed values
     * warn and are ignored (same contract as DRS_TRACE_CAPACITY).
     */
    static SampleConfig fromEnvironment();
};

/** One closed window of deltas over [begin, end) core cycles. */
struct SampleFrame
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint64_t instructions = 0;
    std::uint64_t activeThreads = 0;
    std::uint64_t raysCompleted = 0;
    std::array<std::uint64_t, kNumSlotBuckets> slots{};
};

/**
 * Per-SMX timeline. The SMX calls tick() once per cycle with its
 * cumulative counters; everything else happens at window boundaries.
 */
class TimeSampler
{
  public:
    /**
     * Arm the sampler. @p attribution (optional) is the same SMX's
     * slot ledger; its bucket totals are snapshotted per window.
     */
    void enable(std::uint64_t interval, std::size_t capacity,
                const IssueAttribution *attribution);

    bool enabled() const { return interval_ != 0; }

    /** Current window size (doubles when the timeline coalesces). */
    std::uint64_t interval() const { return interval_; }

    /** Record one cycle's cumulative progress. */
    void tick(std::uint64_t instructions, std::uint64_t active_threads,
              std::uint64_t rays_completed)
    {
        latest_.instructions = instructions;
        latest_.activeThreads = active_threads;
        latest_.raysCompleted = rays_completed;
        if (++cyclesInWindow_ == interval_)
            closeWindow();
    }

    /**
     * Closed frames plus the in-progress partial window (if any cycles
     * accumulated since the last boundary).
     */
    std::vector<SampleFrame> frames() const;

  private:
    struct Cumulative
    {
        std::uint64_t instructions = 0;
        std::uint64_t activeThreads = 0;
        std::uint64_t raysCompleted = 0;
        std::array<std::uint64_t, kNumSlotBuckets> slots{};
    };

    SampleFrame makeFrame(std::uint64_t begin, std::uint64_t end,
                          const Cumulative &now) const;
    void closeWindow();
    void coalesce();

    std::vector<SampleFrame> frames_;
    Cumulative windowStart_;
    Cumulative latest_;
    const IssueAttribution *attribution_ = nullptr;
    std::uint64_t interval_ = 0;
    std::uint64_t cyclesInWindow_ = 0;
    std::uint64_t nextBegin_ = 0;
    std::size_t capacity_ = 0;
};

/**
 * Owns one TimeSampler per SMX for a run (the sampler sibling of
 * TraceCollector / AttributionCollector). mergedFrames() aligns the
 * per-SMX timelines on a common window size — intervals only ever
 * double from the same base, so windows always nest — and sums them
 * into one whole-GPU timeline.
 */
class SamplerCollector
{
  public:
    SamplerCollector(int num_smx, const SampleConfig &config);

    const SampleConfig &config() const { return config_; }
    int smxCount() const { return static_cast<int>(perSmx_.size()); }
    TimeSampler &smx(int index) { return *perSmx_.at(index); }
    const TimeSampler &smx(int index) const { return *perSmx_.at(index); }

    /** Whole-GPU timeline: per-SMX frames aligned and summed. */
    std::vector<SampleFrame> mergedFrames() const;

    /**
     * "timeline" section of a bench-report row (schema v3+): the merged
     * frames with per-window instantaneous SIMD efficiency
     * (activeThreads / (instructions x simd_lanes)).
     */
    Json toJson(int simd_lanes) const;

  private:
    std::vector<std::unique_ptr<TimeSampler>> perSmx_;
    SampleConfig config_;
};

} // namespace drs::obs
