#include "obs/log.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace drs::obs {

namespace {

/** Max rendered length of one value in the stderr one-liner. */
constexpr std::size_t kStderrValueLimit = 120;

/** Distinct (subsystem, event) keys tracked by the rate limiter. */
constexpr std::size_t kMaxRateEntries = 256;

std::string
flattenForStderr(const Json &value)
{
    std::string text;
    if (value.isString())
        text = value.asString();
    else
        text = value.dump();
    // One line per event, always: escape embedded newlines (a watchdog
    // dump is multi-line) and truncate the long tail.
    std::string out;
    out.reserve(std::min(text.size(), kStderrValueLimit) + 8);
    for (char c : text) {
        if (out.size() >= kStderrValueLimit) {
            out += "...";
            break;
        }
        if (c == '\n')
            out += "\\n";
        else if (c == '\t')
            out += ' ';
        else
            out += c;
    }
    return out;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    case LogLevel::Off:
        return "off";
    }
    return "unknown";
}

bool
parseLogLevel(std::string_view text, LogLevel *out)
{
    struct Name
    {
        std::string_view name;
        LogLevel level;
    };
    static constexpr Name kNames[] = {
        {"debug", LogLevel::Debug}, {"0", LogLevel::Debug},
        {"info", LogLevel::Info},   {"1", LogLevel::Info},
        {"warn", LogLevel::Warn},   {"warning", LogLevel::Warn},
        {"2", LogLevel::Warn},      {"error", LogLevel::Error},
        {"3", LogLevel::Error},     {"off", LogLevel::Off},
        {"none", LogLevel::Off},    {"4", LogLevel::Off},
    };
    for (const Name &entry : kNames)
        if (text == entry.name) {
            *out = entry.level;
            return true;
        }
    return false;
}

std::uint64_t
logNowMicros()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1'000u;
}

LogConfig
LogConfig::fromEnvironment()
{
    LogConfig config;
    if (const char *s = std::getenv("DRS_LOG")) {
        if (*s == '\0')
            std::fprintf(stderr,
                         "warning: ignoring empty DRS_LOG "
                         "(want a file path)\n");
        else
            config.path = s;
    }
    if (const char *s = std::getenv("DRS_LOG_LEVEL")) {
        if (!parseLogLevel(s, &config.level))
            std::fprintf(stderr,
                         "warning: ignoring malformed DRS_LOG_LEVEL='%s' "
                         "(want debug|info|warn|error)\n",
                         s);
    }
    if (const char *s = std::getenv("DRS_LOG_STDERR")) {
        if (!parseLogLevel(s, &config.stderrLevel))
            std::fprintf(stderr,
                         "warning: ignoring malformed DRS_LOG_STDERR='%s' "
                         "(want debug|info|warn|error|off)\n",
                         s);
    }
    if (const char *s = std::getenv("DRS_LOG_RATE")) {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(s, &end, 10);
        if (errno != 0 || end == s || *end != '\0' || v < 0 || v > 1'000'000)
            std::fprintf(stderr,
                         "warning: ignoring malformed DRS_LOG_RATE='%s' "
                         "(want a non-negative event count)\n",
                         s);
        else
            config.maxEventsPerWindow = static_cast<int>(v);
    }
    return config;
}

EventLog::~EventLog() { close(); }

void
EventLog::configure(const LogConfig &config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    config_ = config;
    if (config_.rateWindowSeconds <= 0)
        config_.rateWindowSeconds = 1.0;
    rate_.clear();
    if (config_.path.empty())
        return;
    fd_ = ::open(config_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        std::fprintf(stderr, "warning: cannot open DRS_LOG '%s': %s\n",
                     config_.path.c_str(), std::strerror(errno));
        config_.path.clear();
    }
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::uint64_t
EventLog::emitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return emitted_;
}

std::uint64_t
EventLog::suppressed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressedTotal_;
}

bool
EventLog::admit(std::string_view subsystem, std::string_view event,
                std::uint64_t now_us)
{
    if (config_.maxEventsPerWindow <= 0)
        return true;
    std::string key;
    key.reserve(subsystem.size() + event.size() + 1);
    key.append(subsystem);
    key.push_back('/');
    key.append(event);

    RateEntry *entry = nullptr;
    for (RateEntry &candidate : rate_)
        if (candidate.key == key) {
            entry = &candidate;
            break;
        }
    if (entry == nullptr) {
        if (rate_.size() >= kMaxRateEntries)
            return true; // table full: stop limiting rather than dropping
        rate_.push_back(RateEntry{key, now_us, 0, 0});
        entry = &rate_.back();
    }

    const auto window = static_cast<std::uint64_t>(
        config_.rateWindowSeconds * 1'000'000.0);
    if (now_us - entry->windowStartMicros >= window) {
        // New window: report what the old one swallowed, then reset.
        if (entry->suppressed > 0) {
            Json data = Json::object();
            data["subsystem"] = Json(std::string(subsystem));
            data["event"] = Json(std::string(event));
            data["suppressed"] = Json(entry->suppressed);
            emitLine(LogLevel::Warn, "log", "rate_limited", &data, now_us);
        }
        entry->windowStartMicros = now_us;
        entry->count = 0;
        entry->suppressed = 0;
    }
    if (entry->count >= config_.maxEventsPerWindow) {
        ++entry->suppressed;
        ++suppressedTotal_;
        return false;
    }
    ++entry->count;
    return true;
}

void
EventLog::emitLine(LogLevel level, std::string_view subsystem,
                   std::string_view event, const Json *data,
                   std::uint64_t ts_us)
{
    bool reached_sink = false;
    if (fd_ >= 0 && level >= config_.level) {
        Json record = Json::object();
        record["ts_us"] = Json(ts_us);
        record["pid"] = Json(static_cast<long long>(::getpid()));
        record["level"] = Json(logLevelName(level));
        record["subsystem"] = Json(std::string(subsystem));
        record["event"] = Json(std::string(event));
        if (data != nullptr && !data->isNull())
            record["data"] = *data;
        const std::string line = record.dump() + "\n";
        // One write(2) per line: O_APPEND makes concurrent writers
        // (forked workers sharing this fd or their own) atomic enough
        // that lines never interleave mid-record.
        std::size_t written = 0;
        while (written < line.size()) {
            const ssize_t n = ::write(fd_, line.data() + written,
                                      line.size() - written);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            written += static_cast<std::size_t>(n);
        }
        reached_sink = true;
    }
    if (level >= config_.stderrLevel && config_.stderrLevel < LogLevel::Off) {
        std::ostringstream line;
        line << "[drs " << ::getpid() << "] " << logLevelName(level) << ' '
             << subsystem << '.' << event;
        if (data != nullptr && data->isObject())
            for (const auto &[key, value] : data->asObject())
                line << ' ' << key << '=' << flattenForStderr(value);
        line << '\n';
        const std::string text = line.str();
        std::fwrite(text.data(), 1, text.size(), stderr);
        reached_sink = true;
    }
    if (reached_sink)
        ++emitted_;
}

void
EventLog::log(LogLevel level, std::string_view subsystem,
              std::string_view event, Json data)
{
    if (level >= LogLevel::Off)
        level = LogLevel::Error;
    if (!wouldLog(level))
        return;
    const std::uint64_t now_us = logNowMicros();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!admit(subsystem, event, now_us))
        return;
    emitLine(level, subsystem, event, &data, now_us);
}

EventLog &
EventLog::global()
{
    static EventLog *instance = new EventLog(LogConfig::fromEnvironment());
    return *instance;
}

void
logEvent(LogLevel level, std::string_view subsystem, std::string_view event,
         Json data)
{
    EventLog::global().log(level, subsystem, event, std::move(data));
}

} // namespace drs::obs
