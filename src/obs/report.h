#pragma once

/**
 * @file
 * Structured bench reporting: every bench binary can emit a
 * BENCH_<name>.json with machine-checkable per-scene/per-arch metrics
 * next to its human-readable tables (--json <path>). This header owns
 * the document skeleton and its schema validation; converting simulator
 * statistics into rows lives in the harness (harness/report.h), keeping
 * obs free of simulator dependencies.
 *
 * Schema (version 4):
 *   {
 *     "bench": <string>,          // e.g. "fig11_speedup"
 *     "schema_version": 4,
 *     "degraded": <bool>,         // true when any sweep job was
 *                                 // quarantined (results incomplete)
 *     "scale": { ... },           // ExperimentScale knobs
 *     "options": { ... },         // jobs, smx_threads, ...
 *     "wall_seconds": <number>,   // whole-bench wall clock
 *     "results": [ { ... }, ... ],// one object per table row/cell group
 *     "summary": { ... }          // optional bench-specific aggregates
 *   }
 * Result rows are open-ended, but when the well-known metric fields are
 * present they must be well-formed (see validateBenchReport). Version 2
 * added the top-level "degraded" flag plus the per-row robustness fields
 * "attempts" (simulation attempts), "fault_seed" (derived per-job fault
 * seed), "failed"/"from_journal" (quarantine/resume markers) and the
 * "fault.*" counters inside "counters". Version 3 adds the optional
 * per-row profiler sections, present only when the run sampled
 * (DRS_SAMPLE): "attribution" (issue-slot buckets x traversal phases,
 * hottest blocks) and "timeline" (windowed frames with slot breakdowns
 * and instantaneous SIMD efficiency). Version 4 adds the optional
 * per-row "trace" section (ring "recorded"/"ring_dropped" counters,
 * present only when the run traced via DRS_TRACE) and, inside the fleet
 * benches' "summary.fleet", the "telemetry" aggregate (worker digest
 * frames, per-job cycles/rays/seconds, summed user/sys CPU time, peak
 * RSS and max heartbeat lag across the fleet).
 */

#include <string>

#include "obs/json.h"

namespace drs::obs {

/** Current report schema version. */
inline constexpr int kBenchSchemaVersion = 4;

/** Builder for one bench report document. */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench_name);

    /** The "scale" object (fill with experiment-scale knobs). */
    Json &scale() { return document_["scale"]; }
    /** The "options" object (jobs, smx_threads, ...). */
    Json &options() { return document_["options"]; }
    /** Optional bench-specific aggregate object. */
    Json &summary() { return document_["summary"]; }

    /** Append one result row; fill the returned object in place. */
    Json &addResult();

    void setWallSeconds(double seconds);

    /**
     * Mark the report as degraded: at least one sweep job exhausted its
     * retry budget and was quarantined, so the results are incomplete.
     * Consumers must treat degraded reports as non-comparable.
     */
    void setDegraded(bool degraded);

    /** The whole document (validate/serialize). */
    const Json &document() const { return document_; }

    /**
     * Write the document (pretty-printed) to @p path.
     * @return false on I/O failure, reason in @p error when provided.
     */
    bool writeFile(const std::string &path, std::string *error = nullptr) const;

  private:
    Json document_;
};

/**
 * Validate a bench report document against schema version 4.
 *
 * Checks the required top-level fields (including the "degraded" bool)
 * and, for every result row, the well-known metric fields when present:
 * "simd_efficiency" and the cache hit rates must be numbers in [0, 1];
 * "cycles", "rays_traced", "wall_seconds", "mrays_per_s",
 * "speedup_vs_aila", "attempts" and "fault_seed" must be non-negative
 * numbers; "scene" and "arch" must be strings; "failed" and
 * "from_journal" must be booleans. The optional profiler sections are
 * checked structurally: "attribution" needs slots_per_cycle/cycles/
 * total_slots plus a "buckets" object of numeric breakdowns, "timeline"
 * needs interval/base_interval plus a "frames" array whose windows are
 * well-ordered with numeric counters and a [0, 1] simd_efficiency, a
 * row "trace" section needs non-negative recorded/ring_dropped
 * counters, and a "summary.fleet" object must carry the supervision
 * counters plus a complete "telemetry" aggregate.
 * Older schema versions are rejected with a clear version error.
 *
 * @return empty string when valid, else a human-readable reason.
 */
std::string validateBenchReport(const Json &document);

} // namespace drs::obs
