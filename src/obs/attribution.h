#pragma once

/**
 * @file
 * Cycle-attribution profiler: issue-slot accounting.
 *
 * Every scheduler issue slot of every SMX cycle is classified into
 * exactly one bucket — the top-down cycle accounting the paper's Fig.
 * 9/10 argument rests on (stall slots converted into issued slots). The
 * taxonomy (DESIGN.md §9):
 *
 *  - IssuedFull       instruction issued with every SIMD lane active
 *  - IssuedPartial    instruction issued under divergence (< all lanes)
 *  - StalledRdctrl    slot lost waiting on the ray-dispatch controller
 *  - StalledMemory    slot lost waiting on an outstanding memory access
 *  - StalledScoreboard slot lost on an in-core hazard (spawn-overhead
 *                     wait, TBC barrier synchronization)
 *  - NoReadyWarp      no eligible warp (includes dual-issue width lost
 *                     at block boundaries)
 *  - Drained          every warp of the scheduler's partition exited
 *
 * Each slot is additionally attributed to the traversal phase of the
 * warp it was issued to (or blamed on): inner-node traversal, leaf
 * intersection, ray fetch/store bookkeeping, or none (control blocks).
 *
 * The accounting carries a hard conservation invariant
 *
 *     sum over buckets x phases == slotsPerCycle x cycles
 *
 * verified per cycle in endCycle() and end-to-end in
 * verifyConservation() (called from the SMX's collectStats under
 * DRS_CHECK). Attribution is a pure observer: it never feeds back into
 * scheduling, and SimStats are bit-identical with it on or off.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace drs::obs {

class Json;

/** Exclusive classification of one scheduler issue slot. */
enum class SlotBucket : std::uint8_t
{
    IssuedFull = 0,
    IssuedPartial,
    StalledRdctrl,
    StalledMemory,
    StalledScoreboard,
    NoReadyWarp,
    Drained,
};

inline constexpr int kNumSlotBuckets = 7;

/** Stable snake_case name used in JSON reports and tables. */
const char *slotBucketName(SlotBucket bucket);

/**
 * Traversal phase a slot is attributed to. Kernel programs tag each
 * block (simt::Block::phase); control/exit blocks stay None.
 */
enum class TravPhase : std::uint8_t
{
    None = 0,
    Fetch,
    Inner,
    Leaf,
};

inline constexpr int kNumTravPhases = 4;

/** Stable snake_case name used in JSON reports and tables. */
const char *travPhaseName(TravPhase phase);

/**
 * Per-SMX issue-slot ledger. The SMX records every slot of every cycle
 * (issued slots at issue time, unissued slots when a scheduler closes
 * its cycle) and calls endCycle() once per cycle, which enforces the
 * per-cycle conservation invariant. Disabled instances ignore all
 * recording so call sites need no branches beyond a null check.
 */
class IssueAttribution
{
  public:
    /** Arm the ledger for @p slots_per_cycle scheduler slots per cycle. */
    void enable(int slots_per_cycle);

    bool enabled() const { return slotsPerCycle_ > 0; }
    int slotsPerCycle() const { return slotsPerCycle_; }

    /** Classify @p n slots of the current cycle. */
    void record(SlotBucket bucket, TravPhase phase, std::uint64_t n = 1)
    {
        counts_[index(bucket, phase)] += n;
        cycleSlots_ += n;
    }

    /**
     * Close the current cycle. Throws std::logic_error if the slots
     * recorded this cycle do not sum to exactly slotsPerCycle().
     */
    void endCycle();

    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t count(SlotBucket bucket, TravPhase phase) const
    {
        return counts_[index(bucket, phase)];
    }
    std::uint64_t bucketTotal(SlotBucket bucket) const;
    std::array<std::uint64_t, kNumSlotBuckets> bucketTotals() const;
    std::uint64_t totalSlots() const;

    /** Fold another SMX's ledger into this one (same slotsPerCycle). */
    void merge(const IssueAttribution &other);

    /**
     * End-to-end conservation: totalSlots() == slotsPerCycle x cycles.
     * Throws std::logic_error with a full breakdown on violation.
     */
    void verifyConservation() const;

  private:
    static constexpr std::size_t index(SlotBucket bucket, TravPhase phase)
    {
        return static_cast<std::size_t>(bucket) * kNumTravPhases +
               static_cast<std::size_t>(phase);
    }

    std::array<std::uint64_t, kNumSlotBuckets * kNumTravPhases> counts_{};
    std::uint64_t cycles_ = 0;
    std::uint64_t cycleSlots_ = 0;
    int slotsPerCycle_ = 0;
};

/**
 * Owns one IssueAttribution per SMX for a run, mirroring how
 * TraceCollector owns per-SMX tracers. The run wires smx(i) into each
 * unit; merged() folds the per-SMX ledgers for reporting.
 */
class AttributionCollector
{
  public:
    AttributionCollector(int num_smx, int slots_per_cycle);

    int smxCount() const { return static_cast<int>(perSmx_.size()); }
    IssueAttribution &smx(int index) { return *perSmx_.at(index); }
    const IssueAttribution &smx(int index) const { return *perSmx_.at(index); }

    /** Block names of the kernel program, for hottest-block reporting. */
    void setBlockNames(std::vector<std::string> names);
    const std::vector<std::string> &blockNames() const { return blockNames_; }

    IssueAttribution merged() const;

    /**
     * "attribution" section of a bench-report row (schema v3+):
     * slots_per_cycle, cycles, and per-bucket totals with a traversal-
     * phase breakdown.
     */
    Json toJson() const;

  private:
    std::vector<std::unique_ptr<IssueAttribution>> perSmx_;
    std::vector<std::string> blockNames_;
};

} // namespace drs::obs
