#include "obs/sampler.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "obs/json.h"

namespace drs::obs {

namespace {

// Strict positive-integer env parsing, same warn-and-ignore contract as
// DRS_TRACE_CAPACITY.
bool
parsePositive(const char *name, const char *s, long long *out)
{
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    while (end && *end != '\0' &&
           std::isspace(static_cast<unsigned char>(*end)))
        ++end;
    if (end == s || *end != '\0' || v <= 0) {
        std::fprintf(stderr,
                     "warning: ignoring malformed %s=\"%s\" "
                     "(want a positive integer)\n",
                     name, s);
        return false;
    }
    *out = v;
    return true;
}

} // namespace

SampleConfig
SampleConfig::fromEnvironment()
{
    SampleConfig config;
    if (const char *s = std::getenv("DRS_SAMPLE")) {
        long long v = 0;
        if (parsePositive("DRS_SAMPLE", s, &v)) {
            config.enabled = true;
            config.interval = static_cast<std::uint64_t>(v);
        }
    }
    if (const char *s = std::getenv("DRS_SAMPLE_CAPACITY")) {
        long long v = 0;
        if (parsePositive("DRS_SAMPLE_CAPACITY", s, &v))
            config.capacity = static_cast<std::size_t>(v);
    }
    return config;
}

void
TimeSampler::enable(std::uint64_t interval, std::size_t capacity,
                    const IssueAttribution *attribution)
{
    if (interval == 0)
        throw std::invalid_argument(
            "TimeSampler::enable: interval must be positive");
    interval_ = interval;
    // Pairwise coalescing needs an even budget of at least one pair.
    capacity_ = capacity < 2 ? 2 : capacity + (capacity & 1);
    attribution_ = attribution;
    frames_.reserve(capacity_);
}

SampleFrame
TimeSampler::makeFrame(std::uint64_t begin, std::uint64_t end,
                       const Cumulative &now) const
{
    SampleFrame frame;
    frame.begin = begin;
    frame.end = end;
    frame.instructions = now.instructions - windowStart_.instructions;
    frame.activeThreads = now.activeThreads - windowStart_.activeThreads;
    frame.raysCompleted = now.raysCompleted - windowStart_.raysCompleted;
    for (int b = 0; b < kNumSlotBuckets; ++b)
        frame.slots[b] = now.slots[b] - windowStart_.slots[b];
    return frame;
}

void
TimeSampler::closeWindow()
{
    Cumulative now = latest_;
    if (attribution_)
        now.slots = attribution_->bucketTotals();
    frames_.push_back(makeFrame(nextBegin_, nextBegin_ + cyclesInWindow_,
                                now));
    nextBegin_ += cyclesInWindow_;
    cyclesInWindow_ = 0;
    windowStart_ = now;
    if (frames_.size() >= capacity_)
        coalesce();
}

void
TimeSampler::coalesce()
{
    // Merge adjacent pairs and double the window: the timeline keeps
    // covering the whole run at half the resolution. Deterministic —
    // depends only on the cycle count, never on wall-clock or threads.
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < frames_.size(); i += 2) {
        SampleFrame merged = frames_[i];
        const SampleFrame &right = frames_[i + 1];
        merged.end = right.end;
        merged.instructions += right.instructions;
        merged.activeThreads += right.activeThreads;
        merged.raysCompleted += right.raysCompleted;
        for (int b = 0; b < kNumSlotBuckets; ++b)
            merged.slots[b] += right.slots[b];
        frames_[out++] = merged;
    }
    frames_.resize(out);
    interval_ *= 2;
}

std::vector<SampleFrame>
TimeSampler::frames() const
{
    std::vector<SampleFrame> out = frames_;
    if (cyclesInWindow_ != 0) {
        Cumulative now = latest_;
        if (attribution_)
            now.slots = attribution_->bucketTotals();
        out.push_back(makeFrame(nextBegin_, nextBegin_ + cyclesInWindow_,
                                now));
    }
    return out;
}

SamplerCollector::SamplerCollector(int num_smx, const SampleConfig &config)
    : config_(config)
{
    if (num_smx <= 0)
        throw std::invalid_argument(
            "SamplerCollector: num_smx must be positive");
    if (!config.enabled || config.interval == 0)
        throw std::invalid_argument(
            "SamplerCollector: sampling must be enabled with an interval");
    perSmx_.reserve(static_cast<std::size_t>(num_smx));
    for (int i = 0; i < num_smx; ++i)
        perSmx_.push_back(std::make_unique<TimeSampler>());
}

std::vector<SampleFrame>
SamplerCollector::mergedFrames() const
{
    // Window sizes only ever double from the shared base interval, so
    // every SMX's windows nest inside the coarsest one; align on that.
    std::uint64_t target = config_.interval;
    for (const auto &sampler : perSmx_)
        if (sampler->interval() > target)
            target = sampler->interval();

    std::map<std::uint64_t, SampleFrame> merged;
    for (const auto &sampler : perSmx_) {
        for (const SampleFrame &frame : sampler->frames()) {
            const std::uint64_t slot = frame.begin / target;
            SampleFrame &into = merged[slot];
            if (into.end == 0) { // fresh slot
                into.begin = slot * target;
                into.end = into.begin;
            }
            if (frame.end > into.end)
                into.end = frame.end;
            into.instructions += frame.instructions;
            into.activeThreads += frame.activeThreads;
            into.raysCompleted += frame.raysCompleted;
            for (int b = 0; b < kNumSlotBuckets; ++b)
                into.slots[b] += frame.slots[b];
        }
    }

    std::vector<SampleFrame> out;
    out.reserve(merged.size());
    for (auto &[slot, frame] : merged)
        out.push_back(frame);
    return out;
}

Json
SamplerCollector::toJson(int simd_lanes) const
{
    std::uint64_t target = config_.interval;
    for (const auto &sampler : perSmx_)
        if (sampler->interval() > target)
            target = sampler->interval();

    Json section = Json::object();
    section["interval"] = target;
    section["base_interval"] = config_.interval;
    Json &frames = section["frames"];
    frames = Json::array();
    for (const SampleFrame &frame : mergedFrames()) {
        Json &row = frames.push(Json::object());
        row["begin"] = frame.begin;
        row["end"] = frame.end;
        row["instructions"] = frame.instructions;
        row["active_threads"] = frame.activeThreads;
        row["rays_completed"] = frame.raysCompleted;
        const double issued_lanes =
            static_cast<double>(frame.instructions) * simd_lanes;
        row["simd_efficiency"] =
            issued_lanes > 0.0
                ? static_cast<double>(frame.activeThreads) / issued_lanes
                : 0.0;
        Json &slots = row["slots"];
        slots = Json::object();
        for (int b = 0; b < kNumSlotBuckets; ++b)
            slots[slotBucketName(static_cast<SlotBucket>(b))] =
                frame.slots[b];
    }
    return section;
}

} // namespace drs::obs
