#pragma once

/**
 * @file
 * Cycle-level event tracing: a fixed-capacity per-SMX ring buffer of
 * simulation events (block issue spans, rdctrl stalls, ray swaps, spawn
 * overhead) and a writer producing Chrome trace_event JSON, loadable in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing. One trace
 * timestamp unit equals one simulated core cycle.
 *
 * Tracing is pure observation: the simulator's behaviour and SimStats are
 * bit-identical with the tracer on or off (a regression test pins this).
 * When the ring wraps, the oldest events are dropped — the tail of a run
 * is usually the interesting part — and the drop count is recorded in the
 * trace metadata.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace drs::obs {

class SamplerCollector;

/** What a trace event describes. */
enum class TraceEventKind : std::uint8_t
{
    Block = 0,         ///< one basic block issued by a warp (aux = block id)
    RdctrlStall = 1,   ///< a warp sat stalled on rdctrl
    RaySwap = 2,       ///< one completed shuffle operation (move/exchange)
    SpawnOverhead = 3, ///< DMK spawn stall (aux = overhead instructions)
};

/** Human-readable event name ("block", "rdctrl_stall", ...). */
const char *traceEventKindName(TraceEventKind kind);

/** One recorded event: a [begin, end] cycle span on a warp (or unit). */
struct TraceEvent
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::int32_t warp = -1; ///< warp id; -1 = SMX-level unit (swap engine)
    std::int32_t aux = 0;   ///< kind-specific payload (block id, ...)
    TraceEventKind kind = TraceEventKind::Block;
};

/**
 * Ring-buffered event recorder of one SMX. Disabled (capacity 0) it costs
 * one branch per would-be record; enabled, a record is a bounds-masked
 * store. Recording never allocates after enable().
 */
class Tracer
{
  public:
    Tracer() = default;

    /** Arm the tracer with room for @p capacity events (> 0). */
    void enable(std::size_t capacity);

    bool enabled() const { return capacity_ != 0; }

    void record(TraceEventKind kind, int warp, std::uint64_t begin,
                std::uint64_t end, int aux = 0)
    {
        if (capacity_ == 0)
            return;
        ring_[next_ % capacity_] = {begin, end, warp, aux, kind};
        ++next_;
    }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Events recorded in total (including overwritten ones). */
    std::uint64_t recorded() const { return next_; }

    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const
    {
        return next_ > capacity_ ? next_ - capacity_ : 0;
    }

    /**
     * Block-id → name table used by the trace writer to label Block
     * events (taken from the kernel's Program).
     */
    void setBlockNames(std::vector<std::string> names)
    {
        blockNames_ = std::move(names);
    }
    const std::vector<std::string> &blockNames() const { return blockNames_; }

  private:
    std::size_t capacity_ = 0;
    std::size_t next_ = 0;
    std::vector<TraceEvent> ring_;
    std::vector<std::string> blockNames_;
};

/**
 * Tracing configuration, env-selectable: DRS_TRACE=<path> enables tracing
 * and names the output file; DRS_TRACE_CAPACITY=<n> bounds the per-SMX
 * ring (default 65536 events). Parsing is strict: malformed values warn
 * on stderr and are ignored (same contract as ExperimentScale).
 */
struct TraceConfig
{
    bool enabled = false;
    std::string path;
    std::size_t capacity = 65536;

    /** Read DRS_TRACE / DRS_TRACE_CAPACITY; strict parse, warn+ignore. */
    static TraceConfig fromEnvironment();
};

/**
 * Per-SMX tracers of one simulated GPU run plus the Chrome trace_event
 * writer. The GPU driver hands tracer i to SMX i; after the run the
 * collector serializes everything into one JSON document (pid = SMX
 * index, tid = warp id, ts/dur in cycles).
 */
class TraceCollector
{
  public:
    /** @param num_smx SMX count @param capacity per-SMX ring capacity */
    TraceCollector(int num_smx, std::size_t capacity);

    Tracer &smx(int index) { return tracers_.at(static_cast<std::size_t>(index)); }
    const Tracer &smx(int index) const
    {
        return tracers_.at(static_cast<std::size_t>(index));
    }
    int smxCount() const { return static_cast<int>(tracers_.size()); }

    /** Total events retained across all SMXs. */
    std::size_t eventCount() const;

    /**
     * Serialize as Chrome trace_event JSON: process/thread metadata
     * ("ph":"M") labelling SMX and warp tracks, the event spans, a
     * ring-drop counter track per SMX, and — when @p sampler is given —
     * "ph":"C" counter tracks (instantaneous SIMD efficiency, issue-slot
     * breakdown per timeline window) so Perfetto plots efficiency over
     * time next to the spans.
     */
    void writeChromeTrace(std::ostream &out,
                          const SamplerCollector *sampler = nullptr) const;

    /**
     * Write the trace to @p path. @return false on I/O failure, with the
     * reason in @p error when provided.
     */
    bool writeFile(const std::string &path, std::string *error = nullptr,
                   const SamplerCollector *sampler = nullptr) const;

  private:
    std::vector<Tracer> tracers_;
};

} // namespace drs::obs
