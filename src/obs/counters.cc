#include "obs/counters.h"

#include <algorithm>

namespace drs::obs {

namespace {

/** Comparator for the sorted snapshot entries. */
struct NameLess
{
    bool operator()(const std::pair<std::string, std::uint64_t> &entry,
                    std::string_view name) const
    {
        return entry.first < name;
    }
};

} // namespace

void
CounterSnapshot::add(std::string_view name, std::uint64_t value)
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), name,
                               NameLess{});
    if (it != entries_.end() && it->first == name) {
        it->second += value;
        return;
    }
    entries_.insert(it, {std::string(name), value});
}

std::uint64_t
CounterSnapshot::value(std::string_view name) const
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), name,
                               NameLess{});
    return it != entries_.end() && it->first == name ? it->second : 0;
}

bool
CounterSnapshot::contains(std::string_view name) const
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), name,
                               NameLess{});
    return it != entries_.end() && it->first == name;
}

void
CounterSnapshot::merge(const CounterSnapshot &other)
{
    for (const auto &[name, value] : other.entries_)
        add(name, value);
}

Counter &
Counters::get(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[n, counter] : entries_)
        if (n == name)
            return counter;
    entries_.emplace_back(std::string(name), Counter{});
    return entries_.back().second;
}

CounterSnapshot
Counters::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CounterSnapshot snap;
    for (const auto &[name, counter] : entries_)
        snap.add(name, counter.value());
    return snap;
}

} // namespace drs::obs
