#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace drs::obs {

double
Json::asDouble() const
{
    if (const auto *d = std::get_if<double>(&value_))
        return *d;
    if (const auto *i = std::get_if<std::int64_t>(&value_))
        return static_cast<double>(*i);
    return static_cast<double>(std::get<std::uint64_t>(value_));
}

std::uint64_t
Json::asUint() const
{
    if (const auto *u = std::get_if<std::uint64_t>(&value_))
        return *u;
    if (const auto *i = std::get_if<std::int64_t>(&value_))
        return static_cast<std::uint64_t>(*i);
    return static_cast<std::uint64_t>(std::get<double>(value_));
}

bool
Json::operator==(const Json &other) const
{
    if (isNumber() && other.isNumber()) {
        const bool any_double = std::holds_alternative<double>(value_) ||
                                std::holds_alternative<double>(other.value_);
        if (any_double)
            return asDouble() == other.asDouble();
        // Both integral: compare exactly across signedness.
        if (const auto *a = std::get_if<std::int64_t>(&value_)) {
            if (const auto *b = std::get_if<std::int64_t>(&other.value_))
                return *a == *b;
            return *a >= 0 && static_cast<std::uint64_t>(*a) ==
                                  std::get<std::uint64_t>(other.value_);
        }
        const std::uint64_t a = std::get<std::uint64_t>(value_);
        if (const auto *b = std::get_if<std::int64_t>(&other.value_))
            return *b >= 0 && a == static_cast<std::uint64_t>(*b);
        return a == std::get<std::uint64_t>(other.value_);
    }
    return value_ == other.value_;
}

Json &
Json::operator[](std::string_view key)
{
    if (isNull())
        value_ = Object{};
    auto &object = std::get<Object>(value_);
    for (auto &[k, v] : object)
        if (k == key)
            return v;
    object.emplace_back(std::string(key), Json());
    return object.back().second;
}

const Json *
Json::find(std::string_view key) const
{
    const auto *object = std::get_if<Object>(&value_);
    if (!object)
        return nullptr;
    for (const auto &[k, v] : *object)
        if (k == key)
            return &v;
    return nullptr;
}

Json &
Json::push(Json element)
{
    if (isNull())
        value_ = Array{};
    auto &array = std::get<Array>(value_);
    array.push_back(std::move(element));
    return array.back();
}

std::size_t
Json::size() const
{
    if (const auto *a = std::get_if<Array>(&value_))
        return a->size();
    if (const auto *o = std::get_if<Object>(&value_))
        return o->size();
    return 0;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
writeDouble(std::ostream &out, double d)
{
    if (!std::isfinite(d)) {
        out << "null"; // JSON has no Inf/NaN
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    // Round-trippable but trimmed: prefer the shortest representation
    // that parses back exactly.
    for (int precision = 1; precision < 17; ++precision) {
        char candidate[64];
        std::snprintf(candidate, sizeof candidate, "%.*g", precision, d);
        if (std::strtod(candidate, nullptr) == d) {
            out << candidate;
            return;
        }
    }
    out << buf;
}

void
newlineIndent(std::ostream &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out << '\n';
    for (int i = 0; i < indent * depth; ++i)
        out << ' ';
}

} // namespace

void
Json::dumpValue(std::ostream &out, int indent, int depth) const
{
    if (const auto *b = std::get_if<bool>(&value_)) {
        out << (*b ? "true" : "false");
    } else if (std::holds_alternative<std::nullptr_t>(value_)) {
        out << "null";
    } else if (const auto *d = std::get_if<double>(&value_)) {
        writeDouble(out, *d);
    } else if (const auto *i = std::get_if<std::int64_t>(&value_)) {
        out << *i;
    } else if (const auto *u = std::get_if<std::uint64_t>(&value_)) {
        out << *u;
    } else if (const auto *s = std::get_if<std::string>(&value_)) {
        out << '"' << jsonEscape(*s) << '"';
    } else if (const auto *a = std::get_if<Array>(&value_)) {
        if (a->empty()) {
            out << "[]";
            return;
        }
        out << '[';
        for (std::size_t i = 0; i < a->size(); ++i) {
            if (i)
                out << (indent > 0 ? "," : ", ");
            newlineIndent(out, indent, depth + 1);
            (*a)[i].dumpValue(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out << ']';
    } else {
        const auto &object = std::get<Object>(value_);
        if (object.empty()) {
            out << "{}";
            return;
        }
        out << '{';
        for (std::size_t i = 0; i < object.size(); ++i) {
            if (i)
                out << (indent > 0 ? "," : ", ");
            newlineIndent(out, indent, depth + 1);
            out << '"' << jsonEscape(object[i].first) << "\": ";
            object[i].second.dumpValue(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out << '}';
    }
}

void
Json::dump(std::ostream &out, int indent) const
{
    dumpValue(out, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream out;
    dump(out, indent);
    return out.str();
}

// ---------------------------------------------------------------------
// Parser: recursive descent, strict (no comments, no trailing commas).

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &reason)
    {
        if (error.empty())
            error = reason + " at offset " + std::to_string(pos);
        return false;
    }

    void skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                // UTF-8 encode (surrogate pairs unsupported: the
                // observability layer emits ASCII).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Json &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {}
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-'))
            ++pos;
        const std::string token(text.substr(start, pos - start));
        if (token.empty() || token == "-")
            return fail("invalid number");
        // Strict JSON: numbers start with '-' or a digit (strtoull would
        // happily accept a leading '+').
        if (token[0] == '+')
            return fail("invalid number");
        const bool integral =
            token.find_first_of(".eE") == std::string::npos;
        char *end = nullptr;
        if (integral) {
            errno = 0;
            if (token[0] == '-') {
                const long long v = std::strtoll(token.c_str(), &end, 10);
                if (end != token.c_str() + token.size() || errno == ERANGE)
                    return fail("invalid number");
                out = Json(static_cast<std::int64_t>(v));
                return true;
            }
            const unsigned long long v =
                std::strtoull(token.c_str(), &end, 10);
            if (end != token.c_str() + token.size() || errno == ERANGE)
                return fail("invalid number");
            out = Json(static_cast<std::uint64_t>(v));
            return true;
        }
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("invalid number");
        out = Json(v);
        return true;
    }

    bool parseValue(Json &out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipSpace();
            if (consume('}'))
                return true;
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(value, depth + 1))
                    return false;
                out[key] = std::move(value);
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipSpace();
            if (consume(']'))
                return true;
            while (true) {
                Json value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.push(std::move(value));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Json(nullptr);
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

std::optional<Json>
Json::parse(std::string_view text, std::string *error)
{
    Parser parser{text, 0, {}};
    Json value;
    if (!parser.parseValue(value, 0)) {
        if (error)
            *error = parser.error;
        return std::nullopt;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        parser.fail("trailing garbage");
        if (error)
            *error = parser.error;
        return std::nullopt;
    }
    return value;
}

} // namespace drs::obs
