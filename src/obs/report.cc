#include "obs/report.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace drs::obs {

BenchReport::BenchReport(std::string bench_name)
{
    document_["bench"] = Json(std::move(bench_name));
    document_["schema_version"] = Json(kBenchSchemaVersion);
    document_["degraded"] = Json(false);
    document_["scale"] = Json::object();
    document_["options"] = Json::object();
    document_["wall_seconds"] = Json(0.0);
    document_["results"] = Json::array();
    document_["summary"] = Json::object();
}

Json &
BenchReport::addResult()
{
    return document_["results"].push(Json::object());
}

void
BenchReport::setWallSeconds(double seconds)
{
    document_["wall_seconds"] = Json(seconds);
}

void
BenchReport::setDegraded(bool degraded)
{
    document_["degraded"] = Json(degraded);
}

bool
BenchReport::writeFile(const std::string &path, std::string *error) const
{
    // Atomic publication: write + fsync a sibling temp file, then
    // rename over the target. A crash (or DRS_CRASH_AFTER / SIGKILL
    // chaos) mid-write leaves either the old report or the new one —
    // never a torn half-document.
    std::ostringstream buffer;
    document_.dump(buffer, 2);
    buffer << "\n";
    const std::string text = buffer.str();

    const std::string tmp_path =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd =
        ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot open " + tmp_path +
                     " for writing: " + std::strerror(errno);
        return false;
    }
    std::size_t written = 0;
    while (written < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + written, text.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = "write to " + tmp_path +
                         " failed: " + std::strerror(errno);
            ::close(fd);
            std::remove(tmp_path.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) {
        if (error)
            *error = "fsync of " + tmp_path +
                     " failed: " + std::strerror(errno);
        std::remove(tmp_path.c_str());
        return false;
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "rename " + tmp_path + " -> " + path +
                     " failed: " + std::strerror(errno);
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

namespace {

bool
isUnitInterval(const Json &v)
{
    return v.isNumber() && v.asDouble() >= 0.0 && v.asDouble() <= 1.0;
}

bool
isNonNegativeNumber(const Json &v)
{
    return v.isNumber() && v.asDouble() >= 0.0;
}

/** Validate an optional per-row "attribution" profiler section. */
std::string
validateAttribution(const Json &section, const std::string &where)
{
    if (!section.isObject())
        return where + " must be an object";
    for (const char *field : {"slots_per_cycle", "cycles", "total_slots"}) {
        const Json *v = section.find(field);
        if (!v || !isNonNegativeNumber(*v))
            return where + "." + field +
                   " must be a non-negative number";
    }
    const Json *buckets = section.find("buckets");
    if (!buckets || !buckets->isObject())
        return where + ".buckets must be an object";
    for (const auto &[name, bucket] : buckets->asObject()) {
        if (!bucket.isObject())
            return where + ".buckets." + name + " must be an object";
        for (const auto &[phase, value] : bucket.asObject())
            if (!isNonNegativeNumber(value))
                return where + ".buckets." + name + "." + phase +
                       " must be a non-negative number";
    }
    if (const Json *blocks = section.find("blocks")) {
        if (!blocks->isArray())
            return where + ".blocks must be an array";
        for (const Json &block : blocks->asArray()) {
            if (!block.isObject())
                return where + ".blocks entries must be objects";
            const Json *name = block.find("name");
            if (!name || !name->isString())
                return where + ".blocks entries need a \"name\" string";
            for (const char *field : {"issues", "active_threads"})
                if (const Json *v = block.find(field);
                    v && !isNonNegativeNumber(*v))
                    return where + ".blocks." + field +
                           " must be a non-negative number";
        }
    }
    return "";
}

/** Validate an optional per-row "timeline" profiler section. */
std::string
validateTimeline(const Json &section, const std::string &where)
{
    if (!section.isObject())
        return where + " must be an object";
    for (const char *field : {"interval", "base_interval"}) {
        const Json *v = section.find(field);
        if (!v || !isNonNegativeNumber(*v))
            return where + "." + field +
                   " must be a non-negative number";
    }
    const Json *frames = section.find("frames");
    if (!frames || !frames->isArray())
        return where + ".frames must be an array";
    double last_begin = -1.0;
    for (std::size_t i = 0; i < frames->asArray().size(); ++i) {
        const Json &frame = frames->asArray()[i];
        const std::string at =
            where + ".frames[" + std::to_string(i) + "]";
        if (!frame.isObject())
            return at + " must be an object";
        for (const char *field : {"begin", "end", "instructions",
                                  "active_threads", "rays_completed"})
            if (const Json *v = frame.find(field);
                !v || !isNonNegativeNumber(*v))
                return at + "." + field +
                       " must be a non-negative number";
        if (frame.find("begin")->asDouble() > frame.find("end")->asDouble())
            return at + " has begin > end";
        if (frame.find("begin")->asDouble() <= last_begin)
            return at + " windows must be strictly ordered by begin";
        last_begin = frame.find("begin")->asDouble();
        if (const Json *eff = frame.find("simd_efficiency");
            !eff || !isUnitInterval(*eff))
            return at + ".simd_efficiency must be a number in [0, 1]";
        const Json *slots = frame.find("slots");
        if (!slots || !slots->isObject())
            return at + ".slots must be an object";
        for (const auto &[name, value] : slots->asObject())
            if (!isNonNegativeNumber(value))
                return at + ".slots." + name +
                       " must be a non-negative number";
    }
    return "";
}

/** Validate an optional per-row "trace" ring-counter section (v4). */
std::string
validateTrace(const Json &section, const std::string &where)
{
    if (!section.isObject())
        return where + " must be an object";
    for (const char *field : {"recorded", "ring_dropped"}) {
        const Json *v = section.find(field);
        if (!v || !isNonNegativeNumber(*v))
            return where + "." + field +
                   " must be a non-negative number";
    }
    return "";
}

/** Validate the fleet benches' "summary.fleet" aggregate (v4). */
std::string
validateFleetSummary(const Json &fleet)
{
    if (!fleet.isObject())
        return "summary.fleet must be an object";
    static const char *kCounters[] = {
        "workers",      "spawned",      "respawned",     "worker_deaths",
        "heartbeat_kills", "redispatched", "quarantined", "degraded_jobs"};
    for (const char *field : kCounters) {
        const Json *v = fleet.find(field);
        if (!v || !isNonNegativeNumber(*v))
            return std::string("summary.fleet.") + field +
                   " must be a non-negative number";
    }
    if (const Json *cancelled = fleet.find("cancelled");
        cancelled && !cancelled->isBool())
        return "summary.fleet.cancelled must be a boolean";
    const Json *telemetry = fleet.find("telemetry");
    if (!telemetry || !telemetry->isObject())
        return "summary.fleet.telemetry must be an object";
    static const char *kTelemetry[] = {
        "frames",       "jobs_reported",    "cycles",
        "rays_traced",  "job_seconds",      "user_cpu_seconds",
        "sys_cpu_seconds", "peak_rss_kb",   "max_heartbeat_lag_us"};
    for (const char *field : kTelemetry) {
        const Json *v = telemetry->find(field);
        if (!v || !isNonNegativeNumber(*v))
            return std::string("summary.fleet.telemetry.") + field +
                   " must be a non-negative number";
    }
    return "";
}

/** Validate the well-known metric fields of one result row. */
std::string
validateRow(const Json &row, std::size_t index)
{
    const auto at = [&](const char *what) {
        return std::string("results[") + std::to_string(index) + "]." + what;
    };
    if (!row.isObject())
        return std::string("results[") + std::to_string(index) +
               "] is not an object";
    static const char *kStrings[] = {"scene", "arch", "bounce", "config",
                                     "error"};
    for (const char *field : kStrings)
        if (const Json *v = row.find(field); v && !v->isString())
            return at(field) + " must be a string";
    static const char *kBools[] = {"failed", "from_journal"};
    for (const char *field : kBools)
        if (const Json *v = row.find(field); v && !v->isBool())
            return at(field) + " must be a boolean";
    static const char *kUnit[] = {"simd_efficiency", "l1d_hit_rate",
                                  "l1t_hit_rate", "l2_hit_rate",
                                  "rdctrl_stall_rate", "spawn_fraction",
                                  "shuffle_rf_fraction"};
    for (const char *field : kUnit)
        if (const Json *v = row.find(field); v && !isUnitInterval(*v))
            return at(field) + " must be a number in [0, 1]";
    static const char *kNonNegative[] = {"cycles", "rays_traced",
                                         "mrays_per_s", "speedup_vs_aila",
                                         "wall_seconds", "ray_swaps",
                                         "mean_swap_cycles", "attempts",
                                         "fault_seed"};
    for (const char *field : kNonNegative)
        if (const Json *v = row.find(field); v && !isNonNegativeNumber(*v))
            return at(field) + " must be a non-negative number";
    if (const Json *counters = row.find("counters")) {
        if (!counters->isObject())
            return at("counters") + " must be an object";
        for (const auto &[name, value] : counters->asObject())
            if (!isNonNegativeNumber(value))
                return at("counters.") + name +
                       " must be a non-negative number";
    }
    if (const Json *attribution = row.find("attribution"))
        if (std::string reason =
                validateAttribution(*attribution, at("attribution"));
            !reason.empty())
            return reason;
    if (const Json *timeline = row.find("timeline"))
        if (std::string reason =
                validateTimeline(*timeline, at("timeline"));
            !reason.empty())
            return reason;
    if (const Json *trace = row.find("trace"))
        if (std::string reason = validateTrace(*trace, at("trace"));
            !reason.empty())
            return reason;
    return "";
}

} // namespace

std::string
validateBenchReport(const Json &document)
{
    if (!document.isObject())
        return "document is not an object";

    const Json *bench = document.find("bench");
    if (!bench || !bench->isString() || bench->asString().empty())
        return "missing or empty \"bench\" string";

    const Json *version = document.find("schema_version");
    if (!version || !version->isNumber())
        return "missing \"schema_version\"";
    if (version->asUint() != static_cast<std::uint64_t>(kBenchSchemaVersion))
        return "unsupported schema_version " + version->dump() +
               " (this build reads version " +
               std::to_string(kBenchSchemaVersion) + ")";

    const Json *degraded = document.find("degraded");
    if (!degraded || !degraded->isBool())
        return "missing \"degraded\" boolean";

    for (const char *field : {"scale", "options"}) {
        const Json *v = document.find(field);
        if (!v || !v->isObject())
            return std::string("missing \"") + field + "\" object";
    }

    const Json *wall = document.find("wall_seconds");
    if (!wall || !isNonNegativeNumber(*wall))
        return "missing or negative \"wall_seconds\"";

    const Json *results = document.find("results");
    if (!results || !results->isArray())
        return "missing \"results\" array";
    for (std::size_t i = 0; i < results->asArray().size(); ++i)
        if (std::string reason = validateRow(results->asArray()[i], i);
            !reason.empty())
            return reason;

    if (const Json *summary = document.find("summary")) {
        if (!summary->isObject())
            return "\"summary\" must be an object";
        if (const Json *fleet = summary->find("fleet"))
            if (std::string reason = validateFleetSummary(*fleet);
                !reason.empty())
                return reason;
    }

    return "";
}

} // namespace drs::obs
