#!/bin/bash
# Fleet chaos harness: prove bit-identical recovery end to end, and that
# the telemetry pipeline accounts for every supervision event along the
# way.
#
#   1. Reference: a clean single-process sweep with ALL telemetry off
#      (no DRS_LOG, no DRS_TRACE, no --progress) -> ref.json.
#   2. Chaos: the same sweep across a 3-worker fleet with seeded SIGKILL
#      chaos (workers die at random points mid-job) AND a coordinator
#      crash injected after two journal appends (DRS_CRASH_AFTER ->
#      exit 70, workers die with the coordinator via PDEATHSIG). The
#      phase logs to its own DRS_LOG file (debug level, rate limiter
#      off) and traces to its own DRS_TRACE base.
#   3. The partial journal must already verify: parseable, no job
#      double-reported, at most one torn tail line. The partial event
#      log must hold the crash_injection record.
#   4. Resume: --resume under the same chaos finishes the sweep, with
#      its own DRS_LOG / DRS_TRACE and the --progress ticker on.
#   5. The recovered report must pass the schema-v4 check (including
#      summary.fleet.telemetry) and the final journal must hold every
#      job exactly once (drs_journal --expect).
#   6. Event-log accounting: every summary.fleet supervision counter of
#      the resume run (spawned, worker_deaths, respawned,
#      heartbeat_kills, redispatched, quarantined) must equal the count
#      of its event in that run's log (drs_events --count), telemetry
#      digests must cover at most the jobs the log saw finish, and
#      drs_events must accept the merged chaos+resume log (integrity:
#      at most one torn tail per file).
#   7. Trace stitching: drs_tracecat merges every worker shard of both
#      phases (torn shards from SIGKILLed workers are expected debris)
#      with the resume coordinator shard; the merged trace must pass
#      check_trace.py and its supervision instants must match the
#      summary.fleet counters one for one.
#   8. Bit-identity: after stripping wall-clock and provenance
#      (wall_seconds, options, summary.sweep, summary.fleet) the
#      recovered fleet report equals the telemetry-off single-process
#      report byte for byte — observability changed nothing but the
#      clock.
#
# Usage: check_fleet_chaos.sh BENCH_BINARY DRS_JOURNAL PYTHON \
#            SCHEMA_CHECKER DRS_EVENTS DRS_TRACECAT TRACE_CHECKER
set -euo pipefail

bench=$1
drs_journal=$2
python=$3
schema_checker=$4
drs_events=$5
drs_tracecat=$6
trace_checker=$7

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

scale_env=(DRS_RAYS=2048 DRS_SCALE=0.05 DRS_SMX=2)
chaos_env=(DRS_FLEET_CHAOS=1234 DRS_FLEET_CHAOS_RATE=0.8
           DRS_FLEET_RESPAWNS=64 DRS_FLEET_QUARANTINE=50
           DRS_FLEET_BACKOFF=0.001)
# Rate limiter OFF: the accounting below checks exact event counts, and
# a suppressed record would be a false mismatch. Debug level so the
# per-job dispatch/job_done records are captured too.
log_env=(DRS_LOG_LEVEL=debug DRS_LOG_RATE=0)

echo "== fleet chaos: clean single-process reference (telemetry off) =="
env "${scale_env[@]}" \
    "$bench" --jobs 2 --json "$tmp/ref.json" > "$tmp/ref.log"

echo "== fleet chaos: chaos fleet + coordinator crash (expect exit 70) =="
status=0
env "${scale_env[@]}" "${chaos_env[@]}" "${log_env[@]}" DRS_CRASH_AFTER=2 \
    DRS_LOG="$tmp/events_chaos.jsonl" DRS_TRACE="$tmp/trace_chaos" \
    "$bench" --jobs 2 --fleet 3 --progress --journal "$tmp/sweep.jsonl" \
    --json "$tmp/fleet.json" > "$tmp/crash.log" 2>&1 || status=$?
if [ "$status" -ne 70 ]; then
    echo "FAIL: crash-injected coordinator exited $status, expected 70"
    cat "$tmp/crash.log"
    exit 1
fi

echo "== fleet chaos: partial journal and partial event log verify =="
"$drs_journal" "$tmp/sweep.jsonl"
crashes=$("$drs_events" --count fleet.crash_injection "$tmp/events_chaos.jsonl")
if [ "$crashes" -ne 1 ]; then
    echo "FAIL: chaos-phase log has $crashes crash_injection records, expected 1"
    exit 1
fi

echo "== fleet chaos: resume under continued chaos (--progress on) =="
env "${scale_env[@]}" "${chaos_env[@]}" "${log_env[@]}" \
    DRS_LOG="$tmp/events_resume.jsonl" DRS_TRACE="$tmp/trace_resume" \
    "$bench" --jobs 2 --fleet 3 --progress --journal "$tmp/sweep.jsonl" \
    --resume --json "$tmp/fleet.json" \
    > "$tmp/resume.log" 2> "$tmp/resume.err"
grep -q 'replayed' "$tmp/resume.log" || {
    echo "FAIL: resumed run does not mention replayed jobs"
    cat "$tmp/resume.log"
    exit 1
}
grep -q '\[progress\]' "$tmp/resume.err" || {
    echo "FAIL: --progress produced no ticker output on stderr"
    cat "$tmp/resume.err"
    exit 1
}

echo "== fleet chaos: recovered report passes the schema =="
"$python" "$schema_checker" "$tmp/fleet.json"

echo "== fleet chaos: final journal holds every job exactly once =="
jobs=$("$python" -c '
import json, sys
report = json.load(open(sys.argv[1]))
print(report["summary"]["sweep"]["total_jobs"])' "$tmp/fleet.json")
"$drs_journal" "$tmp/sweep.jsonl" --expect "$jobs"

echo "== fleet chaos: event log accounts for every supervision event =="
fleet_counter() {
    "$python" -c '
import json, sys
fleet = json.load(open(sys.argv[1]))["summary"]["fleet"]
for key in sys.argv[2].split("."):
    fleet = fleet[key]
print(fleet)' "$tmp/fleet.json" "$1"
}
check_count() {
    local counter=$1 event=$2 want got
    want=$(fleet_counter "$counter")
    got=$("$drs_events" --count "$event" "$tmp/events_resume.jsonl")
    if [ "$want" -ne "$got" ]; then
        echo "FAIL: summary.fleet.$counter=$want but the event log holds" \
             "$got $event records"
        exit 1
    fi
    echo "ok   $event x $got == summary.fleet.$counter"
}
check_count spawned fleet.spawn
check_count worker_deaths fleet.worker_death
check_count respawned fleet.respawn
check_count heartbeat_kills fleet.heartbeat_kill
check_count redispatched fleet.redispatch
check_count quarantined fleet.quarantine
frames=$(fleet_counter telemetry.frames)
reported=$(fleet_counter telemetry.jobs_reported)
job_done=$("$drs_events" --count fleet.job_done "$tmp/events_resume.jsonl")
if [ "$frames" -lt 1 ] || [ "$reported" -gt "$job_done" ]; then
    echo "FAIL: telemetry frames=$frames jobs_reported=$reported vs" \
         "$job_done job_done records (want frames >= 1," \
         "jobs_reported <= job_done)"
    exit 1
fi
echo "ok   $frames telemetry frames cover $reported of $job_done jobs run"
# The merged two-phase log must be structurally sound (at most one torn
# crash-tail line per file) and analyzable as one story.
"$drs_events" "$tmp/events_chaos.jsonl" "$tmp/events_resume.jsonl" \
    > "$tmp/events_summary.txt"
sed 's/^/     /' "$tmp/events_summary.txt"

echo "== fleet chaos: stitched trace passes and matches the counters =="
shopt -s nullglob
shards=("$tmp"/trace_chaos.w*.j* "$tmp"/trace_chaos.coord
        "$tmp"/trace_resume.w*.j* "$tmp"/trace_resume.coord)
shopt -u nullglob
"$drs_tracecat" -o "$tmp/merged_trace.json" "${shards[@]}"
"$python" "$trace_checker" "$tmp/merged_trace.json"
"$python" - "$tmp/merged_trace.json" "$tmp/fleet.json" <<'PYEOF'
import json
import sys

trace = json.load(open(sys.argv[1]))
fleet = json.load(open(sys.argv[2]))["summary"]["fleet"]
instants = {}
for event in trace["traceEvents"]:
    if event.get("ph") == "i":
        kind = event.get("name", "").split(" ")[0]
        instants[kind] = instants.get(kind, 0) + 1
# The resume coordinator shard is the only lifecycle shard in the merge
# (the chaos coordinator crashed before writing its own), so its
# instants must match the resume run's counters one for one.
expectations = {
    "worker_death": fleet["worker_deaths"],
    "respawn": fleet["respawned"],
    "heartbeat_kill": fleet["heartbeat_kills"],
    "redispatch": fleet["redispatched"],
    "quarantine": fleet["quarantined"],
}
for kind, expected in expectations.items():
    got = instants.get(kind, 0)
    if got != expected:
        sys.exit(f"FAIL: stitched trace has {got} {kind} instants, "
                 f"summary.fleet says {expected}")
    print(f"ok   {kind} instants x {got} match summary.fleet")
PYEOF

echo "== fleet chaos: bit-identity against the telemetry-off reference =="
"$python" - "$tmp/ref.json" "$tmp/fleet.json" <<'PYEOF'
import json
import sys


def strip(value):
    """Drop wall-clock timing recursively; it is the one thing allowed
    to differ between a clean run and a crash-recovered fleet run."""
    if isinstance(value, dict):
        return {k: strip(v) for k, v in value.items() if k != "wall_seconds"}
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


reference = json.load(open(sys.argv[1]))
fleet = json.load(open(sys.argv[2]))
summary = fleet["summary"].get("fleet", {})
for document in (reference, fleet):
    document.pop("options", None)  # --fleet/--journal flags differ by design
    document.get("summary", {}).pop("sweep", None)  # replay provenance
    document.get("summary", {}).pop("fleet", None)  # supervision counters
reference, fleet = strip(reference), strip(fleet)
if reference != fleet:
    for key in set(reference) | set(fleet):
        if reference.get(key) != fleet.get(key):
            print(f"FAIL: '{key}' differs between reference and fleet run")
    sys.exit("FAIL: recovered fleet report is not bit-identical")
deaths = summary.get("worker_deaths", 0)
print(f"ok   bit-identical after {deaths} worker deaths, "
      f"{summary.get('redispatched', 0)} re-dispatches and one "
      "coordinator crash — with logging, tracing and --progress on")
PYEOF

echo "check_fleet_chaos.sh: all checks passed"
