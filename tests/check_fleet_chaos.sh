#!/bin/bash
# Fleet chaos harness: prove bit-identical recovery end to end.
#
#   1. Reference: a clean single-process sweep -> ref.json.
#   2. Chaos: the same sweep across a 3-worker fleet with seeded SIGKILL
#      chaos (workers die at random points mid-job) AND a coordinator
#      crash injected after two journal appends (DRS_CRASH_AFTER ->
#      exit 70, workers die with the coordinator via PDEATHSIG).
#   3. The partial journal must already verify: parseable, no job
#      double-reported, at most one torn tail line.
#   4. Resume: --resume under the same chaos finishes the sweep.
#   5. The recovered report must pass the schema check (including the
#      summary.fleet supervision section) and the final journal must
#      hold every job exactly once (drs_journal --expect).
#   6. Bit-identity: after stripping wall-clock and provenance
#      (wall_seconds, options, summary.sweep, summary.fleet) the
#      recovered fleet report equals the clean single-process report
#      byte for byte — crash isolation changed nothing but the clock.
#
# Usage: check_fleet_chaos.sh BENCH_BINARY DRS_JOURNAL PYTHON SCHEMA_CHECKER
set -euo pipefail

bench=$1
drs_journal=$2
python=$3
schema_checker=$4

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

scale_env=(DRS_RAYS=2048 DRS_SCALE=0.05 DRS_SMX=2)
chaos_env=(DRS_FLEET_CHAOS=1234 DRS_FLEET_CHAOS_RATE=0.8
           DRS_FLEET_RESPAWNS=64 DRS_FLEET_QUARANTINE=50
           DRS_FLEET_BACKOFF=0.001)

echo "== fleet chaos: clean single-process reference =="
env "${scale_env[@]}" \
    "$bench" --jobs 2 --json "$tmp/ref.json" > "$tmp/ref.log"

echo "== fleet chaos: chaos fleet + coordinator crash (expect exit 70) =="
status=0
env "${scale_env[@]}" "${chaos_env[@]}" DRS_CRASH_AFTER=2 \
    "$bench" --jobs 2 --fleet 3 --journal "$tmp/sweep.jsonl" \
    --json "$tmp/fleet.json" > "$tmp/crash.log" 2>&1 || status=$?
if [ "$status" -ne 70 ]; then
    echo "FAIL: crash-injected coordinator exited $status, expected 70"
    cat "$tmp/crash.log"
    exit 1
fi

echo "== fleet chaos: partial journal verifies =="
"$drs_journal" "$tmp/sweep.jsonl"

echo "== fleet chaos: resume under continued chaos =="
env "${scale_env[@]}" "${chaos_env[@]}" \
    "$bench" --jobs 2 --fleet 3 --journal "$tmp/sweep.jsonl" --resume \
    --json "$tmp/fleet.json" > "$tmp/resume.log"
grep -q 'replayed' "$tmp/resume.log" || {
    echo "FAIL: resumed run does not mention replayed jobs"
    cat "$tmp/resume.log"
    exit 1
}

echo "== fleet chaos: recovered report passes the schema =="
"$python" "$schema_checker" "$tmp/fleet.json"

echo "== fleet chaos: final journal holds every job exactly once =="
jobs=$("$python" -c '
import json, sys
report = json.load(open(sys.argv[1]))
print(report["summary"]["sweep"]["total_jobs"])' "$tmp/fleet.json")
"$drs_journal" "$tmp/sweep.jsonl" --expect "$jobs"

echo "== fleet chaos: bit-identity against the clean reference =="
"$python" - "$tmp/ref.json" "$tmp/fleet.json" <<'PYEOF'
import json
import sys


def strip(value):
    """Drop wall-clock timing recursively; it is the one thing allowed
    to differ between a clean run and a crash-recovered fleet run."""
    if isinstance(value, dict):
        return {k: strip(v) for k, v in value.items() if k != "wall_seconds"}
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


reference = json.load(open(sys.argv[1]))
fleet = json.load(open(sys.argv[2]))
summary = fleet["summary"].get("fleet", {})
for document in (reference, fleet):
    document.pop("options", None)  # --fleet/--journal flags differ by design
    document.get("summary", {}).pop("sweep", None)  # replay provenance
    document.get("summary", {}).pop("fleet", None)  # supervision counters
reference, fleet = strip(reference), strip(fleet)
if reference != fleet:
    for key in set(reference) | set(fleet):
        if reference.get(key) != fleet.get(key):
            print(f"FAIL: '{key}' differs between reference and fleet run")
    sys.exit("FAIL: recovered fleet report is not bit-identical")
deaths = summary.get("worker_deaths", 0)
print(f"ok   bit-identical after {deaths} worker deaths, "
      f"{summary.get('redispatched', 0)} re-dispatches and one "
      "coordinator crash")
PYEOF

echo "check_fleet_chaos.sh: all checks passed"
