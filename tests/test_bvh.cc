/**
 * @file
 * Unit and property tests for the BVH builder and reference traversal:
 * structural invariants, SAH behaviour, and exhaustive agreement with
 * brute-force intersection.
 */

#include <gtest/gtest.h>

#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "geom/rng.h"
#include "scene/scenes.h"

namespace drs::bvh {
namespace {

using geom::Hit;
using geom::Pcg32;
using geom::Ray;
using geom::Triangle;
using geom::Vec3;

std::vector<Triangle>
randomTriangles(int count, std::uint64_t seed, float extent = 10.0f)
{
    Pcg32 rng(seed);
    std::vector<Triangle> tris;
    tris.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const Vec3 base{rng.nextFloat(0, extent), rng.nextFloat(0, extent),
                        rng.nextFloat(0, extent)};
        auto jitter = [&] {
            return Vec3{rng.nextFloat(-0.5f, 0.5f), rng.nextFloat(-0.5f, 0.5f),
                        rng.nextFloat(-0.5f, 0.5f)};
        };
        tris.push_back(Triangle{base, base + jitter(), base + jitter(), 0});
    }
    return tris;
}

Hit
bruteForce(const std::vector<Triangle> &tris, const Ray &ray)
{
    Hit hit;
    Ray r = ray;
    for (std::size_t i = 0; i < tris.size(); ++i) {
        float t, u, v;
        if (tris[i].intersect(r, t, u, v)) {
            hit.triangle = static_cast<std::int32_t>(i);
            hit.t = t;
            hit.u = u;
            hit.v = v;
            r.tMax = t;
        }
    }
    return hit;
}

TEST(BvhBuilder, EmptyInput)
{
    const Bvh bvh = build({});
    EXPECT_TRUE(bvh.empty());
    EXPECT_EQ(bvh.nodeCount(), 0u);
    EXPECT_TRUE(bvh.bounds().empty());
}

TEST(BvhBuilder, SingleTriangleIsRootLeaf)
{
    const std::vector<Triangle> tris = {
        {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0}};
    const Bvh bvh = build(tris);
    ASSERT_EQ(bvh.nodeCount(), 1u);
    EXPECT_TRUE(bvh.node(0).isLeaf());
    EXPECT_EQ(bvh.node(0).triangleCount, 1);
    EXPECT_EQ(bvh.triangleIndex(0), 0);
}

TEST(BvhBuilder, AllTrianglesReferencedExactlyOnce)
{
    const auto tris = randomTriangles(500, 1);
    const Bvh bvh = build(tris);
    std::vector<int> seen(tris.size(), 0);
    for (std::int32_t idx : bvh.triangleIndices())
        ++seen[static_cast<std::size_t>(idx)];
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "triangle " << i;
}

TEST(BvhBuilder, NodesContainTheirChildren)
{
    const auto tris = randomTriangles(300, 2);
    const Bvh bvh = build(tris);
    for (std::size_t i = 0; i < bvh.nodeCount(); ++i) {
        const Node &n = bvh.node(static_cast<std::int32_t>(i));
        if (n.isLeaf()) {
            for (std::int32_t k = 0; k < n.triangleCount; ++k) {
                const auto tri = bvh.triangleIndex(n.firstTriangle + k);
                const auto tb = tris[static_cast<std::size_t>(tri)].bounds();
                EXPECT_TRUE(n.bounds.contains(tb.lo));
                EXPECT_TRUE(n.bounds.contains(tb.hi));
            }
        } else {
            const Node &l = bvh.node(static_cast<std::int32_t>(i) + 1);
            const Node &r = bvh.node(n.rightChild);
            EXPECT_TRUE(n.bounds.contains(l.bounds.lo));
            EXPECT_TRUE(n.bounds.contains(l.bounds.hi));
            EXPECT_TRUE(n.bounds.contains(r.bounds.lo));
            EXPECT_TRUE(n.bounds.contains(r.bounds.hi));
        }
    }
}

TEST(BvhBuilder, RespectsMaxLeafSize)
{
    const auto tris = randomTriangles(400, 3);
    BuildConfig config;
    config.maxLeafSize = 4;
    const Bvh bvh = build(tris, config);
    const TreeStats stats = bvh.computeStats();
    // The fallback path may create up to 4x leaves when SAH declines to
    // split, but not beyond.
    EXPECT_LE(stats.maxLeafTriangles, 4u * 4u);
    EXPECT_GT(stats.leafCount, 1u);
}

TEST(BvhBuilder, DegenerateIdenticalCentroids)
{
    // All triangles share a centroid: SAH cannot split on centroids, the
    // builder must still terminate with bounded leaves.
    std::vector<Triangle> tris;
    for (int i = 0; i < 100; ++i) {
        const float s = 0.1f + 0.01f * i;
        tris.push_back(Triangle{{-s, -s, 0}, {s * 2, -s, 0}, {-s, s * 2, 0},
                                0});
    }
    const Bvh bvh = build(tris);
    EXPECT_FALSE(bvh.empty());
    std::size_t referenced = bvh.triangleIndices().size();
    EXPECT_EQ(referenced, tris.size());
}

TEST(BvhBuilder, StatsSane)
{
    const auto tris = randomTriangles(1000, 4);
    const Bvh bvh = build(tris);
    const TreeStats stats = bvh.computeStats();
    EXPECT_EQ(stats.nodeCount, bvh.nodeCount());
    EXPECT_GT(stats.leafCount, 10u);
    EXPECT_GT(stats.maxDepth, 3u);
    EXPECT_LT(stats.maxDepth, 64u);
    EXPECT_GT(stats.sahCost, 1.0);
    EXPECT_GT(stats.meanLeafTriangles, 0.5);
}

TEST(BvhTraverse, MatchesBruteForceOnRandomRays)
{
    const auto tris = randomTriangles(400, 5);
    const Bvh bvh = build(tris);
    Pcg32 rng(99);
    int hits = 0;
    for (int i = 0; i < 500; ++i) {
        Ray ray;
        ray.origin = {rng.nextFloat(-2, 12), rng.nextFloat(-2, 12),
                      rng.nextFloat(-2, 12)};
        ray.direction = geom::normalize(Vec3{rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1)});
        const Hit expected = bruteForce(tris, ray);
        const Hit actual = intersect(bvh, tris, ray);
        ASSERT_EQ(actual.valid(), expected.valid()) << i;
        if (expected.valid()) {
            ++hits;
            ASSERT_NEAR(actual.t, expected.t, 1e-5f) << i;
        }
    }
    EXPECT_GT(hits, 15); // the test must actually exercise hits
}

TEST(BvhTraverse, AxisAlignedRays)
{
    // Axis-aligned rays exercise the infinite inverse-direction slabs.
    const auto tris = randomTriangles(200, 6);
    const Bvh bvh = build(tris);
    Pcg32 rng(7);
    for (int axis = 0; axis < 3; ++axis) {
        for (int sign = -1; sign <= 1; sign += 2) {
            for (int i = 0; i < 50; ++i) {
                Ray ray;
                ray.origin = {rng.nextFloat(0, 10), rng.nextFloat(0, 10),
                              rng.nextFloat(0, 10)};
                Vec3 d{};
                if (axis == 0) d.x = static_cast<float>(sign);
                if (axis == 1) d.y = static_cast<float>(sign);
                if (axis == 2) d.z = static_cast<float>(sign);
                ray.direction = d;
                const Hit expected = bruteForce(tris, ray);
                const Hit actual = intersect(bvh, tris, ray);
                ASSERT_EQ(actual.valid(), expected.valid());
                if (expected.valid())
                    ASSERT_NEAR(actual.t, expected.t, 1e-5f);
            }
        }
    }
}

TEST(BvhTraverse, RespectsTmax)
{
    const std::vector<Triangle> tris = {
        {{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}, 0}};
    const Bvh bvh = build(tris);
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.direction = {0, 0, 1};
    ray.tMax = 3.0f;
    EXPECT_FALSE(intersect(bvh, tris, ray).valid());
    ray.tMax = 10.0f;
    EXPECT_TRUE(intersect(bvh, tris, ray).valid());
}

TEST(BvhTraverse, IntersectAnyAgreesWithClosest)
{
    const auto tris = randomTriangles(300, 8);
    const Bvh bvh = build(tris);
    Pcg32 rng(12);
    for (int i = 0; i < 300; ++i) {
        Ray ray;
        ray.origin = {rng.nextFloat(-2, 12), rng.nextFloat(-2, 12),
                      rng.nextFloat(-2, 12)};
        ray.direction = geom::normalize(Vec3{rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1)});
        EXPECT_EQ(intersectAny(bvh, tris, ray),
                  intersect(bvh, tris, ray).valid());
    }
}

TEST(BvhTraverse, CollectsTraversalStats)
{
    const auto tris = randomTriangles(500, 9);
    const Bvh bvh = build(tris);
    Ray ray;
    ray.origin = {5, 5, -5};
    ray.direction = {0, 0, 1};
    TraversalStats stats;
    (void)intersect(bvh, tris, ray, &stats);
    EXPECT_GT(stats.nodesVisited, 0u);
}

TEST(BvhTraverse, SceneClosedRoomAlwaysHits)
{
    // From inside a closed box every direction must hit geometry.
    const scene::Scene room = scene::makeTestScene();
    const Bvh bvh = build(room.triangles());
    Pcg32 rng(21);
    for (int i = 0; i < 200; ++i) {
        Ray ray;
        ray.origin = {5.0f, 3.0f, 5.0f};
        ray.direction = geom::normalize(Vec3{rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1)});
        if (geom::lengthSquared(ray.direction) == 0.0f)
            continue;
        EXPECT_TRUE(intersect(bvh, room.triangles(), ray).valid()) << i;
    }
}

/** Parameterized sweep: traversal equals brute force across leaf sizes. */
class BvhLeafSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BvhLeafSizeSweep, AgreesWithBruteForce)
{
    const auto tris = randomTriangles(250, 10);
    BuildConfig config;
    config.maxLeafSize = GetParam();
    const Bvh bvh = build(tris, config);
    Pcg32 rng(33);
    for (int i = 0; i < 120; ++i) {
        Ray ray;
        ray.origin = {rng.nextFloat(-2, 12), rng.nextFloat(-2, 12),
                      rng.nextFloat(-2, 12)};
        ray.direction = geom::normalize(Vec3{rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1),
                                             rng.nextFloat(-1, 1)});
        const Hit expected = bruteForce(tris, ray);
        const Hit actual = intersect(bvh, tris, ray);
        ASSERT_EQ(actual.valid(), expected.valid());
        if (expected.valid())
            ASSERT_NEAR(actual.t, expected.t, 1e-5f);
    }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, BvhLeafSizeSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

/** Parameterized sweep: bin counts do not affect correctness. */
class BvhBinSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BvhBinSweep, ValidTreeAtAnyBinCount)
{
    const auto tris = randomTriangles(300, 11);
    BuildConfig config;
    config.binCount = GetParam();
    const Bvh bvh = build(tris, config);
    EXPECT_EQ(bvh.triangleIndices().size(), tris.size());
    const TreeStats stats = bvh.computeStats();
    EXPECT_GE(stats.maxDepth, 1u);
}

INSTANTIATE_TEST_SUITE_P(BinCounts, BvhBinSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

} // namespace
} // namespace drs::bvh
