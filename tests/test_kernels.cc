/**
 * @file
 * Unit tests for the traversal workspace semantics and the two kernels'
 * correctness: every ray traced through the simulated SMX must produce
 * exactly the hit the CPU reference traversal finds.
 */

#include <gtest/gtest.h>

#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "core/drs_control.h"
#include "geom/rng.h"
#include "kernels/aila_kernel.h"
#include "kernels/drs_kernel.h"
#include "render/path_tracer.h"
#include "scene/scenes.h"
#include "simt/smx.h"

namespace drs::kernels {
namespace {

using geom::Hit;
using geom::Ray;
using geom::Vec3;
using simt::TravState;

struct TestSetup
{
    scene::Scene scene = scene::makeTestScene();
    bvh::Bvh bvh;
    std::vector<Ray> rays;

    explicit TestSetup(int ray_count = 256, std::uint64_t seed = 7)
    {
        bvh = bvh::build(scene.triangles());
        geom::Pcg32 rng(seed);
        for (int i = 0; i < ray_count; ++i) {
            Ray ray;
            ray.origin = {rng.nextFloat(1, 9), rng.nextFloat(0.5f, 5.5f),
                          rng.nextFloat(1, 9)};
            ray.direction = geom::normalize(
                Vec3{rng.nextFloat(-1, 1), rng.nextFloat(-1, 1),
                     rng.nextFloat(-1, 1)});
            if (geom::lengthSquared(ray.direction) > 0)
                rays.push_back(ray);
        }
    }

    Hit reference(const Ray &ray) const
    {
        return bvh::intersect(bvh, scene.triangles(), ray);
    }
};

// ------------------------------------------------------------ Workspace

TEST(TravWorkspace, FetchInitializesSlot)
{
    TestSetup setup;
    TravWorkspace ws(setup.bvh, setup.scene.triangles(), setup.rays, 0, 4,
                     32);
    EXPECT_EQ(ws.state(0, 0), TravState::Fetch);
    ASSERT_TRUE(ws.fetchStep(0, 0));
    EXPECT_EQ(ws.state(0, 0), TravState::Inner);
    EXPECT_EQ(ws.slot(0, 0).rayId, 0);
    ASSERT_TRUE(ws.fetchStep(0, 1));
    EXPECT_EQ(ws.slot(0, 1).rayId, 1);
    EXPECT_EQ(ws.poolRemaining(), setup.rays.size() - 2);
}

TEST(TravWorkspace, PoolExhaustion)
{
    TestSetup setup(3);
    TravWorkspace ws(setup.bvh, setup.scene.triangles(), setup.rays, 0, 1,
                     32);
    EXPECT_TRUE(ws.fetchStep(0, 0));
    EXPECT_TRUE(ws.fetchStep(0, 1));
    EXPECT_TRUE(ws.fetchStep(0, 2));
    EXPECT_FALSE(ws.fetchStep(0, 3));
    EXPECT_TRUE(ws.poolEmpty());
}

TEST(TravWorkspace, SingleThreadedTraversalMatchesReference)
{
    TestSetup setup(128);
    TravWorkspace ws(setup.bvh, setup.scene.triangles(), setup.rays, 0, 1,
                     32);
    // Drive one slot through the full state machine for each ray.
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        ASSERT_TRUE(ws.fetchStep(0, 0));
        int guard = 0;
        while (ws.state(0, 0) != TravState::Fetch && guard++ < 100000) {
            if (ws.state(0, 0) == TravState::Inner) {
                ws.innerStep(0, 0);
            } else {
                ASSERT_TRUE(ws.leafHasWork(0, 0));
                ws.leafStep(0, 0);
            }
        }
        ASSERT_LT(guard, 100000);
    }
    EXPECT_EQ(ws.raysCompleted(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        const Hit &actual = ws.results()[i];
        ASSERT_EQ(actual.triangle, expected.triangle) << "ray " << i;
        if (expected.valid())
            ASSERT_NEAR(actual.t, expected.t, 1e-5f) << "ray " << i;
    }
}

TEST(TravWorkspace, MoveAndSwapPreservePayload)
{
    TestSetup setup;
    TravWorkspace ws(setup.bvh, setup.scene.triangles(), setup.rays, 0, 4,
                     32);
    ws.fetchStep(0, 0);
    ws.fetchStep(0, 1);
    const auto id0 = ws.slot(0, 0).rayId;
    const auto id1 = ws.slot(0, 1).rayId;

    ws.moveRay(0, 0, 2, 5);
    EXPECT_EQ(ws.state(0, 0), TravState::Fetch);
    EXPECT_EQ(ws.slot(2, 5).rayId, id0);

    ws.swapRays(0, 1, 2, 5);
    EXPECT_EQ(ws.slot(0, 1).rayId, id0);
    EXPECT_EQ(ws.slot(2, 5).rayId, id1);
    EXPECT_EQ(ws.liveRays(), 2u);
}

TEST(TravWorkspace, DeferLeafStillFindsClosestHit)
{
    TestSetup setup(200, 11);
    TravWorkspace ws(setup.bvh, setup.scene.triangles(), setup.rays, 0, 1,
                     32);
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        ASSERT_TRUE(ws.fetchStep(0, 0));
        int guard = 0;
        bool defer_next = true;
        while (ws.state(0, 0) != TravState::Fetch && guard++ < 100000) {
            if (ws.state(0, 0) == TravState::Inner) {
                ws.innerStep(0, 0);
            } else if (defer_next && ws.deferLeaf(0, 0)) {
                defer_next = false; // alternate defer/process
            } else {
                ws.leafStep(0, 0);
                defer_next = true;
            }
        }
        ASSERT_LT(guard, 100000);
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(ws.results()[i].triangle, expected.triangle) << i;
    }
}

// --------------------------------------------------- Aila kernel on SMX

TEST(AilaKernel, TracesAllRaysCorrectly)
{
    TestSetup setup(512);
    AilaConfig config;
    config.numWarps = 8;
    AilaKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                      config);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, nullptr, config.numWarps, shared);
    smx.run(50'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle)
            << "ray " << i;
    }
}

TEST(AilaKernel, SpeculativeTraversalCorrectAndCounted)
{
    TestSetup setup(512, 13);
    AilaConfig config;
    config.numWarps = 8;
    config.speculativeTraversal = true;
    AilaKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                      config);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, nullptr, config.numWarps, shared);
    smx.run(50'000'000);
    ASSERT_TRUE(smx.done());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle)
            << "ray " << i;
    }
}

TEST(AilaKernel, PersistentThreadsReuseWarps)
{
    // Far more rays than thread slots: warps must refetch repeatedly.
    TestSetup setup(2048, 17);
    AilaConfig config;
    config.numWarps = 2; // 64 thread slots for 2048 rays
    AilaKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                      config);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, nullptr, config.numWarps, shared);
    smx.run(200'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
}

// ---------------------------------------------------- DRS kernel on SMX

TEST(DrsKernel, TracesAllRaysCorrectly)
{
    TestSetup setup(512, 23);
    DrsKernelConfig config;
    config.numWarps = 8;
    config.backupRows = 1;
    DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                     config);
    core::DrsConfig drs_config;
    core::DrsControl control(drs_config, kernel.workspace(),
                             config.numWarps);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle)
            << "ray " << i;
    }
}

TEST(DrsKernel, IdealizedShufflingCorrect)
{
    TestSetup setup(512, 29);
    DrsKernelConfig config;
    config.numWarps = 8;
    DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                     config);
    core::DrsConfig drs_config;
    drs_config.idealized = true;
    core::DrsControl control(drs_config, kernel.workspace(),
                             config.numWarps);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle)
            << "ray " << i;
    }
}

/** Parameterized: DRS correctness across backup-row configurations. */
class DrsBackupRowSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DrsBackupRowSweep, CorrectAcrossBackupRows)
{
    TestSetup setup(384, 31);
    DrsKernelConfig config;
    config.numWarps = 6;
    config.backupRows = GetParam();
    DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                     config);
    core::DrsConfig drs_config;
    drs_config.backupRows = GetParam();
    core::DrsControl control(drs_config, kernel.workspace(),
                             config.numWarps);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle);
    }
}

INSTANTIATE_TEST_SUITE_P(BackupRows, DrsBackupRowSweep,
                         ::testing::Values(1, 2, 4, 8));

/** Parameterized: DRS correctness across swap-buffer configurations. */
class DrsSwapBufferSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DrsSwapBufferSweep, CorrectAcrossSwapBuffers)
{
    TestSetup setup(384, 37);
    DrsKernelConfig config;
    config.numWarps = 6;
    DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays, 0,
                     config);
    core::DrsConfig drs_config;
    drs_config.swapBuffers = GetParam();
    core::DrsControl control(drs_config, kernel.workspace(),
                             config.numWarps);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
}

INSTANTIATE_TEST_SUITE_P(SwapBuffers, DrsSwapBufferSweep,
                         ::testing::Values(6, 9, 12, 18));

TEST(DrsKernel, RowCountFollowsConfig)
{
    DrsKernelConfig config;
    config.numWarps = 10;
    config.backupRows = 4;
    EXPECT_EQ(config.rowCount(), 16);
}

} // namespace
} // namespace drs::kernels
