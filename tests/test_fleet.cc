/**
 * @file
 * Multi-process fleet tests: pipe-protocol framing, the bit-identity
 * contract (a fleet of crash-isolated workers merges to exactly the
 * single-process sweep's results, with or without chaos kills), journal
 * interop between the fleet coordinator and the in-process runner,
 * heartbeat-timeout re-dispatch, quarantine of poison jobs, graceful
 * degradation when the respawn budget runs out, the no-orphans
 * shutdown guarantee, and the telemetry surface (worker digest
 * aggregation into FleetSummary, live FleetProgress snapshots, and the
 * coordinator's stitched job-lifecycle trace shard).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/chaos.h"
#include "fleet/fleet.h"
#include "fleet/protocol.h"
#include "harness/sweep.h"
#include "obs/json.h"

namespace drs::fleet {
namespace {

using harness::SweepJob;
using harness::SweepOptions;
using harness::SweepResult;
using harness::SweepRunner;

harness::ExperimentScale
tinyScale()
{
    harness::ExperimentScale scale;
    scale.sceneScale = 0.05f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 2;
    scale.maxDepth = 3;
    return scale;
}

std::vector<SweepJob>
tinyJobs()
{
    std::vector<SweepJob> jobs;
    for (int bounce = 1; bounce <= 3; ++bounce) {
        SweepJob job;
        job.scene = scene::SceneId::Conference;
        job.arch = bounce == 2 ? harness::Arch::Drs : harness::Arch::Aila;
        job.config.gpu.numSmx = 2;
        job.bounce = bounce;
        job.maxRays = 192;
        jobs.push_back(job);
    }
    return jobs;
}

std::vector<SweepResult>
runSolo(const SweepOptions &options)
{
    SweepRunner runner(tinyScale(), 1, options);
    for (const SweepJob &job : tinyJobs())
        runner.add(job);
    return runner.run();
}

std::vector<SweepResult>
runFleet(const SweepOptions &sweep, const FleetOptions &options,
         FleetSummary *summary = nullptr)
{
    FleetCoordinator coordinator(tinyScale(), sweep, options);
    std::vector<SweepResult> results = coordinator.run(tinyJobs());
    if (summary)
        *summary = coordinator.summary();
    return results;
}

/** Result equality that ignores wall-clock and provenance fields. */
void
expectSameOutcome(const std::vector<SweepResult> &a,
                  const std::vector<SweepResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ran, b[i].ran) << "job " << i;
        EXPECT_EQ(a[i].failed, b[i].failed) << "job " << i;
        EXPECT_TRUE(a[i].stats == b[i].stats) << "job " << i;
    }
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

// ------------------------------------------------- Protocol framing

TEST(FleetProtocol, FrameRoundTrip)
{
    const std::string payload = "{\"job\": 4, \"dispatch\": 1}";
    const std::string wire = encodeFrame(MsgType::Claim, payload);
    EXPECT_EQ(wire.size(), 12u + payload.size());

    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Claim);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_EQ(parser.buffered(), 0u);
    EXPECT_FALSE(parser.corrupt());
}

TEST(FleetProtocol, ParserIsIncrementalAcrossArbitrarySplits)
{
    // Three frames, fed one byte at a time: framing must not depend on
    // read() boundaries.
    std::string wire;
    wire += encodeFrame(MsgType::Hello, "{\"worker\": 0}");
    wire += encodeFrame(MsgType::Heartbeat, "{\"job\": -1}");
    wire += encodeFrame(MsgType::Shutdown, "");

    FrameParser parser;
    std::vector<Frame> frames;
    for (char byte : wire) {
        parser.feed(&byte, 1);
        while (auto frame = parser.next())
            frames.push_back(*frame);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, MsgType::Hello);
    EXPECT_EQ(frames[1].type, MsgType::Heartbeat);
    EXPECT_EQ(frames[2].type, MsgType::Shutdown);
    EXPECT_TRUE(frames[2].payload.empty());
}

TEST(FleetProtocol, TornTailYieldsNoFrameButIsNotCorrupt)
{
    const std::string wire = encodeFrame(MsgType::Result, "{\"job\": 2}");
    FrameParser parser;
    parser.feed(wire.data(), wire.size() - 3); // SIGKILL mid-write
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_FALSE(parser.corrupt());
    // The remaining bytes complete the frame.
    parser.feed(wire.data() + wire.size() - 3, 3);
    ASSERT_TRUE(parser.next().has_value());
}

TEST(FleetProtocol, CorruptionIsDetectedAndSticky)
{
    {
        FrameParser parser;
        const char garbage[12] = {'n', 'o', 't', 'd', 'r', 's',
                                  'f', 'r', 'a', 'm', 'e', '!'};
        parser.feed(garbage, sizeof garbage);
        EXPECT_FALSE(parser.next().has_value());
        EXPECT_TRUE(parser.corrupt());
        EXPECT_NE(parser.corruptReason().find("magic"), std::string::npos);
        // Sticky: valid frames after corruption are not trusted.
        const std::string wire = encodeFrame(MsgType::Hello, "{}");
        parser.feed(wire.data(), wire.size());
        EXPECT_FALSE(parser.next().has_value());
    }
    {
        // Unknown message type.
        FrameParser parser;
        std::string wire = encodeFrame(MsgType::Hello, "");
        wire[4] = 99;
        parser.feed(wire.data(), wire.size());
        EXPECT_FALSE(parser.next().has_value());
        EXPECT_TRUE(parser.corrupt());
    }
    {
        // Oversized payload length.
        FrameParser parser;
        std::string wire = encodeFrame(MsgType::Hello, "");
        wire[8] = wire[9] = wire[10] = wire[11] = '\xff';
        parser.feed(wire.data(), wire.size());
        EXPECT_FALSE(parser.next().has_value());
        EXPECT_TRUE(parser.corrupt());
        EXPECT_NE(parser.corruptReason().find("oversized"),
                  std::string::npos);
    }
}

// ------------------------------------------------- Chaos plan seeding

TEST(FleetChaos, PlansAreDeterministicAndConverge)
{
    ChaosConfig config;
    config.seed = 0x5eedULL;
    config.killRate = 0.5;
    config.maxKillDispatches = 2;

    bool any_kill = false;
    for (std::size_t job = 0; job < 32; ++job)
        for (int dispatch = 1; dispatch <= 2; ++dispatch) {
            const ChaosPlan a = chaosPlanFor(config, job, dispatch);
            const ChaosPlan b = chaosPlanFor(config, job, dispatch);
            EXPECT_EQ(a.kill, b.kill);
            EXPECT_EQ(a.delayMicros, b.delayMicros);
            any_kill = any_kill || a.kill;
        }
    EXPECT_TRUE(any_kill) << "a 50% rate over 64 rolls should kill";

    // Past maxKillDispatches every roll is a no-op: re-dispatched jobs
    // are guaranteed to eventually run on a kill-free dispatch.
    for (std::size_t job = 0; job < 32; ++job)
        EXPECT_FALSE(chaosPlanFor(config, job, 3).armed());

    // Targeted hooks override the seeded rolls.
    ChaosConfig hooks;
    hooks.killJobEveryDispatch = 2;
    EXPECT_TRUE(chaosPlanFor(hooks, 2, 5).kill);
    EXPECT_FALSE(chaosPlanFor(hooks, 1, 1).armed());
    hooks = ChaosConfig{};
    hooks.hangJobFirstDispatch = 1;
    EXPECT_TRUE(chaosPlanFor(hooks, 1, 1).hang);
    EXPECT_FALSE(chaosPlanFor(hooks, 1, 2).armed());
}

TEST(FleetOptionsEnv, ParsesAndRejectsKnobs)
{
    ::setenv("DRS_FLEET", "5", 1);
    ::setenv("DRS_FLEET_HEARTBEAT_TIMEOUT", "3.5", 1);
    ::setenv("DRS_FLEET_RESPAWNS", "12", 1);
    ::setenv("DRS_FLEET_QUARANTINE", "4", 1);
    ::setenv("DRS_FLEET_CHAOS", "0xbeef", 1);
    ::setenv("DRS_FLEET_CHAOS_RATE", "0.25", 1);
    FleetOptions options = FleetOptions::fromEnvironment();
    EXPECT_EQ(options.workers, 5);
    EXPECT_DOUBLE_EQ(options.heartbeatTimeoutSeconds, 3.5);
    EXPECT_EQ(options.maxRespawns, 12);
    EXPECT_EQ(options.quarantineDeaths, 4);
    EXPECT_EQ(options.chaos.seed, 0xbeefULL);
    EXPECT_DOUBLE_EQ(options.chaos.killRate, 0.25);

    ::setenv("DRS_FLEET", "zero", 1);
    ::setenv("DRS_FLEET_CHAOS_RATE", "1.5", 1);
    options = FleetOptions::fromEnvironment();
    EXPECT_EQ(options.workers, FleetOptions{}.workers) << "malformed ignored";
    EXPECT_DOUBLE_EQ(options.chaos.killRate, ChaosConfig{}.killRate);

    ::unsetenv("DRS_FLEET");
    ::unsetenv("DRS_FLEET_HEARTBEAT_TIMEOUT");
    ::unsetenv("DRS_FLEET_RESPAWNS");
    ::unsetenv("DRS_FLEET_QUARANTINE");
    ::unsetenv("DRS_FLEET_CHAOS");
    ::unsetenv("DRS_FLEET_CHAOS_RATE");
}

// ------------------------------------------------------ Bit-identity

TEST(FleetBitIdentity, CleanFleetMatchesSingleProcessSweep)
{
    SweepOptions sweep;
    const auto reference = runSolo(sweep);

    FleetOptions options;
    options.workers = 2;
    FleetSummary summary;
    const auto fleet = runFleet(sweep, options, &summary);

    expectSameOutcome(reference, fleet);
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(reference[i].faultSeed, fleet[i].faultSeed);
    EXPECT_EQ(summary.spawned, 2);
    EXPECT_EQ(summary.workerDeaths, 0);
    EXPECT_EQ(summary.quarantined, 0);
    EXPECT_EQ(summary.degradedJobs, 0);
    EXPECT_FALSE(summary.cancelled);
}

TEST(FleetBitIdentity, FaultInjectingFleetMatchesSingleProcessSweep)
{
    // Fault seeds derive from the grid index, so the sharding must not
    // change them.
    SweepOptions sweep;
    sweep.fault.seed = 0xbeefULL;
    const auto reference = runSolo(sweep);

    FleetOptions options;
    options.workers = 3;
    const auto fleet = runFleet(sweep, options);

    expectSameOutcome(reference, fleet);
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(reference[i].faultSeed, fleet[i].faultSeed);
}

TEST(FleetBitIdentity, ChaosKillsChangeNothingButWallClock)
{
    SweepOptions sweep;
    const auto reference = runSolo(sweep);

    FleetOptions options;
    options.workers = 2;
    options.maxRespawns = 64;
    options.quarantineDeaths = 50; // chaos deaths must never quarantine
    options.backoffSeconds = 0.001;
    options.chaos.seed = 0x5eedULL;
    options.chaos.killRate = 0.9;
    options.chaos.maxKillDispatches = 2;
    options.chaos.maxKillDelayMicros = 5000;
    FleetSummary summary;
    const auto fleet = runFleet(sweep, options, &summary);

    EXPECT_GT(summary.workerDeaths, 0) << "chaos at 90% should kill";
    EXPECT_EQ(summary.quarantined, 0);
    EXPECT_EQ(summary.degradedJobs, 0);
    expectSameOutcome(reference, fleet);
}

// --------------------------------------------------- Journal interop

TEST(FleetJournal, FleetJournalReplaysInProcessAndIsDuplicateFree)
{
    const std::string journal = tempPath("fleet_journal.jsonl");
    SweepOptions sweep;
    sweep.journalPath = journal;

    FleetOptions options;
    options.workers = 2;
    options.maxRespawns = 64;
    options.quarantineDeaths = 50;
    options.backoffSeconds = 0.001;
    options.chaos.seed = 0x1234ULL; // kills + redispatch while journaling
    options.chaos.killRate = 0.7;
    const auto fleet = runFleet(sweep, options);

    // Exactly one record per job, even though workers died mid-sweep.
    std::set<std::uint64_t> indices;
    std::ifstream in(journal);
    std::string line;
    std::size_t records = 0;
    while (std::getline(in, line)) {
        const auto entry = obs::Json::parse(line);
        ASSERT_TRUE(entry.has_value()) << line;
        std::uint64_t index = 0;
        std::string key;
        SweepResult parsed;
        ASSERT_EQ(harness::sweepResultFromJson(*entry, &index, &key, &parsed),
                  "");
        EXPECT_TRUE(indices.insert(index).second)
            << "job " << index << " double-reported";
        ++records;
    }
    EXPECT_EQ(records, tinyJobs().size()) << "every job exactly once";

    // The in-process runner resumes a fleet-written journal verbatim.
    SweepOptions resume = sweep;
    resume.resume = true;
    SweepRunner runner(tinyScale(), 1, resume);
    for (const SweepJob &job : tinyJobs())
        runner.add(job);
    const auto replayed = runner.run();
    for (const SweepResult &result : replayed)
        EXPECT_TRUE(result.fromJournal) << "nothing should re-run";
    expectSameOutcome(fleet, replayed);
    std::remove(journal.c_str());
}

// ----------------------------------------------- Supervision policies

TEST(FleetSupervision, HeartbeatTimeoutKillsAndRedispatches)
{
    SweepOptions sweep;
    const auto reference = runSolo(sweep);

    FleetOptions options;
    options.workers = 2;
    options.heartbeatSeconds = 0.05;
    options.heartbeatTimeoutSeconds = 1.0;
    options.backoffSeconds = 0.001;
    options.chaos.hangJobFirstDispatch = 1; // wedge job 1's first worker
    FleetSummary summary;
    const auto fleet = runFleet(sweep, options, &summary);

    EXPECT_GE(summary.heartbeatKills, 1) << "the wedge must be detected";
    EXPECT_GE(summary.redispatched, 1);
    EXPECT_EQ(summary.quarantined, 0);
    expectSameOutcome(reference, fleet);
}

TEST(FleetSupervision, PoisonJobIsQuarantinedOthersComplete)
{
    SweepOptions sweep;
    const auto reference = runSolo(sweep);

    FleetOptions options;
    options.workers = 2;
    options.maxRespawns = 16;
    options.quarantineDeaths = 2;
    options.backoffSeconds = 0.001;
    options.chaos.killJobEveryDispatch = 1; // job 1 kills every worker
    FleetSummary summary;
    const auto fleet = runFleet(sweep, options, &summary);

    EXPECT_EQ(summary.quarantined, 1);
    EXPECT_GE(summary.workerDeaths, 2) << "two deaths before quarantine";
    ASSERT_EQ(fleet.size(), reference.size());
    EXPECT_TRUE(fleet[1].failed) << "quarantined, not dropped";
    EXPECT_FALSE(fleet[1].ran);
    EXPECT_NE(fleet[1].error.find("quarantined"), std::string::npos)
        << fleet[1].error;
    for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        EXPECT_TRUE(fleet[i].ran) << "job " << i;
        EXPECT_TRUE(fleet[i].stats == reference[i].stats) << "job " << i;
    }
}

TEST(FleetSupervision, ExhaustedFleetDegradesInsteadOfAborting)
{
    SweepOptions sweep;
    FleetOptions options;
    options.workers = 1;
    options.maxRespawns = 0;                // no replacements
    options.chaos.killJobEveryDispatch = 0; // first claim kills the crew
    FleetSummary summary;
    const auto fleet = runFleet(sweep, options, &summary);

    EXPECT_EQ(summary.degradedJobs, 3) << "all jobs reported, none lost";
    EXPECT_EQ(summary.workerDeaths, 1);
    EXPECT_EQ(summary.respawned, 0);
    for (const SweepResult &result : fleet) {
        EXPECT_TRUE(result.failed);
        EXPECT_FALSE(result.ran);
        EXPECT_NE(result.error.find("degraded"), std::string::npos)
            << result.error;
    }

    obs::Json json = fleetSummaryJson(summary);
    const obs::Json *degraded = json.find("degraded_jobs");
    ASSERT_NE(degraded, nullptr);
    EXPECT_EQ(degraded->asUint(), 3u);
    ASSERT_NE(json.find("cancelled"), nullptr);
    EXPECT_FALSE(json.find("cancelled")->asBool());
}

// --------------------------------------------------------- Telemetry

TEST(FleetProtocol, TelemetryIsTheSixthAndLastMessageType)
{
    EXPECT_TRUE(validMsgType(static_cast<std::uint32_t>(MsgType::Telemetry)));
    EXPECT_FALSE(validMsgType(
        static_cast<std::uint32_t>(MsgType::Telemetry) + 1));
    EXPECT_STREQ(msgTypeName(MsgType::Telemetry), "telemetry");

    const std::string payload = "{\"worker\": 1, \"peak_rss_kb\": 4096}";
    const std::string wire = encodeFrame(MsgType::Telemetry, payload);
    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Telemetry);
    EXPECT_EQ(frame->payload, payload);
}

TEST(FleetTelemetry, CleanRunAggregatesOneDigestPerJob)
{
    SweepOptions sweep;
    FleetOptions options;
    options.workers = 2;
    FleetSummary summary;
    const auto fleet = runFleet(sweep, options, &summary);

    // Every job sends its digest right after its Result; a clean run
    // loses none of them.
    const FleetTelemetry &telemetry = summary.telemetry;
    EXPECT_EQ(telemetry.frames, fleet.size());
    EXPECT_EQ(telemetry.jobsReported, fleet.size());
    std::uint64_t cycles = 0;
    std::uint64_t rays = 0;
    for (const SweepResult &result : fleet) {
        cycles += result.stats.cycles;
        rays += result.stats.raysTraced;
    }
    EXPECT_EQ(telemetry.cycles, cycles);
    EXPECT_EQ(telemetry.raysTraced, rays);
    EXPECT_GT(telemetry.jobSeconds, 0.0);
    EXPECT_GT(telemetry.peakRssKb, 0u) << "getrusage must report RSS";
    EXPECT_GE(telemetry.userCpuSeconds, 0.0);
    EXPECT_GE(telemetry.sysCpuSeconds, 0.0);

    // The digest aggregate serializes under summary.fleet.telemetry.
    obs::Json json = fleetSummaryJson(summary);
    const obs::Json *section = json.find("telemetry");
    ASSERT_NE(section, nullptr);
    EXPECT_EQ(section->find("frames")->asUint(), telemetry.frames);
    EXPECT_EQ(section->find("cycles")->asUint(), telemetry.cycles);
    EXPECT_EQ(section->find("rays_traced")->asUint(), telemetry.raysTraced);
    ASSERT_NE(section->find("max_heartbeat_lag_us"), nullptr);
    ASSERT_NE(section->find("peak_rss_kb"), nullptr);
}

TEST(FleetTelemetry, ProgressSnapshotsReachCompletion)
{
    SweepOptions sweep;
    FleetOptions options;
    options.workers = 2;
    std::vector<FleetProgress> snapshots;
    options.onProgress = [&snapshots](const FleetProgress &progress) {
        snapshots.push_back(progress);
    };
    FleetCoordinator coordinator(tinyScale(), sweep, options);
    const auto results = coordinator.run(tinyJobs());

    ASSERT_FALSE(snapshots.empty());
    std::size_t lastDone = 0;
    for (const FleetProgress &progress : snapshots) {
        EXPECT_EQ(progress.jobsTotal, results.size());
        EXPECT_GE(progress.jobsDone, lastDone) << "done count went backwards";
        EXPECT_LE(progress.jobsDone + progress.jobsInflight,
                  progress.jobsTotal);
        EXPECT_LE(progress.workersRunning, progress.workersAlive);
        lastDone = progress.jobsDone;
    }
    const FleetProgress &last = snapshots.back();
    EXPECT_EQ(last.jobsDone, results.size()) << "final snapshot incomplete";
    EXPECT_EQ(last.jobsFailed, 0u);
    EXPECT_EQ(last.degraded, 0);
    EXPECT_GE(last.elapsedSeconds, 0.0);
}

TEST(FleetTrace, CoordinatorWritesJobSpansWorkersWriteShards)
{
    const std::string base = tempPath("fleet_trace");
    SweepOptions sweep;
    FleetOptions options;
    options.workers = 2;
    options.tracePath = base;

    std::vector<SweepJob> jobs = tinyJobs();
    for (SweepJob &job : jobs) {
        job.config.trace.enabled = true;
        job.config.trace.path = base;
        job.config.trace.capacity = 4096;
    }
    FleetCoordinator coordinator(tinyScale(), sweep, options);
    const auto results = coordinator.run(std::move(jobs));
    ASSERT_EQ(results.size(), 3u);

    // The coordinator shard holds one cat="fleet" span per job on
    // pid 0, plus process/thread metadata — a self-contained Chrome
    // trace document.
    std::ifstream in(base + ".coord");
    ASSERT_TRUE(in.good()) << "no coordinator trace at " << base << ".coord";
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string parseError;
    const auto trace = obs::Json::parse(buffer.str(), &parseError);
    ASSERT_TRUE(trace.has_value()) << parseError;
    const obs::Json *events = trace->find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t spans = 0;
    bool processNamed = false;
    for (const obs::Json &event : events->asArray()) {
        const std::string phase = event.find("ph")->asString();
        if (phase == "X") {
            EXPECT_EQ(event.find("cat")->asString(), "fleet");
            EXPECT_EQ(event.find("pid")->asUint(), 0u);
            EXPECT_GE(event.find("dur")->asUint(), 1u);
            EXPECT_EQ(event.find("name")->asString().rfind("job ", 0), 0u);
            ++spans;
        } else if (phase == "M" &&
                   event.find("name")->asString() == "process_name") {
            processNamed = true;
        }
    }
    EXPECT_EQ(spans, 3u) << "one lifecycle span per job";
    EXPECT_TRUE(processNamed);
    ASSERT_NE(trace->find("otherData"), nullptr);
    EXPECT_EQ(trace->find("otherData")->find("dropped_events")->asUint(),
              0u);
    std::remove((base + ".coord").c_str());

    // Each job left exactly one per-(worker, job) shard, named so
    // concurrent workers can never overwrite each other.
    for (std::size_t job = 0; job < results.size(); ++job) {
        int shards = 0;
        for (int worker = 0; worker < options.workers; ++worker) {
            const std::string shard = base + ".w" + std::to_string(worker) +
                                      ".j" + std::to_string(job);
            std::ifstream file(shard);
            if (!file.good())
                continue;
            ++shards;
            std::remove(shard.c_str());
        }
        EXPECT_EQ(shards, 1) << "job " << job;
    }
}

// ------------------------------------------------- No-orphans shutdown

TEST(FleetShutdown, CancelledFleetReapsEveryWorker)
{
    // The coordinator runs in a forked child with its own process
    // group; its workers wedge on every claim (the worst case: they
    // ignore cooperative shutdown entirely). SIGTERMing the coordinator
    // must still reap the whole group — no orphans.
    int readyPipe[2];
    ASSERT_EQ(::pipe(readyPipe), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ::close(readyPipe[0]);
        ::setpgid(0, 0); // workers inherit this group
        FleetOptions options;
        options.workers = 2;
        options.heartbeatTimeoutSeconds = 60.0; // cancel, not the reaper
        options.shutdownGraceSeconds = 0.2;
        options.chaos.hangEveryClaim = true;
        const int fd = readyPipe[1];
        options.onFleetReady = [fd] {
            const char byte = 'R';
            (void)!::write(fd, &byte, 1);
        };
        FleetCoordinator coordinator(tinyScale(), SweepOptions{}, options);
        const auto results = coordinator.run(tinyJobs());
        const bool ok = coordinator.summary().cancelled &&
                        results.size() == tinyJobs().size();
        ::_exit(ok ? 0 : 1);
    }
    ::close(readyPipe[1]);
    char byte = 0;
    ASSERT_EQ(::read(readyPipe[0], &byte, 1), 1) << "fleet never came up";
    ::close(readyPipe[0]);

    ASSERT_EQ(::kill(child, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "coordinator did not report a clean cancelled run";

    // Once the coordinator is gone its process group must be empty:
    // kill(-pgid, 0) probes for any surviving member.
    bool empty = false;
    for (int i = 0; i < 1000; ++i) { // up to ~10 s
        if (::kill(-child, 0) != 0 && errno == ESRCH) {
            empty = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(empty) << "orphaned worker processes survived the cancel";
}

} // namespace
} // namespace drs::fleet
