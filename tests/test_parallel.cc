/**
 * @file
 * Determinism regression tests for the parallel execution engine: for
 * every architecture, running the simulator with concurrent SMX stepping
 * (RunConfig::smxThreads > 1) or running sweeps on a thread pool
 * (SweepRunner jobs > 1) must produce SimStats that are field-for-field
 * identical to the sequential engine. The guarantee rests on the
 * cycle-barrier commit of shared-side memory requests in SMX-index order
 * (see DESIGN.md, "Parallel execution model").
 */

#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.h"
#include "harness/sweep.h"

namespace drs::harness {
namespace {

ExperimentScale
testScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 4; // > 1 so the parallel engine actually fans out
    return scale;
}

const std::vector<Arch> kAllArchs = {Arch::Aila, Arch::Drs, Arch::Dmk,
                                     Arch::Tbc};

/** Conference at tiny scale, shared by every test in this file. */
class ParallelFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        prepared_ = new PreparedScene(
            prepareScene(scene::SceneId::Conference, testScale()));
    }

    static void TearDownTestSuite()
    {
        delete prepared_;
        prepared_ = nullptr;
    }

    static RunConfig makeConfig(int smx_threads)
    {
        RunConfig config;
        config.gpu.numSmx = testScale().numSmx;
        config.smxThreads = smx_threads;
        return config;
    }

    static std::span<const geom::Ray> bounceRays(int bounce)
    {
        return prepared_->trace.bounce(bounce).rays;
    }

    static PreparedScene *prepared_;
};

PreparedScene *ParallelFixture::prepared_ = nullptr;

TEST_F(ParallelFixture, SmxParallelismIsBitIdentical)
{
    // The incoherent second bounce exercises the memory system (and the
    // DRS shuffle machinery) much harder than primaries do.
    for (const Arch arch : kAllArchs) {
        for (const int bounce : {1, 2}) {
            const auto sequential = runBatch(arch, *prepared_->tracer,
                                             bounceRays(bounce),
                                             makeConfig(1));
            const auto parallel = runBatch(arch, *prepared_->tracer,
                                           bounceRays(bounce),
                                           makeConfig(4));
            EXPECT_EQ(sequential, parallel)
                << archName(arch) << " bounce " << bounce
                << ": smxThreads=4 diverged from the sequential engine";
            EXPECT_GT(parallel.raysTraced, 0u);
        }
    }
}

TEST_F(ParallelFixture, SmxThreadsBeyondSmxCountStillIdentical)
{
    const auto sequential =
        runBatch(Arch::Drs, *prepared_->tracer, bounceRays(1), makeConfig(1));
    const auto oversubscribed =
        runBatch(Arch::Drs, *prepared_->tracer, bounceRays(1),
                 makeConfig(64));
    EXPECT_EQ(sequential, oversubscribed);
}

TEST_F(ParallelFixture, SweepParallelismIsBitIdentical)
{
    auto build_jobs = [](SweepRunner &runner) {
        for (const Arch arch : kAllArchs)
            for (const int bounce : {1, 2}) {
                SweepJob job;
                job.scene = scene::SceneId::Conference;
                job.arch = arch;
                job.config = makeConfig(1);
                job.bounce = bounce;
                runner.add(job);
            }
    };

    SweepRunner serial(testScale(), 1);
    build_jobs(serial);
    const auto serial_results = serial.run();

    SweepRunner concurrent(testScale(), 4);
    build_jobs(concurrent);
    const auto concurrent_results = concurrent.run();

    ASSERT_EQ(serial_results.size(), concurrent_results.size());
    for (std::size_t i = 0; i < serial_results.size(); ++i) {
        EXPECT_TRUE(serial_results[i].ran);
        EXPECT_TRUE(concurrent_results[i].ran);
        EXPECT_EQ(serial_results[i].stats, concurrent_results[i].stats)
            << "sweep job " << i << " diverged between jobs=1 and jobs=4";
    }

    // One scene, one scale: the cache must have built it exactly once
    // per runner no matter how many jobs raced for it.
    EXPECT_EQ(serial.cacheMisses(), 1u);
    EXPECT_EQ(concurrent.cacheMisses(), 1u);
    EXPECT_EQ(concurrent.cacheHits(), serial_results.size() - 1);
}

TEST_F(ParallelFixture, SweepAndSmxParallelismCompose)
{
    // Both levels at once (jobs > 1 AND smxThreads > 1) against the
    // fully sequential reference.
    const auto reference =
        runBatch(Arch::Drs, *prepared_->tracer, bounceRays(2),
                 makeConfig(1));

    SweepRunner runner(testScale(), 2);
    SweepJob job;
    job.scene = scene::SceneId::Conference;
    job.arch = Arch::Drs;
    job.config = makeConfig(2);
    job.bounce = 2;
    const std::size_t a = runner.add(job);
    const std::size_t b = runner.add(job);
    const auto results = runner.run();

    EXPECT_EQ(results[a].stats, reference);
    EXPECT_EQ(results[b].stats, reference);
}

TEST_F(ParallelFixture, CollectCaptureMatchesRunCapture)
{
    const auto direct = runCapture(Arch::Aila, *prepared_->tracer,
                                   prepared_->trace, makeConfig(1), 2);

    SweepRunner runner(testScale(), 2);
    const auto indices = runner.addCapture(scene::SceneId::Conference,
                                           Arch::Aila, makeConfig(1), 2);
    const auto capture = collectCapture(runner.run(), indices);

    ASSERT_EQ(capture.perBounce.size(), direct.perBounce.size());
    for (std::size_t b = 0; b < direct.perBounce.size(); ++b)
        EXPECT_EQ(capture.perBounce[b], direct.perBounce[b]);
    EXPECT_EQ(capture.overall, direct.overall);
}

} // namespace
} // namespace drs::harness
