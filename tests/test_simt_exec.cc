/**
 * @file
 * Unit tests for the SIMT execution machinery: cache model, memory
 * hierarchy, warp reconvergence stack, and the SMX issue loop driven by
 * small synthetic kernels.
 */

#include <gtest/gtest.h>

#include "simt/cache.h"
#include "simt/config.h"
#include "simt/gpu.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/smx.h"
#include "simt/warp.h"

namespace drs::simt {
namespace {

// ---------------------------------------------------------------- Cache

TEST(Cache, HitAfterFill)
{
    Cache cache(1024, 64, 2);
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x13f)); // same line
    EXPECT_FALSE(cache.access(0x140)); // next line
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 2 sets, 64B lines: lines 0, 2, 4 map to set 0.
    Cache cache(256, 64, 2);
    EXPECT_EQ(cache.numSets(), 2u);
    EXPECT_FALSE(cache.access(0 * 64));
    EXPECT_FALSE(cache.access(2 * 64));
    EXPECT_TRUE(cache.access(0 * 64));  // 0 now MRU
    EXPECT_FALSE(cache.access(4 * 64)); // evicts 2 (LRU)
    EXPECT_TRUE(cache.access(0 * 64));
    EXPECT_FALSE(cache.access(2 * 64)); // 2 was evicted
}

TEST(Cache, FlushInvalidates)
{
    Cache cache(1024, 64, 2);
    cache.access(0x0);
    cache.flush();
    EXPECT_FALSE(cache.access(0x0));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(1024, 60, 2), std::invalid_argument);  // not pow2
    EXPECT_THROW(Cache(64, 128, 2), std::invalid_argument);   // too small
}

TEST(Cache, ThrashingWorkingSet)
{
    // A working set larger than the cache must keep missing.
    Cache cache(1024, 64, 2); // 16 lines
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t line = 0; line < 32; ++line)
            cache.access(line * 64);
    EXPECT_LT(cache.stats().hitRate(), 0.1);
}

TEST(Cache, VictimPrefersInvalidWay)
{
    // With a free way in the set, a miss must fill it instead of evicting
    // the resident line, regardless of that line's recency.
    Cache cache(256, 64, 2); // 2 sets; lines 0, 2, 4 map to set 0
    EXPECT_FALSE(cache.access(0 * 64));
    EXPECT_TRUE(cache.access(0 * 64)); // line 0 resident and MRU
    EXPECT_FALSE(cache.access(2 * 64)); // must take the invalid way
    EXPECT_TRUE(cache.access(0 * 64));
    EXPECT_TRUE(cache.access(2 * 64));
    cache.verifyInvariants();
}

TEST(Cache, FlushResetsLruStateCompletely)
{
    // Regression: flush() used to only clear the valid bits, leaving
    // stale tags/lastUse behind and the LRU clock running. The metadata
    // invariants must hold right after a flush, and a post-flush refill
    // must evict in cold-cache LRU order determined solely by post-flush
    // accesses.
    Cache cache(256, 64, 2); // 2 sets; lines 0, 2, 4 map to set 0
    // Warm set 0 with a deliberate recency pattern, then flush it away.
    cache.access(2 * 64);
    cache.access(0 * 64);
    cache.access(2 * 64); // pre-flush MRU: 2, LRU: 0
    cache.flush();
    cache.verifyInvariants(); // stale tag/lastUse would trip here

    // Cold refill with the opposite recency order: MRU 0, LRU 2.
    EXPECT_FALSE(cache.access(0 * 64));
    EXPECT_FALSE(cache.access(2 * 64));
    EXPECT_TRUE(cache.access(0 * 64));
    // The next insert must evict line 2 (post-flush LRU), not line 0
    // (which pre-flush history would have picked).
    EXPECT_FALSE(cache.access(4 * 64));
    EXPECT_TRUE(cache.access(0 * 64));
    EXPECT_FALSE(cache.access(2 * 64)); // evicted
    cache.verifyInvariants();
}

TEST(Cache, InvariantsHoldThroughMixedTraffic)
{
    Cache cache(1024, 64, 4);
    std::uint64_t address = 1;
    for (int i = 0; i < 500; ++i) {
        address = address * 6364136223846793005ULL + 1442695040888963407ULL;
        cache.access(address % 8192);
        if (i % 97 == 0)
            cache.flush();
        cache.verifyInvariants();
    }
}

// --------------------------------------------------------------- Memory

TEST(Memory, CoalescedSingleLine)
{
    MemoryConfig config;
    SharedMemorySide shared(config);
    SmxMemory memory(config, shared);
    // 32 lanes in one 128B line -> one L1 miss, latency includes L2+DRAM.
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(static_cast<std::uint64_t>(i) * 4);
    const auto cold = memory.warpAccess(MemSpace::Global, addrs, 4);
    EXPECT_GE(cold, config.l1Data.hitLatency + config.l2.hitLatency);
    const auto warm = memory.warpAccess(MemSpace::Global, addrs, 4);
    EXPECT_EQ(warm, config.l1Data.hitLatency);
    EXPECT_EQ(memory.l1DataStats().accesses, 2u);
}

TEST(Memory, DivergentAccessTouchesManyLines)
{
    MemoryConfig config;
    SharedMemorySide shared(config);
    SmxMemory memory(config, shared);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(static_cast<std::uint64_t>(i) * 128);
    memory.warpAccess(MemSpace::Texture, addrs, 4);
    EXPECT_EQ(memory.l1TextureStats().accesses, 32u);
    // Serialization charge grows with the line count.
    const auto warm = memory.warpAccess(MemSpace::Texture, addrs, 4);
    EXPECT_EQ(warm, config.l1Texture.hitLatency +
                        31 * config.perLineSerialization);
}

TEST(Memory, StraddlingAccessTouchesTwoLines)
{
    MemoryConfig config;
    SharedMemorySide shared(config);
    SmxMemory memory(config, shared);
    memory.warpAccess(MemSpace::Global, {120}, 16); // crosses 128B boundary
    EXPECT_EQ(memory.l1DataStats().accesses, 2u);
}

TEST(Memory, SeparateL1Spaces)
{
    MemoryConfig config;
    SharedMemorySide shared(config);
    SmxMemory memory(config, shared);
    memory.warpAccess(MemSpace::Global, {0}, 4);
    memory.warpAccess(MemSpace::Texture, {0}, 4);
    EXPECT_EQ(memory.l1DataStats().accesses, 1u);
    EXPECT_EQ(memory.l1TextureStats().accesses, 1u);
}

// ------------------------------------------------------------ Warp stack

TEST(Warp, UniformFlowNeverDiverges)
{
    // 0 -> 1 -> 2(exit)
    std::vector<Block> blocks(3);
    blocks[0] = {"a", 1, {1}, MemSpace::None, SpecialOp::None, false};
    blocks[1] = {"b", 1, {2}, MemSpace::None, SpecialOp::None, false};
    blocks[2] = {"exit", 1, {}, MemSpace::None, SpecialOp::None, false};
    Program program(std::move(blocks), 2);

    Warp warp(0, 0, 0, 2, 32);
    std::vector<int> next(32, 1);
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.pc(), 1);
    EXPECT_EQ(warp.stackDepth(), 1u);
    std::fill(next.begin(), next.end(), 2);
    warp.applySuccessors(next, program);
    EXPECT_TRUE(warp.exited());
}

TEST(Warp, DivergenceAndReconvergence)
{
    // Diamond: 0 -> {1,2}; 1,2 -> 3; 3 -> 4(exit)
    std::vector<Block> blocks(5);
    blocks[0] = {"br", 1, {1, 2}, MemSpace::None, SpecialOp::None, false};
    blocks[1] = {"l", 1, {3}, MemSpace::None, SpecialOp::None, false};
    blocks[2] = {"r", 1, {3}, MemSpace::None, SpecialOp::None, false};
    blocks[3] = {"j", 1, {4}, MemSpace::None, SpecialOp::None, false};
    blocks[4] = {"exit", 1, {}, MemSpace::None, SpecialOp::None, false};
    Program program(std::move(blocks), 4);

    Warp warp(0, 0, 0, 4, 32);
    std::vector<int> next(32);
    for (int i = 0; i < 32; ++i)
        next[static_cast<std::size_t>(i)] = (i % 2) ? 1 : 2;
    warp.applySuccessors(next, program);
    // Divergence: reconvergence entry at 3 plus two sides.
    EXPECT_EQ(warp.stackDepth(), 3u);
    const int first_side = warp.pc();
    EXPECT_TRUE(first_side == 1 || first_side == 2);
    EXPECT_EQ(popcount(warp.activeMask()), 16);

    // Execute the first side: its lanes go to 3 (the rpc) and pop.
    std::fill(next.begin(), next.end(), 3);
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 2u);
    const int second_side = warp.pc();
    EXPECT_NE(second_side, first_side);
    warp.applySuccessors(next, program);
    // Both sides done: full warp reconverged at 3.
    EXPECT_EQ(warp.stackDepth(), 1u);
    EXPECT_EQ(warp.pc(), 3);
    EXPECT_EQ(popcount(warp.activeMask()), 32);
}

TEST(Warp, PartialExit)
{
    // 0 -> {0, 1}: half the lanes loop, half exit.
    std::vector<Block> blocks(2);
    blocks[0] = {"loop", 1, {0, 1}, MemSpace::None, SpecialOp::None, false};
    blocks[1] = {"exit", 1, {}, MemSpace::None, SpecialOp::None, false};
    Program program(std::move(blocks), 1);

    Warp warp(0, 0, 0, 1, 32);
    std::vector<int> next(32);
    for (int i = 0; i < 32; ++i)
        next[static_cast<std::size_t>(i)] = (i < 16) ? 0 : 1;
    warp.applySuccessors(next, program);
    EXPECT_FALSE(warp.exited());
    EXPECT_EQ(warp.pc(), 0);
    EXPECT_EQ(popcount(warp.activeMask()), 16);
    std::fill(next.begin(), next.end(), 1);
    warp.applySuccessors(next, program);
    EXPECT_TRUE(warp.exited());
}

TEST(Warp, ForceExitAndUniformBody)
{
    std::vector<Block> blocks(3);
    blocks[0] = {"rd", 1, {1, 2}, MemSpace::None, SpecialOp::Rdctrl, false};
    blocks[1] = {"body", 1, {0}, MemSpace::None, SpecialOp::None, false};
    blocks[2] = {"exit", 1, {}, MemSpace::None, SpecialOp::None, false};
    Program program(std::move(blocks), 2);

    Warp warp(0, 0, 0, 2, 32);
    warp.pushUniformBody(1, 0xffffu, 0);
    EXPECT_EQ(warp.pc(), 1);
    EXPECT_EQ(popcount(warp.activeMask()), 16);
    std::vector<int> next(32, 0);
    warp.applySuccessors(next, program); // body returns to rdctrl -> pop
    EXPECT_EQ(warp.pc(), 0);
    EXPECT_EQ(warp.stackDepth(), 1u);
    warp.forceExit();
    EXPECT_TRUE(warp.exited());
}

// --------------------------------------------------------- SMX with a
// synthetic kernel: each thread executes a fixed number of loop rounds.

class CountdownKernel : public Kernel
{
  public:
    /** Each lane of each warp loops `lane % spread + 1` times. */
    CountdownKernel(int warps, int spread) : spread_(spread)
    {
        std::vector<Block> blocks(3);
        blocks[0] = {"head", 4, {0, 1}, MemSpace::None, SpecialOp::None,
                     false};
        blocks[1] = {"tail", 2, {2}, MemSpace::Global, SpecialOp::None,
                     false};
        blocks[2] = {"exit", 1, {}, MemSpace::None, SpecialOp::None, false};
        program_ = Program(std::move(blocks), 2);
        counters_.resize(static_cast<std::size_t>(warps) * 32);
        for (int w = 0; w < warps; ++w)
            for (int lane = 0; lane < 32; ++lane)
                counters_[static_cast<std::size_t>(w) * 32 + lane] =
                    lane % spread + 1;
    }

    const Program &program() const override { return program_; }

    ThreadStep execute(int block, int row, int lane) override
    {
        ThreadStep step;
        auto &counter = counters_[static_cast<std::size_t>(row) * 32 + lane];
        if (block == 0) {
            step.nextBlock = (--counter > 0) ? 0 : 1;
        } else {
            step.nextBlock = 2;
            step.memAddress = static_cast<std::uint64_t>(row) * 128;
            step.memBytes = 4;
            ++completed_;
        }
        return step;
    }

    RowWorkspace &workspace() override { throw std::logic_error("unused"); }
    std::uint64_t raysCompleted() const override { return completed_; }

  private:
    Program program_;
    int spread_;
    std::vector<int> counters_;
    std::uint64_t completed_ = 0;
};

TEST(Smx, RunsSyntheticKernelToCompletion)
{
    GpuConfig config;
    SharedMemorySide shared(config.memory);
    CountdownKernel kernel(4, 8);
    Smx smx(config, kernel, nullptr, 4, shared);
    smx.run(1'000'000);
    EXPECT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), 4u * 32u);
}

TEST(Smx, DivergentLoopLowersSimdEfficiency)
{
    GpuConfig config;
    SharedMemorySide shared(config.memory);

    CountdownKernel uniform(4, 1); // all lanes: 1 round
    Smx smx_uniform(config, uniform, nullptr, 4, shared);
    smx_uniform.run(1'000'000);

    CountdownKernel skewed(4, 32); // lanes loop 1..32 rounds
    Smx smx_skewed(config, skewed, nullptr, 4, shared);
    smx_skewed.run(1'000'000);

    const double eff_uniform =
        smx_uniform.collectStats().histogram.simdEfficiency();
    const double eff_skewed =
        smx_skewed.collectStats().histogram.simdEfficiency();
    EXPECT_GT(eff_uniform, 0.95);
    EXPECT_LT(eff_skewed, 0.65);
}

TEST(Smx, InstructionCountMatchesWork)
{
    GpuConfig config;
    SharedMemorySide shared(config.memory);
    CountdownKernel kernel(1, 1); // every lane: 1 round
    Smx smx(config, kernel, nullptr, 1, shared);
    smx.run(100'000);
    // One warp: head (4 instr) + tail (2 instr) = 6 warp instructions.
    EXPECT_EQ(smx.collectStats().histogram.instructions(), 6u);
}

TEST(Smx, PerBlockIssueStatsRecorded)
{
    GpuConfig config;
    SharedMemorySide shared(config.memory);
    CountdownKernel kernel(2, 4);
    Smx smx(config, kernel, nullptr, 2, shared);
    smx.run(100'000);
    const SimStats stats = smx.collectStats();
    ASSERT_EQ(stats.blockIssue.size(), 3u);
    EXPECT_GT(stats.blockIssue[0].first, 0u);
    EXPECT_GT(stats.blockIssue[1].first, 0u);
    EXPECT_EQ(stats.blockIssue[2].first, 0u); // exit never issues
}

TEST(Gpu, RayStripePartitioning)
{
    // 100 rays, 3 SMXs, warp size 32: groups of 32 split 2/1/1.
    auto [f0, c0] = rayStripe(100, 3, 0);
    auto [f1, c1] = rayStripe(100, 3, 1);
    auto [f2, c2] = rayStripe(100, 3, 2);
    EXPECT_EQ(f0, 0u);
    EXPECT_EQ(c0, 64u);
    EXPECT_EQ(f1, 64u);
    EXPECT_EQ(c1, 32u);
    EXPECT_EQ(f2, 96u);
    EXPECT_EQ(c2, 4u);
    EXPECT_EQ(c0 + c1 + c2, 100u);
}

TEST(Gpu, RayStripeFewRays)
{
    auto [f0, c0] = rayStripe(10, 4, 0);
    EXPECT_EQ(f0, 0u);
    EXPECT_EQ(c0, 10u);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(rayStripe(10, 4, i).second, 0u);
}

TEST(Gpu, RayStripeZeroRays)
{
    for (int smx = 0; smx < 4; ++smx) {
        auto [first, count] = rayStripe(0, 4, smx);
        EXPECT_EQ(count, 0u);
        EXPECT_LE(first, 0u);
    }
}

TEST(Gpu, RayStripeMoreSmxsThanWarpGroups)
{
    // 3 warp-groups (65 rays) over 8 SMXs: exactly 3 SMXs get one group
    // each, the rest get nothing.
    int populated = 0;
    std::size_t total = 0;
    for (int smx = 0; smx < 8; ++smx) {
        auto [first, count] = rayStripe(65, 8, smx);
        (void)first;
        if (count > 0) {
            ++populated;
            total += count;
        }
    }
    EXPECT_EQ(populated, 3);
    EXPECT_EQ(total, 65u);
}

/**
 * Property check: for any (total, smx count), the stripes are disjoint,
 * contiguous, complete, and every stripe but the batch tail starts and
 * ends on a warp boundary.
 */
TEST(Gpu, RayStripesPartitionTheBatch)
{
    const std::size_t totals[] = {0, 1, 31, 32, 33, 64, 100, 1023, 1024,
                                  4097};
    for (const std::size_t total : totals) {
        for (const int num_smx : {1, 2, 3, 7, 15, 16}) {
            std::size_t expected_first = 0;
            for (int smx = 0; smx < num_smx; ++smx) {
                auto [first, count] = rayStripe(total, num_smx, smx);
                if (count == 0)
                    continue;
                // Contiguity + disjointness: each non-empty stripe picks
                // up exactly where the previous one ended.
                EXPECT_EQ(first, expected_first)
                    << total << " rays, " << num_smx << " SMXs, smx "
                    << smx;
                // Warp alignment: stripes start on a 32-ray boundary and
                // only the batch tail may end off-boundary.
                EXPECT_EQ(first % 32, 0u);
                if (first + count != total)
                    EXPECT_EQ(count % 32, 0u);
                expected_first = first + count;
            }
            EXPECT_EQ(expected_first, total)
                << total << " rays over " << num_smx
                << " SMXs did not cover the batch";
        }
    }
}

} // namespace
} // namespace drs::simt
