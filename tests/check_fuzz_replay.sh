#!/usr/bin/env bash
# Replay determinism check for tools/fuzz_sim: running the same
# configuration twice with --replay <seed> must produce bit-identical
# SimStats, asserted through the stable digest line fuzz_sim prints for
# every passing configuration.
#
# Usage: check_fuzz_replay.sh <path-to-fuzz_sim> [seed...]
set -euo pipefail

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <path-to-fuzz_sim> [seed...]" >&2
    exit 2
fi

fuzz_sim=$1
shift
seeds=("$@")
if [ "${#seeds[@]}" -eq 0 ]; then
    # Distinct architectures at the default derivation (see deriveCase).
    seeds=(0x1 0x2 0x5eed 0xdeadbeef)
fi

fail=0
for seed in "${seeds[@]}"; do
    first=$("$fuzz_sim" --replay "$seed" | grep '^digest ')
    second=$("$fuzz_sim" --replay "$seed" | grep '^digest ')
    if [ -z "$first" ]; then
        echo "FAIL seed $seed: no digest line printed" >&2
        fail=1
    elif [ "$first" != "$second" ]; then
        echo "FAIL seed $seed: replay digests differ" >&2
        echo "  first:  $first" >&2
        echo "  second: $second" >&2
        fail=1
    else
        echo "ok   seed $seed: $first"
    fi
done
exit "$fail"
