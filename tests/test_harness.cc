/**
 * @file
 * Integration tests through the experiment harness: all four simulated
 * architectures trace real captured workloads, complete, agree on ray
 * counts, and show the paper's qualitative relationships on secondary
 * rays (DRS SIMD efficiency above Aila's; DMK pays SI instructions; TBC
 * in between).
 */

#include <gtest/gtest.h>

#include "harness/harness.h"

namespace drs::harness {
namespace {

/** Small but non-trivial shared fixture: conference at tiny scale. */
class HarnessFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        ExperimentScale scale;
        scale.sceneScale = 0.15f;
        scale.width = 128;
        scale.height = 96;
        scale.samplesPerPixel = 1;
        scale.raysPerBounce = 8192;
        scale.numSmx = 2;
        prepared_ = new PreparedScene(
            prepareScene(scene::SceneId::Conference, scale));
        config_ = new RunConfig();
        config_->gpu.numSmx = 2;
    }

    static void TearDownTestSuite()
    {
        delete prepared_;
        delete config_;
        prepared_ = nullptr;
        config_ = nullptr;
    }

    static PreparedScene *prepared_;
    static RunConfig *config_;
};

PreparedScene *HarnessFixture::prepared_ = nullptr;
RunConfig *HarnessFixture::config_ = nullptr;

TEST_F(HarnessFixture, ArchNames)
{
    EXPECT_EQ(archName(Arch::Aila), "aila");
    EXPECT_EQ(archName(Arch::Drs), "drs");
    EXPECT_EQ(archName(Arch::Dmk), "dmk");
    EXPECT_EQ(archName(Arch::Tbc), "tbc");
}

TEST_F(HarnessFixture, AllArchitecturesTraceAllRays)
{
    const auto &rays = prepared_->trace.bounce(2).rays;
    for (Arch arch : {Arch::Aila, Arch::Drs, Arch::Dmk, Arch::Tbc}) {
        const auto stats = runBatch(arch, *prepared_->tracer, rays,
                                    *config_);
        EXPECT_EQ(stats.raysTraced, rays.size()) << archName(arch);
        EXPECT_GT(stats.cycles, 0u) << archName(arch);
        EXPECT_GT(stats.histogram.simdEfficiency(), 0.0) << archName(arch);
        EXPECT_LE(stats.histogram.simdEfficiency(), 1.0) << archName(arch);
    }
}

TEST_F(HarnessFixture, DrsBeatsAilaSimdEfficiencyOnSecondaryRays)
{
    const auto &rays = prepared_->trace.bounce(2).rays;
    const auto aila = runBatch(Arch::Aila, *prepared_->tracer, rays,
                               *config_);
    const auto drs = runBatch(Arch::Drs, *prepared_->tracer, rays,
                              *config_);
    EXPECT_GT(drs.histogram.simdEfficiency(),
              aila.histogram.simdEfficiency());
}

TEST_F(HarnessFixture, PrimaryRaysMoreEfficientThanSecondary)
{
    // Figure 2's core observation for the software baseline.
    const auto b1 = runBatch(Arch::Aila, *prepared_->tracer,
                             prepared_->trace.bounce(1).rays, *config_);
    const auto b2 = runBatch(Arch::Aila, *prepared_->tracer,
                             prepared_->trace.bounce(2).rays, *config_);
    EXPECT_GT(b1.histogram.simdEfficiency(),
              b2.histogram.simdEfficiency());
}

TEST_F(HarnessFixture, DmkReportsSpawnOverheadDrsDoesNot)
{
    const auto &rays = prepared_->trace.bounce(2).rays;
    const auto dmk = runBatch(Arch::Dmk, *prepared_->tracer, rays, *config_);
    const auto drs = runBatch(Arch::Drs, *prepared_->tracer, rays, *config_);
    EXPECT_GT(dmk.histogram.spawnFraction(), 0.0);
    EXPECT_EQ(drs.histogram.spawnFraction(), 0.0);
}

TEST_F(HarnessFixture, DrsReportsShuffleActivity)
{
    const auto &rays = prepared_->trace.bounce(2).rays;
    const auto drs = runBatch(Arch::Drs, *prepared_->tracer, rays, *config_);
    EXPECT_GT(drs.raySwapsCompleted, 0u);
    EXPECT_GT(drs.rdctrlIssued, 0u);
    EXPECT_GT(drs.rfAccessesShuffle, 0u);
    EXPECT_GT(drs.meanSwapCycles(), 0.0);
}

TEST_F(HarnessFixture, RunCaptureAggregatesBounces)
{
    const auto result = runCapture(Arch::Aila, *prepared_->tracer,
                                   prepared_->trace, *config_, 3);
    ASSERT_EQ(result.perBounce.size(), 3u);
    std::uint64_t rays = 0;
    std::uint64_t cycles = 0;
    for (const auto &b : result.perBounce) {
        rays += b.raysTraced;
        cycles += b.cycles;
    }
    EXPECT_EQ(result.overall.raysTraced, rays);
    EXPECT_EQ(result.overall.cycles, cycles);
    EXPECT_GT(result.overallMrays(0.98), 0.0);
}

TEST_F(HarnessFixture, RunCaptureRespectsRayCap)
{
    const auto result = runCapture(Arch::Aila, *prepared_->tracer,
                                   prepared_->trace, *config_, 2, 1000);
    for (const auto &b : result.perBounce)
        EXPECT_LE(b.raysTraced, 1000u);
}

TEST_F(HarnessFixture, IdealizedDrsAtLeastAsFastAsReal)
{
    const auto &rays = prepared_->trace.bounce(2).rays;
    RunConfig real = *config_;
    RunConfig ideal = *config_;
    ideal.drs.idealized = true;
    const auto r = runBatch(Arch::Drs, *prepared_->tracer, rays, real);
    const auto i = runBatch(Arch::Drs, *prepared_->tracer, rays, ideal);
    // Instant shuffling all but eliminates rdctrl issue stalls; raw
    // Mrays/s is too noisy to compare at this drain-dominated scale.
    EXPECT_LT(i.rdctrlStallRate(), r.rdctrlStallRate());
    EXPECT_LT(i.rdctrlStallRate(), 0.10);
}

TEST(ExperimentScale, EnvironmentOverrides)
{
    setenv("DRS_RAYS", "1234", 1);
    setenv("DRS_SCALE", "0.5", 1);
    setenv("DRS_SMX", "3", 1);
    const auto scale = ExperimentScale::fromEnvironment();
    EXPECT_EQ(scale.raysPerBounce, 1234u);
    EXPECT_FLOAT_EQ(scale.sceneScale, 0.5f);
    EXPECT_EQ(scale.numSmx, 3);
    unsetenv("DRS_RAYS");
    unsetenv("DRS_SCALE");
    unsetenv("DRS_SMX");
}

TEST(ExperimentScale, RejectsMalformedEnvironmentValues)
{
    const ExperimentScale defaults;
    // Not-a-number, trailing garbage, and non-positive values must all
    // be ignored (with a stderr warning) instead of silently becoming 0
    // or a truncated prefix.
    for (const char *bad : {"lots", "12oo", "-5", "0", "nan", ""}) {
        setenv("DRS_RAYS", bad, 1);
        setenv("DRS_SMX", bad, 1);
        const auto scale = ExperimentScale::fromEnvironment();
        EXPECT_EQ(scale.raysPerBounce, defaults.raysPerBounce)
            << "DRS_RAYS=\"" << bad << '"';
        EXPECT_EQ(scale.numSmx, defaults.numSmx)
            << "DRS_SMX=\"" << bad << '"';
    }
    unsetenv("DRS_RAYS");
    unsetenv("DRS_SMX");

    // Trailing whitespace is harmless and accepted.
    setenv("DRS_SMX", "5 ", 1);
    EXPECT_EQ(ExperimentScale::fromEnvironment().numSmx, 5);
    unsetenv("DRS_SMX");
}

} // namespace
} // namespace drs::harness
