#!/bin/bash
# Reorder-survey smoke: run bench_reorder_survey at a tiny scale, then
# require (1) a schema-valid JSON report, (2) result rows for the complete
# registry lineup on every scene, (3) reorder counters on the software
# reorderers' rows, (4) a summary lineup section naming every plugin.
#
# Usage: check_reorder_survey.sh BENCH_BINARY PYTHON SCHEMA_CHECKER
set -euo pipefail

bench=$1
python=$2
schema_checker=$3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

DRS_RAYS=2048 DRS_SCALE=0.05 DRS_SMX=2 \
    "$bench" --jobs 2 --json "$tmp/BENCH_reorder_survey.json" \
    > "$tmp/survey.log"

"$python" "$schema_checker" "$tmp/BENCH_reorder_survey.json"

"$python" - "$tmp/BENCH_reorder_survey.json" <<'PYEOF'
import json
import sys

report = json.load(open(sys.argv[1]))
required = ["aila", "drs", "dmk", "tbc", "sort", "cutcode", "ser",
            "pathpred"]

lineup = report["summary"]["architectures"]
listed = [entry["arch"] for entry in lineup]
missing = [a for a in required if a not in listed]
if missing:
    sys.exit(f"FAIL: summary lineup is missing {missing} (has {listed})")
for entry in lineup:
    if not entry.get("description") or not entry.get("counter_namespace"):
        sys.exit(f"FAIL: lineup entry {entry['arch']} lacks description "
                 "or counter namespace")

rows = report["results"]
scenes = sorted({row["scene"] for row in rows})
if not scenes:
    sys.exit("FAIL: survey produced no result rows")
for scene in scenes:
    archs = {row["arch"] for row in rows if row["scene"] == scene}
    missing = [a for a in required if a not in archs]
    if missing:
        sys.exit(f"FAIL: scene {scene} is missing rows for {missing}")

for row in rows:
    if row["arch"] in ("sort", "cutcode"):
        for key in ("reorder_distinct_keys", "reorder_displacement_sum"):
            if key not in row:
                sys.exit(f"FAIL: {row['scene']}/{row['arch']} row lacks "
                         f"{key}")
        if row["reorder_distinct_keys"] < 1:
            sys.exit(f"FAIL: {row['scene']}/{row['arch']} reordered into "
                     "zero key buckets")
    if "speedup_vs_aila" not in row or row["speedup_vs_aila"] <= 0:
        sys.exit(f"FAIL: {row['scene']}/{row['arch']} has no positive "
                 "speedup_vs_aila")

for arch in required:
    key = f"{arch}_geomean_speedup"
    if key not in report["summary"]:
        sys.exit(f"FAIL: summary lacks {key}")

print(f"ok   survey covers {required} on scenes {scenes}")
PYEOF

echo "check_reorder_survey.sh: all checks passed"
