/**
 * @file
 * Unit and correctness tests for the DMK and TBC baselines: both must
 * trace every ray to the same hit as the CPU reference, and their
 * characteristic overheads (spawn instructions, bank conflicts, block
 * compaction) must be visible in the statistics.
 */

#include <gtest/gtest.h>

#include "baselines/dmk_control.h"
#include "baselines/tbc_smx.h"
#include "kernels/drs_kernel.h"
#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "geom/rng.h"
#include "scene/scenes.h"
#include "simt/gpu.h"
#include "simt/smx.h"

namespace drs::baselines {
namespace {

using geom::Hit;
using geom::Ray;
using geom::Vec3;
using simt::TravState;

struct TestSetup
{
    scene::Scene scene = scene::makeTestScene();
    bvh::Bvh bvh;
    std::vector<Ray> rays;

    explicit TestSetup(int ray_count = 512, std::uint64_t seed = 41)
    {
        bvh = bvh::build(scene.triangles());
        geom::Pcg32 rng(seed);
        for (int i = 0; i < ray_count; ++i) {
            Ray ray;
            ray.origin = {rng.nextFloat(1, 9), rng.nextFloat(0.5f, 5.5f),
                          rng.nextFloat(1, 9)};
            ray.direction = geom::normalize(
                Vec3{rng.nextFloat(-1, 1), rng.nextFloat(-1, 1),
                     rng.nextFloat(-1, 1)});
            if (geom::lengthSquared(ray.direction) > 0)
                rays.push_back(ray);
        }
    }

    Hit reference(const Ray &ray) const
    {
        return bvh::intersect(bvh, scene.triangles(), ray);
    }
};

// ------------------------------------------------------------------ DMK

TEST(Dmk, TracesAllRaysCorrectly)
{
    TestSetup setup;
    kernels::DrsKernelConfig kernel_config;
    kernel_config.numWarps = 8;
    kernel_config.backupRows = 0;
    kernels::DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays,
                              0, kernel_config);
    DmkConfig config;
    DmkControl control(config, kernel.travWorkspace());
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, kernel_config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle)
            << "ray " << i;
    }
}

TEST(Dmk, SpawnsProduceSiInstructionsAndConflicts)
{
    TestSetup setup(1024, 43);
    kernels::DrsKernelConfig kernel_config;
    kernel_config.numWarps = 8;
    kernel_config.backupRows = 0;
    kernels::DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays,
                              0, kernel_config);
    DmkConfig config;
    DmkControl control(config, kernel.travWorkspace());
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, kernel_config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());

    EXPECT_GT(control.stats().spawns, 0u);
    EXPECT_EQ(control.stats().raysDumped, control.stats().raysLoaded);
    const auto stats = smx.collectStats();
    EXPECT_GT(stats.histogram.spawnInstructions(), 0u);
    EXPECT_GT(stats.histogram.spawnFraction(), 0.0);
}

TEST(Dmk, PoolsDrainCompletely)
{
    TestSetup setup(700, 47);
    kernels::DrsKernelConfig kernel_config;
    kernel_config.numWarps = 4;
    kernel_config.backupRows = 0;
    kernels::DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays,
                              0, kernel_config);
    DmkConfig config;
    DmkControl control(config, kernel.travWorkspace());
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, kernel_config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(control.pooledRays(TravState::Inner), 0u);
    EXPECT_EQ(control.pooledRays(TravState::Leaf), 0u);
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
}

TEST(Dmk, ConflictCostZeroForConflictFreeSlots)
{
    TestSetup setup(32);
    kernels::DrsKernelConfig kernel_config;
    kernel_config.numWarps = 1;
    kernel_config.backupRows = 0;
    kernels::DrsKernel kernel(setup.bvh, setup.scene.triangles(), setup.rays,
                              0, kernel_config);
    DmkConfig config;
    config.spawnBanks = 32;
    DmkControl control(config, kernel.travWorkspace());
    // 32 consecutive slots map to 32 distinct banks: no conflicts.
    // (Indirectly validated through a full run with one warp, where dump
    // slabs are contiguous.)
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, 1, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
}

// ------------------------------------------------------------------ TBC

TEST(Tbc, TracesAllRaysCorrectly)
{
    TestSetup setup;
    TbcConfig config;
    config.numWarps = 12;
    config.warpsPerBlock = 6;
    kernels::AilaConfig aila;
    aila.numWarps = config.numWarps;
    kernels::AilaKernel kernel(setup.bvh, setup.scene.triangles(),
                               setup.rays, 0, aila);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    TbcSmx smx(gpu, config, kernel, shared);
    smx.run(200'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected = setup.reference(setup.rays[i]);
        ASSERT_EQ(kernel.travWorkspace().results()[i].triangle,
                  expected.triangle)
            << "ray " << i;
    }
}

TEST(Tbc, RejectsIndivisibleWarpCount)
{
    TestSetup setup(32);
    TbcConfig config;
    config.numWarps = 7; // not divisible by warpsPerBlock = 6
    kernels::AilaConfig aila;
    aila.numWarps = config.numWarps;
    kernels::AilaKernel kernel(setup.bvh, setup.scene.triangles(),
                               setup.rays, 0, aila);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    EXPECT_THROW(TbcSmx(gpu, config, kernel, shared),
                 std::invalid_argument);
}

TEST(Tbc, StatsPopulated)
{
    TestSetup setup(1024, 53);
    TbcConfig config;
    config.numWarps = 12;
    kernels::AilaConfig aila;
    aila.numWarps = config.numWarps;
    kernels::AilaKernel kernel(setup.bvh, setup.scene.triangles(),
                               setup.rays, 0, aila);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    TbcSmx smx(gpu, config, kernel, shared);
    smx.run(200'000'000);
    const auto stats = smx.collectStats();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.histogram.instructions(), 0u);
    EXPECT_EQ(stats.raysTraced, setup.rays.size());
    EXPECT_GT(stats.l1Texture.accesses, 0u);
}

TEST(Tbc, GpuDriverAggregatesAcrossSmxs)
{
    TestSetup setup(1024, 59);
    simt::GpuConfig gpu;
    gpu.numSmx = 3;
    TbcConfig config;
    config.numWarps = 12;
    auto stats = runTbcGpu(
        gpu, config,
        [&](int smx) {
            auto [first, count] =
                simt::rayStripe(setup.rays.size(), gpu.numSmx, smx);
            std::vector<Ray> stripe(setup.rays.begin() + first,
                                    setup.rays.begin() + first + count);
            kernels::AilaConfig aila;
            aila.numWarps = config.numWarps;
            return std::make_unique<kernels::AilaKernel>(
                setup.bvh, setup.scene.triangles(), std::move(stripe),
                first, aila);
        });
    EXPECT_EQ(stats.raysTraced, setup.rays.size());
    EXPECT_GT(stats.histogram.simdEfficiency(), 0.0);
}

} // namespace
} // namespace drs::baselines
