/**
 * @file
 * Unit tests for the invariant-checking subsystem (src/check): the
 * DRS_CHECK gate, the traversal-workspace checker, the reconvergence-
 * stack checker, counter/SimStats lockstep, the lockstep functional
 * reference interpreter, the loud constructor validation, and the
 * end-to-end guarantee that checking is a pure observer (checked runs
 * produce bit-identical SimStats to unchecked ones on every
 * architecture).
 */

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "check/check.h"
#include "check/reference.h"
#include "geom/rng.h"
#include "harness/harness.h"
#include "kernels/aila_kernel.h"
#include "kernels/trav_workspace.h"
#include "render/path_tracer.h"
#include "scene/scenes.h"
#include "simt/gpu.h"
#include "simt/kernel_ir.h"
#include "simt/warp.h"

namespace drs::check {
namespace {

using geom::Hit;
using geom::Ray;
using geom::Vec3;

/** Small scene + random rays, shared by the workspace/reference tests. */
struct TestSetup
{
    scene::Scene scene = scene::makeTestScene();
    bvh::Bvh bvh;
    std::vector<Ray> rays;

    explicit TestSetup(int ray_count = 256, std::uint64_t seed = 7)
    {
        bvh = bvh::build(scene.triangles());
        geom::Pcg32 rng(seed);
        for (int i = 0; i < ray_count; ++i) {
            Ray ray;
            ray.origin = {rng.nextFloat(1, 9), rng.nextFloat(0.5f, 5.5f),
                          rng.nextFloat(1, 9)};
            ray.direction = geom::normalize(
                Vec3{rng.nextFloat(-1, 1), rng.nextFloat(-1, 1),
                     rng.nextFloat(-1, 1)});
            if (geom::lengthSquared(ray.direction) > 0)
                rays.push_back(ray);
        }
    }
};

/** RAII guard: set DRS_CHECK for one test, restore the old value after. */
class ScopedCheckEnv
{
  public:
    ScopedCheckEnv()
    {
        const char *old = std::getenv("DRS_CHECK");
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
    }

    ~ScopedCheckEnv()
    {
        if (hadOld_)
            ::setenv("DRS_CHECK", old_.c_str(), 1);
        else
            ::unsetenv("DRS_CHECK");
    }

    void set(const char *value) { ::setenv("DRS_CHECK", value, 1); }
    void unset() { ::unsetenv("DRS_CHECK"); }

  private:
    bool hadOld_ = false;
    std::string old_;
};

// --------------------------------------------------------- checkEnabled

TEST(CheckEnabled, ExplicitModeWinsOverEnvironment)
{
    ScopedCheckEnv env;
    env.set("1");
    EXPECT_FALSE(checkEnabled(0));
    EXPECT_TRUE(checkEnabled(1));
    env.set("0");
    EXPECT_TRUE(checkEnabled(1));
}

TEST(CheckEnabled, EnvironmentParsing)
{
    ScopedCheckEnv env;
    env.unset();
    EXPECT_FALSE(checkEnabled(-1));
    env.set("");
    EXPECT_FALSE(checkEnabled(-1));
    env.set("0");
    EXPECT_FALSE(checkEnabled(-1));
    env.set("1");
    EXPECT_TRUE(checkEnabled(-1));
    // Anything else is fail-safe off (with a one-time warning), never a
    // silent "on": a typo must not change what a run measures.
    env.set("yes");
    EXPECT_FALSE(checkEnabled(-1));
}

// ---------------------------------------------------- workspace checker

TEST(Workspace, FreshWorkspacePassesStrictAndRelaxed)
{
    TestSetup setup(64);
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 2, 32);
    EXPECT_NO_THROW(verifyWorkspace(ws, /*strict=*/true));
    EXPECT_NO_THROW(verifyWorkspace(ws, /*strict=*/false));
    ws.fetchStep(0, 0);
    ws.fetchStep(0, 1);
    EXPECT_NO_THROW(verifyWorkspace(ws, /*strict=*/true));
}

TEST(Workspace, DetectsStaleRayIdInEmptySlot)
{
    TestSetup setup(64);
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 2, 32);
    ws.fetchStep(0, 0);
    // Corrupt: mark the slot empty but leave the ray id behind.
    ws.slot(0, 0).state = simt::TravState::Fetch;
    EXPECT_THROW(verifyWorkspace(ws, /*strict=*/false), InvariantViolation);
}

TEST(Workspace, DetectsDuplicateRayId)
{
    TestSetup setup(64);
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 2, 32);
    ws.fetchStep(0, 0);
    ws.fetchStep(0, 1);
    ws.slot(0, 1).rayId = ws.slot(0, 0).rayId; // two slots, one ray
    EXPECT_THROW(verifyWorkspace(ws, /*strict=*/false), InvariantViolation);
}

TEST(Workspace, DetectsOutOfStripeRayId)
{
    TestSetup setup(64);
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 2, 32);
    ws.fetchStep(0, 0);
    ws.slot(0, 0).rayId =
        static_cast<std::int64_t>(setup.rays.size()) + 5;
    EXPECT_THROW(verifyWorkspace(ws, /*strict=*/false), InvariantViolation);
}

TEST(Workspace, DetectsLeafCursorOverrun)
{
    TestSetup setup(64);
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 2, 32);
    ws.fetchStep(0, 0);
    ws.slot(0, 0).leafCursor = ws.slot(0, 0).leafEnd + 1;
    EXPECT_THROW(verifyWorkspace(ws, /*strict=*/false), InvariantViolation);
}

TEST(Workspace, StrictConservationCatchesLostRay)
{
    TestSetup setup(64);
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 2, 32);
    ws.fetchStep(0, 0);
    // Drop the fetched ray entirely: slot emptied, never completed. The
    // relaxed mode (architectures that legally park rays elsewhere)
    // accepts this; strict conservation must not.
    ws.slot(0, 0) = kernels::RaySlot{};
    EXPECT_NO_THROW(verifyWorkspace(ws, /*strict=*/false));
    EXPECT_THROW(verifyWorkspace(ws, /*strict=*/true), InvariantViolation);
}

// --------------------------------------------------------- warp checker

/** 0 -> 1; 1 -> {2, 5}; 2 -> {3, 4}; 3 -> 2; 4 -> 1; 5 = exit. */
simt::Program
makeNestedLoopProgram()
{
    auto block = [](std::string name, std::vector<int> succ) {
        simt::Block b;
        b.name = std::move(name);
        b.successors = std::move(succ);
        b.instructionCount = 1;
        return b;
    };
    std::vector<simt::Block> blocks;
    blocks.push_back(block("pre", {1}));
    blocks.push_back(block("outer", {2, 5}));
    blocks.push_back(block("inner", {3, 4}));
    blocks.push_back(block("body", {2}));
    blocks.push_back(block("latch", {1}));
    blocks.push_back(block("exit", {}));
    return simt::Program(std::move(blocks), 5);
}

TEST(WarpChecker, AcceptsHealthyDivergenceStacks)
{
    const simt::Program program = makeNestedLoopProgram();
    const Checker checker;
    simt::Warp warp(0, 0, 0, 5, 32);
    checker.checkWarp(warp, program);

    std::vector<int> next(32, 1);
    warp.applySuccessors(next, program);
    checker.checkWarp(warp, program);
    for (int i = 0; i < 32; ++i)
        next[static_cast<std::size_t>(i)] = (i < 16) ? 2 : 5;
    warp.applySuccessors(next, program);
    checker.checkWarp(warp, program);
    for (int i = 0; i < 16; ++i)
        next[static_cast<std::size_t>(i)] = (i < 8) ? 3 : 4;
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 3u);
    EXPECT_NO_THROW(checker.checkWarp(warp, program));
}

TEST(WarpChecker, DetectsUnrelatedReconvergencePoint)
{
    const simt::Program program = makeNestedLoopProgram();
    const Checker checker;
    simt::Warp warp(0, 0, 0, 5, 32);
    // An entry whose rpc is neither its parent's pc nor a sibling's rpc
    // is not part of any legal IPDOM divergence.
    warp.pushUniformBody(2, 0xffffffffu, 3);
    EXPECT_THROW(checker.checkWarp(warp, program), InvariantViolation);
}

TEST(WarpChecker, DetectsSiblingMaskOverlap)
{
    const simt::Program program = makeNestedLoopProgram();
    const Checker checker;
    simt::Warp warp(0, 0, 0, 5, 32);
    // Two sides of the same divergence (both reconverge at the bottom
    // entry's pc) claiming the same lane: a thread in two places at once.
    warp.pushUniformBody(1, 0x3u, 0);
    warp.pushUniformBody(2, 0x1u, 0);
    EXPECT_THROW(checker.checkWarp(warp, program), InvariantViolation);
}

TEST(WarpChecker, DetectsMaskOutsideWarpWidth)
{
    const simt::Program program = makeNestedLoopProgram();
    const Checker checker;
    simt::Warp warp(0, 0, 0, 5, 8); // 8-lane warp
    warp.pushUniformBody(1, 0xff00u, 0); // lanes 8..15 do not exist
    EXPECT_THROW(checker.checkWarp(warp, program), InvariantViolation);
}

// ------------------------------------------------ counter/stats lockstep

TEST(StatsLockstep, PassesOnRealRunAndDetectsDrift)
{
    TestSetup setup(256);
    render::PathTracer tracer(setup.scene);
    harness::RunConfig config;
    config.gpu.numSmx = 2;
    const simt::SimStats stats =
        runBatch(harness::Arch::Drs, tracer, setup.rays, config);
    EXPECT_NO_THROW(verifyStatsLockstep(stats));

    // Any scalar drifting from its observability counter must trip the
    // lockstep check.
    simt::SimStats drifted = stats;
    drifted.rdctrlIssued += 1;
    EXPECT_THROW(verifyStatsLockstep(drifted), InvariantViolation);

    drifted = stats;
    drifted.l1Data.accesses += 1;
    EXPECT_THROW(verifyStatsLockstep(drifted), InvariantViolation);
}

// --------------------------------------------------- reference interpreter

TEST(Reference, MatchesCpuTraversalExactly)
{
    TestSetup setup(256);
    const ReferenceResult result = runReference(
        setup.bvh, setup.scene.triangles(), setup.rays, {});
    ASSERT_EQ(result.hits.size(), setup.rays.size());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const Hit expected =
            bvh::intersect(setup.bvh, setup.scene.triangles(),
                           setup.rays[i]);
        EXPECT_EQ(result.hits[i].triangle, expected.triangle) << "ray " << i;
        if (expected.valid()) {
            EXPECT_EQ(result.hits[i].t, expected.t) << "ray " << i;
        }
    }
    // One fetch per ray plus the final empty-pool probe; the exit block
    // is never counted as visited.
    using B = kernels::AilaBlocks;
    EXPECT_EQ(result.blockVisits[B::kFetch], setup.rays.size() + 1);
    EXPECT_EQ(result.blockVisits[B::kExit], 0u);
    EXPECT_GT(result.blockVisits[B::kInnerTest], 0u);
}

TEST(Reference, SpeculationDoesNotChangeHits)
{
    TestSetup setup(256);
    kernels::AilaConfig speculative;
    speculative.speculativeTraversal = true;
    const ReferenceResult plain = runReference(
        setup.bvh, setup.scene.triangles(), setup.rays, {});
    const ReferenceResult spec = runReference(
        setup.bvh, setup.scene.triangles(), setup.rays, speculative);
    ASSERT_EQ(plain.hits.size(), spec.hits.size());
    for (std::size_t i = 0; i < plain.hits.size(); ++i) {
        EXPECT_EQ(plain.hits[i].triangle, spec.hits[i].triangle);
        EXPECT_EQ(plain.hits[i].t, spec.hits[i].t);
    }
}

TEST(Reference, VerifyBatchRejectsTamperedHits)
{
    TestSetup setup(128);
    render::PathTracer tracer(setup.scene);
    harness::RunConfig config;
    config.gpu.numSmx = 1;
    std::vector<Hit> hits;
    config.hitsOut = &hits;
    const simt::SimStats stats =
        runBatch(harness::Arch::Aila, tracer, setup.rays, config);
    ASSERT_EQ(hits.size(), setup.rays.size());

    BatchCheckInputs inputs; // while-while defaults match the Aila run
    EXPECT_NO_THROW(verifyBatch(tracer.bvh(), tracer.sceneTriangles(),
                                setup.rays, stats, hits, inputs));

    std::vector<Hit> tampered = hits;
    tampered[3].triangle = tampered[3].triangle == 0 ? 1 : 0;
    EXPECT_THROW(verifyBatch(tracer.bvh(), tracer.sceneTriangles(),
                             setup.rays, stats, tampered, inputs),
                 InvariantViolation);

    // Tampered block-issue stats (a lost loop iteration) must also trip.
    simt::SimStats skewed = stats;
    ASSERT_GT(skewed.blockIssue.size(),
              static_cast<std::size_t>(kernels::AilaBlocks::kInnerTest));
    skewed.blockIssue[kernels::AilaBlocks::kInnerTest].second +=
        kernels::defaultCostModel().innerTest;
    EXPECT_THROW(verifyBatch(tracer.bvh(), tracer.sceneTriangles(),
                             setup.rays, skewed, hits, inputs),
                 InvariantViolation);
}

// ------------------------------------------- end-to-end: pure observation

TEST(Harness, CheckedRunMatchesUncheckedOnAllArchitectures)
{
    TestSetup setup(256);
    render::PathTracer tracer(setup.scene);
    for (const harness::Arch arch :
         {harness::Arch::Aila, harness::Arch::Drs, harness::Arch::Dmk,
          harness::Arch::Tbc}) {
        harness::RunConfig config;
        config.gpu.numSmx = 2;
        config.check = 0;
        const simt::SimStats unchecked =
            runBatch(arch, tracer, setup.rays, config);

        config.check = 1;
        std::vector<Hit> hits;
        config.hitsOut = &hits;
        simt::SimStats checked;
        ASSERT_NO_THROW(checked =
                            runBatch(arch, tracer, setup.rays, config))
            << harness::archName(arch);
        EXPECT_TRUE(checked == unchecked)
            << harness::archName(arch)
            << ": DRS_CHECK=1 altered the simulation statistics";
        ASSERT_EQ(hits.size(), setup.rays.size());
        for (std::size_t i = 0; i < hits.size(); ++i) {
            const Hit expected = bvh::intersect(
                tracer.bvh(), tracer.sceneTriangles(), setup.rays[i]);
            EXPECT_EQ(hits[i].triangle, expected.triangle)
                << harness::archName(arch) << " ray " << i;
        }
    }
}

// --------------------------------------------- loud bounds validation

TEST(Validation, WarpRejectsBadLaneCounts)
{
    EXPECT_THROW(simt::Warp(0, 0, 0, 1, 0), std::invalid_argument);
    EXPECT_THROW(simt::Warp(0, 0, 0, 1, 33), std::invalid_argument);
}

TEST(Validation, SmxRejectsBadGeometry)
{
    TestSetup setup(32);
    simt::GpuConfig config;
    simt::SharedMemorySide shared(config.memory);
    kernels::AilaKernel kernel(setup.bvh, setup.scene.triangles(),
                               setup.rays, 0);
    EXPECT_THROW(simt::Smx(config, kernel, nullptr, 0, shared),
                 std::invalid_argument);
    simt::GpuConfig bad_lanes = config;
    bad_lanes.simdLanes = 33;
    EXPECT_THROW(simt::Smx(bad_lanes, kernel, nullptr, 4, shared),
                 std::invalid_argument);
    simt::GpuConfig no_scheduler = config;
    no_scheduler.schedulersPerSmx = 0;
    EXPECT_THROW(simt::Smx(no_scheduler, kernel, nullptr, 4, shared),
                 std::invalid_argument);
}

TEST(Validation, RayStripeRejectsBadIndices)
{
    EXPECT_THROW(simt::rayStripe(100, 0, 0), std::invalid_argument);
    EXPECT_THROW(simt::rayStripe(100, 3, 3), std::invalid_argument);
    EXPECT_THROW(simt::rayStripe(100, 3, -1), std::invalid_argument);
}

} // namespace
} // namespace drs::check
