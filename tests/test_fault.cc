/**
 * @file
 * Fault-injection subsystem tests: deterministic seeded injectors, cache
 * corruption under invariant checking, the forward-progress watchdog
 * (unit level and against a livelocked synthetic kernel), cooperative
 * cancellation through the cycle engine, and the end-to-end contracts —
 * faults disabled is a pure observer, the same seed reproduces the same
 * SimStats at any thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "exec/cancel.h"
#include "fault/fault.h"
#include "harness/harness.h"
#include "simt/cache.h"
#include "simt/engine.h"
#include "simt/gpu.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/smx.h"

namespace drs {
namespace {

// ------------------------------------------------------------- Seeding

TEST(MixSeed, StableAndSensitive)
{
    const std::uint64_t a = fault::mixSeed(1, 2, 3);
    EXPECT_EQ(a, fault::mixSeed(1, 2, 3)); // pure function
    EXPECT_NE(a, fault::mixSeed(1, 2, 4));
    EXPECT_NE(a, fault::mixSeed(1, 3, 3));
    EXPECT_NE(a, fault::mixSeed(2, 2, 3));
    // Adjacent job indices / attempts must decorrelate.
    EXPECT_NE(fault::mixSeed(42, 0, 1), fault::mixSeed(42, 1, 0));
}

TEST(FaultConfig, SeedGatesEverything)
{
    fault::FaultConfig config;
    EXPECT_FALSE(config.enabled());
    config.seed = 7;
    EXPECT_TRUE(config.enabled());
}

TEST(FaultConfig, FromEnvironmentParsesSeed)
{
    ::setenv("DRS_FAULT_SEED", "0x1234", 1);
    EXPECT_EQ(fault::FaultConfig::fromEnvironment().seed, 0x1234u);
    ::setenv("DRS_FAULT_SEED", "bogus", 1);
    EXPECT_EQ(fault::FaultConfig::fromEnvironment().seed, 0u);
    ::unsetenv("DRS_FAULT_SEED");
    EXPECT_EQ(fault::FaultConfig::fromEnvironment().seed, 0u);
}

TEST(FaultInjector, SameSeedSameStream)
{
    fault::FaultConfig config;
    config.seed = 0xfeedULL;
    config.swapBitFlipRate = 0.5;
    fault::FaultInjector a(config, 3);
    fault::FaultInjector b(config, 3);
    for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(a.rollSwapBitFlip(), b.rollSwapBitFlip());
        EXPECT_EQ(a.rollDramFault(), b.rollDramFault());
        EXPECT_EQ(a.pick(1000), b.pick(1000));
    }
    EXPECT_EQ(a.counters().swapBitFlips, b.counters().swapBitFlips);
    EXPECT_GT(a.counters().swapBitFlips, 0u);
}

TEST(FaultInjector, UnitsDrawIndependentStreams)
{
    fault::FaultConfig config;
    config.seed = 0xfeedULL;
    fault::FaultInjector a(config, 0);
    fault::FaultInjector b(config, 1);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.pick(1u << 30) != b.pick(1u << 30);
    EXPECT_GT(differing, 32);
}

// ------------------------------------------------- Cache corruption

TEST(FaultCache, CorruptionPreservesInvariants)
{
    fault::FaultConfig config;
    config.seed = 0x7777ULL;
    config.cacheTagFlipRate = 0.25; // hammer it
    fault::FaultInjector injector(config, 0);

    simt::Cache cache(1024, 64, 2);
    cache.setFault(&injector);
    std::uint64_t address = 1;
    for (int i = 0; i < 2000; ++i) {
        address = address * 6364136223846793005ULL + 1442695040888963407ULL;
        cache.access(address % 16384);
        cache.verifyInvariants();
    }
    EXPECT_GT(injector.counters().cacheTagFlips, 0u);
}

TEST(FaultMemory, DramFaultsAddLatencyOnly)
{
    fault::FaultConfig config;
    config.seed = 0x9999ULL;
    config.dramDelayRate = 0.5;
    config.dramDropRate = 0.25;
    fault::FaultInjector injector(config, 0);

    simt::MemoryConfig mem;
    simt::SharedMemorySide clean(mem);
    simt::SharedMemorySide faulty(mem);
    faulty.setFault(&injector);

    std::uint64_t slow = 0, fast = 0;
    for (std::uint64_t line = 0; line < 512; ++line) {
        fast += clean.accessLine(line * 128);
        slow += faulty.accessLine(line * 128);
    }
    EXPECT_GT(injector.counters().dramDelayed +
                  injector.counters().dramDropped,
              0u);
    EXPECT_GT(slow, fast);
    // Same line count through the L2 either way: faults delay responses,
    // they never change what was accessed.
    EXPECT_EQ(clean.l2Stats().accesses, faulty.l2Stats().accesses);
}

// ------------------------------------------------------------ Watchdog

TEST(Watchdog, DisabledNeverFires)
{
    fault::Watchdog watchdog(0);
    EXPECT_FALSE(watchdog.enabled());
    for (std::uint64_t cycle = 0; cycle < 100; ++cycle)
        EXPECT_FALSE(watchdog.observe(cycle, 0));
}

TEST(Watchdog, FiresOnlyAfterBudgetWithoutProgress)
{
    fault::Watchdog watchdog(10);
    EXPECT_TRUE(watchdog.enabled());
    // Progress advances: never fires.
    for (std::uint64_t cycle = 0; cycle < 50; ++cycle)
        EXPECT_FALSE(watchdog.observe(cycle, cycle));
    // Progress freezes at cycle 50: fires once 10 cycles elapse.
    for (std::uint64_t cycle = 50; cycle <= 60; ++cycle)
        EXPECT_FALSE(watchdog.observe(cycle, 50));
    EXPECT_TRUE(watchdog.observe(61, 50));
    EXPECT_EQ(watchdog.lastProgressCycle(), 50u);
    // Progress resumes: re-arms.
    EXPECT_FALSE(watchdog.observe(62, 51));
    EXPECT_FALSE(watchdog.observe(70, 51));
}

TEST(Watchdog, TimeoutCarriesDiagnostics)
{
    const fault::WatchdogTimeout timeout(123, 45, "SMX 0: stuck");
    EXPECT_EQ(timeout.cycle(), 123u);
    EXPECT_EQ(timeout.budgetCycles(), 45u);
    EXPECT_EQ(timeout.dump(), "SMX 0: stuck");
    EXPECT_NE(std::string(timeout.what()).find("SMX 0"), std::string::npos);
}

TEST(Watchdog, CyclesFromEnvironment)
{
    ::setenv("DRS_WATCHDOG", "123456", 1);
    EXPECT_EQ(fault::watchdogCyclesFromEnvironment(), 123456u);
    ::setenv("DRS_WATCHDOG", "nope", 1);
    EXPECT_EQ(fault::watchdogCyclesFromEnvironment(), 0u);
    ::unsetenv("DRS_WATCHDOG");
    EXPECT_EQ(fault::watchdogCyclesFromEnvironment(), 0u);
}

// ------------------------------------------- Livelocked engine runs

/**
 * A kernel that can never finish: the head block declares an exit
 * successor (Program validation requires exit to be reachable) but
 * every thread always loops back to the head. Forward progress is
 * permanently zero, which is exactly what the watchdog must convert
 * into a clean diagnostic failure instead of an hours-long hang.
 */
class LivelockKernel : public simt::Kernel
{
  public:
    LivelockKernel()
    {
        std::vector<simt::Block> blocks(2);
        blocks[0] = {"spin", 1, {0, 1}, simt::MemSpace::None,
                     simt::SpecialOp::None, false};
        blocks[1] = {"exit", 1, {}, simt::MemSpace::None,
                     simt::SpecialOp::None, false};
        program_ = simt::Program(std::move(blocks), 1);
    }

    const simt::Program &program() const override { return program_; }

    simt::ThreadStep execute(int, int, int) override
    {
        simt::ThreadStep step;
        step.nextBlock = 0; // never take the exit edge
        return step;
    }

    simt::RowWorkspace &workspace() override
    {
        throw std::logic_error("unused");
    }

    std::uint64_t raysCompleted() const override { return 0; }

  private:
    simt::Program program_;
};

TEST(EngineWatchdog, LivelockBecomesWatchdogTimeout)
{
    simt::GpuConfig config;
    simt::SharedMemorySide shared(config.memory);
    LivelockKernel kernel;
    simt::Smx smx(config, kernel, nullptr, 2, shared);
    std::vector<simt::Smx *> smxs{&smx};

    fault::Watchdog watchdog(200);
    try {
        simt::runEngine(smxs, 1'000'000, 1, &watchdog);
        FAIL() << "livelock must trip the watchdog";
    } catch (const fault::WatchdogTimeout &timeout) {
        EXPECT_GT(timeout.cycle(), 200u);
        EXPECT_LT(timeout.cycle(), 10'000u) << "should fire promptly";
        // The diagnostic dump names the SMX and its warps.
        EXPECT_NE(timeout.dump().find("SMX 0"), std::string::npos);
        EXPECT_NE(timeout.dump().find("warp"), std::string::npos);
    }
}

TEST(EngineWatchdog, ParallelDriverAlsoFires)
{
    simt::GpuConfig config;
    simt::SharedMemorySide shared(config.memory);
    LivelockKernel kernel_a;
    LivelockKernel kernel_b;
    simt::Smx smx_a(config, kernel_a, nullptr, 2, shared);
    simt::Smx smx_b(config, kernel_b, nullptr, 2, shared);
    std::vector<simt::Smx *> smxs{&smx_a, &smx_b};

    fault::Watchdog watchdog(200);
    EXPECT_THROW(simt::runEngine(smxs, 1'000'000, 2, &watchdog),
                 fault::WatchdogTimeout);
}

TEST(EngineCancel, CancelledTokenStopsTheRun)
{
    simt::GpuConfig config;
    simt::SharedMemorySide shared(config.memory);
    LivelockKernel kernel;
    simt::Smx smx(config, kernel, nullptr, 2, shared);
    std::vector<simt::Smx *> smxs{&smx};

    exec::CancelToken token;
    token.requestCancel();
    EXPECT_THROW(simt::runEngine(smxs, 1'000'000, 1, nullptr, &token),
                 exec::Cancelled);
}

TEST(EngineCancel, ExpiredDeadlineStopsTheRun)
{
    simt::GpuConfig config;
    simt::SharedMemorySide shared(config.memory);
    LivelockKernel kernel;
    simt::Smx smx(config, kernel, nullptr, 2, shared);
    std::vector<simt::Smx *> smxs{&smx};

    exec::CancelToken token;
    token.setDeadline(std::chrono::steady_clock::now() -
                      std::chrono::seconds(1));
    EXPECT_THROW(simt::runEngine(smxs, 1'000'000, 1, nullptr, &token),
                 exec::DeadlineExceeded);
}

// ------------------------------------- End-to-end harness contracts

/** Conference at tiny scale, shared across the end-to-end fault tests. */
class FaultHarness : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        harness::ExperimentScale scale;
        scale.sceneScale = 0.05f;
        scale.width = 128;
        scale.height = 96;
        scale.samplesPerPixel = 1;
        scale.raysPerBounce = 4096;
        scale.numSmx = 2;
        scale.maxDepth = 3;
        prepared_ = new harness::PreparedScene(
            prepareScene(scene::SceneId::Conference, scale));
    }

    static void TearDownTestSuite()
    {
        delete prepared_;
        prepared_ = nullptr;
    }

    static std::span<const geom::Ray> rays()
    {
        std::span<const geom::Ray> r(prepared_->trace.bounce(2).rays);
        return r.size() > 512 ? r.first(512) : r;
    }

    static harness::RunConfig baseConfig()
    {
        harness::RunConfig config;
        config.gpu.numSmx = 2;
        return config;
    }

    static harness::PreparedScene *prepared_;
};

harness::PreparedScene *FaultHarness::prepared_ = nullptr;

TEST_F(FaultHarness, DisabledFaultConfigIsPureObserver)
{
    const auto baseline =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(),
                 baseConfig());

    harness::RunConfig config = baseConfig();
    config.fault.seed = 0; // disabled, despite aggressive rates
    config.fault.swapBitFlipRate = 1.0;
    config.fault.cacheTagFlipRate = 1.0;
    config.fault.dramDelayRate = 1.0;
    const auto observed =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);

    EXPECT_TRUE(baseline == observed);
    for (const auto &[name, value] : observed.counters.entries())
        EXPECT_EQ(name.rfind("fault.", 0), std::string::npos)
            << name << " leaked into a fault-free run";
}

TEST_F(FaultHarness, SameSeedSameStats)
{
    harness::RunConfig config = baseConfig();
    config.fault.seed = 0xabcdULL;
    const auto first =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);
    const auto second =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);
    EXPECT_TRUE(first == second);
    EXPECT_EQ(first.raysTraced, rays().size())
        << "faults must never lose rays";

    std::uint64_t injected = 0;
    for (const auto &[name, value] : first.counters.entries())
        if (name.rfind("fault.", 0) == 0)
            injected += value;
    EXPECT_GT(injected, 0u) << "aggressive seed should inject something";
}

TEST_F(FaultHarness, CheckedRunSkipsReferenceUnderFaultInjection)
{
    // Regression: fault injection corrupts in-flight rays by design, so
    // a DRS_CHECK run used to flag every injected bit flip as a hit
    // mismatch against the fault-free lockstep reference. runBatch must
    // keep the checker detached whenever faults are armed — the faulted
    // run completes, injects, and matches an unchecked faulted run.
    harness::RunConfig config = baseConfig();
    config.fault.seed = 0xabcdULL;
    const auto unchecked =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);

    config.check = 1; // force DRS_CHECK on regardless of environment
    simt::SimStats checked;
    ASSERT_NO_THROW(checked = runBatch(harness::Arch::Drs,
                                       *prepared_->tracer, rays(), config));
    EXPECT_TRUE(unchecked == checked);

    std::uint64_t injected = 0;
    for (const auto &[name, value] : checked.counters.entries())
        if (name.rfind("fault.", 0) == 0)
            injected += value;
    EXPECT_GT(injected, 0u) << "fault gating must not disable injection";
}

TEST_F(FaultHarness, FaultStreamIndependentOfSmxThreads)
{
    harness::RunConfig config = baseConfig();
    config.fault.seed = 0xabcdULL;
    config.smxThreads = 1;
    const auto sequential =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);
    config.smxThreads = 3;
    const auto parallel =
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);
    EXPECT_TRUE(sequential == parallel);
}

TEST_F(FaultHarness, TbcBaselineHonoursFaultContracts)
{
    const auto baseline =
        runBatch(harness::Arch::Tbc, *prepared_->tracer, rays(),
                 baseConfig());
    harness::RunConfig config = baseConfig();
    config.fault.seed = 0; // pure observer
    const auto clean =
        runBatch(harness::Arch::Tbc, *prepared_->tracer, rays(), config);
    EXPECT_TRUE(baseline == clean);

    config.fault.seed = 0x5555ULL;
    const auto faulty_a =
        runBatch(harness::Arch::Tbc, *prepared_->tracer, rays(), config);
    const auto faulty_b =
        runBatch(harness::Arch::Tbc, *prepared_->tracer, rays(), config);
    EXPECT_TRUE(faulty_a == faulty_b);
}

TEST_F(FaultHarness, GenerousWatchdogDoesNotPerturbCleanRuns)
{
    const auto baseline =
        runBatch(harness::Arch::Aila, *prepared_->tracer, rays(),
                 baseConfig());
    harness::RunConfig config = baseConfig();
    config.watchdogCycles = fault::kDefaultWatchdogCycles;
    const auto watched =
        runBatch(harness::Arch::Aila, *prepared_->tracer, rays(), config);
    EXPECT_TRUE(baseline == watched);
}

TEST_F(FaultHarness, TightWatchdogAbortsWithDiagnostics)
{
    harness::RunConfig config = baseConfig();
    // One cycle without a completed ray is "no progress": no real
    // workload satisfies that, so this must abort with the dump.
    config.watchdogCycles = 1;
    try {
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config);
        FAIL() << "1-cycle watchdog must fire";
    } catch (const fault::WatchdogTimeout &timeout) {
        EXPECT_NE(timeout.dump().find("SMX 0"), std::string::npos);
    }
}

TEST_F(FaultHarness, CancelTokenPropagatesThroughRunBatch)
{
    harness::RunConfig config = baseConfig();
    exec::CancelToken token;
    token.requestCancel();
    config.cancel = &token;
    EXPECT_THROW(
        runBatch(harness::Arch::Drs, *prepared_->tracer, rays(), config),
        exec::Cancelled);
}

} // namespace
} // namespace drs
