/**
 * @file
 * Cycle-attribution profiler tests: the issue-slot ledger's conservation
 * invariant (unit-level and end-to-end on real runs of every
 * architecture), the pure-observer contract (SimStats bit-identical with
 * sampling/attribution on or off, at any thread count), and the windowed
 * sampler's deterministic bounded timeline (pairwise coalescing,
 * thread-count-invariant frames).
 */

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.h"
#include "obs/attribution.h"
#include "obs/sampler.h"

namespace drs::harness {
namespace {

using obs::IssueAttribution;
using obs::SlotBucket;
using obs::TimeSampler;
using obs::TravPhase;

TEST(IssueAttributionUnit, RecordsTotalsAndConserves)
{
    IssueAttribution ledger;
    ledger.enable(8);
    ASSERT_TRUE(ledger.enabled());

    for (int cycle = 0; cycle < 3; ++cycle) {
        ledger.record(SlotBucket::IssuedFull, TravPhase::Inner, 4);
        ledger.record(SlotBucket::IssuedPartial, TravPhase::Leaf, 2);
        ledger.record(SlotBucket::StalledRdctrl, TravPhase::None, 1);
        ledger.record(SlotBucket::NoReadyWarp, TravPhase::None, 1);
        ledger.endCycle();
    }

    EXPECT_EQ(ledger.cycles(), 3u);
    EXPECT_EQ(ledger.totalSlots(), 24u);
    EXPECT_EQ(ledger.bucketTotal(SlotBucket::IssuedFull), 12u);
    EXPECT_EQ(ledger.count(SlotBucket::IssuedPartial, TravPhase::Leaf), 6u);
    EXPECT_EQ(ledger.count(SlotBucket::IssuedPartial, TravPhase::Inner), 0u);
    EXPECT_NO_THROW(ledger.verifyConservation());
}

TEST(IssueAttributionUnit, EndCycleMismatchThrows)
{
    IssueAttribution ledger;
    ledger.enable(8);
    ledger.record(SlotBucket::IssuedFull, TravPhase::Inner, 7);
    EXPECT_THROW(ledger.endCycle(), std::logic_error);

    IssueAttribution over;
    over.enable(8);
    over.record(SlotBucket::IssuedFull, TravPhase::Inner, 9);
    EXPECT_THROW(over.endCycle(), std::logic_error);
}

TEST(IssueAttributionUnit, UnclosedCycleFailsConservation)
{
    IssueAttribution ledger;
    ledger.enable(8);
    ledger.record(SlotBucket::Drained, TravPhase::None, 3);
    // Slots recorded but the cycle never closed: the ledger is mid-cycle
    // and must refuse to pass an end-to-end audit.
    EXPECT_THROW(ledger.verifyConservation(), std::logic_error);
}

TEST(IssueAttributionUnit, MergeAddsLedgers)
{
    IssueAttribution a, b;
    a.enable(4);
    b.enable(4);
    a.record(SlotBucket::IssuedFull, TravPhase::Fetch, 4);
    a.endCycle();
    b.record(SlotBucket::StalledMemory, TravPhase::Leaf, 4);
    b.endCycle();

    a.merge(b);
    EXPECT_EQ(a.cycles(), 2u);
    EXPECT_EQ(a.totalSlots(), 8u);
    EXPECT_EQ(a.bucketTotal(SlotBucket::StalledMemory), 4u);
    EXPECT_NO_THROW(a.verifyConservation());
}

TEST(TimeSamplerUnit, ClosesWindowsAtInterval)
{
    TimeSampler sampler;
    sampler.enable(10, 64, nullptr);
    for (std::uint64_t cycle = 1; cycle <= 25; ++cycle)
        sampler.tick(cycle * 3, cycle * 60, cycle / 5);

    const auto frames = sampler.frames();
    ASSERT_EQ(frames.size(), 3u); // two closed + one partial
    EXPECT_EQ(frames[0].begin, 0u);
    EXPECT_EQ(frames[0].end, 10u);
    EXPECT_EQ(frames[1].begin, 10u);
    EXPECT_EQ(frames[2].end, 25u);
    // Deltas must tile the cumulative series.
    EXPECT_EQ(frames[0].instructions + frames[1].instructions +
                  frames[2].instructions,
              75u);
}

TEST(TimeSamplerUnit, CoalescesPairwiseAndDoublesInterval)
{
    TimeSampler sampler;
    sampler.enable(4, 8, nullptr);
    const std::uint64_t cycles = 400;
    for (std::uint64_t cycle = 1; cycle <= cycles; ++cycle)
        sampler.tick(cycle * 2, cycle * 32, cycle);

    // 100 base windows into a budget of 8: the interval must have doubled
    // until everything fit, and the frames still tile the whole run.
    EXPECT_GT(sampler.interval(), 4u);
    EXPECT_EQ(sampler.interval() % 4, 0u);
    const auto frames = sampler.frames();
    ASSERT_FALSE(frames.empty());
    EXPECT_LE(frames.size(), 8u);
    std::uint64_t instructions = 0, previous_end = 0;
    for (const auto &frame : frames) {
        EXPECT_EQ(frame.begin, previous_end);
        previous_end = frame.end;
        instructions += frame.instructions;
    }
    EXPECT_EQ(previous_end, cycles);
    EXPECT_EQ(instructions, cycles * 2);
}

ExperimentScale
testScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 4;
    return scale;
}

const std::vector<Arch> kAllArchs = {
    Arch::Aila, Arch::Drs, Arch::Dmk,
    Arch::Tbc};

class AttributionFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        prepared_ = new PreparedScene(prepareScene(
            scene::SceneId::Conference, testScale()));
    }

    static void TearDownTestSuite()
    {
        delete prepared_;
        prepared_ = nullptr;
    }

    static RunConfig makeConfig(int smx_threads)
    {
        RunConfig config;
        config.gpu.numSmx = testScale().numSmx;
        config.smxThreads = smx_threads;
        return config;
    }

    static RunConfig sampledConfig(int smx_threads,
                                            RunObservations *out)
    {
        RunConfig config = makeConfig(smx_threads);
        config.sample.enabled = true;
        config.sample.interval = 64;
        config.observationsOut = out;
        return config;
    }

    static std::span<const geom::Ray> bounceRays(int bounce)
    {
        return prepared_->trace.bounce(bounce).rays;
    }

    static PreparedScene *prepared_;
};

PreparedScene *AttributionFixture::prepared_ = nullptr;

TEST_F(AttributionFixture, ConservationHoldsOnEveryArch)
{
    // The second bounce diverges hard — the interesting case for slot
    // accounting. check = 1 additionally runs the ledger audit inside
    // every SMX's collectStats.
    for (const Arch arch : kAllArchs) {
        RunObservations observations;
        RunConfig config = sampledConfig(1, &observations);
        config.check = 1;
        const auto stats = runBatch(arch, *prepared_->tracer,
                                             bounceRays(2), config);
        ASSERT_NE(observations.attribution, nullptr)
            << archName(arch);

        const obs::IssueAttribution merged =
            observations.attribution->merged();
        EXPECT_NO_THROW(merged.verifyConservation())
            << archName(arch);
        EXPECT_GT(merged.cycles(), 0u);
        EXPECT_EQ(merged.totalSlots(),
                  merged.cycles() *
                      static_cast<std::uint64_t>(merged.slotsPerCycle()));

        // Issued slots are exactly the instructions the histogram saw.
        EXPECT_EQ(merged.bucketTotal(SlotBucket::IssuedFull) +
                      merged.bucketTotal(SlotBucket::IssuedPartial),
                  stats.histogram.instructions())
            << archName(arch);
    }
}

TEST_F(AttributionFixture, SamplingIsPureObserver)
{
    for (const Arch arch : kAllArchs) {
        const auto baseline = runBatch(
            arch, *prepared_->tracer, bounceRays(2), makeConfig(1));
        for (const int smx_threads : {1, 4}) {
            RunObservations observations;
            const auto sampled = runBatch(
                arch, *prepared_->tracer, bounceRays(2),
                sampledConfig(smx_threads, &observations));
            EXPECT_EQ(baseline, sampled)
                << archName(arch) << " smxThreads=" << smx_threads
                << ": sampling changed the simulation";
            EXPECT_NE(observations.sampler, nullptr);
        }
    }
}

TEST_F(AttributionFixture, TimelineIsThreadCountInvariant)
{
    for (const Arch arch :
         {Arch::Drs, Arch::Tbc}) {
        RunObservations sequential, threaded;
        runBatch(arch, *prepared_->tracer, bounceRays(2),
                          sampledConfig(1, &sequential));
        runBatch(arch, *prepared_->tracer, bounceRays(2),
                          sampledConfig(4, &threaded));
        ASSERT_NE(sequential.sampler, nullptr);
        ASSERT_NE(threaded.sampler, nullptr);

        const auto a = sequential.sampler->mergedFrames();
        const auto b = threaded.sampler->mergedFrames();
        ASSERT_EQ(a.size(), b.size()) << archName(arch);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].begin, b[i].begin);
            EXPECT_EQ(a[i].end, b[i].end);
            EXPECT_EQ(a[i].instructions, b[i].instructions);
            EXPECT_EQ(a[i].activeThreads, b[i].activeThreads);
            EXPECT_EQ(a[i].raysCompleted, b[i].raysCompleted);
            EXPECT_EQ(a[i].slots, b[i].slots) << archName(arch)
                                              << " frame " << i;
        }
    }
}

TEST_F(AttributionFixture, TimelineTilesTheRun)
{
    RunObservations observations;
    const auto stats =
        runBatch(Arch::Drs, *prepared_->tracer,
                          bounceRays(1), sampledConfig(1, &observations));
    ASSERT_NE(observations.sampler, nullptr);

    // The merged timeline accounts for every instruction and completed
    // ray of the whole GPU, with contiguous windows.
    std::uint64_t instructions = 0, rays = 0;
    const auto frames = observations.sampler->mergedFrames();
    ASSERT_FALSE(frames.empty());
    for (const auto &frame : frames) {
        EXPECT_LE(frame.begin, frame.end);
        instructions += frame.instructions;
        rays += frame.raysCompleted;
    }
    EXPECT_EQ(instructions, stats.histogram.instructions());
    EXPECT_EQ(rays, stats.raysTraced);
}

} // namespace
} // namespace drs::harness
