#!/usr/bin/env bash
# bench_compare.py regression check:
#
#  1. Comparing a report directory against itself must pass (exit 0) —
#     the comparator has no false positives on identical data.
#  2. Perturbing one metric past the tolerance (simd_efficiency -25%)
#     must be flagged as a regression (exit 1) — no false negatives.
#
# Usage: check_compare.sh <python3> <bench_compare.py> <fixtures-dir>
set -euo pipefail

if [ "$#" -ne 3 ]; then
    echo "usage: $0 <python3> <bench_compare.py> <fixtures-dir>" >&2
    exit 2
fi

python=$1
compare=$2
fixtures=$3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/base" "$tmp/cur"

# Only the (non-degraded, schema-current) profile fixture participates;
# the degraded and v2 fixtures exist to be rejected by other checks.
cp "$fixtures/BENCH_profile_fixture.json" "$tmp/base/"
cp "$fixtures/BENCH_profile_fixture.json" "$tmp/cur/"

"$python" "$compare" "$tmp/base" "$tmp/cur"
echo "ok   self-compare passes"

"$python" - "$tmp/cur/BENCH_profile_fixture.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as handle:
    document = json.load(handle)
row = document["results"][0]
row["simd_efficiency"] *= 0.75
row["cycles"] = int(row["cycles"] * 1.3)
with open(path, "w") as handle:
    json.dump(document, handle)
EOF

if "$python" "$compare" "$tmp/base" "$tmp/cur"; then
    echo "FAIL: perturbed report was not flagged as a regression" >&2
    exit 1
fi
echo "ok   perturbed report flagged as regression"
