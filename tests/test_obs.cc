/**
 * @file
 * Unit tests of the observability layer: the counter registry and its
 * order-independent snapshots, the JSON container (writer + strict
 * parser), the ring-buffered cycle tracer with its Chrome trace_event
 * output, bench-report schema validation, and strict parsing of the
 * DRS_TRACE / DRS_TRACE_CAPACITY environment variables (same
 * warn-and-ignore contract as ExperimentScale).
 */

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace drs::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(Counters, HandlesAreStableAndSnapshotsSorted)
{
    Counters counters;
    Counter &swaps = counters.get("drs.swaps");
    Counter &misses = counters.get("l2.miss");
    swaps.add();
    swaps.add(4);
    misses.add(2);
    // Re-registration returns the same counter.
    counters.get("drs.swaps").add();

    const CounterSnapshot snap = counters.snapshot();
    EXPECT_EQ(snap.value("drs.swaps"), 6u);
    EXPECT_EQ(snap.value("l2.miss"), 2u);
    EXPECT_EQ(snap.value("absent"), 0u);
    EXPECT_TRUE(snap.contains("drs.swaps"));
    EXPECT_FALSE(snap.contains("absent"));

    // Sorted by name regardless of registration order.
    ASSERT_EQ(snap.entries().size(), 2u);
    EXPECT_EQ(snap.entries()[0].first, "drs.swaps");
    EXPECT_EQ(snap.entries()[1].first, "l2.miss");
}

TEST(Counters, ZeroRegisteredCountersAppearInSnapshot)
{
    Counters counters;
    counters.get("smx.swap.completed");
    const CounterSnapshot snap = counters.snapshot();
    EXPECT_TRUE(snap.contains("smx.swap.completed"));
    EXPECT_EQ(snap.value("smx.swap.completed"), 0u);
}

TEST(CounterSnapshot, MergeSumsByName)
{
    CounterSnapshot a;
    a.add("x", 1);
    a.add("y", 2);
    CounterSnapshot b;
    b.add("y", 3);
    b.add("z", 4);
    a.merge(b);
    EXPECT_EQ(a.value("x"), 1u);
    EXPECT_EQ(a.value("y"), 5u);
    EXPECT_EQ(a.value("z"), 4u);

    // add() on an existing name also sums.
    a.add("x", 9);
    EXPECT_EQ(a.value("x"), 10u);
}

TEST(CounterSnapshot, EqualityIsExact)
{
    CounterSnapshot a, b;
    a.add("n", 1);
    b.add("n", 1);
    EXPECT_EQ(a, b);
    b.add("n", 1);
    EXPECT_NE(a, b);
}

// -------------------------------------------------------------------- json

TEST(Json, RoundTripsThroughDumpAndParse)
{
    Json doc = Json::object();
    doc["name"] = "bench \"quoted\"\n";
    doc["count"] = 42;
    doc["rate"] = 0.25;
    doc["flag"] = true;
    doc["nothing"] = Json();
    doc["list"].push(1);
    doc["list"].push("two");
    doc["nested"]["deep"] = -7;

    for (const int indent : {0, 2}) {
        const auto parsed = Json::parse(doc.dump(indent));
        ASSERT_TRUE(parsed.has_value()) << "indent " << indent;
        EXPECT_EQ(*parsed, doc) << "indent " << indent;
    }
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json doc = Json::object();
    doc["zebra"] = 1;
    doc["alpha"] = 2;
    const std::string text = doc.dump();
    EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(Json, StrictParseRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "12 34", "{\"a\":1} trailing",
          "'single'", "{a:1}", "nul", "+5"}) {
        std::string error;
        EXPECT_FALSE(Json::parse(bad, &error).has_value())
            << "accepted: \"" << bad << '"';
        EXPECT_FALSE(error.empty()) << "no reason for: \"" << bad << '"';
    }
}

TEST(Json, FindReturnsNullWhenAbsent)
{
    Json doc = Json::object();
    doc["present"] = 1;
    EXPECT_NE(doc.find("present"), nullptr);
    EXPECT_EQ(doc.find("absent"), nullptr);
    EXPECT_EQ(Json(3).find("anything"), nullptr);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.record(TraceEventKind::Block, 0, 0, 10);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, RingKeepsNewestEventsAndCountsDrops)
{
    Tracer tracer;
    tracer.enable(4);
    for (int i = 0; i < 10; ++i)
        tracer.record(TraceEventKind::Block, i,
                      static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(i + 1), i);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest retained first: events 6..9.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].warp, static_cast<std::int32_t>(6 + i));
}

TEST(TraceCollector, WritesParseableChromeTrace)
{
    TraceCollector collector(2, 16);
    collector.smx(0).setBlockNames({"b1_outer", "b2_inner"});
    collector.smx(0).record(TraceEventKind::Block, 3, 10, 20, 1);
    collector.smx(0).record(TraceEventKind::RdctrlStall, 3, 20, 25);
    collector.smx(1).record(TraceEventKind::RaySwap, -1, 5, 36);
    EXPECT_EQ(collector.eventCount(), 3u);

    std::ostringstream out;
    collector.writeChromeTrace(out);
    std::string error;
    const auto doc = Json::parse(out.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    const Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // 3 duration events + process metadata records.
    std::size_t complete = 0;
    bool saw_block_name = false;
    for (const Json &event : events->asArray()) {
        const Json *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "X") {
            ++complete;
            EXPECT_NE(event.find("pid"), nullptr);
            EXPECT_NE(event.find("tid"), nullptr);
            EXPECT_NE(event.find("ts"), nullptr);
            EXPECT_NE(event.find("dur"), nullptr);
            if (const Json *name = event.find("name");
                name && name->asString() == "b2_inner")
                saw_block_name = true;
        }
    }
    EXPECT_EQ(complete, 3u);
    EXPECT_TRUE(saw_block_name)
        << "Block events must be labelled with kernel block names";
}

// ----------------------------------------------------- environment parsing

class TraceEnvironment : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        unsetenv("DRS_TRACE");
        unsetenv("DRS_TRACE_CAPACITY");
    }
    void TearDown() override
    {
        unsetenv("DRS_TRACE");
        unsetenv("DRS_TRACE_CAPACITY");
    }
};

TEST_F(TraceEnvironment, DisabledByDefault)
{
    const auto config = TraceConfig::fromEnvironment();
    EXPECT_FALSE(config.enabled);
    EXPECT_EQ(config.capacity, 65536u);
}

TEST_F(TraceEnvironment, EnabledWithPathAndCapacity)
{
    setenv("DRS_TRACE", "/tmp/trace.json", 1);
    setenv("DRS_TRACE_CAPACITY", "1024", 1);
    const auto config = TraceConfig::fromEnvironment();
    EXPECT_TRUE(config.enabled);
    EXPECT_EQ(config.path, "/tmp/trace.json");
    EXPECT_EQ(config.capacity, 1024u);
}

TEST_F(TraceEnvironment, EmptyPathIsRejected)
{
    // DRS_TRACE= left over in a script must not "trace to nowhere".
    setenv("DRS_TRACE", "", 1);
    EXPECT_FALSE(TraceConfig::fromEnvironment().enabled);
}

TEST_F(TraceEnvironment, MalformedCapacityIsRejected)
{
    setenv("DRS_TRACE", "/tmp/trace.json", 1);
    const TraceConfig defaults;
    for (const char *bad : {"lots", "12oo", "-5", "0", "", "nan"}) {
        setenv("DRS_TRACE_CAPACITY", bad, 1);
        const auto config = TraceConfig::fromEnvironment();
        EXPECT_TRUE(config.enabled) << "DRS_TRACE_CAPACITY=\"" << bad << '"';
        EXPECT_EQ(config.capacity, defaults.capacity)
            << "DRS_TRACE_CAPACITY=\"" << bad << '"';
    }
    // Trailing whitespace is harmless (same contract as DRS_SMX).
    setenv("DRS_TRACE_CAPACITY", "512 ", 1);
    EXPECT_EQ(TraceConfig::fromEnvironment().capacity, 512u);
}

// ------------------------------------------------------------ bench report

Json
validReport()
{
    BenchReport report("unit_test");
    report.scale()["rays_per_bounce"] = 4096;
    report.options()["jobs"] = 2;
    report.setWallSeconds(1.5);
    Json &row = report.addResult();
    row["scene"] = "conference";
    row["arch"] = "drs";
    row["simd_efficiency"] = 0.8;
    row["cycles"] = 1000;
    row["counters"] = Json::object();
    row["counters"]["drs.swaps"] = 12;
    report.summary()["drs_geomean_speedup"] = 1.9;
    return report.document();
}

TEST(BenchReport, ValidDocumentPasses)
{
    EXPECT_EQ(validateBenchReport(validReport()), "");
}

TEST(BenchReport, ValidatorCatchesSchemaViolations)
{
    {
        Json doc = validReport();
        doc["bench"] = "";
        EXPECT_NE(validateBenchReport(doc), "");
    }
    {
        Json doc = validReport();
        doc["schema_version"] = kBenchSchemaVersion + 1;
        EXPECT_NE(validateBenchReport(doc), "");
    }
    {
        Json doc = validReport();
        doc["wall_seconds"] = -1.0;
        EXPECT_NE(validateBenchReport(doc), "");
    }
    {
        Json doc = validReport();
        doc["results"].push(Json::object())["simd_efficiency"] = 1.5;
        EXPECT_NE(validateBenchReport(doc), "");
    }
    {
        Json doc = validReport();
        doc["results"].push(Json::object())["scene"] = 7;
        EXPECT_NE(validateBenchReport(doc), "");
    }
    {
        Json doc = validReport();
        Json &row = doc["results"].push(Json::object());
        row["counters"]["drs.swaps"] = -3;
        EXPECT_NE(validateBenchReport(doc), "");
    }
}

} // namespace
} // namespace drs::obs
