/**
 * @file
 * Tests for the extension features: any-hit (shadow ray) traversal mode
 * on both kernels, the generic divergent-workload kernel (the paper's
 * Section 4.6 future work), and the mesh-builder primitives behind the
 * procedural scenes.
 */

#include <gtest/gtest.h>

#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "core/drs_control.h"
#include "geom/rng.h"
#include "kernels/aila_kernel.h"
#include "kernels/drs_kernel.h"
#include "kernels/generic_kernel.h"
#include "scene/mesh.h"
#include "scene/scenes.h"
#include "simt/smx.h"

namespace drs {
namespace {

using geom::Ray;
using geom::Vec3;

// ------------------------------------------------------------- Any-hit

struct AnyHitSetup
{
    scene::Scene scene = scene::makeTestScene();
    bvh::Bvh bvh;
    std::vector<Ray> rays;

    AnyHitSetup()
    {
        bvh = bvh::build(scene.triangles());
        geom::Pcg32 rng(61);
        for (int i = 0; i < 400; ++i) {
            Ray ray;
            ray.origin = {rng.nextFloat(1, 9), rng.nextFloat(0.5f, 5.5f),
                          rng.nextFloat(1, 9)};
            ray.direction = geom::normalize(
                Vec3{rng.nextFloat(-1, 1), rng.nextFloat(-1, 1),
                     rng.nextFloat(-1, 1)});
            if (geom::lengthSquared(ray.direction) > 0)
                rays.push_back(ray);
        }
    }
};

TEST(AnyHit, WorkspaceTerminatesOnFirstHit)
{
    AnyHitSetup setup;
    kernels::TravWorkspace ws(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, 1, 32, /*any_hit=*/true);
    EXPECT_TRUE(ws.anyHitMode());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        ASSERT_TRUE(ws.fetchStep(0, 0));
        int guard = 0;
        while (ws.state(0, 0) != simt::TravState::Fetch &&
               guard++ < 100000) {
            if (ws.state(0, 0) == simt::TravState::Inner)
                ws.innerStep(0, 0);
            else
                ws.leafStep(0, 0);
        }
        ASSERT_LT(guard, 100000);
        // Occlusion answer must agree with the reference any-hit query.
        const bool expected =
            bvh::intersectAny(setup.bvh, setup.scene.triangles(),
                              setup.rays[i]);
        EXPECT_EQ(ws.results()[i].valid(), expected) << "ray " << i;
    }
}

TEST(AnyHit, AilaKernelOcclusionAgreesWithReference)
{
    AnyHitSetup setup;
    kernels::AilaConfig config;
    config.numWarps = 4;
    config.anyHit = true;
    kernels::AilaKernel kernel(setup.bvh, setup.scene.triangles(),
                               setup.rays, 0, config);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, nullptr, config.numWarps, shared);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const bool expected =
            bvh::intersectAny(setup.bvh, setup.scene.triangles(),
                              setup.rays[i]);
        EXPECT_EQ(kernel.travWorkspace().results()[i].valid(), expected)
            << "ray " << i;
    }
}

TEST(AnyHit, DrsKernelOcclusionAgreesWithReference)
{
    AnyHitSetup setup;
    kernels::DrsKernelConfig config;
    config.numWarps = 4;
    config.anyHit = true;
    kernels::DrsKernel kernel(setup.bvh, setup.scene.triangles(),
                              setup.rays, 0, config);
    core::DrsConfig drs;
    core::DrsControl control(drs, kernel.workspace(), config.numWarps);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, &control, config.numWarps, shared);
    control.attach(smx);
    smx.run(100'000'000);
    ASSERT_TRUE(smx.done());
    for (std::size_t i = 0; i < setup.rays.size(); ++i) {
        const bool expected =
            bvh::intersectAny(setup.bvh, setup.scene.triangles(),
                              setup.rays[i]);
        EXPECT_EQ(kernel.travWorkspace().results()[i].valid(), expected)
            << "ray " << i;
    }
}

TEST(AnyHit, FasterThanClosestHit)
{
    // Shadow rays skip the remaining traversal after the first hit, so
    // the same batch must finish in fewer cycles.
    AnyHitSetup setup;
    auto run = [&](bool any_hit) {
        kernels::AilaConfig config;
        config.numWarps = 4;
        config.anyHit = any_hit;
        kernels::AilaKernel kernel(setup.bvh, setup.scene.triangles(),
                                   setup.rays, 0, config);
        simt::GpuConfig gpu;
        simt::SharedMemorySide shared(gpu.memory);
        simt::Smx smx(gpu, kernel, nullptr, config.numWarps, shared);
        smx.run(100'000'000);
        return smx.cycle();
    };
    EXPECT_LT(run(true), run(false));
}

// ----------------------------------------------- Generic workload (4.6)

TEST(GenericKernel, WhileWhileCompletesAllTasks)
{
    kernels::GenericWorkloadConfig workload;
    workload.taskCount = 2048;
    kernels::GenericKernel kernel(workload,
                                  kernels::GenericFlavour::WhileWhile, 8);
    simt::GpuConfig gpu;
    simt::SharedMemorySide shared(gpu.memory);
    simt::Smx smx(gpu, kernel, nullptr, 8, shared);
    smx.run(500'000'000);
    ASSERT_TRUE(smx.done());
    EXPECT_EQ(kernel.raysCompleted(), workload.taskCount);
}

TEST(GenericKernel, DrsShuffledCompletesAllTasksWithSameWork)
{
    kernels::GenericWorkloadConfig workload;
    workload.taskCount = 2048;

    kernels::GenericKernel baseline(
        workload, kernels::GenericFlavour::WhileWhile, 8);
    {
        simt::GpuConfig gpu;
        simt::SharedMemorySide shared(gpu.memory);
        simt::Smx smx(gpu, baseline, nullptr, 8, shared);
        smx.run(500'000'000);
        ASSERT_TRUE(smx.done());
    }

    core::DrsConfig drs;
    kernels::GenericKernel shuffled(workload,
                                    kernels::GenericFlavour::WhileIf,
                                    8 + drs.backupRows + 2);
    {
        simt::GpuConfig gpu;
        simt::SharedMemorySide shared(gpu.memory);
        core::DrsControl control(drs, shuffled.workspace(), 8);
        simt::Smx smx(gpu, shuffled, &control, 8, shared);
        control.attach(smx);
        smx.run(500'000'000);
        ASSERT_TRUE(smx.done());
    }

    EXPECT_EQ(shuffled.raysCompleted(), workload.taskCount);
    // The shuffle changes scheduling, never the work itself.
    EXPECT_EQ(shuffled.genericWorkspace().totalIterations(),
              baseline.genericWorkspace().totalIterations());
}

TEST(GenericKernel, DrsImprovesEfficiencyOnDivergentTrips)
{
    kernels::GenericWorkloadConfig workload;
    workload.taskCount = 8192;
    workload.phaseAMin = 2;
    workload.phaseAMax = 80; // heavy trip-count divergence

    auto efficiency = [&](kernels::GenericFlavour flavour) {
        core::DrsConfig drs;
        const int warps = 16;
        const int rows = flavour == kernels::GenericFlavour::WhileIf
                             ? warps + drs.backupRows + 2
                             : warps;
        kernels::GenericKernel kernel(workload, flavour, rows);
        simt::GpuConfig gpu;
        simt::SharedMemorySide shared(gpu.memory);
        std::unique_ptr<core::DrsControl> control;
        if (flavour == kernels::GenericFlavour::WhileIf)
            control = std::make_unique<core::DrsControl>(
                drs, kernel.workspace(), warps);
        simt::Smx smx(gpu, kernel, control.get(), warps, shared);
        if (control)
            control->attach(smx);
        smx.run(1'000'000'000);
        EXPECT_TRUE(smx.done());
        return smx.collectStats().histogram.simdEfficiency();
    };

    const double plain = efficiency(kernels::GenericFlavour::WhileWhile);
    const double drs = efficiency(kernels::GenericFlavour::WhileIf);
    EXPECT_GT(drs, plain + 0.10); // the paper's claim, generalized
}

// -------------------------------------------------------- Mesh builders

TEST(MeshBuilder, BoxHasTwelveTriangles)
{
    scene::MeshBuilder mb;
    mb.addBox({0, 0, 0}, {1, 1, 1}, 0);
    EXPECT_EQ(mb.size(), 12u);
    geom::Aabb bounds;
    for (const auto &t : mb.triangles())
        bounds.extend(t.bounds());
    EXPECT_EQ(bounds.lo, Vec3(0, 0, 0));
    EXPECT_EQ(bounds.hi, Vec3(1, 1, 1));
}

TEST(MeshBuilder, QuadSplitsIntoTwo)
{
    scene::MeshBuilder mb;
    mb.addQuad({0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, 2);
    ASSERT_EQ(mb.size(), 2u);
    EXPECT_EQ(mb.triangles()[0].material, 2);
    float area = 0;
    for (const auto &t : mb.triangles())
        area += t.area();
    EXPECT_FLOAT_EQ(area, 1.0f);
}

TEST(MeshBuilder, CylinderTriangleCount)
{
    scene::MeshBuilder mb;
    mb.addCylinder({0, 0, 0}, 1.0f, 2.0f, 8, 0, /*capped=*/true);
    // 8 side quads (2 tris each) + 8 bottom + 8 top caps.
    EXPECT_EQ(mb.size(), 8u * 2 + 8 + 8);
    scene::MeshBuilder open_mb;
    open_mb.addCylinder({0, 0, 0}, 1.0f, 2.0f, 8, 0, /*capped=*/false);
    EXPECT_EQ(open_mb.size(), 16u);
}

TEST(MeshBuilder, SphereVerticesOnSphere)
{
    scene::MeshBuilder mb;
    const Vec3 center{1, 2, 3};
    mb.addSphere(center, 2.0f, 8, 12, 0);
    EXPECT_GT(mb.size(), 50u);
    for (const auto &t : mb.triangles()) {
        for (const Vec3 &v : {t.v0, t.v1, t.v2})
            EXPECT_NEAR(geom::length(v - center), 2.0f, 1e-4f);
    }
}

TEST(MeshBuilder, SphereflakeGrowsWithDepth)
{
    scene::MeshBuilder d0, d1, d2;
    d0.addSphereflake({0, 0, 0}, 1.0f, 0, 6, 8, 12, 0);
    d1.addSphereflake({0, 0, 0}, 1.0f, 1, 6, 8, 12, 0);
    d2.addSphereflake({0, 0, 0}, 1.0f, 2, 6, 8, 12, 0);
    EXPECT_GT(d1.size(), d0.size() * 2);
    EXPECT_GT(d2.size(), d1.size());
}

TEST(MeshBuilder, PlantIsBoundedAndNonEmpty)
{
    scene::MeshBuilder mb;
    geom::Pcg32 rng(3);
    mb.addPlant({5, 0, 5}, 2.0f, 10, 0, 1, rng);
    EXPECT_GT(mb.size(), 20u);
    geom::Aabb bounds;
    for (const auto &t : mb.triangles())
        bounds.extend(t.bounds());
    // The plant stays near its base and below ~2.5x its height.
    EXPECT_GT(bounds.lo.y, -0.01f);
    EXPECT_LT(bounds.hi.y, 5.0f);
    EXPECT_LT(geom::length(bounds.center() - Vec3(5, 1, 5)), 3.0f);
}

} // namespace
} // namespace drs
