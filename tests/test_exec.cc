/**
 * @file
 * Tests of the host-side execution library: work-stealing thread pool,
 * fork/join task groups and DRS_JOBS-driven default concurrency.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cancel.h"
#include "exec/thread_pool.h"

namespace drs::exec {
namespace {

TEST(DefaultConcurrency, ReadsDrsJobs)
{
    setenv("DRS_JOBS", "7", 1);
    EXPECT_EQ(defaultConcurrency(), 7);
    unsetenv("DRS_JOBS");
}

TEST(DefaultConcurrency, IgnoresMalformedDrsJobs)
{
    const int fallback = [] {
        unsetenv("DRS_JOBS");
        return defaultConcurrency();
    }();
    EXPECT_GE(fallback, 1);

    for (const char *bad : {"banana", "-3", "0", "4x", ""}) {
        setenv("DRS_JOBS", bad, 1);
        EXPECT_EQ(defaultConcurrency(), fallback) << "DRS_JOBS=" << bad;
    }
    unsetenv("DRS_JOBS");
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 1000; ++i)
        group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 1000);
    EXPECT_EQ(pool.tasksExecuted(), 1000u);
}

TEST(ThreadPool, SingleThreadStillRuns)
{
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i)
        group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ClampsNonPositiveThreadCount)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
}

TEST(ThreadPool, WorkStealingBalancesUnevenTasks)
{
    // Round-robin submission puts the slow tasks on a few queues; the
    // other workers must steal to finish them all promptly.
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i)
        group.run([&counter, i] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ++counter;
        });
    group.wait();
    EXPECT_EQ(counter.load(), 64);
    // Stealing is timing-dependent in principle, but with 3 of 4 queues
    // drained quickly it is effectively certain here.
    EXPECT_GT(pool.tasksStolen(), 0u);
}

TEST(ThreadPool, TasksRunOnMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    TaskGroup group(pool);
    for (int i = 0; i < 200; ++i)
        group.run([&] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            std::lock_guard<std::mutex> lock(mutex);
            ids.insert(std::this_thread::get_id());
        });
    group.wait();
    EXPECT_GT(ids.size(), 1u);
}

TEST(TaskGroup, PropagatesFirstException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    for (int i = 0; i < 20; ++i)
        group.run([&completed, i] {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            ++completed;
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The first error cancels the group: every sibling either ran before
    // the failure was recorded or was skipped — none is lost.
    EXPECT_EQ(completed.load() + static_cast<int>(group.skipped()), 19);
}

TEST(TaskGroup, ThrowingTaskUnderContentionIsSafe)
{
    // Regression: a task throwing while many siblings are in flight must
    // neither terminate() (raw exception crossing a worker thread) nor
    // deadlock the join, and exactly the first error must surface.
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        TaskGroup group(pool);
        std::atomic<int> completed{0};
        for (int i = 0; i < 200; ++i)
            group.run([&completed, i] {
                if (i % 17 == 3)
                    throw std::runtime_error("intentional failure");
                ++completed;
            });
        EXPECT_THROW(group.wait(), std::runtime_error);
        EXPECT_LE(completed.load() + static_cast<int>(group.skipped()), 200);
        // A waited group is clean again: no stale error resurfaces.
        group.run([] {});
        EXPECT_NO_THROW(group.wait());
    }
}

TEST(TaskGroup, CancelSkipsQueuedTasks)
{
    ThreadPool pool(1);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    // Occupy the only worker so the rest of the batch stays queued; wait
    // until it is actually running, or cancel() could skip it too.
    group.run([&started, &release] {
        started.store(true);
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    while (!started.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (int i = 0; i < 32; ++i)
        group.run([&completed] { ++completed; });
    group.cancel();
    EXPECT_TRUE(group.cancelled());
    release.store(true);
    group.wait(); // cancel() alone records no error
    EXPECT_FALSE(group.cancelled()); // wait() re-arms the group
    EXPECT_EQ(completed.load(), 0);
    EXPECT_EQ(group.skipped(), 32u);
}

TEST(TaskGroup, DeadlineSkipsLateTasks)
{
    ThreadPool pool(1);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    std::atomic<bool> release{false};
    group.run([&release] {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    // Already-expired deadline: tasks are skipped when dequeued and the
    // group reports DeadlineExceeded at the join.
    const auto past =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(10);
    for (int i = 0; i < 8; ++i)
        group.runWithDeadline([&completed] { ++completed; }, past);
    release.store(true);
    EXPECT_THROW(group.wait(), DeadlineExceeded);
    EXPECT_EQ(completed.load(), 0);
    EXPECT_EQ(group.skipped(), 8u);
}

TEST(TaskGroup, FutureDeadlineDoesNotSkip)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    const auto future =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    for (int i = 0; i < 16; ++i)
        group.runWithDeadline([&completed] { ++completed; }, future);
    group.wait();
    EXPECT_EQ(completed.load(), 16);
    EXPECT_EQ(group.skipped(), 0u);
}

TEST(CancelToken, PollThrowsAfterCancel)
{
    CancelToken token;
    EXPECT_NO_THROW(token.poll());
    token.requestCancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.poll(), Cancelled);
}

TEST(CancelToken, DeadlineExpires)
{
    CancelToken token;
    EXPECT_FALSE(token.hasDeadline());
    token.setTimeout(0.0); // ignored
    EXPECT_FALSE(token.hasDeadline());
    token.setDeadline(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
    EXPECT_TRUE(token.hasDeadline());
    EXPECT_TRUE(token.deadlineExpired());
    EXPECT_THROW(token.poll(), DeadlineExceeded);
}

TEST(TaskGroup, ReusableAfterWait)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> counter{0};
    group.run([&counter] { ++counter; });
    group.wait();
    group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 2);
}

} // namespace
} // namespace drs::exec
