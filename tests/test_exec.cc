/**
 * @file
 * Tests of the host-side execution library: work-stealing thread pool,
 * fork/join task groups and DRS_JOBS-driven default concurrency.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"

namespace drs::exec {
namespace {

TEST(DefaultConcurrency, ReadsDrsJobs)
{
    setenv("DRS_JOBS", "7", 1);
    EXPECT_EQ(defaultConcurrency(), 7);
    unsetenv("DRS_JOBS");
}

TEST(DefaultConcurrency, IgnoresMalformedDrsJobs)
{
    const int fallback = [] {
        unsetenv("DRS_JOBS");
        return defaultConcurrency();
    }();
    EXPECT_GE(fallback, 1);

    for (const char *bad : {"banana", "-3", "0", "4x", ""}) {
        setenv("DRS_JOBS", bad, 1);
        EXPECT_EQ(defaultConcurrency(), fallback) << "DRS_JOBS=" << bad;
    }
    unsetenv("DRS_JOBS");
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 1000; ++i)
        group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 1000);
    EXPECT_EQ(pool.tasksExecuted(), 1000u);
}

TEST(ThreadPool, SingleThreadStillRuns)
{
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i)
        group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ClampsNonPositiveThreadCount)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
}

TEST(ThreadPool, WorkStealingBalancesUnevenTasks)
{
    // Round-robin submission puts the slow tasks on a few queues; the
    // other workers must steal to finish them all promptly.
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i)
        group.run([&counter, i] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ++counter;
        });
    group.wait();
    EXPECT_EQ(counter.load(), 64);
    // Stealing is timing-dependent in principle, but with 3 of 4 queues
    // drained quickly it is effectively certain here.
    EXPECT_GT(pool.tasksStolen(), 0u);
}

TEST(ThreadPool, TasksRunOnMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    TaskGroup group(pool);
    for (int i = 0; i < 200; ++i)
        group.run([&] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            std::lock_guard<std::mutex> lock(mutex);
            ids.insert(std::this_thread::get_id());
        });
    group.wait();
    EXPECT_GT(ids.size(), 1u);
}

TEST(TaskGroup, PropagatesFirstException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    for (int i = 0; i < 20; ++i)
        group.run([&completed, i] {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            ++completed;
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The remaining tasks still ran (the group fails at the join, it
    // does not cancel).
    EXPECT_EQ(completed.load(), 19);
}

TEST(TaskGroup, ReusableAfterWait)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> counter{0};
    group.run([&counter] { ++counter; });
    group.wait();
    group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 2);
}

} // namespace
} // namespace drs::exec
