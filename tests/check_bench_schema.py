#!/usr/bin/env python3
"""Validate BENCH_<name>.json reports against schema version 4.

Mirrors drs::obs::validateBenchReport (src/obs/report.cc) so reports can
be checked without building the simulator, e.g. in CI after
`./run_benches.sh --json`:

    python3 tests/check_bench_schema.py bench_reports/BENCH_*.json

Google-benchmark output (BENCH_micro.json) uses its own schema and is
recognised by its "benchmarks" key; only its JSON well-formedness is
checked.

With --expect-fail the exit status inverts: every listed report must
FAIL validation (used to pin that old schema versions are rejected with
a clear error instead of silently accepted).
"""

import json
import math
import sys

SCHEMA_VERSION = 4

STRING_FIELDS = ("scene", "arch", "bounce", "config", "error")
BOOL_FIELDS = ("failed", "from_journal")
UNIT_FIELDS = (
    "simd_efficiency",
    "l1d_hit_rate",
    "l1t_hit_rate",
    "l2_hit_rate",
    "rdctrl_stall_rate",
    "spawn_fraction",
    "shuffle_rf_fraction",
)
NON_NEGATIVE_FIELDS = (
    "cycles",
    "rays_traced",
    "mrays_per_s",
    "speedup_vs_aila",
    "wall_seconds",
    "ray_swaps",
    "mean_swap_cycles",
    "attempts",
    "fault_seed",
)


def is_number(value):
    # NaN/Infinity survive json.load (Python accepts them) but mean a
    # degraded or buggy bench leaked an unguarded ratio — reject them
    # everywhere a number is expected.
    return (isinstance(value, (int, float)) and
            not isinstance(value, bool) and math.isfinite(value))


def find_non_finite(value, where):
    """First path under `where` holding a NaN/Infinity number, or ""."""
    if isinstance(value, float) and not math.isfinite(value):
        return where
    if isinstance(value, dict):
        for key, item in value.items():
            found = find_non_finite(item, f"{where}.{key}")
            if found:
                return found
    if isinstance(value, list):
        for index, item in enumerate(value):
            found = find_non_finite(item, f"{where}[{index}]")
            if found:
                return found
    return ""


def validate_attribution(section, where):
    if not isinstance(section, dict):
        return f"{where} must be an object"
    for field in ("slots_per_cycle", "cycles", "total_slots"):
        value = section.get(field)
        if not is_number(value) or value < 0:
            return f"{where}.{field} must be a non-negative number"
    buckets = section.get("buckets")
    if not isinstance(buckets, dict):
        return f"{where}.buckets must be an object"
    for name, bucket in buckets.items():
        if not isinstance(bucket, dict):
            return f"{where}.buckets.{name} must be an object"
        for phase, value in bucket.items():
            if not is_number(value) or value < 0:
                return (f"{where}.buckets.{name}.{phase} must be a "
                        "non-negative number")
    # The conservation invariant survives serialization too.
    total = sum(b.get("total", 0) for b in buckets.values())
    if total != section["total_slots"]:
        return (f"{where}: bucket totals sum to {total}, not total_slots "
                f"{section['total_slots']}")
    if section["total_slots"] != (section["slots_per_cycle"] *
                                  section["cycles"]):
        return (f"{where}: total_slots != slots_per_cycle x cycles "
                "(conservation violated)")
    blocks = section.get("blocks")
    if blocks is not None:
        if not isinstance(blocks, list):
            return f"{where}.blocks must be an array"
        for block in blocks:
            if not isinstance(block, dict) or \
                    not isinstance(block.get("name"), str):
                return f'{where}.blocks entries need a "name" string'
            for field in ("issues", "active_threads"):
                if field in block and (not is_number(block[field]) or
                                       block[field] < 0):
                    return (f"{where}.blocks.{field} must be a "
                            "non-negative number")
    return ""


FLEET_COUNTERS = (
    "workers",
    "spawned",
    "respawned",
    "worker_deaths",
    "heartbeat_kills",
    "redispatched",
    "quarantined",
    "degraded_jobs",
)


TELEMETRY_FIELDS = (
    "frames",
    "jobs_reported",
    "cycles",
    "rays_traced",
    "job_seconds",
    "user_cpu_seconds",
    "sys_cpu_seconds",
    "peak_rss_kb",
    "max_heartbeat_lag_us",
)


def validate_fleet(section, where):
    """summary.fleet: supervision counters of a multi-process sweep."""
    if not isinstance(section, dict):
        return f"{where} must be an object"
    for field in FLEET_COUNTERS:
        value = section.get(field)
        if not is_number(value) or value < 0:
            return f"{where}.{field} must be a non-negative number"
    if section["respawned"] > section["spawned"]:
        return (f"{where}: respawned ({section['respawned']}) exceeds "
                f"spawned ({section['spawned']})")
    if not isinstance(section.get("cancelled"), bool):
        return f'{where}.cancelled must be a boolean'
    # Schema v4: worker telemetry digests aggregated by the coordinator.
    telemetry = section.get("telemetry")
    if not isinstance(telemetry, dict):
        return f"{where}.telemetry must be an object"
    for field in TELEMETRY_FIELDS:
        value = telemetry.get(field)
        if not is_number(value) or value < 0:
            return (f"{where}.telemetry.{field} must be a "
                    "non-negative number")
    if telemetry["jobs_reported"] > telemetry["frames"]:
        return (f"{where}.telemetry: jobs_reported "
                f"({telemetry['jobs_reported']}) exceeds frames "
                f"({telemetry['frames']})")
    return ""


def validate_trace(section, where):
    """Per-row trace ring counters (schema v4, DRS_TRACE runs only)."""
    if not isinstance(section, dict):
        return f"{where} must be an object"
    for field in ("recorded", "ring_dropped"):
        value = section.get(field)
        if not is_number(value) or value < 0:
            return f"{where}.{field} must be a non-negative number"
    return ""


def validate_timeline(section, where):
    if not isinstance(section, dict):
        return f"{where} must be an object"
    for field in ("interval", "base_interval"):
        value = section.get(field)
        if not is_number(value) or value < 0:
            return f"{where}.{field} must be a non-negative number"
    frames = section.get("frames")
    if not isinstance(frames, list):
        return f"{where}.frames must be an array"
    last_begin = -1
    for index, frame in enumerate(frames):
        at = f"{where}.frames[{index}]"
        if not isinstance(frame, dict):
            return f"{at} must be an object"
        for field in ("begin", "end", "instructions", "active_threads",
                      "rays_completed"):
            value = frame.get(field)
            if not is_number(value) or value < 0:
                return f"{at}.{field} must be a non-negative number"
        if frame["begin"] > frame["end"]:
            return f"{at} has begin > end"
        if frame["begin"] <= last_begin:
            return f"{at} windows must be strictly ordered by begin"
        last_begin = frame["begin"]
        efficiency = frame.get("simd_efficiency")
        if not is_number(efficiency) or not 0.0 <= efficiency <= 1.0:
            return f"{at}.simd_efficiency must be a number in [0, 1]"
        slots = frame.get("slots")
        if not isinstance(slots, dict):
            return f"{at}.slots must be an object"
        for name, value in slots.items():
            if not is_number(value) or value < 0:
                return f"{at}.slots.{name} must be a non-negative number"
    return ""


def validate_row(row, index):
    where = f"results[{index}]"
    if not isinstance(row, dict):
        return f"{where} is not an object"
    for field in STRING_FIELDS:
        if field in row and not isinstance(row[field], str):
            return f"{where}.{field} must be a string"
    for field in BOOL_FIELDS:
        if field in row and not isinstance(row[field], bool):
            return f"{where}.{field} must be a boolean"
    for field in UNIT_FIELDS:
        if field in row:
            value = row[field]
            if not is_number(value) or not 0.0 <= value <= 1.0:
                return f"{where}.{field} must be a number in [0, 1]"
    for field in NON_NEGATIVE_FIELDS:
        if field in row:
            value = row[field]
            if not is_number(value) or value < 0.0:
                return f"{where}.{field} must be a non-negative number"
    counters = row.get("counters")
    if counters is not None:
        if not isinstance(counters, dict):
            return f"{where}.counters must be an object"
        for name, value in counters.items():
            if not is_number(value) or value < 0.0:
                return f"{where}.counters.{name} must be non-negative"
    if "attribution" in row:
        reason = validate_attribution(row["attribution"],
                                      f"{where}.attribution")
        if reason:
            return reason
    if "timeline" in row:
        reason = validate_timeline(row["timeline"], f"{where}.timeline")
        if reason:
            return reason
    if "trace" in row:
        reason = validate_trace(row["trace"], f"{where}.trace")
        if reason:
            return reason
    return ""


def validate_report(document):
    if not isinstance(document, dict):
        return "document is not an object"
    if "benchmarks" in document:
        return ""  # Google benchmark schema; well-formed JSON suffices.
    bench = document.get("bench")
    if not isinstance(bench, str) or not bench:
        return 'missing or empty "bench" string'
    version = document.get("schema_version")
    if not is_number(version):
        return 'missing "schema_version"'
    if version != SCHEMA_VERSION:
        return (f"unsupported schema_version {version} "
                f"(this checker reads version {SCHEMA_VERSION})")
    if not isinstance(document.get("degraded"), bool):
        return 'missing "degraded" boolean'
    for field in ("scale", "options", "summary"):
        if not isinstance(document.get(field), dict):
            return f'missing "{field}" object'
    non_finite = find_non_finite(document.get("summary"), "summary")
    if non_finite:
        return f"{non_finite} is not a finite number"
    if "fleet" in document["summary"]:
        reason = validate_fleet(document["summary"]["fleet"],
                                "summary.fleet")
        if reason:
            return reason
    wall = document.get("wall_seconds")
    if not is_number(wall) or wall < 0.0:
        return 'missing or negative "wall_seconds"'
    results = document.get("results")
    if not isinstance(results, list):
        return 'missing "results" array'
    for index, row in enumerate(results):
        reason = validate_row(row, index)
        if reason:
            return reason
    return ""


def main(argv):
    args = argv[1:]
    expect_fail = False
    if args and args[0] == "--expect-fail":
        expect_fail = True
        args = args[1:]
    if not args:
        print(f"usage: {argv[0]} [--expect-fail] BENCH_*.json",
              file=sys.stderr)
        return 2
    failures = 0
    unexpected_passes = 0
    for path in args:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"FAIL {path}: {error}")
            failures += 1
            continue
        reason = validate_report(document)
        if reason:
            print(f"FAIL {path}: {reason}")
            failures += 1
        else:
            rows = len(document.get("results", []))
            print(f"ok   {path} ({rows} result rows)")
            unexpected_passes += 1
    if expect_fail:
        return 0 if unexpected_passes == 0 else 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
