#!/usr/bin/env python3
"""Validate BENCH_<name>.json reports against schema version 2.

Mirrors drs::obs::validateBenchReport (src/obs/report.cc) so reports can
be checked without building the simulator, e.g. in CI after
`./run_benches.sh --json`:

    python3 tests/check_bench_schema.py bench_reports/BENCH_*.json

Google-benchmark output (BENCH_micro.json) uses its own schema and is
recognised by its "benchmarks" key; only its JSON well-formedness is
checked.
"""

import json
import sys

SCHEMA_VERSION = 2

STRING_FIELDS = ("scene", "arch", "bounce", "config", "error")
BOOL_FIELDS = ("failed", "from_journal")
UNIT_FIELDS = (
    "simd_efficiency",
    "l1d_hit_rate",
    "l1t_hit_rate",
    "l2_hit_rate",
    "rdctrl_stall_rate",
    "spawn_fraction",
    "shuffle_rf_fraction",
)
NON_NEGATIVE_FIELDS = (
    "cycles",
    "rays_traced",
    "mrays_per_s",
    "speedup_vs_aila",
    "wall_seconds",
    "ray_swaps",
    "mean_swap_cycles",
    "attempts",
    "fault_seed",
)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_row(row, index):
    where = f"results[{index}]"
    if not isinstance(row, dict):
        return f"{where} is not an object"
    for field in STRING_FIELDS:
        if field in row and not isinstance(row[field], str):
            return f"{where}.{field} must be a string"
    for field in BOOL_FIELDS:
        if field in row and not isinstance(row[field], bool):
            return f"{where}.{field} must be a boolean"
    for field in UNIT_FIELDS:
        if field in row:
            value = row[field]
            if not is_number(value) or not 0.0 <= value <= 1.0:
                return f"{where}.{field} must be a number in [0, 1]"
    for field in NON_NEGATIVE_FIELDS:
        if field in row:
            value = row[field]
            if not is_number(value) or value < 0.0:
                return f"{where}.{field} must be a non-negative number"
    counters = row.get("counters")
    if counters is not None:
        if not isinstance(counters, dict):
            return f"{where}.counters must be an object"
        for name, value in counters.items():
            if not is_number(value) or value < 0.0:
                return f"{where}.counters.{name} must be non-negative"
    return ""


def validate_report(document):
    if not isinstance(document, dict):
        return "document is not an object"
    if "benchmarks" in document:
        return ""  # Google benchmark schema; well-formed JSON suffices.
    bench = document.get("bench")
    if not isinstance(bench, str) or not bench:
        return 'missing or empty "bench" string'
    version = document.get("schema_version")
    if not is_number(version):
        return 'missing "schema_version"'
    if version != SCHEMA_VERSION:
        return f"unsupported schema_version {version}"
    if not isinstance(document.get("degraded"), bool):
        return 'missing "degraded" boolean'
    for field in ("scale", "options", "summary"):
        if not isinstance(document.get(field), dict):
            return f'missing "{field}" object'
    wall = document.get("wall_seconds")
    if not is_number(wall) or wall < 0.0:
        return 'missing or negative "wall_seconds"'
    results = document.get("results")
    if not isinstance(results, list):
        return 'missing "results" array'
    for index, row in enumerate(results):
        reason = validate_row(row, index)
        if reason:
            return reason
    return ""


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} BENCH_*.json", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"FAIL {path}: {error}")
            failures += 1
            continue
        reason = validate_report(document)
        if reason:
            print(f"FAIL {path}: {reason}")
            failures += 1
        else:
            rows = len(document.get("results", []))
            print(f"ok   {path} ({rows} result rows)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
