/**
 * @file
 * Tests for the scene generators, camera, path tracer, ray-trace capture
 * and serialization — the "PBRT black box" substitute.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "bvh/builder.h"
#include "render/path_tracer.h"
#include "render/ray_trace.h"
#include "scene/camera.h"
#include "scene/scenes.h"

namespace drs {
namespace {

using geom::Ray;
using geom::Vec3;

// ---------------------------------------------------------------- Scene

TEST(Scene, NamesRoundTrip)
{
    for (scene::SceneId id : scene::allSceneIds())
        EXPECT_EQ(scene::sceneFromName(scene::sceneName(id)), id);
    EXPECT_THROW(scene::sceneFromName("nope"), std::invalid_argument);
}

TEST(Scene, AllBenchmarkScenesHaveLightsAndGeometry)
{
    for (scene::SceneId id : scene::allSceneIds()) {
        const scene::Scene s = scene::makeScene(id, 0.2f);
        EXPECT_GT(s.triangleCount(), 100u) << scene::sceneName(id);
        EXPECT_FALSE(s.emissiveTriangles().empty()) << scene::sceneName(id);
        EXPECT_FALSE(s.bounds().empty());
    }
}

TEST(Scene, ScaleControlsTessellation)
{
    const auto small = scene::makeScene(scene::SceneId::Fairy, 0.1f);
    const auto large = scene::makeScene(scene::SceneId::Fairy, 0.5f);
    EXPECT_GT(large.triangleCount(), small.triangleCount() * 2);
}

TEST(Scene, PlantsIsDensest)
{
    // The paper's plants scene has by far the most triangles.
    const float scale = 0.2f;
    const auto plants = scene::makeScene(scene::SceneId::Plants, scale);
    for (scene::SceneId id :
         {scene::SceneId::Conference, scene::SceneId::Fairy}) {
        EXPECT_GT(plants.triangleCount(),
                  scene::makeScene(id, scale).triangleCount());
    }
}

TEST(Scene, MaterialLookupValidated)
{
    const scene::Scene s = scene::makeTestScene();
    EXPECT_NO_THROW(s.materialOf(0));
    // Bad material indices are rejected at construction.
    std::vector<geom::Triangle> tris = {
        {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 5}};
    EXPECT_THROW(scene::Scene("bad", tris, {scene::Material{}},
                              scene::Camera{}),
                 std::out_of_range);
}

TEST(Camera, RaysSpanTheFrustum)
{
    scene::Camera cam({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 90.0f, 1.0f);
    const Ray center = cam.generateRay(0.5f, 0.5f);
    EXPECT_NEAR(center.direction.z, -1.0f, 1e-5f);
    const Ray corner = cam.generateRay(0.0f, 0.0f);
    EXPECT_LT(corner.direction.x, 0.0f);
    EXPECT_LT(corner.direction.y, 0.0f);
    // 90 degree vertical fov: the top edge is at 45 degrees.
    const Ray top = cam.generateRay(0.5f, 1.0f);
    EXPECT_NEAR(top.direction.y / -top.direction.z, 1.0f, 1e-4f);
}

// ----------------------------------------------------------- PathTracer

render::RenderConfig
smallConfig()
{
    render::RenderConfig config;
    config.width = 40;
    config.height = 30;
    config.samplesPerPixel = 1;
    return config;
}

TEST(PathTracer, RenderProducesLight)
{
    const scene::Scene s = scene::makeTestScene();
    render::PathTracer tracer(s, smallConfig());
    const render::Image image = tracer.render();
    EXPECT_GT(image.meanLuminance(), 0.001);
}

TEST(PathTracer, CaptureBouncesShrinkMonotonically)
{
    const scene::Scene s = scene::makeTestScene();
    render::PathTracer tracer(s, smallConfig());
    const render::RayTrace trace = tracer.capture();
    ASSERT_GE(trace.bounces.size(), 2u);
    EXPECT_EQ(trace.bounces[0].bounce, 1);
    EXPECT_EQ(trace.bounces[0].rays.size(), 40u * 30u);
    for (std::size_t i = 1; i < trace.bounces.size(); ++i)
        EXPECT_LE(trace.bounces[i].size(), trace.bounces[i - 1].size());
}

TEST(PathTracer, CaptureRespectsRayCap)
{
    const scene::Scene s = scene::makeTestScene();
    render::PathTracer tracer(s, smallConfig());
    const render::RayTrace trace = tracer.capture(100);
    for (const auto &b : trace.bounces)
        EXPECT_LE(b.size(), 100u);
}

TEST(PathTracer, PrimaryRaysCoherentSecondaryNot)
{
    // The paper's core workload property: bounce-1 rays are coherent,
    // bounce-2+ rays are randomized by BSDF sampling.
    const scene::Scene s = scene::makeConferenceScene(0.15f);
    render::RenderConfig config = smallConfig();
    render::PathTracer tracer(s, config);
    const render::RayTrace trace = tracer.capture();
    ASSERT_GE(trace.bounces.size(), 2u);
    const auto primary = tracer.analyzeCoherence(trace.bounce(1).rays);
    const auto secondary = tracer.analyzeCoherence(trace.bounce(2).rays);
    EXPECT_GT(primary.directionCoherence, 0.7);
    EXPECT_LT(secondary.directionCoherence,
              primary.directionCoherence * 0.7);
}

TEST(PathTracer, DeterministicAcrossRuns)
{
    const scene::Scene s = scene::makeTestScene();
    render::PathTracer a(s, smallConfig());
    render::PathTracer b(s, smallConfig());
    const auto ta = a.capture(50);
    const auto tb = b.capture(50);
    ASSERT_EQ(ta.bounces.size(), tb.bounces.size());
    for (std::size_t i = 0; i < ta.bounces.size(); ++i) {
        ASSERT_EQ(ta.bounces[i].size(), tb.bounces[i].size());
        for (std::size_t j = 0; j < ta.bounces[i].size(); ++j) {
            EXPECT_EQ(ta.bounces[i].rays[j].origin,
                      tb.bounces[i].rays[j].origin);
            EXPECT_EQ(ta.bounces[i].rays[j].direction,
                      tb.bounces[i].rays[j].direction);
        }
    }
}

TEST(PathTracer, MaxDepthBoundsBounces)
{
    const scene::Scene s = scene::makeTestScene();
    render::RenderConfig config = smallConfig();
    config.maxDepth = 3;
    render::PathTracer tracer(s, config);
    EXPECT_LE(tracer.capture().bounces.size(), 3u);
}

// ------------------------------------------------------------ RayTrace

TEST(RayTrace, SerializationRoundTrip)
{
    render::RayTrace trace;
    trace.sceneName = "roundtrip";
    render::BounceRays b1;
    b1.bounce = 1;
    b1.rays.push_back(Ray{{1, 2, 3}, 0.5f, {0, 1, 0}, 99.0f});
    b1.rays.push_back(Ray{{-1, 0, 4}, 0.0f, {0, 0, -1}, 5.0f});
    trace.bounces.push_back(b1);

    std::stringstream stream;
    render::save(trace, stream);
    const render::RayTrace loaded = render::load(stream);
    EXPECT_EQ(loaded.sceneName, "roundtrip");
    ASSERT_EQ(loaded.bounces.size(), 1u);
    ASSERT_EQ(loaded.bounce(1).size(), 2u);
    EXPECT_EQ(loaded.bounce(1).rays[0].origin, Vec3(1, 2, 3));
    EXPECT_EQ(loaded.bounce(1).rays[1].tMax, 5.0f);
    EXPECT_EQ(loaded.totalRays(), 2u);
}

TEST(RayTrace, LoadRejectsGarbage)
{
    std::stringstream stream("not a trace at all");
    EXPECT_THROW(render::load(stream), std::runtime_error);
}

TEST(RayTrace, LoadRejectsTruncated)
{
    render::RayTrace trace;
    trace.sceneName = "t";
    render::BounceRays b;
    b.bounce = 1;
    b.rays.resize(10);
    trace.bounces.push_back(b);
    std::stringstream stream;
    render::save(trace, stream);
    std::string bytes = stream.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream cut(bytes);
    EXPECT_THROW(render::load(cut), std::runtime_error);
}

TEST(RayTrace, MissingBounceThrows)
{
    render::RayTrace trace;
    EXPECT_THROW(trace.bounce(3), std::out_of_range);
}

// --------------------------------------------------------------- Image

TEST(Image, AccumulatesAndAverages)
{
    render::Image image(4, 4);
    image.addSample(1, 2, {1.0f, 0.0f, 0.0f});
    image.addSample(1, 2, {0.0f, 1.0f, 0.0f});
    const Vec3 p = image.pixel(1, 2);
    EXPECT_FLOAT_EQ(p.x, 0.5f);
    EXPECT_FLOAT_EQ(p.y, 0.5f);
    EXPECT_FLOAT_EQ(p.z, 0.0f);
    EXPECT_EQ(image.pixel(0, 0), Vec3());
}

TEST(Image, WritesPpm)
{
    render::Image image(8, 6);
    for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 8; ++x)
            image.addSample(x, y, {0.5f, 0.25f, 0.125f});
    const std::string path = "/tmp/drs_test_image.ppm";
    ASSERT_TRUE(image.writePpm(path));
    std::ifstream is(path, std::ios::binary);
    std::string header;
    is >> header;
    EXPECT_EQ(header, "P6");
}

} // namespace
} // namespace drs
